"""Tests for the load-balanced scheduler (paper Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SchedulePlan, plan_schedule, plan_unbalanced
from repro.core.scheduler import WorkItem


def coverage_map(plan: SchedulePlan):
    """Collect per (group, q_tile, kv_head) the sorted kv ranges."""
    cover = {}
    for queue in plan.cta_queues:
        for w in queue:
            cover.setdefault((w.group, w.q_tile, w.kv_head), []).append(
                (w.kv_start, w.kv_stop)
            )
    for key in cover:
        cover[key].sort()
    return cover


class TestCoverage:
    @given(
        st.lists(st.tuples(st.integers(0, 60), st.integers(0, 4000)), min_size=1, max_size=12),
        st.sampled_from([1, 4, 16, 64]),
        st.integers(1, 4),
    )
    @settings(max_examples=120, deadline=None)
    def test_kv_exactly_partitioned(self, lens, q_tile, heads):
        qo = [max(l[0], 1) for l in lens]
        kv = [l[1] for l in lens]
        plan = plan_schedule(qo, kv, q_tile, num_ctas=13, num_kv_heads=heads)
        cover = coverage_map(plan)
        for g, (lq, lkv) in enumerate(zip(qo, kv)):
            n_tiles = -(-lq // q_tile)
            for t in range(n_tiles):
                for h in range(heads):
                    ranges = cover[(g, t, h)]
                    assert ranges[0][0] == 0
                    assert ranges[-1][1] == lkv
                    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                        assert a1 == b0  # contiguous, no overlap

    def test_query_rows_partitioned(self):
        plan = plan_schedule([70], [100], 32, num_ctas=4)
        rows = sorted(
            (w.q_start, w.q_start + w.q_rows)
            for q in plan.cta_queues
            for w in q
        )
        assert rows == [(0, 32), (32, 64), (64, 70)]

    def test_zero_length_groups_skipped(self):
        plan = plan_schedule([0, 1], [100, 100], 16, num_ctas=2)
        groups = {w.group for q in plan.cta_queues for w in q}
        assert groups == {1}

    def test_empty_kv_single_item(self):
        plan = plan_schedule([4], [0], 16, num_ctas=2)
        items = [w for q in plan.cta_queues for w in q]
        assert len(items) == 1
        assert items[0].kv_len == 0
        assert items[0].partial_slot == -1


class TestSplitAndMerge:
    def test_long_kv_split_into_chunks(self):
        plan = plan_schedule([1] * 2, [10000, 100], 16, num_ctas=8, min_kv_chunk=64)
        assert plan.num_partial_slots > 0
        assert plan.merges
        for m in plan.merges:
            assert len(m.slots) >= 2

    def test_merge_slots_ascending_kv_order(self):
        plan = plan_schedule([1], [5000], 16, num_ctas=8, min_kv_chunk=64)
        items = {w.partial_slot: w for q in plan.cta_queues for w in q if w.partial_slot >= 0}
        for m in plan.merges:
            starts = [items[s].kv_start for s in m.slots]
            assert starts == sorted(starts)

    def test_writethrough_single_chunk(self):
        # Short KVs must not produce partial slots (Appendix D.2).
        plan = plan_schedule([1] * 8, [64] * 8, 16, num_ctas=4)
        assert plan.num_partial_slots == 0
        assert not plan.merges

    @given(
        st.lists(st.integers(1, 8000), min_size=1, max_size=20),
        st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_partial_slots_bounded_by_2x_ctas(self, kv, heads):
        """The Appendix D.3 workspace bound: ≤ 2 · #CTA partial outputs."""
        num_ctas = 16
        plan = plan_schedule([1] * len(kv), kv, 16, num_ctas, num_kv_heads=heads)
        assert plan.num_partial_slots <= 2 * num_ctas

    def test_chunk_granularity_respected(self):
        plan = plan_schedule([1], [10000], 16, num_ctas=64, chunk_granularity=128)
        assert plan.kv_chunk_size % 128 == 0

    def test_split_disabled(self):
        plan = plan_schedule([1], [100000], 16, num_ctas=8, split_kv=False)
        assert plan.num_partial_slots == 0


class TestBalance:
    def test_deterministic(self):
        kv = [17, 900, 33, 4012, 5, 777]
        a = plan_schedule([1] * 6, kv, 16, num_ctas=5)
        b = plan_schedule([1] * 6, kv, 16, num_ctas=5)
        assert a.cta_queues == b.cta_queues
        assert a.merges == b.merges

    def test_balanced_beats_unbalanced_on_skew(self):
        qo = [1] * 16
        kv = [8000] + [100] * 15
        bal = plan_schedule(qo, kv, 16, num_ctas=16)
        unbal = plan_unbalanced(qo, kv, 16, num_ctas=16)
        assert bal.load_balance > unbal.load_balance

    def test_near_perfect_balance_uniform(self):
        plan = plan_schedule([1] * 64, [1024] * 64, 16, num_ctas=16)
        assert plan.load_balance > 0.9

    def test_lpt_order(self):
        # Longest chunks must be assigned first: the first item of some CTA
        # queue is the longest chunk overall.
        plan = plan_schedule([1] * 3, [10, 500, 90], 16, num_ctas=3, split_kv=False)
        firsts = [q[0].kv_len for q in plan.cta_queues if q]
        assert max(firsts) == 500


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="align"):
            plan_schedule([1, 2], [3], 16, 4)

    def test_positive_args(self):
        with pytest.raises(ValueError):
            plan_schedule([1], [1], 0, 4)
        with pytest.raises(ValueError):
            plan_schedule([1], [1], 16, 0)


class TestWorkItem:
    def test_kv_len(self):
        w = WorkItem(0, 0, 0, 0, 4, 10, 74, 0, -1)
        assert w.kv_len == 64


class TestUnbalanced:
    def test_round_robin_order(self):
        plan = plan_unbalanced([1] * 6, [10] * 6, 16, num_ctas=3)
        assert [len(q) for q in plan.cta_queues] == [2, 2, 2]
        assert plan.cta_queues[0][0].group == 0
        assert plan.cta_queues[1][0].group == 1
