"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HeadConfig
from repro.sparse import AttentionMapping, kv_from_page_table
from repro.utils.dtypes import StorageDType, round_to_storage


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_paged_mapping(kv_lens, qo_lens, page_size=16, causal=True):
    """Build a mapping over a freshly laid-out page pool.

    Pages are allocated contiguously per request; returns
    ``(mapping, total_slots)``.
    """
    kv_lens = list(int(x) for x in kv_lens)
    qo_lens = list(int(x) for x in qo_lens)
    pool = sum(-(-l // page_size) for l in kv_lens)
    pages, c = [], 0
    for l in kv_lens:
        n = -(-l // page_size)
        pages.append(np.arange(c, c + n))
        c += n
    kv = kv_from_page_table(pages, kv_lens, page_size, pool)
    qo_indptr = np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64)
    return AttentionMapping(qo_indptr, kv, causal=causal), pool * page_size


def make_shared_prefix_mapping(
    n_clusters, cluster_size, prefix_len, suffix_len, qo_per_stream=1, page_size=16
):
    """Clusters of requests sharing prefix pages; returns (mapping, slots,
    clusters) where clusters are PrefixCluster-compatible tuples."""
    from repro.sparse import PrefixCluster

    kv_lens, pages, c = [], [], 0
    pp = prefix_len // page_size
    assert prefix_len % page_size == 0
    clusters = []
    req = 0
    for _ in range(n_clusters):
        shared = np.arange(c, c + pp)
        c += pp
        members = []
        for _ in range(cluster_size):
            sp = -(-suffix_len // page_size)
            own = np.arange(c, c + sp)
            c += sp
            pages.append(np.concatenate([shared, own]))
            kv_lens.append(prefix_len + suffix_len)
            members.append(req)
            req += 1
        clusters.append(PrefixCluster(tuple(members), prefix_len))
    kv = kv_from_page_table(pages, kv_lens, page_size, c)
    qo_lens = [qo_per_stream] * (n_clusters * cluster_size)
    qo_indptr = np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64)
    mapping = AttentionMapping(qo_indptr, kv, causal=True)
    return mapping, c * page_size, clusters


def fp16(x):
    """Round through fp16 storage (what the engine does to K/V)."""
    return round_to_storage(np.asarray(x), StorageDType.FP16).astype(np.float64)


SMALL_HEADS = HeadConfig(4, 2, 16)
MHA_HEADS = HeadConfig(4, 4, 16)
