"""Boundary-case tests for :class:`repro.serving.AdmissionController`.

Shedding is the engine's last line of defence, so its edges matter: a
deadline *exactly equal* to the clock must not shed (the contract is
strict ``t > deadline``), shedding must be a no-op on empty queues, and
work parked in the preempted deque must be sheddable by both the deadline
scan and the overload valve.
"""

from collections import deque

import pytest

from repro.core import HeadConfig
from repro.faults import ResilienceConfig
from repro.gpu import H100_80G
from repro.kvcache import PagedKVCache
from repro.serving import (
    AdmissionController,
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    RequestTrace,
    RunState,
    ServingEngine,
    ServingMetrics,
)
from repro.serving.batching import Stream

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def make_controller(requests, resilience=None):
    """A real engine + hand-built run state, so shedding paths can be
    driven directly at exact clock values."""
    engine = ServingEngine(
        MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G,
        EngineConfig(max_running=64),
        resilience=resilience or ResilienceConfig(),
    )
    cache = PagedKVCache(64, 16, HEADS.num_kv_heads, HEADS.head_dim,
                         materialize=False)
    state = RunState(
        requests=requests, cache=cache, metrics=ServingMetrics(),
        waiting=deque(range(len(requests))),
    )
    return AdmissionController(engine, state), state


def make_stream(state, req_idx, deadline=None, live=True):
    seq_id = state.cache.new_seq() if live else -1
    trace = RequestTrace(arrival=0.0, first_token_time=0.0,
                         req_id=req_idx, gen_index=0, tokens=[])
    return Stream(req_idx, seq_id, remaining=4, trace=trace,
                  deadline=deadline)


def shed_reasons(state):
    return [(t.req_id, t.outcome_reason) for t in state.metrics.shed_traces]


class TestShedExpired:
    def test_deadline_exactly_equal_to_clock_is_not_shed(self):
        """The contract is strict ``t > deadline``: at the instant the
        deadline lands, the request still gets served."""
        reqs = [Request(0.0, 32, 4, deadline=1.0)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.append(0)
        adm.shed_expired(t=1.0)
        assert list(state.prefill_queue) == [0]
        assert state.metrics.sheds == 0
        # One tick past the deadline it goes.
        adm.shed_expired(t=1.0 + 1e-9)
        assert not state.prefill_queue
        assert shed_reasons(state) == [(0, "deadline")]

    def test_stream_deadline_equal_to_clock_is_not_shed(self):
        adm, state = make_controller([Request(0.0, 32, 4)])
        state.waiting.clear()
        state.streams.append(make_stream(state, 0, deadline=0.5))
        adm.shed_expired(t=0.5)
        assert len(state.streams) == 1
        adm.shed_expired(t=0.5000001)
        assert not state.streams
        assert shed_reasons(state) == [(0, "deadline")]

    def test_empty_queues_are_a_noop(self):
        adm, state = make_controller([Request(0.0, 32, 4, deadline=0.1)])
        state.waiting.clear()  # nothing queued, streaming, or preempted
        adm.shed_expired(t=99.0)
        assert state.metrics.sheds == 0
        assert not state.metrics.shed_traces

    def test_no_deadlines_anywhere_sheds_nothing(self):
        reqs = [Request(0.0, 32, 4), Request(0.0, 32, 4)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.append(0)
        state.streams.append(make_stream(state, 1))
        adm.shed_expired(t=1e9)
        assert list(state.prefill_queue) == [0]
        assert len(state.streams) == 1

    def test_expired_stream_in_preempted_deque_is_shed(self):
        """Work parked for recompute still honours its deadline — both a
        stream holding pages and one already evicted (seq_id == -1)."""
        reqs = [Request(0.0, 32, 4), Request(0.0, 32, 4)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        live = make_stream(state, 0, deadline=0.3, live=True)
        evicted = make_stream(state, 1, deadline=0.3, live=False)
        state.preempted.extend([live, evicted])
        free_before = state.cache.num_free_pages
        adm.shed_expired(t=0.3)  # exactly at the deadline: both stay
        assert len(state.preempted) == 2
        adm.shed_expired(t=0.31)
        assert not state.preempted
        assert sorted(shed_reasons(state)) == [(0, "deadline"), (1, "deadline")]
        assert state.cache.num_free_pages == free_before  # live seq freed

    def test_expired_request_sheds_every_generation(self):
        reqs = [Request(0.0, 32, 4, n=3, deadline=0.1)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.append(0)
        adm.shed_expired(t=0.2)
        assert state.metrics.sheds == 3
        assert [t.gen_index for t in state.metrics.shed_traces] == [0, 1, 2]


class TestShedOverload:
    def test_pops_youngest_admitted_request_first(self):
        reqs = [Request(i * 0.01, 32, 4) for i in range(3)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.extend([0, 1, 2])
        adm.shed_overload(t=1.0)
        assert list(state.prefill_queue) == [0, 1]
        assert shed_reasons(state) == [(2, "overload")]

    def test_falls_back_to_youngest_preempted_stream(self):
        """With the prefill queue empty, overload relief comes from the
        preempted deque — and frees the victim's pages."""
        reqs = [Request(0.0, 32, 4), Request(0.0, 32, 4)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        older = make_stream(state, 0)
        younger = make_stream(state, 1)
        state.preempted.extend([older, younger])
        adm.shed_overload(t=1.0)
        assert list(state.preempted) == [older]
        assert younger.seq_id == -1  # pages released
        assert shed_reasons(state) == [(1, "overload")]

    def test_queued_work_shields_preempted_streams(self):
        reqs = [Request(0.0, 32, 4), Request(0.0, 32, 4)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.append(0)
        state.preempted.append(make_stream(state, 1))
        adm.shed_overload(t=1.0)
        assert not state.prefill_queue  # the queued prompt took the hit
        assert len(state.preempted) == 1
        assert shed_reasons(state) == [(0, "overload")]


class TestShedPriorityInteraction:
    """Satellite coverage: deadline/overload shedding x ``Request.priority``.

    ``shed_overload`` is youngest-first and deliberately priority-blind —
    the queue *tail* goes first even between same-age requests.  Priority
    protects work only indirectly, by where :class:`PriorityPolicy` parks
    it in the queue."""

    def test_same_age_shed_takes_the_queue_tail_not_the_low_priority(self):
        """Two requests with identical arrivals: the one at the queue tail
        is shed, even when it is the *high*-priority one."""
        reqs = [Request(0.5, 32, 4, priority=0), Request(0.5, 32, 4, priority=1)]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.extend([0, 1])  # high priority parked at the tail
        adm.shed_overload(t=1.0)
        assert shed_reasons(state) == [(1, "overload")]
        assert list(state.prefill_queue) == [0]

    def test_priority_policy_pools_low_priority_at_the_shed_tail(self):
        """Composed with PriorityPolicy ordering, repeated overload sheds
        consume the low-priority pool first: high priority outlives low."""
        from repro.serving import get_policy

        reqs = [
            Request(0.0, 32, 4, priority=0),
            Request(0.1, 32, 4, priority=1),
            Request(0.2, 32, 4, priority=0),
            Request(0.3, 32, 4, priority=1),
        ]
        adm, state = make_controller(reqs)
        state.waiting.clear()
        state.prefill_queue.extend(range(4))
        get_policy("priority").order(state.prefill_queue, reqs, now=0.4)
        assert list(state.prefill_queue) == [1, 3, 0, 2]
        adm.shed_overload(t=1.0)
        adm.shed_overload(t=1.1)
        # Both priority-0 requests went (youngest first); priority-1 survive.
        assert shed_reasons(state) == [(2, "overload"), (0, "overload")]
        assert [reqs[i].priority for i in state.prefill_queue] == [1, 1]


class TestAdmissionPressureMean:
    """Satellite coverage: the time-weighted ``admission_pressure_mean``."""

    def test_held_left_integration_distinguishes_spike_from_sustained(self):
        reqs = [Request(0.0, 32, 4)]
        adm, state = make_controller(reqs)
        adm.engine.track_pressure = True
        state.waiting.clear()
        # Sustained half-saturation for 1 s, then a quarter for 2 s.
        state.prefill_queue.extend(range(32))  # 32 / max_running=64
        adm.admit(t=0.0)
        state.prefill_queue.clear()
        state.prefill_queue.extend(range(16))
        adm.admit(t=1.0)
        mean = adm.pressure_mean(t_end=3.0)
        assert mean == pytest.approx((0.5 * 1.0 + 0.25 * 2.0) / 3.0)
        # Peak tracks the max sample, not the mean.
        assert state.metrics.admission_pressure == pytest.approx(0.5)
        # A single instantaneous spike barely moves the mean.
        state.prefill_queue.extend(range(16, 64))
        adm.admit(t=3.0)
        spiked = adm.pressure_mean(t_end=3.0001)
        assert spiked < mean + 0.01
        assert state.metrics.admission_pressure == pytest.approx(1.0)

    def test_no_samples_means_zero(self):
        adm, _ = make_controller([Request(0.0, 32, 4)])
        assert adm.pressure_mean(t_end=5.0) == 0.0

    def test_engine_run_reports_the_mean_when_tracking(self):
        reqs = [Request(i * 0.001, 64, 8) for i in range(6)]
        engine = ServingEngine(
            MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G,
            EngineConfig(max_running=4),
        )
        engine.track_pressure = True
        metrics = engine.run(reqs)
        assert 0.0 < metrics.admission_pressure_mean <= metrics.admission_pressure
        assert metrics.summary()["admission_pressure_mean"] == pytest.approx(
            metrics.admission_pressure_mean
        )
        # State round-trip carries the mean.
        restored = ServingMetrics.from_state(metrics.export_state())
        assert restored.admission_pressure_mean == metrics.admission_pressure_mean


class TestEngineDeadlineShedding:
    def test_run_with_impossible_deadline_sheds_not_crashes(self):
        """End to end: a deadline shorter than a single step sheds every
        request deterministically instead of wedging the loop."""
        reqs = [Request(i * 0.001, 64, 8, deadline=1e-7) for i in range(4)]
        engine = ServingEngine(
            MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G,
            EngineConfig(max_running=64), resilience=ResilienceConfig(),
        )
        metrics = engine.run(reqs)
        assert metrics.sheds == len(reqs)
        assert all(t.outcome_reason == "deadline"
                   for t in metrics.shed_traces)
        assert not metrics.traces
