"""Tests for the continuous-batching serving engine and backends."""

import pytest

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    Request,
    ServingEngine,
    TritonBackend,
    TRTLLMBackend,
    LLAMA_3_1_8B,
    VICUNA_13B,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def tiny_requests(n=4, prompt=64, output=8, rate_gap=0.001, n_parallel=1):
    return [
        Request(i * rate_gap, prompt, output, n=n_parallel) for i in range(n)
    ]


def small_engine(backend=None, **cfg_kwargs):
    be = backend or FlashInferBackend(HEADS, H100_80G)
    cfg = EngineConfig(num_pool_pages=1 << 12, **cfg_kwargs)
    return ServingEngine(MODEL, be, H100_80G, cfg)


class TestBasicServing:
    def test_all_requests_complete(self):
        eng = small_engine()
        m = eng.run(tiny_requests(5))
        assert len(m.traces) == 5

    def test_token_counts(self):
        eng = small_engine()
        m = eng.run(tiny_requests(3, output=10))
        assert m.total_output_tokens == 30
        for t in m.traces:
            assert len(t.token_times) == 9  # first token + 9 decode steps

    def test_time_monotone_per_request(self):
        eng = small_engine()
        m = eng.run(tiny_requests(3, output=6))
        for t in m.traces:
            times = [t.arrival, t.first_token_time] + t.token_times
            assert all(a <= b for a, b in zip(times, times[1:]))

    def test_ttft_includes_queueing(self):
        # A burst of arrivals must queue: later requests see larger TTFT.
        reqs = [Request(0.0, 2048, 4) for _ in range(12)]
        eng = small_engine(max_prefill_tokens=2048)
        m = eng.run(reqs)
        ttfts = sorted(t.ttft for t in m.traces)
        assert ttfts[-1] > 2 * ttfts[0]

    def test_output_len_one(self):
        eng = small_engine()
        m = eng.run(tiny_requests(2, output=1))
        assert len(m.traces) == 2
        assert all(not t.token_times for t in m.traces)

    def test_idle_gap_jumps_clock(self):
        reqs = [Request(0.0, 32, 2), Request(100.0, 32, 2)]
        eng = small_engine()
        m = eng.run(reqs)
        assert m.traces[-1].first_token_time > 100.0

    def test_pages_freed_at_end(self):
        eng = small_engine()
        eng.run(tiny_requests(4))
        # engine creates its cache per run; re-running must also work.
        m = eng.run(tiny_requests(4))
        assert len(m.traces) == 4


class TestBackends:
    def test_backend_head_mismatch_rejected(self):
        be = FlashInferBackend(HeadConfig(8, 8, 64), H100_80G)
        with pytest.raises(ValueError, match="heads"):
            ServingEngine(MODEL, be, H100_80G, EngineConfig())

    def test_triton_slower_at_load(self):
        reqs = [Request(0.0, 512, 16) for _ in range(32)]
        fi = small_engine(FlashInferBackend(HEADS, H100_80G)).run(reqs)
        tr = small_engine(TritonBackend(HEADS, H100_80G)).run(reqs)
        assert tr.median_itl() > fi.median_itl()

    def test_trtllm_attention_parity(self):
        reqs = tiny_requests(6, prompt=256, output=8)
        fi = small_engine(FlashInferBackend(HEADS, H100_80G)).run(reqs)
        trt = small_engine(TRTLLMBackend(HEADS, H100_80G)).run(reqs)
        # TRT analog has better non-attention kernels → at least as fast.
        assert trt.median_itl() <= fi.median_itl() * 1.01

    def test_step_overhead_cudagraph(self):
        be = FlashInferBackend(HEADS, H100_80G)
        assert be.step_overhead(32, H100_80G) == H100_80G.kernel_launch_overhead
        be.characteristics.uses_cudagraph = False
        assert be.step_overhead(32, H100_80G) > 32 * H100_80G.kernel_launch_overhead / 2

    def test_triton_rejects_composable(self):
        from repro.sparse import ComposableFormat
        from conftest import make_paged_mapping

        be = TritonBackend(HEADS, H100_80G)
        m1, _ = make_paged_mapping([64], [1], 16)
        m2, _ = make_paged_mapping([64], [1], 16)
        with pytest.raises(ValueError, match="composable"):
            be.attention_time(ComposableFormat([m1, m2]), decode=True)


class TestParallelGeneration:
    def test_n_streams_per_request(self):
        eng = small_engine()
        m = eng.run(tiny_requests(2, output=5, n_parallel=3))
        assert len(m.traces) == 6  # one trace per stream

    def test_composable_matches_token_counts(self):
        be = FlashInferBackend(HEADS, H100_80G, composable=True)
        eng = small_engine(be, composable=True)
        m = eng.run(tiny_requests(2, prompt=64, output=6, n_parallel=4))
        assert len(m.traces) == 8
        assert m.total_output_tokens == 48

    def test_composable_reduces_itl_at_n4(self):
        reqs = [Request(i * 0.001, 512, 24, n=4) for i in range(8)]
        single = small_engine(
            FlashInferBackend(HEADS, H100_80G), composable=False
        ).run(reqs)
        comp = small_engine(
            FlashInferBackend(HEADS, H100_80G, composable=True), composable=True
        ).run(reqs)
        assert comp.median_itl() < single.median_itl()


class TestVicuna:
    def test_mha_model_serves(self):
        model = VICUNA_13B
        heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)
        be = FlashInferBackend(heads, H100_80G)
        eng = ServingEngine(model, be, H100_80G, EngineConfig(num_pool_pages=1 << 12))
        m = eng.run([Request(0.0, 128, 4)])
        assert len(m.traces) == 1
