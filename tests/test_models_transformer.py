"""End-to-end model tests: the attention engine serving a real transformer."""

import numpy as np
import pytest

from repro.models import GenerationSession, TinyConfig, TinyTransformer


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(TinyConfig(), seed=0)


class TestConfig:
    def test_head_geometry_validated(self):
        with pytest.raises(ValueError, match="head_dim"):
            TinyConfig(hidden_size=64, num_qo_heads=4, head_dim=32)
        with pytest.raises(ValueError, match="multiple"):
            TinyConfig(num_qo_heads=4, num_kv_heads=3, hidden_size=64, head_dim=16)


class TestDenseOracle:
    def test_logits_shape(self, model):
        logits = model.forward_logits([1, 2, 3])
        assert logits.shape == (3, model.config.vocab_size)

    def test_deterministic(self, model):
        a = model.forward_logits([5, 6, 7])
        b = model.forward_logits([5, 6, 7])
        assert np.array_equal(a, b)

    def test_causality(self, model):
        """Changing a later token must not change earlier logits."""
        a = model.forward_logits([1, 2, 3, 4])
        b = model.forward_logits([1, 2, 3, 99])
        np.testing.assert_allclose(a[:3], b[:3])
        assert not np.allclose(a[3], b[3])


class TestPagedEquivalence:
    def test_prefill_logits_match_dense(self, model):
        prompt = [3, 1, 4, 1, 5, 9, 2, 6]
        sess = GenerationSession(model)
        sid = sess.new_sequence()
        logits = sess.step([sid], [prompt])
        dense = model.forward_logits(prompt)
        np.testing.assert_allclose(logits[0], dense[-1], atol=1e-6)

    def test_greedy_generation_token_exact(self, model):
        prompt = [1, 5, 9, 33, 17]
        dense = model.greedy_generate_dense(prompt, 10)
        paged = GenerationSession(model).greedy_generate(prompt, 10)
        assert dense == paged

    def test_incremental_equals_one_shot_prefill(self, model):
        """Feeding a prompt in two chunks (chunked prefill) must match
        one-shot prefill exactly."""
        prompt = [7, 8, 9, 10, 11, 12, 13]
        one = GenerationSession(model)
        s1 = one.new_sequence()
        logits_one = one.step([s1], [prompt])

        two = GenerationSession(model)
        s2 = two.new_sequence()
        two.step([s2], [prompt[:4]])
        logits_two = two.step([s2], [prompt[4:]])
        np.testing.assert_allclose(logits_one, logits_two, atol=1e-6)

    def test_batched_decode_matches_solo(self, model):
        """Two sequences decoded in one batch produce exactly what each
        produces alone."""
        pa, pb = [1, 2, 3], [40, 41, 42, 43, 44]
        solo_a = GenerationSession(model).greedy_generate(pa, 5)
        solo_b = GenerationSession(model).greedy_generate(pb, 5)

        sess = GenerationSession(model)
        sa, sb = sess.new_sequence(), sess.new_sequence()
        logits = sess.step([sa, sb], [pa, pb])
        toks = [int(np.argmax(logits[0])), int(np.argmax(logits[1]))]
        outs = {sa: [toks[0]], sb: [toks[1]]}
        for _ in range(4):
            logits = sess.step([sa, sb], [[outs[sa][-1]], [outs[sb][-1]]])
            outs[sa].append(int(np.argmax(logits[0])))
            outs[sb].append(int(np.argmax(logits[1])))
        assert outs[sa] == solo_a
        assert outs[sb] == solo_b

    def test_mixed_prefill_decode_batch(self, model):
        """A decode stream and a fresh prefill in one step (chunked-prefill
        style) must match their isolated results."""
        sess = GenerationSession(model)
        a = sess.new_sequence()
        la = sess.step([a], [[1, 2, 3]])
        b = sess.new_sequence()
        tok_a = int(np.argmax(la[0]))
        logits = sess.step([a, b], [[tok_a], [50, 51, 52, 53]])

        ref_a = model.forward_logits([1, 2, 3, tok_a])[-1]
        ref_b = model.forward_logits([50, 51, 52, 53])[-1]
        np.testing.assert_allclose(logits[0], ref_a, atol=1e-6)
        np.testing.assert_allclose(logits[1], ref_b, atol=1e-6)


class TestForking:
    def test_forked_sequences_diverge_correctly(self, model):
        """Fork after prefill; each fork continues with different tokens and
        must match a dense forward of its own token history."""
        prompt = [9, 8, 7, 6]
        sess = GenerationSession(model)
        root = sess.new_sequence()
        sess.step([root], [prompt])
        fork = sess.fork_sequence(root)

        la = sess.step([root], [[100]])
        lb = sess.step([fork], [[101]])
        np.testing.assert_allclose(
            la[0], model.forward_logits(prompt + [100])[-1], atol=1e-6
        )
        np.testing.assert_allclose(
            lb[0], model.forward_logits(prompt + [101])[-1], atol=1e-6
        )

    def test_fork_preserves_parent(self, model):
        prompt = [2, 4, 6]
        sess = GenerationSession(model)
        root = sess.new_sequence()
        sess.step([root], [prompt])
        sess.fork_sequence(root)
        logits = sess.step([root], [[10]])
        np.testing.assert_allclose(
            logits[0], model.forward_logits(prompt + [10])[-1], atol=1e-6
        )


class TestValidation:
    def test_empty_token_list_rejected(self, model):
        sess = GenerationSession(model)
        sid = sess.new_sequence()
        with pytest.raises(ValueError, match="at least one token"):
            sess.step([sid], [[]])


class TestMixedAttentionLayers:
    """Gemma-2-style models: alternating sliding-window / full layers served
    with per-layer JIT variants."""

    @pytest.fixture(scope="class")
    def gemma_style(self):
        cfg = TinyConfig(num_layers=4, sliding_window=8, sliding_layers=(0, 2))
        return TinyTransformer(cfg, seed=3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sliding_window"):
            TinyConfig(sliding_layers=(0,))
        with pytest.raises(ValueError, match="out of range"):
            TinyConfig(sliding_window=8, sliding_layers=(5,), num_layers=2)

    def test_layer_window_lookup(self, gemma_style):
        c = gemma_style.config
        assert c.layer_window(0) == 8
        assert c.layer_window(1) is None
        assert c.layer_window(2) == 8

    def test_window_changes_the_model(self, gemma_style):
        """The windowed model must differ from a plain one past the window."""
        plain = TinyTransformer(
            TinyConfig(num_layers=4), seed=3
        )
        tokens = list(range(1, 25))
        a = gemma_style.forward_logits(tokens)
        b = plain.forward_logits(tokens)
        assert not np.allclose(a[-1], b[-1])

    def test_generation_token_exact(self, gemma_style):
        prompt = [9, 8, 7, 6, 5, 4, 3, 2, 1, 9, 8, 7]
        dense = gemma_style.greedy_generate_dense(prompt, 10)
        paged = GenerationSession(gemma_style).greedy_generate(prompt, 10)
        assert dense == paged

    def test_wrapper_pairs_shared_per_variant(self, gemma_style):
        sess = GenerationSession(gemma_style)
        # Layers 0 and 2 (windowed) share a pair; layers 1 and 3 share one.
        assert sess._layer_wrappers[0] is sess._layer_wrappers[2]
        assert sess._layer_wrappers[1] is sess._layer_wrappers[3]
        assert sess._layer_wrappers[0] is not sess._layer_wrappers[1]

    def test_speculative_still_lossless(self, gemma_style):
        from repro.models import speculative_generate

        prompt = [1, 2, 3, 1, 2, 3]
        plain = GenerationSession(gemma_style).greedy_generate(prompt, 8)
        spec, _ = speculative_generate(gemma_style, prompt, 8, num_draft=3)
        assert spec == plain
