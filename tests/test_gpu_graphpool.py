"""Tests for the CUDAGraph pool (Listing 1's ``select_graph``)."""

import pytest

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.gpu import CudaGraph, CudaGraphPool, GraphCaptureError, batch_size_bucket


class TestBucketing:
    def test_powers_of_two(self):
        assert batch_size_bucket(1) == 1
        assert batch_size_bucket(2) == 2
        assert batch_size_bucket(3) == 4
        assert batch_size_bucket(17) == 32
        assert batch_size_bucket(64) == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            batch_size_bucket(0)


class TestPool:
    def test_capture_and_select(self):
        pool = CudaGraphPool()
        calls = []
        pool.capture("decode_b8", lambda: CudaGraph.add_launch(
            lambda: calls.append("k"), signature=()))
        g = pool.select("decode_b8")
        g.replay()
        assert calls == ["k", "k"]
        assert len(pool) == 1
        assert "decode_b8" in pool

    def test_duplicate_key_rejected(self):
        pool = CudaGraphPool()
        pool.capture("x", lambda: None)
        with pytest.raises(GraphCaptureError, match="already"):
            pool.capture("x", lambda: None)

    def test_missing_key(self):
        pool = CudaGraphPool()
        with pytest.raises(KeyError, match="no captured graph"):
            pool.select("nope")

    def test_listing1_workflow(self):
        """Capture one graph per batch bucket; select and replay at runtime
        with fresh plan data, exactly as in Listing 1."""
        heads = HeadConfig(2, 2, 8)
        ws = WorkspaceBuffer(1 << 27)
        pool = CudaGraphPool()
        wrappers = {}
        for bucket in (2, 4):
            w = BatchAttentionWrapper(
                VANILLA, heads, ws, avg_qo_len=1, name=f"b{bucket}",
                max_batch_size=bucket, max_total_qo=bucket,
            )
            m, _ = make_paged_mapping([64] * bucket, [1] * bucket, 16)
            w.plan(m)  # dummy plan before capture (Listing 1)
            pool.capture(bucket, lambda w=w: w.run(None, compute=False))
            wrappers[bucket] = w

        # Runtime: batch of 3 → bucket 4.
        bucket = batch_size_bucket(3)
        w = wrappers[bucket]
        m, _ = make_paged_mapping([128] * 3 + [16], [1] * 4, 16)  # padded to 4
        w.plan(m)
        pool.select(bucket).replay()
        assert w.last_report is not None
        assert w.plan_count == 2
