"""Tests for the radix-tree prefix cache."""


from repro.kvcache import PagedKVCache, RadixTree


def setup_cache(num_pages=32, page_size=4):
    cache = PagedKVCache(num_pages, page_size, 1, 4)
    return cache, RadixTree(cache)


def fill_seq(cache, tokens):
    """Allocate a sequence covering ``tokens`` (structure only)."""
    sid = cache.new_seq()
    cache.extend(sid, len(tokens))
    return sid


class TestInsertMatch:
    def test_miss_on_empty_tree(self):
        _, tree = setup_cache()
        assert tree.match_prefix([1, 2, 3, 4]) == (0, [])

    def test_exact_hit(self):
        cache, tree = setup_cache()
        toks = [1, 2, 3, 4, 5, 6, 7, 8]
        sid = fill_seq(cache, toks)
        tree.insert(toks, cache.seq_pages(sid))
        matched, pages = tree.match_prefix(toks)
        assert matched == 8
        assert pages == cache.seq_pages(sid)

    def test_partial_hit_whole_pages_only(self):
        cache, tree = setup_cache()
        toks = [1, 2, 3, 4, 5, 6, 7, 8]
        sid = fill_seq(cache, toks)
        tree.insert(toks, cache.seq_pages(sid))
        # Query diverges in the second page: only the first page matches.
        matched, pages = tree.match_prefix([1, 2, 3, 4, 5, 6, 99, 100])
        assert matched == 4
        assert pages == cache.seq_pages(sid)[:1]

    def test_sub_page_divergence_no_hit(self):
        cache, tree = setup_cache()
        toks = [1, 2, 3, 4]
        sid = fill_seq(cache, toks)
        tree.insert(toks, cache.seq_pages(sid))
        matched, pages = tree.match_prefix([1, 2, 99, 4])
        assert matched == 0 and pages == []

    def test_unaligned_tail_not_cached(self):
        cache, tree = setup_cache()
        toks = [1, 2, 3, 4, 5, 6]  # 1.5 pages
        sid = fill_seq(cache, toks)
        new = tree.insert(toks, cache.seq_pages(sid))
        assert new == 1  # only the full page
        assert tree.match_prefix(toks)[0] == 4

    def test_extending_insert_reuses_prefix(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, range(8))
        tree.insert(list(range(8)), cache.seq_pages(a))
        # A longer sequence sharing the first 8 tokens.
        b = cache.new_seq(shared_pages=cache.seq_pages(a), shared_len=8)
        cache.extend(b, 8)
        new = tree.insert(list(range(8)) + [90, 91, 92, 93, 94, 95, 96, 97],
                          cache.seq_pages(b))
        assert new == 2  # only the two new pages
        matched, pages = tree.match_prefix(list(range(8)) + [90, 91, 92, 93])
        assert matched == 12

    def test_branching(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, [1, 2, 3, 4, 5, 6, 7, 8])
        tree.insert([1, 2, 3, 4, 5, 6, 7, 8], cache.seq_pages(a))
        b = fill_seq(cache, [1, 2, 3, 4, 50, 60, 70, 80])
        tree.insert([1, 2, 3, 4, 50, 60, 70, 80], cache.seq_pages(b))
        m1, _ = tree.match_prefix([1, 2, 3, 4, 5, 6, 7, 8])
        m2, _ = tree.match_prefix([1, 2, 3, 4, 50, 60, 70, 80])
        assert m1 == 8 and m2 == 8

    def test_insert_takes_reference(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, range(8))
        pages = cache.seq_pages(a)
        tree.insert(list(range(8)), pages)
        cache.free_seq(a)
        # Pages stay allocated for the cache's benefit.
        assert cache.num_used_pages == 2
        assert tree.match_prefix(list(range(8)))[0] == 8


class TestEviction:
    def test_evict_releases_pages(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, range(8))
        tree.insert(list(range(8)), cache.seq_pages(a))
        cache.free_seq(a)
        released = tree.evict(2)
        assert released == 2
        assert cache.num_used_pages == 0
        assert tree.num_cached_pages == 0

    def test_evicts_lru_first(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, [1, 2, 3, 4])
        tree.insert([1, 2, 3, 4], cache.seq_pages(a))
        b = fill_seq(cache, [9, 9, 9, 9])
        tree.insert([9, 9, 9, 9], cache.seq_pages(b))
        tree.match_prefix([1, 2, 3, 4])  # touch a → b becomes LRU
        tree.evict(1)
        assert tree.match_prefix([1, 2, 3, 4])[0] == 4
        assert tree.match_prefix([9, 9, 9, 9])[0] == 0

    def test_evict_more_than_cached(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, range(4))
        tree.insert(list(range(4)), cache.seq_pages(a))
        assert tree.evict(100) == 1

    def test_evict_empty_tree(self):
        _, tree = setup_cache()
        assert tree.evict(5) == 0


class TestAccounting:
    def test_num_cached_pages(self):
        cache, tree = setup_cache()
        a = fill_seq(cache, range(12))
        assert tree.insert(list(range(12)), cache.seq_pages(a)) == 3
        assert tree.num_cached_pages == 3
        assert tree.insert(list(range(12)), cache.seq_pages(a)) == 0  # no dupes
        assert tree.num_cached_pages == 3
