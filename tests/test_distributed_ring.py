"""Tests for ring attention (sequence-parallel ⊕ composition, §2.2)."""

import numpy as np
import pytest

from conftest import fp16
from repro.core import HeadConfig, reference_attention
from repro.distributed import RingAttention

HEADS = HeadConfig(4, 2, 16)


def data(rng, n=96):
    q = rng.standard_normal((n, 4, 16))
    k = rng.standard_normal((n, 2, 16))
    v = rng.standard_normal((n, 2, 16))
    return q, k, v


class TestNumerics:
    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4, 7])
    def test_matches_single_device_causal(self, rng, num_devices):
        q, k, v = data(rng)
        ring = RingAttention(num_devices, HEADS)
        out, _ = ring.run(q, k, v, causal=True)
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_matches_non_causal(self, rng):
        q, k, v = data(rng, n=50)
        out, _ = RingAttention(3, HEADS).run(q, k, v, causal=False)
        ref = reference_attention(q, fp16(k), fp16(v), causal=False)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_uneven_shards(self, rng):
        # n not divisible by devices.
        q, k, v = data(rng, n=97)
        out, _ = RingAttention(4, HEADS).run(q, k, v, causal=True)
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_decode_shaped_input(self, rng):
        # Fewer queries than KV (trailing-positions convention).
        q = rng.standard_normal((8, 4, 16))
        k = rng.standard_normal((64, 2, 16))
        v = rng.standard_normal((64, 2, 16))
        out, _ = RingAttention(4, HEADS).run(q, k, v, causal=True)
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_with_variant(self, rng):
        from repro.variants import make_logits_softcap

        q, k, v = data(rng, n=60)
        ring = RingAttention(3, HEADS, variant=make_logits_softcap(5.0))
        out, _ = ring.run(q, k, v, causal=True)
        kd, vd = fp16(k), fp16(v)
        sm = 1 / np.sqrt(16)
        ref = np.zeros_like(q)
        pos = np.arange(60)
        for h in range(4):
            s = 5 * np.tanh((q[:, h] @ kd[:, h // 2].T) * sm / 5)
            s = np.where(pos[:, None] >= pos[None, :], s, -np.inf)
            p = np.exp(s - s.max(axis=1, keepdims=True))
            ref[:, h] = (p / p.sum(axis=1, keepdims=True)) @ vd[:, h // 2]
        np.testing.assert_allclose(out, ref, atol=1e-6)


class TestCausalSkip:
    def test_future_shards_skipped(self, rng):
        q, k, v = data(rng, n=96)
        _, rep = RingAttention(4, HEADS).run(q, k, v, causal=True)
        # Upper-triangular (device, shard) pairs are skipped: 6 of 16.
        assert rep.skipped_pairs == 6

    def test_non_causal_skips_nothing(self, rng):
        q, k, v = data(rng, n=96)
        _, rep = RingAttention(4, HEADS).run(q, k, v, causal=False)
        assert rep.skipped_pairs == 0

    def test_skip_reduces_device_work_not_step_makespan(self, rng):
        """The plain ring's causal skip saves device-seconds, but each step
        still waits for its busiest device (the imbalance zigzag ring
        attention fixes)."""
        q, k, v = data(rng, n=96)
        _, causal = RingAttention(4, HEADS).run(q, k, v, causal=True)
        _, full = RingAttention(4, HEADS).run(q, k, v, causal=False)
        assert causal.device_seconds < full.device_seconds
        assert causal.compute_time == pytest.approx(full.compute_time, rel=0.01)


class TestCostModel:
    def test_comm_scales_with_shard_size(self, rng):
        q, k, v = data(rng, n=96)
        _, small = RingAttention(4, HEADS).run(q, k, v)
        q2, k2, v2 = data(rng, n=192)
        _, big = RingAttention(4, HEADS).run(q2, k2, v2)
        assert big.comm_time > small.comm_time

    def test_slow_link_makes_comm_bound(self, rng):
        q, k, v = data(rng, n=96)
        _, rep = RingAttention(4, HEADS, link_bandwidth=1e6).run(q, k, v)
        assert rep.comm_bound
        assert rep.makespan == pytest.approx(rep.comm_time)

    def test_single_device_no_comm(self, rng):
        q, k, v = data(rng, n=64)
        _, rep = RingAttention(1, HEADS).run(q, k, v)
        assert rep.comm_time == 0.0
        assert rep.steps == 1

    def test_overlap_bound(self, rng):
        q, k, v = data(rng, n=96)
        _, rep = RingAttention(4, HEADS).run(q, k, v)
        assert rep.makespan == pytest.approx(max(rep.compute_time, rep.comm_time))


class TestValidation:
    def test_num_devices_positive(self):
        with pytest.raises(ValueError):
            RingAttention(0, HEADS)


class TestZigzag:
    @pytest.mark.parametrize("num_devices", [2, 4, 5])
    def test_numerics_match_contiguous(self, rng, num_devices):
        q, k, v = data(rng, n=96)
        a, _ = RingAttention(num_devices, HEADS, shard_strategy="zigzag").run(
            q, k, v, causal=True
        )
        b, _ = RingAttention(num_devices, HEADS).run(q, k, v, causal=True)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_zigzag_balances_causal_steps(self, rng):
        """Contiguous shards leave early devices idle on causal steps
        (worst step = the last device's full shard); zigzag splits each
        device's work across the triangle, shrinking the per-step max at
        the cost of extra per-pair launch overhead."""
        q, k, v = data(rng, n=4096)
        _, zig = RingAttention(4, HEADS, shard_strategy="zigzag").run(q, k, v, causal=True)
        _, con = RingAttention(4, HEADS).run(q, k, v, causal=True)
        assert zig.compute_time < 0.95 * con.compute_time
        # Total device work is comparable (zigzag moves, not removes, work;
        # the overhead of twice as many ranges shows up here).
        assert zig.device_seconds < 1.5 * con.device_seconds

    def test_non_causal_no_benefit(self, rng):
        q, k, v = data(rng, n=2048)
        _, zig = RingAttention(4, HEADS, shard_strategy="zigzag").run(q, k, v, causal=False)
        _, con = RingAttention(4, HEADS).run(q, k, v, causal=False)
        assert zig.compute_time == pytest.approx(con.compute_time, rel=0.25)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="shard_strategy"):
            RingAttention(2, HEADS, shard_strategy="spiral")
