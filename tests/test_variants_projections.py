"""Tests for fused normalization / projection variants (§3.2.3)."""

import numpy as np
import pytest

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, reference_attention
from repro.utils.dtypes import StorageDType
from repro.variants import make_fused_kv_projection, make_qk_norm

HEADS = HeadConfig(4, 2, 16)


def run_wrapper(variant, q, k_pool, v_pool, kv_len, qo_len, kv_dtype=StorageDType.FP32):
    mapping, _ = make_paged_mapping([kv_len], [qo_len], 8)
    w = BatchAttentionWrapper(
        variant, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=qo_len, kv_dtype=kv_dtype
    )
    w.plan(mapping)
    out, _, _ = w.run(q, k_pool, v_pool)
    return out


class TestQKNorm:
    def test_matches_explicit_normalization(self, rng):
        n = 40
        q = rng.standard_normal((n, 4, 16))
        kp = rng.standard_normal((n, 2, 16)).astype(np.float32)
        vp = rng.standard_normal((n, 2, 16)).astype(np.float32)
        out = run_wrapper(make_qk_norm(), q, kp, vp, n, n)

        eps = 1e-6
        qn = q / (np.linalg.norm(q, axis=-1, keepdims=True) + eps)
        kn = kp / (np.linalg.norm(kp, axis=-1, keepdims=True) + eps)
        ref = reference_attention(qn, kn, vp, causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            make_qk_norm(eps=0.0)


class TestFusedKVProjection:
    def test_matches_explicit_up_projection(self, rng):
        """Latent cache + in-kernel up-projection == dense cache attention."""
        n, d_latent = 30, 8
        w_k = rng.standard_normal((2, d_latent, 16))
        w_v = rng.standard_normal((2, d_latent, 16))
        latent_k = rng.standard_normal((n, 2, d_latent)).astype(np.float32)
        latent_v = rng.standard_normal((n, 2, d_latent)).astype(np.float32)
        q = rng.standard_normal((1, 4, 16))

        variant = make_fused_kv_projection(w_k, w_v)
        out = run_wrapper(variant, q, latent_k, latent_v, n, 1)

        # Explicit pipeline: up-project the cache, then vanilla attention.
        k_full = np.einsum("nhl,hld->nhd", latent_k.astype(np.float64), w_k)
        v_full = np.einsum("nhl,hld->nhd", latent_v.astype(np.float64), w_v)
        ref = reference_attention(q, k_full, v_full, causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_prefill_with_chunking(self, rng):
        n, d_latent = 2200, 8
        w_k = rng.standard_normal((2, d_latent, 16))
        w_v = rng.standard_normal((2, d_latent, 16))
        latent_k = rng.standard_normal((n, 2, d_latent)).astype(np.float32)
        latent_v = rng.standard_normal((n, 2, d_latent)).astype(np.float32)
        q = rng.standard_normal((1, 4, 16))
        variant = make_fused_kv_projection(w_k, w_v)
        out = run_wrapper(variant, q, latent_k, latent_v, n, 1)
        k_full = np.einsum("nhl,hld->nhd", latent_k.astype(np.float64), w_k)
        v_full = np.einsum("nhl,hld->nhd", latent_v.astype(np.float64), w_v)
        ref = reference_attention(q, k_full, v_full, causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            make_fused_kv_projection(np.zeros((2, 8)), np.zeros((2, 8)))
        with pytest.raises(ValueError):
            make_fused_kv_projection(np.zeros((2, 8, 16)), np.zeros((2, 4, 16)))
