"""Randomized end-to-end sweep: wrapper vs dense oracle over many configs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.utils.dtypes import StorageDType, round_to_storage


@given(
    st.integers(0, 2**31 - 1),                 # data seed
    st.lists(st.integers(1, 600), min_size=1, max_size=5),   # kv lens
    st.sampled_from([1, 2, 4]),                # GQA group size
    st.sampled_from([1, 4, 16]),               # page size
    st.booleans(),                             # decode vs prefill
    st.booleans(),                             # fuse head groups
)
@settings(max_examples=40, deadline=None)
def test_wrapper_matches_oracle_on_random_configs(
    seed, kv_lens, group, page_size, decode, fuse
):
    rng = np.random.default_rng(seed)
    heads = HeadConfig(2 * group, 2, 16)
    qo_lens = [1] * len(kv_lens) if decode else [min(k, 32) for k in kv_lens]
    mapping, slots = make_paged_mapping(kv_lens, qo_lens, page_size)
    total_q = mapping.total_qo
    q = rng.standard_normal((total_q, heads.num_qo_heads, 16))
    kp = rng.standard_normal((slots, 2, 16))
    vp = rng.standard_normal((slots, 2, 16))

    w = BatchAttentionWrapper(
        VANILLA, heads, WorkspaceBuffer(1 << 27),
        avg_qo_len=float(np.mean(qo_lens)), fuse_head_groups=fuse,
    )
    w.plan(mapping)
    out, _, _ = w.run(q, kp, vp)

    for r in range(mapping.num_groups):
        sl = mapping.kv.slot_indices(r)
        kr = round_to_storage(kp[sl], StorageDType.FP16).astype(np.float64)
        vr = round_to_storage(vp[sl], StorageDType.FP16).astype(np.float64)
        s0, s1 = mapping.qo_indptr[r], mapping.qo_indptr[r + 1]
        ref = reference_attention(q[s0:s1], kr, vr, causal=True)
        np.testing.assert_allclose(out[s0:s1], ref, atol=2e-5)
