"""Unit tests for the serving attention backends."""

import pytest

from conftest import make_paged_mapping
from repro.core import HeadConfig
from repro.gpu import A100_40G, H100_80G
from repro.serving import FlashInferBackend, TritonBackend, TRTLLMBackend

HEADS = HeadConfig(32, 8, 128)


class TestFlashInferBackend:
    def test_attention_time_monotone_in_kv(self):
        be = FlashInferBackend(HEADS, H100_80G)
        short, _ = make_paged_mapping([256] * 8, [1] * 8, 16)
        long, _ = make_paged_mapping([4096] * 8, [1] * 8, 16)
        assert be.attention_time(long, decode=True) > be.attention_time(short, decode=True)

    def test_wrappers_cached_per_phase(self):
        be = FlashInferBackend(HEADS, H100_80G)
        m, _ = make_paged_mapping([256] * 4, [1] * 4, 16)
        be.attention_time(m, decode=True)
        w1 = be._wrappers["decode"]
        be.attention_time(m, decode=True)
        assert be._wrappers["decode"] is w1

    def test_prefill_and_decode_use_distinct_tiles(self):
        be = FlashInferBackend(HEADS, H100_80G)
        d, _ = make_paged_mapping([256] * 4, [1] * 4, 16)
        p, _ = make_paged_mapping([256] * 4, [256] * 4, 16)
        be.attention_time(d, decode=True)
        be.attention_time(p, decode=False)
        assert be._wrappers["decode"].q_tile < be._wrappers["prefill"].q_tile

    def test_composable_wrapper_cached_per_format_count(self):
        from repro.sparse import ComposableFormat

        be = FlashInferBackend(HEADS, H100_80G, composable=True)
        m1, _ = make_paged_mapping([256] * 4, [1] * 4, 16)
        be.attention_time(ComposableFormat.single(m1), decode=True)
        cw = be._composable_wrappers["decode_1"]
        m2, _ = make_paged_mapping([512] * 4, [1] * 4, 16)
        be.attention_time(ComposableFormat.single(m2), decode=True)
        assert be._composable_wrappers["decode_1"] is cw


class TestBackendOrdering:
    def test_triton_attention_slower(self):
        mapping, _ = make_paged_mapping([2048] * 16, [1] * 16, 16)
        fi = FlashInferBackend(HEADS, A100_40G).attention_time(mapping, decode=True)
        tr = TritonBackend(HEADS, A100_40G).attention_time(mapping, decode=True)
        assert tr > 1.3 * fi

    def test_trtllm_attention_matches_flashinfer(self):
        mapping, _ = make_paged_mapping([2048] * 16, [1] * 16, 16)
        fi = FlashInferBackend(HEADS, A100_40G).attention_time(mapping, decode=True)
        trt = TRTLLMBackend(HEADS, A100_40G).attention_time(mapping, decode=True)
        assert trt == pytest.approx(fi, rel=0.05)

    def test_trtllm_better_stack_constants(self):
        fi = FlashInferBackend(HEADS, A100_40G).characteristics
        trt = TRTLLMBackend(HEADS, A100_40G).characteristics
        assert trt.gemm_efficiency > fi.gemm_efficiency
        assert trt.allreduce_efficiency > fi.allreduce_efficiency
