"""Disaggregated prefill/decode serving: role pools, live KV handoff over
priced links, token-exact decode resumption, and composition with the
prefix cache, failover and checkpointing."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    DisaggPolicy,
    FailoverConfig,
    MigrationChecksumError,
    MigrationError,
    ReplicaFailure,
    expected_tokens,
    parse_roles,
)
from repro.faults import FaultPlan
from repro.gpu import H100_80G
from repro.serving import (
    MIXED_LONG_PROMPT_THRESHOLD,
    EngineConfig,
    LLAMA_3_1_8B,
    RequestTrace,
    ServingMetrics,
    mixed_disagg_workload,
    shared_prefix_workload,
)

MODEL = LLAMA_3_1_8B


def _cluster(roles="prefill=1,decode=1", dp=2, engine=None, **kwargs):
    return ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(dp=dp, roles=roles,
                      engine=engine or EngineConfig(max_running=64),
                      **{k: kwargs.pop(k) for k in list(kwargs)
                         if k in ("failover", "topology", "checkpoint_every")}),
        **kwargs,
    )


def _workload(n=10, rate=120.0, seed=3):
    return mixed_disagg_workload(n, rate, seed=seed)


# -- role parsing --------------------------------------------------------------


def test_parse_roles_spellings_agree():
    want = ((0,), (1, 2))
    assert parse_roles("prefill=1,decode=2", 3) == want
    assert parse_roles({"prefill": 1, "decode": 2}, 3) == want
    assert parse_roles({"prefill": [0], "decode": [1, 2]}, 3) == want
    # Explicit ids don't have to be contiguous.
    assert parse_roles({"prefill": [1], "decode": [0, 2]}, 3) == ((1,), (0, 2))


@pytest.mark.parametrize("roles, dp, match", [
    ("prefill=2,decode=2", 3, "dp=3"),
    ("prefill=0,decode=3", 3, "at least one"),
    ({"prefill": [0, 1], "decode": [1, 2]}, 3, "overlap"),
    ({"prefill": [0], "decode": [2]}, 3, "cover every replica"),
    ({"prefill": [], "decode": [0, 1]}, 2, "at least one"),
    ("prefill=1;decode=1", 2, "bad roles spec"),
    ({"prefill": 1, "dekode": 1}, 2, "exactly the"),
])
def test_parse_roles_rejects_bad_specs(roles, dp, match):
    with pytest.raises(ValueError, match=match):
        parse_roles(roles, dp)


# -- routing policy ------------------------------------------------------------


def test_disagg_policy_routes_prefill_and_pairs_decode():
    p = DisaggPolicy()
    p.reset(4)
    p.bind_roles((0, 1), (2, 3))
    loads = [5.0, 1.0, 7.0, 2.0]
    # Prompt placement: least-loaded within the prefill pool only.
    assert p.route(None, 0.0, loads) == 1
    assert p.choose(None, 0.0, loads) == 1
    # KV pairing: least-loaded within the decode pool only.
    assert p.pair(None, 0.0, loads) == 3


def test_disagg_policy_respects_health_mask():
    p = DisaggPolicy()
    p.reset(4)
    p.bind_roles((0, 1), (2, 3))
    loads = [5.0, 1.0, 7.0, 2.0]
    healthy = [True, False, True, False]
    assert p.route(None, 0.0, loads, healthy) == 0
    assert p.pair(None, 0.0, loads, healthy) == 2
    # Whole pool unhealthy: fall back to the pool, never the other role.
    assert p.route(None, 0.0, loads, [False, False, True, True]) == 1
    assert p.pair(None, 0.0, loads, [True, True, False, False]) == 3


def test_disagg_policy_requires_bound_roles():
    p = DisaggPolicy()
    p.reset(2)
    with pytest.raises(ValueError, match="bind_roles"):
        p.route(None, 0.0, [0.0, 0.0])
    with pytest.raises(ValueError, match="bind_roles"):
        p.pair(None, 0.0, [0.0, 0.0])


def test_cluster_validates_router_role_combinations():
    engine = EngineConfig(max_running=64)
    # roles + default router auto-upgrades to the disagg policy.
    cluster = _cluster()
    assert cluster.router.name == "disagg"
    assert cluster.roles == ((0,), (1,))
    # roles + an incompatible explicit router refuses.
    with pytest.raises(ValueError, match="disagg"):
        ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(dp=2, roles="prefill=1,decode=1",
                          router="least-loaded", engine=engine),
        )
    # The disagg router without roles refuses too.
    with pytest.raises(ValueError, match="roles"):
        ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(dp=2, router="disagg", engine=engine),
        )


# -- end-to-end token exactness ------------------------------------------------


def test_disagg_is_token_exact_with_nonzero_handoff_traffic():
    requests = _workload()
    cluster = _cluster()
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))
    s = cm.summary()
    assert s["disagg_prefill_replicas"] == 1.0
    assert s["disagg_decode_replicas"] == 1.0
    # Every request's KV crossed the wire as priced handoff traffic.
    assert s["handoff_requests"] == float(len(requests))
    assert s["handoff_pages"] > 0
    assert s["handoff_chunks"] >= s["handoff_requests"]
    assert s["handoff_bytes"] > 0
    assert s["handoff_retries"] == 0
    assert s["link_handoff_bytes"] == pytest.approx(s["handoff_bytes"])
    assert s["handoff_transfer_s"] > 0
    # The decode pool served every stream; the prefill pool decoded none.
    assert s["replica0_requests"] == 0.0
    assert s["replica1_requests"] == float(len(requests))
    # Percentile roll-ups ride along on cluster summaries (satellite 2).
    for key in ("cluster_p50_ttft", "cluster_p95_ttft", "cluster_p99_ttft",
                "cluster_p50_itl", "cluster_p95_itl", "cluster_p99_itl"):
        assert np.isfinite(s[key])


def test_disagg_scales_to_wider_pools():
    requests = _workload(n=14, seed=9)
    cluster = _cluster(roles="prefill=2,decode=2", dp=4)
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))
    s = cm.summary()
    assert s["disagg_prefill_replicas"] == 2.0
    assert s["disagg_decode_replicas"] == 2.0
    # Both decode replicas took streams (least-loaded pairing spreads).
    assert s["replica2_requests"] > 0
    assert s["replica3_requests"] > 0
    assert s["replica0_requests"] == s["replica1_requests"] == 0.0


def test_disagg_chunked_prefill_stays_token_exact():
    requests = _workload(n=8, seed=5)
    engine = EngineConfig(max_running=64, chunked_prefill=True,
                          composable=True, prefill_chunk_size=256)
    cluster = _cluster(engine=engine)
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))


def test_disagg_without_roles_is_inert():
    requests = _workload(n=6, seed=2)
    cluster = ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(dp=2, router="least-loaded",
                      engine=EngineConfig(max_running=64)),
    )
    cm = cluster.run(requests)
    s = cm.summary()
    # No role pools → no handoff keys, no disagg counters, plain router.
    assert cluster.roles is None
    assert not any(k.startswith(("handoff_", "disagg_")) for k in s)
    assert "link_handoff_bytes" not in s


# -- link faults and tamper ----------------------------------------------------


def test_handoff_retries_link_faults_and_stays_exact():
    requests = _workload(n=8, seed=4)
    cluster = _cluster(
        fault_plan=FaultPlan(schedules={"link": [0, 1]}),
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))
    s = cm.summary()
    # The first chunk's two faulted attempts retried with backoff; the
    # wasted attempts still show up as link traffic beyond the payload.
    assert s["handoff_retries"] == 2.0
    assert s["link_handoff_bytes"] > s["handoff_bytes"]


def test_handoff_exhausted_retries_raise():
    requests = _workload(n=4, seed=4)
    cluster = _cluster(
        failover=FailoverConfig(max_retries=2),
        fault_plan=FaultPlan(schedules={"link": range(64)}),
    )
    with pytest.raises(MigrationError, match="handoff .*all 3 transfer"):
        cluster.run(requests)


def test_handoff_refuses_checksum_tamper():
    requests = _workload(n=4, seed=4)
    cluster = _cluster()
    cluster._corrupt_handoffs = [0]
    with pytest.raises(MigrationChecksumError, match="refusing to import"):
        cluster.run(requests)


# -- composition: prefix cache, failover, checkpoints --------------------------


def test_prefix_cache_hits_skip_already_shipped_pages():
    requests = shared_prefix_workload(12, 150.0, seed=6)
    engine = EngineConfig(max_running=64, chunked_prefill=True,
                          composable=True, prefix_cache=True)
    cluster = _cluster(engine=engine)
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert divergent == 0 and compared == len(requests)
    s = cm.summary()
    # Later handoffs of an already-shipped prefix group ship only the
    # suffix pages: the radix tree on the decode side holds the rest.
    assert s["handoff_pages_skipped"] > 0
    assert s["handoff_requests"] == float(len(requests))


def test_prefill_replica_failover_keeps_handoffs_token_exact():
    requests = _workload(n=10, seed=7)
    cluster = _cluster(
        roles="prefill=2,decode=1", dp=3,
        failover=FailoverConfig(),
        replica_failures={0: ReplicaFailure(3, "crash")},
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))
    s = cm.summary()
    assert s["handoff_requests"] == float(len(requests))
    # The takeover stayed inside the prefill pool: replica 1 (not the
    # decode replica) carried the dead replica's work.
    assert cm.failover is not None
    for m in cm.failover.migrations:
        assert m.target == 1


def test_prefill_replica_crash_harness_dedups_refired_handoffs():
    requests = _workload(n=8, seed=8)
    cluster = _cluster(
        checkpoint_every=3,
        replica_failures={0: ReplicaFailure(3, "crash", "boundary")},
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, len(requests))
    s = cm.summary()
    # Re-executed spawns after the restore dedup by (rid, gen): every
    # request still ships exactly once.
    assert s["handoff_requests"] == float(len(requests))
    assert cm.crash_reports[0].crashes == 1


def test_world_carries_role_only_when_set():
    from repro.core import HeadConfig
    from repro.serving import FlashInferBackend, ServingEngine

    heads = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)
    engine = ServingEngine(
        MODEL, FlashInferBackend(heads, H100_80G), H100_80G,
        EngineConfig(max_running=8),
    )
    # Plain engines keep the exact pre-disagg world shape.
    assert engine.world == {"tp": 1, "dp": 1, "replica": 0}
    engine.role = "prefill"
    assert engine.world == {"tp": 1, "dp": 1, "replica": 0, "role": "prefill"}


# -- percentile metrics (satellite 2) ------------------------------------------


def test_serving_metrics_percentile_summary_keys():
    m = ServingMetrics(total_time=1.0)
    for i in range(20):
        m.add(RequestTrace(
            arrival=0.0, first_token_time=0.01 * (i + 1),
            token_times=[0.01 * (i + 1) + 0.002 * (j + 1) for j in range(5)],
            req_id=i,
        ))
    s = m.summary()
    ttfts = np.asarray([t.ttft for t in m.traces])
    itls = np.concatenate([t.itls for t in m.traces])
    for q in (50, 95, 99):
        assert s[f"p{q}_ttft"] == pytest.approx(np.percentile(ttfts, q))
        assert s[f"p{q}_itl"] == pytest.approx(np.percentile(itls, q))
    assert s["p50_ttft"] == pytest.approx(m.median_ttft())
    assert s["p99_itl"] == pytest.approx(m.p99_itl())


def test_workload_classes_recoverable_from_prompt_len():
    requests = _workload(n=64, seed=1)
    short = [r for r in requests if r.prompt_len < MIXED_LONG_PROMPT_THRESHOLD]
    long_ = [r for r in requests if r.prompt_len >= MIXED_LONG_PROMPT_THRESHOLD]
    assert short and long_
    assert max(r.prompt_len for r in short) <= 128
    assert min(r.prompt_len for r in long_) >= 2048
    with pytest.raises(ValueError, match="straddle"):
        mixed_disagg_workload(4, 10.0, chatty_prompt_hi=600)


# -- CLI smoke (the disagg-smoke CI contract) ----------------------------------


def test_cli_serve_disagg_prints_greppable_counters(capsys):
    from repro.__main__ import main

    rc = main([
        "serve", "--disagg", "prefill=1,decode=1",
        "--requests", "8", "--rate", "80", "--seed", "3",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "token_divergence=0 " in out
    assert "handoff_pages=" in out and "handoff_pages=0" not in out
    assert "link_handoff_bytes=" in out
    assert "p95_itl=" in out and "p95_ttft=" in out
