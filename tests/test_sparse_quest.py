"""Tests for Quest-style query-aware page selection."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.sparse import PageSummaryStore, quest_mapping, select_pages

HEADS = HeadConfig(4, 2, 16)
PAGE = 8


def build(kv_lens, rng, dim=16, heads=2):
    mapping, slots = make_paged_mapping(kv_lens, [1] * len(kv_lens), PAGE)
    k_pool = rng.standard_normal((slots, heads, dim)).astype(np.float32)
    v_pool = rng.standard_normal((slots, heads, dim)).astype(np.float32)
    store = PageSummaryStore(slots // PAGE, PAGE, heads, dim)
    for r in range(mapping.num_groups):
        store.rebuild_from_pool(k_pool, mapping.kv.group_blocks(r), int(kv_lens[r]))
    return mapping, k_pool, v_pool, store


class TestSummaries:
    def test_minmax_bounds_actual_keys(self, rng):
        mapping, k_pool, _, store = build([64], rng)
        for page in mapping.kv.group_blocks(0):
            seg = k_pool[page * PAGE : (page + 1) * PAGE]
            assert np.all(store.k_min[page] <= seg.min(axis=0) + 1e-6)
            assert np.all(store.k_max[page] >= seg.max(axis=0) - 1e-6)

    def test_score_is_upper_bound(self, rng):
        """The page bound must dominate every actual per-head logit sum."""
        mapping, k_pool, _, store = build([64], rng)
        q = rng.standard_normal((4, 16)).astype(np.float32)
        pages = mapping.kv.group_blocks(0)
        bounds = store.score_bound(q, pages)
        g = 2  # 4 qo heads / 2 kv heads
        for i, page in enumerate(pages):
            seg = k_pool[page * PAGE : (page + 1) * PAGE]  # (P, Hkv, D)
            actual = 0.0
            for h in range(4):
                actual += (q[h] @ seg[:, h // g].T).max()
            assert bounds[i] >= actual - 1e-4

    def test_incremental_update_matches_rebuild(self, rng):
        store_a = PageSummaryStore(4, PAGE, 2, 16)
        store_b = PageSummaryStore(4, PAGE, 2, 16)
        k = rng.standard_normal((PAGE, 2, 16)).astype(np.float32)
        store_a.update(0, k[:3])
        store_a.update(0, k[3:])
        store_b.rebuild_from_pool(k, [0], PAGE)
        np.testing.assert_allclose(store_a.k_min[0], store_b.k_min[0])
        np.testing.assert_allclose(store_a.k_max[0], store_b.k_max[0])

    def test_overflow_rejected(self, rng):
        store = PageSummaryStore(1, PAGE, 2, 16)
        store.update(0, np.zeros((PAGE, 2, 16)))
        with pytest.raises(ValueError, match="page_size"):
            store.update(0, np.zeros((1, 2, 16)))


class TestSelection:
    def test_budget_covers_all(self, rng):
        mapping, _, _, store = build([64], rng)
        q = rng.standard_normal((4, 16))
        sel = select_pages(q, mapping.kv.group_blocks(0), store, page_budget=100)
        assert np.array_equal(sel, np.arange(8))

    def test_sinks_and_recent_always_kept(self, rng):
        mapping, _, _, store = build([64], rng)
        q = rng.standard_normal((4, 16))
        sel = select_pages(q, mapping.kv.group_blocks(0), store, page_budget=3,
                           num_sink_pages=1, num_recent_pages=1)
        assert 0 in sel and 7 in sel
        assert len(sel) == 3

    def test_selects_hot_page(self, rng):
        """A page built to maximize q·k must be chosen."""
        mapping, k_pool, _, store = build([64], rng)
        q = np.ones((4, 16))
        hot = mapping.kv.group_blocks(0)[4]
        k_pool[hot * PAGE : (hot + 1) * PAGE] = 10.0  # aligned with q
        store.rebuild_from_pool(k_pool, mapping.kv.group_blocks(0), 64)
        sel = select_pages(q, mapping.kv.group_blocks(0), store, page_budget=3)
        assert 4 in sel


class TestQuestMapping:
    def test_full_budget_equals_full_attention(self, rng):
        mapping, k_pool, v_pool, store = build([64, 40], rng)
        q = rng.standard_normal((2, 4, 16))
        pruned = quest_mapping(mapping.kv, q, store, page_budget=100)
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(pruned)
        out, _, _ = w.run(q, k_pool, v_pool)
        for r in range(2):
            sl = mapping.kv.slot_indices(r)
            ref = reference_attention(q[r : r + 1], fp16(k_pool[sl]), fp16(v_pool[sl]),
                                      causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)

    def test_partial_last_page_length_preserved(self, rng):
        mapping, _, _, store = build([61], rng)  # last page holds 5 slots
        q = rng.standard_normal((1, 4, 16))
        pruned = quest_mapping(mapping.kv, q, store, page_budget=3)
        # 3 pages selected including the partial recent page: 2·8 + 5.
        assert pruned.kv.kv_lens[0] == 21

    def test_pruned_output_close_when_mass_concentrated(self, rng):
        """If attention mass lives on a few pages, Quest's pruned output
        approximates full attention."""
        mapping, k_pool, v_pool, store = build([128], rng)
        k_pool *= 0.3  # background keys carry little attention mass
        q = rng.standard_normal((1, 4, 16))
        # Concentrate: one hot page aligned with every query head of each
        # KV-head group, so its logits dominate for all heads.
        hot = mapping.kv.group_blocks(0)[7]
        for h in range(2):
            k_pool[hot * PAGE : (hot + 1) * PAGE, h] = 4.0 * (
                q[0, 2 * h] + q[0, 2 * h + 1]
            )
        store.rebuild_from_pool(k_pool, mapping.kv.group_blocks(0), 128)
        pruned = quest_mapping(mapping.kv, q, store, page_budget=4)

        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(pruned)
        out, _, _ = w.run(q, k_pool, v_pool)
        sl = mapping.kv.slot_indices(0)
        full = reference_attention(q, fp16(k_pool[sl]), fp16(v_pool[sl]), causal=True)
        assert np.abs(out - full).max() < 0.05

    def test_traffic_scales_with_budget(self, rng):
        mapping, _, _, store = build([512] * 4, rng)
        q = rng.standard_normal((4, 4, 16))
        reports = {}
        for budget in (8, 64):
            pruned = quest_mapping(mapping.kv, q, store, page_budget=budget)
            w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27),
                                      avg_qo_len=1)
            w.plan(pruned)
            _, _, rep = w.run(None, compute=False)
            reports[budget] = rep.total_bytes
        assert reports[8] < 0.25 * reports[64]

    def test_batch_size_mismatch(self, rng):
        mapping, _, _, store = build([64], rng)
        with pytest.raises(ValueError, match="requests"):
            quest_mapping(mapping.kv, np.zeros((3, 4, 16)), store, 2)
