"""Tests for the automatic radix prefix cache in the engine pipeline.

The load-bearing property (ISSUE acceptance): serving a shared-prefix
workload with ``EngineConfig.prefix_cache`` on skips the cached prompt
prefix at prefill — measurably less prefill work — while staying
byte-identical to a cold-cache run, across eviction pressure, crash
recovery, and the cluster's cache-aware router.
"""

import pytest

from repro.core import HeadConfig
from repro.faults import ResilienceConfig
from repro.gpu import H100_80G
from repro.kvcache import PagedKVCache, RadixTree
from repro.serving import (
    CheckpointConfig,
    CheckpointStore,
    CrashHarness,
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
    shared_prefix_workload,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def engine(prefix_cache=True, pool_pages=1 << 14, chunked=False,
           composable=False, **kwargs):
    cfg = EngineConfig(
        num_pool_pages=pool_pages, prefix_cache=prefix_cache,
        chunked_prefill=chunked, prefill_chunk_size=2048,
        composable=composable,
    )
    return ServingEngine(
        MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg, **kwargs
    )


def shared_requests(n=6, prefix=4096, suffix=64, out=4, gap=0.4, group=7):
    return [
        Request(i * gap, prefix + suffix, out, prefix_group=group,
                prefix_len=prefix)
        for i in range(n)
    ]


def tokens_by_stream(metrics):
    return {
        (t.req_id, t.gen_index): t.tokens
        for t in metrics.traces if t.tokens is not None
    }


# -- RadixTree under pool pressure --------------------------------------------


def setup_cache(num_pages=16, page_size=4):
    cache = PagedKVCache(num_pages, page_size, 1, 4)
    return cache, RadixTree(cache)


def cached_seq(cache, tree, tokens):
    """Insert ``tokens`` and drop the sequence, leaving only the tree's hold."""
    sid = cache.new_seq()
    cache.extend(sid, len(tokens))
    tree.insert(tokens, cache.seq_pages(sid))
    cache.free_seq(sid)


class TestEvictUntil:
    def test_evicts_lru_leaves_until_target(self):
        cache, tree = setup_cache()
        cached_seq(cache, tree, [1, 2, 3, 4])
        cached_seq(cache, tree, [5, 6, 7, 8])
        tree.match_prefix([1, 2, 3, 4])  # touch → [5..8] is now LRU
        free_before = cache.num_free_pages
        assert tree.evict_until(free_before + 1) == 1
        # The LRU leaf went first; the touched one survives.
        assert tree.match_prefix([5, 6, 7, 8])[0] == 0
        assert tree.match_prefix([1, 2, 3, 4])[0] == 4

    def test_pinned_pages_do_not_free(self):
        """Pages still referenced by an in-flight sequence leave the tree
        on eviction but stay allocated — and count as freed 0."""
        cache, tree = setup_cache()
        sid = cache.new_seq()
        cache.extend(sid, 4)
        tree.insert([1, 2, 3, 4], cache.seq_pages(sid))  # sid still live
        assert tree.evictable_pages() == 0
        freed = tree.evict_until(cache.num_free_pages + 1)
        assert freed == 0
        assert tree.num_cached_pages == 0  # dropped from the tree anyway
        assert cache.num_used_pages == 1  # but pinned by the live sequence

    def test_evictable_counts_only_tree_held_pages(self):
        cache, tree = setup_cache()
        cached_seq(cache, tree, [1, 2, 3, 4])  # tree is the last holder
        sid = cache.new_seq()
        cache.extend(sid, 4)
        tree.insert([9, 9, 9, 9], cache.seq_pages(sid))  # pinned by sid
        assert tree.evictable_pages() == 1

    def test_insert_after_evict_reuses_pool(self):
        """Eviction must actually return capacity: fill the pool with
        cached prefixes, evict, and cache a fresh sequence in the hole."""
        cache, tree = setup_cache(num_pages=4)
        cached_seq(cache, tree, [1, 2, 3, 4, 5, 6, 7, 8])
        cached_seq(cache, tree, [10, 11, 12, 13, 14, 15, 16, 17])
        assert cache.num_free_pages == 0
        assert tree.evict_until(2) == 2
        cached_seq(cache, tree, [90, 91, 92, 93, 94, 95, 96, 97])
        assert tree.match_prefix([90, 91, 92, 93, 94, 95, 96, 97])[0] == 8

    def test_stops_on_empty_tree(self):
        cache, tree = setup_cache()
        assert tree.evict_until(cache.num_free_pages + 5) == 0


class TestSnapshotRoundtrip:
    def test_export_import_preserves_matches_and_lru(self):
        cache, tree = setup_cache()
        cached_seq(cache, tree, [1, 2, 3, 4, 5, 6, 7, 8])
        cached_seq(cache, tree, [1, 2, 3, 4, 50, 60, 70, 80])  # branches
        tree.match_prefix([1, 2, 3, 4, 5, 6, 7, 8])  # LRU touch
        state = tree.export_state()
        rebuilt = RadixTree.from_state(cache, state)
        assert rebuilt.num_cached_pages == tree.num_cached_pages
        assert rebuilt.match_prefix([1, 2, 3, 4, 5, 6, 7, 8])[0] == 8
        assert rebuilt.match_prefix([1, 2, 3, 4, 50, 60, 70, 80])[0] == 8
        # No re-retain: refcounts unchanged, so evicting everything from
        # the rebuilt tree returns the pool to fully free.
        rebuilt.evict_until(cache.num_pages)
        assert cache.num_free_pages == cache.num_pages


# -- the engine path ----------------------------------------------------------


class TestEngineRadixCache:
    def test_hits_recorded_and_prefill_skipped(self):
        m = engine().run(shared_requests())
        assert len(m.traces) == 6
        assert m.radix_hit_prompts == 5  # all but the first request
        # Each follower skips the page-aligned 4096-token prefix.
        assert m.radix_hit_tokens == 5 * 4096
        stats = m.prefix_stats
        assert stats is not None
        assert stats["radix_hit_tokens"] == 5 * 4096
        assert stats["prefill_flops_saved"] > 0

    def test_no_group_annotation_needed(self):
        """The tree discovers sharing from token ids alone: requests with
        the same rid-independent prefix hit without ``prefix_group`` —
        here every prompt is unique, so there are no hits, but identical
        prompts (same rid) in a fork do share."""
        reqs = [Request(i * 0.4, 2048, 4) for i in range(4)]
        m = engine().run(reqs)
        assert m.radix_hit_tokens == 0  # distinct prompts: nothing shared
        assert len(m.traces) == 4

    def test_token_exact_vs_cold_cache(self):
        reqs = shared_requests(n=8)
        cold = engine(prefix_cache=False, resilience=ResilienceConfig()).run(reqs)
        warm = engine(resilience=ResilienceConfig()).run(reqs)
        expected = tokens_by_stream(cold)
        got = tokens_by_stream(warm)
        assert got.keys() == expected.keys()
        assert all(got[k] == expected[k] for k in expected)
        assert warm.radix_hit_tokens > 0

    def test_token_exact_with_chunked_prefill_and_cascade(self):
        # Tight arrivals + long decodes: streams sharing the prefix run
        # concurrently, so decode steps can peel it as a cascade level.
        reqs = shared_requests(n=8, out=48, gap=0.02)
        cold = engine(prefix_cache=False, resilience=ResilienceConfig()).run(reqs)
        warm = engine(
            chunked=True, composable=True, resilience=ResilienceConfig()
        ).run(reqs)
        assert tokens_by_stream(warm) == tokens_by_stream(cold)
        assert warm.radix_hit_tokens > 0
        assert warm.cascade_steps > 0
        assert warm.cascade_bytes_saved > 0

    def test_warm_run_is_faster(self):
        reqs = shared_requests(n=8)
        cold = engine(prefix_cache=False).run(reqs)
        warm = engine().run(reqs)
        assert warm.total_time < cold.total_time

    def test_eviction_under_pool_pressure_token_exact(self):
        """A pool too small to keep every prefix cached forces LRU
        eviction mid-run; the run completes and stays token-exact."""
        reqs = shared_requests(n=4, prefix=8192, suffix=64, group=1) + [
            Request(1.6 + i * 0.4, 8192 + 64, 4, prefix_group=2 + i,
                    prefix_len=8192)
            for i in range(4)
        ]
        reqs.sort(key=lambda r: r.arrival)
        # ~516 pages/prompt; 1<<11 pages holds ~3 prompts + cache.
        cold = engine(
            prefix_cache=False, pool_pages=1 << 11,
            resilience=ResilienceConfig(),
        ).run(reqs)
        warm = engine(
            pool_pages=1 << 11, resilience=ResilienceConfig()
        ).run(reqs)
        assert tokens_by_stream(warm) == tokens_by_stream(cold)
        assert warm.radix_hit_tokens > 0

    def test_off_by_default(self):
        assert EngineConfig().prefix_cache is False
        m = engine(prefix_cache=False).run(shared_requests(n=2))
        assert m.radix_hit_tokens == 0
        assert m.prefix_stats is None


class TestCrashRecovery:
    def test_radix_state_survives_kill_restore(self):
        """Scripted engine deaths recover the radix tree from the snapshot:
        the resumed run keeps hitting the cache and stays token-exact."""
        reqs = shared_requests(n=8, prefix=2048, suffix=64, gap=0.2)
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        expected = tokens_by_stream(baseline)
        assert baseline.radix_hit_tokens > 0

        store = CheckpointStore()

        def factory():
            return engine(
                checkpoint=CheckpointConfig(every_steps=4),
                checkpoint_store=store,
                resilience=ResilienceConfig(),
            )

        script = [(3, "boundary"), (7, "mid-step")]
        report = CrashHarness(
            factory, reqs, store, crash_script=script, expected_tokens=expected
        ).run()
        assert report.crashes == len(script)
        assert report.recoveries == len(script)
        assert report.token_divergence == 0
        assert report.compared == len(expected)
        # The recovered lives kept serving from the cache.
        assert report.metrics.radix_hit_tokens > 0


# -- the cluster path ---------------------------------------------------------


class TestCacheAwareRouting:
    def _route(self, requests, dp=2, router="cache-aware"):
        from repro.cluster import ClusterConfig, ClusterEngine

        cluster = ClusterEngine.from_config(
            ClusterConfig(dp=dp, router=router,
                          engine=EngineConfig(prefix_cache=True)),
            model=MODEL, gpu=H100_80G,
        )
        return cluster, cluster.route(requests)

    def test_groups_land_on_their_cached_replica(self):
        """With balanced load, every request of a group follows the first
        one — the replica whose radix tree has the group's prefix."""
        reqs = shared_workload = shared_prefix_workload(
            24, rate=40.0, num_groups=3, prefix_len=2048
        )
        _, (per_replica, assignments) = self._route(shared_workload)
        by_group = {}
        for r, choice in zip(sorted(reqs, key=lambda x: x.arrival), assignments):
            by_group.setdefault(r.prefix_group, set()).add(choice)
        # A group may spill to a second replica under load imbalance, but
        # must not scatter across every replica on every request.
        assert all(len(chosen) <= 2 for chosen in by_group.values())

    def test_cluster_prefix_cache_token_exact(self):
        from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens

        reqs = shared_prefix_workload(16, rate=40.0, num_groups=2,
                                      prefix_len=2048)
        cold = ClusterEngine.from_config(
            ClusterConfig(dp=2, router="cache-aware",
                          engine=EngineConfig()),
            model=MODEL, gpu=H100_80G,
        )
        oracle = expected_tokens(cold.run_reference(reqs))
        warm = ClusterEngine.from_config(
            ClusterConfig(dp=2, router="cache-aware",
                          engine=EngineConfig(prefix_cache=True,
                                              composable=True,
                                              chunked_prefill=True)),
            model=MODEL, gpu=H100_80G,
        )
        cm = warm.run(reqs)
        divergent, compared = cm.token_divergence(oracle)
        assert divergent == 0
        assert compared == 16
        s = cm.summary()
        assert s["cluster_radix_hit_tokens"] > 0

    def test_cache_aware_beats_round_robin_on_hits(self):
        """Cache-aware routing keeps each group on one replica, so the
        cluster serves more tokens from cache than group-oblivious
        round-robin scatter."""
        from repro.cluster import ClusterConfig, ClusterEngine

        reqs = shared_prefix_workload(24, rate=40.0, num_groups=4,
                                      prefix_len=2048)

        def hits(router):
            cm = ClusterEngine.from_config(
                ClusterConfig(dp=4, router=router,
                              engine=EngineConfig(prefix_cache=True)),
                model=MODEL, gpu=H100_80G,
            ).run(reqs)
            return sum(m.radix_hit_tokens for m in cm.replicas)

        assert hits("cache-aware") > hits("round-robin")


class TestStepEvents:
    def test_trace_carries_radix_and_cascade_counters(self):
        from repro.obs import StepTracer

        tracer = StepTracer()
        m = engine(chunked=True, composable=True, tracer=tracer).run(
            shared_requests(n=6, out=48, gap=0.02)
        )
        counters = tracer.counters()
        assert counters["radix_hit_tokens"] == float(m.radix_hit_tokens)
        assert counters["cascade_steps"] > 0
        assert any(e.radix_hit_tokens for e in tracer.events)
        assert any(e.cascade_levels for e in tracer.events)
        # Conditional export: cold steps don't carry the keys.
        cold_dicts = [
            e.to_dict() for e in tracer.events if not e.radix_hit_tokens
        ]
        assert all("radix_hit_tokens" not in d for d in cold_dicts)
