"""Tests for RaggedTensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import RaggedTensor


class TestConstruction:
    def test_from_rows_round_trip(self, rng):
        rows = [rng.standard_normal((n, 3)) for n in (2, 0, 5, 1)]
        rt = RaggedTensor.from_rows(rows)
        assert rt.num_rows == 4
        assert rt.total == 8
        for got, want in zip(rt.rows(), rows):
            assert np.array_equal(got, want)

    def test_from_lengths(self):
        data = np.arange(10)
        rt = RaggedTensor.from_lengths(data, [3, 0, 7])
        assert np.array_equal(rt.row(0), [0, 1, 2])
        assert rt.row(1).size == 0
        assert np.array_equal(rt.row(2), np.arange(3, 10))

    def test_row_lengths(self):
        rt = RaggedTensor.from_lengths(np.arange(6), [1, 2, 3])
        assert np.array_equal(rt.row_lengths, [1, 2, 3])

    def test_negative_index(self):
        rt = RaggedTensor.from_lengths(np.arange(6), [2, 4])
        assert np.array_equal(rt.row(-1), [2, 3, 4, 5])

    def test_iter_matches_rows(self):
        rt = RaggedTensor.from_lengths(np.arange(6), [2, 4])
        assert [r.tolist() for r in rt] == [r.tolist() for r in rt.rows()]

    def test_len(self):
        rt = RaggedTensor.from_lengths(np.arange(4), [4])
        assert len(rt) == 1


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="indptr\\[0\\]"):
            RaggedTensor(np.arange(4), np.array([1, 4]))

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            RaggedTensor(np.arange(4), np.array([0, 3, 2, 4]))

    def test_indptr_must_cover_data(self):
        with pytest.raises(ValueError, match="indptr\\[-1\\]"):
            RaggedTensor(np.arange(4), np.array([0, 2]))

    def test_out_of_range_row(self):
        rt = RaggedTensor.from_lengths(np.arange(4), [4])
        with pytest.raises(IndexError):
            rt.row(1)

    def test_empty_indptr_rejected(self):
        with pytest.raises(ValueError):
            RaggedTensor(np.arange(0), np.array([]))


class TestProperties:
    @given(st.lists(st.integers(0, 7), min_size=0, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_round_trip(self, lengths):
        rows = [np.arange(n) + 100 * i for i, n in enumerate(lengths)]
        rt = RaggedTensor.from_rows(rows)
        assert rt.num_rows == len(lengths)
        assert rt.total == sum(lengths)
        for got, want in zip(rt.rows(), rows):
            assert np.array_equal(got, want)

    def test_views_not_copies(self):
        rt = RaggedTensor.from_lengths(np.arange(6.0), [3, 3])
        rt.row(0)[0] = 99.0
        assert rt.data[0] == 99.0
