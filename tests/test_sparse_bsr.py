"""Tests for BSR and CSR matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import BSRMatrix, CSRMatrix, csr_to_bsr


class TestCSR:
    def test_round_trip_dense(self, rng):
        mask = rng.random((7, 11)) > 0.5
        csr = CSRMatrix.from_dense_mask(mask)
        assert np.array_equal(csr.to_dense_mask(), mask)
        assert csr.nnz == int(mask.sum())

    def test_row_indices(self):
        mask = np.zeros((2, 5), dtype=bool)
        mask[0, [1, 3]] = True
        csr = CSRMatrix.from_dense_mask(mask)
        assert np.array_equal(csr.row_indices(0), [1, 3])
        assert csr.row_indices(1).size == 0

    def test_validation_indices_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix((1, 3), np.array([0, 1]), np.array([5]))

    def test_validation_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 3), np.array([0, 2, 1]), np.array([0, 1]))

    def test_data_alignment(self):
        with pytest.raises(ValueError, match="data"):
            CSRMatrix((1, 3), np.array([0, 2]), np.array([0, 1]), data=np.ones(3))


class TestBSRGeometry:
    def test_full_blocks(self):
        # 4x8 matrix, 2x4 blocks, both blocks of row 0 set.
        bsr = BSRMatrix((4, 8), (2, 4), np.array([0, 2, 2]), np.array([0, 1]))
        assert bsr.n_block_rows == 2
        assert bsr.n_block_cols == 2
        assert bsr.nnz_blocks == 2
        assert np.array_equal(bsr.row_kv_indices(0), np.arange(8))
        assert bsr.row_kv_indices(1).size == 0

    def test_gather_order_follows_indices(self):
        bsr = BSRMatrix((2, 8), (2, 4), np.array([0, 2]), np.array([1, 0]))
        assert np.array_equal(bsr.row_kv_indices(0), [4, 5, 6, 7, 0, 1, 2, 3])

    def test_partial_last_block_via_kv_lens(self):
        bsr = BSRMatrix(
            (2, 8), (2, 4), np.array([0, 2]), np.array([0, 1]), row_kv_lens=np.array([6])
        )
        assert np.array_equal(bsr.row_kv_indices(0), [0, 1, 2, 3, 4, 5])

    def test_ragged_matrix_edge_shortens_default_kv_len(self):
        # 10 columns with B_c=4: last block column holds only 2 slots.
        bsr = BSRMatrix((2, 10), (2, 4), np.array([0, 2]), np.array([0, 2]))
        assert bsr.row_kv_lens[0] == 6

    def test_block_row_rows_clamps(self):
        bsr = BSRMatrix((5, 4), (2, 4), np.array([0, 1, 1, 2]), np.array([0, 0]))
        assert bsr.block_row_rows(2) == (4, 5)

    def test_kv_lens_block_count_mismatch(self):
        with pytest.raises(ValueError, match="blocks"):
            BSRMatrix((2, 8), (2, 4), np.array([0, 2]), np.array([0, 1]),
                      row_kv_lens=np.array([3]))

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BSRMatrix((2, 8), (0, 4), np.array([0, 0]), np.array([]))

    def test_indices_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            BSRMatrix((2, 8), (2, 4), np.array([0, 1]), np.array([7]))


class TestBSRDenseRoundTrip:
    def test_round_trip_simple(self):
        mask = np.zeros((4, 8), dtype=bool)
        mask[0:2, 0:4] = True
        mask[2:4, 4:8] = True
        bsr = BSRMatrix.from_dense_mask(mask, (2, 4))
        assert np.array_equal(bsr.to_dense_mask(), mask)

    def test_round_trip_with_prefix_block(self):
        mask = np.zeros((2, 8), dtype=bool)
        mask[:, :6] = True  # second block is a 2-column prefix
        bsr = BSRMatrix.from_dense_mask(mask, (2, 4))
        assert bsr.row_kv_lens[0] == 6
        assert np.array_equal(bsr.to_dense_mask(), mask)

    def test_rows_must_match_within_block(self):
        mask = np.zeros((2, 4), dtype=bool)
        mask[0, :] = True
        with pytest.raises(ValueError, match="differ"):
            BSRMatrix.from_dense_mask(mask, (2, 4))

    def test_non_prefix_block_rejected(self):
        mask = np.zeros((1, 4), dtype=bool)
        mask[0, [1, 2]] = True  # hole at column 0
        with pytest.raises(ValueError, match="prefix"):
            BSRMatrix.from_dense_mask(mask, (1, 4))

    def test_partial_non_final_block_rejected(self):
        mask = np.zeros((1, 8), dtype=bool)
        mask[0, 0:2] = True  # partial block 0 ...
        mask[0, 4:8] = True  # ... followed by a full block
        with pytest.raises(ValueError, match="partial"):
            BSRMatrix.from_dense_mask(mask, (1, 4))

    @given(
        st.integers(1, 4),  # B_r
        st.integers(1, 5),  # B_c
        st.integers(1, 3),  # block rows
        st.integers(1, 4),  # block cols
        st.integers(0, 2**12 - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_random_block_structure_round_trip(self, br, bc, nbr, nbc, pattern):
        rows, cols = nbr * br, nbc * bc
        mask = np.zeros((rows, cols), dtype=bool)
        for i in range(nbr):
            for j in range(nbc):
                if (pattern >> (i * nbc + j)) & 1:
                    mask[i * br : (i + 1) * br, j * bc : (j + 1) * bc] = True
        bsr = BSRMatrix.from_dense_mask(mask, (br, bc))
        assert np.array_equal(bsr.to_dense_mask(), mask)

    def test_vector_sparse_bc1(self, rng):
        # B_c = 1 can represent any per-block-row column set.
        mask = np.tile(rng.random(16) > 0.5, (2, 1))
        bsr = BSRMatrix.from_dense_mask(mask, (2, 1))
        assert np.array_equal(bsr.to_dense_mask(), mask)


class TestCSRtoBSR:
    def test_regroup(self):
        mask = np.zeros((4, 8), dtype=bool)
        mask[0:2, 4:8] = True
        csr = CSRMatrix.from_dense_mask(mask)
        bsr = csr_to_bsr(csr, (2, 4))
        assert bsr.nnz_blocks == 1
        assert np.array_equal(bsr.to_dense_mask(), mask)


class TestConversionEdges:
    def test_csr_to_bsr_rejects_non_representable(self, rng):
        from repro.sparse import CSRMatrix, csr_to_bsr

        mask = np.zeros((4, 8), dtype=bool)
        mask[0, 0] = True  # rows within the 2-row block differ
        csr = CSRMatrix.from_dense_mask(mask)
        with pytest.raises(ValueError, match="differ"):
            csr_to_bsr(csr, (2, 4))

    def test_bsr_dense_aliases(self, rng):
        from repro.sparse import bsr_from_dense_mask, bsr_to_dense_mask

        mask = np.zeros((4, 8), dtype=bool)
        mask[0:2, 0:4] = True
        bsr = bsr_from_dense_mask(mask, (2, 4))
        assert np.array_equal(bsr_to_dense_mask(bsr), mask)

    def test_empty_matrix(self):
        from repro.sparse import BSRMatrix

        bsr = BSRMatrix((0, 0), (2, 4), np.array([0]), np.array([]))
        assert bsr.n_block_rows == 0
        assert bsr.to_dense_mask().shape == (0, 0)

    def test_row_kv_indices_empty_row(self):
        from repro.sparse import BSRMatrix

        bsr = BSRMatrix((4, 8), (2, 4), np.array([0, 0, 1]), np.array([1]))
        assert bsr.row_kv_indices(0).size == 0
        assert np.array_equal(bsr.row_kv_indices(1), [4, 5, 6, 7])
