"""Tests for the pool_num_pages deprecation policy on the paged wrappers.

The argument is inferred from the page table since the API redesign; an
explicit value warns exactly once per wrapper instance, and a value that
contradicts the page table raises instead of silently under-sizing.
"""

import warnings

import numpy as np
import pytest

from repro.api import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
)
from repro.gpu import WorkspaceBuffer
from repro.kvcache import PagedKVCache


def build_cache(kv_lens, rng, page_size=16):
    cache = PagedKVCache(256, page_size, 2, 32)
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, 2, 32)),
                     rng.standard_normal((n, 2, 32)))
        seqs.append(sid)
    layout = cache.layout(seqs)
    last = np.asarray(
        [n - (len(cache.seq_pages(s)) - 1) * page_size
         for n, s in zip(kv_lens, seqs)]
    )
    return cache, layout, last


def decode_wrapper():
    return BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)


def caught(wrapper, layout, last, pool):
    with warnings.catch_warnings(record=True) as rec:
        warnings.simplefilter("always")
        wrapper.plan(layout.indptr, layout.indices, last, pool)
    return [w for w in rec if issubclass(w.category, DeprecationWarning)]


class TestWarnOncePerWrapper:
    def test_second_plan_does_not_rewarn(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        assert len(caught(w, layout, last, cache.num_pages)) == 1
        assert len(caught(w, layout, last, cache.num_pages)) == 0

    def test_fresh_wrapper_warns_again(self, rng):
        cache, layout, last = build_cache([40], rng)
        assert len(caught(decode_wrapper(), layout, last, cache.num_pages)) == 1
        assert len(caught(decode_wrapper(), layout, last, cache.num_pages)) == 1

    def test_prefill_wrapper_warns_once_too(self, rng):
        cache, layout, last = build_cache([50], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=5
        )
        qo_indptr = np.array([0, 5])
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            w.plan(qo_indptr, layout.indptr, layout.indices, last, cache.num_pages)
            w.plan(qo_indptr, layout.indptr, layout.indices, last, cache.num_pages)
        assert sum(issubclass(r.category, DeprecationWarning) for r in rec) == 1

    def test_inferred_plan_never_warns(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            w.plan(layout.indptr, layout.indices, last)
            w.plan(layout.indptr, layout.indices, last)


class TestMismatchRejected:
    def test_pool_smaller_than_page_table_raises(self, rng):
        cache, layout, last = build_cache([40, 111], rng)
        w = decode_wrapper()
        too_small = int(layout.indices.max())  # one short of required
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="contradicts the page table"):
                w.plan(layout.indptr, layout.indices, last, too_small)

    def test_larger_pool_value_accepted(self, rng):
        """Oversized explicit values are legal (deprecated but harmless)."""
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            w.plan(layout.indptr, layout.indices, last, cache.num_pages * 2)

    def test_rejection_still_warns_first(self, rng):
        """Even a rejected plan() burns the one-time warning: the caller
        sees both signals on the first bad call."""
        cache, layout, last = build_cache([40, 111], rng)
        w = decode_wrapper()
        too_small = int(layout.indices.max())
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            with pytest.raises(ValueError):
                w.plan(layout.indptr, layout.indices, last, too_small)
        assert sum(issubclass(r.category, DeprecationWarning) for r in rec) == 1
