"""Tests for the removed pool_num_pages argument on the paged wrappers.

The argument was deprecated (warn-once) in the first API-redesign pass and
is now removed outright: the pool size is inferred from the page-table
indices at ``plan()`` time and validated against the K/V pools handed to
``run()``.  Passing the old argument — positionally or by keyword — must
raise ``TypeError`` with a migration hint, never silently rebind to a
neighbouring parameter.
"""

import warnings

import numpy as np
import pytest

from repro.api import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
)
from repro.gpu import WorkspaceBuffer
from repro.kvcache import PagedKVCache

MIGRATION_HINT = r"no longer accepts.*pool_num_pages.*[Dd]rop the argument"


def build_cache(kv_lens, rng, page_size=16):
    cache = PagedKVCache(256, page_size, 2, 32)
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, 2, 32)),
                     rng.standard_normal((n, 2, 32)))
        seqs.append(sid)
    layout = cache.layout(seqs)
    last = np.asarray(
        [n - (len(cache.seq_pages(s)) - 1) * page_size
         for n, s in zip(kv_lens, seqs)]
    )
    return cache, layout, last


def decode_wrapper():
    return BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)


def prefill_wrapper():
    return BatchPrefillWithPagedKVCacheWrapper(
        WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=5
    )


class TestRemovedArgumentRejected:
    def test_decode_keyword_raises_with_hint(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with pytest.raises(TypeError, match=MIGRATION_HINT):
            w.plan(layout.indptr, layout.indices, last,
                   pool_num_pages=cache.num_pages)

    def test_decode_positional_raises_with_hint(self, rng):
        """The old 4th positional slot must not silently rebind."""
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with pytest.raises(TypeError, match=MIGRATION_HINT):
            w.plan(layout.indptr, layout.indices, last, cache.num_pages)

    def test_prefill_keyword_raises_with_hint(self, rng):
        cache, layout, last = build_cache([50], rng)
        w = prefill_wrapper()
        with pytest.raises(TypeError, match=MIGRATION_HINT):
            w.plan(np.array([0, 5]), layout.indptr, layout.indices, last,
                   pool_num_pages=cache.num_pages)

    def test_prefill_positional_raises_with_hint(self, rng):
        cache, layout, last = build_cache([50], rng)
        w = prefill_wrapper()
        with pytest.raises(TypeError, match=MIGRATION_HINT):
            w.plan(np.array([0, 5]), layout.indptr, layout.indices, last,
                   cache.num_pages)

    def test_rejection_leaves_wrapper_unplanned(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with pytest.raises(TypeError):
            w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        with pytest.raises(RuntimeError, match="before plan"):
            w.run(rng.standard_normal((1, 4, 32)), cache.k_pool, cache.v_pool)

    def test_other_unknown_keyword_still_plain_type_error(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with pytest.raises(TypeError, match="unexpected keyword"):
            w.plan(layout.indptr, layout.indices, last, bogus=3)


class TestInferredPath:
    def test_inferred_plan_never_warns(self, rng):
        cache, layout, last = build_cache([40], rng)
        w = decode_wrapper()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            w.plan(layout.indptr, layout.indices, last)
            w.plan(layout.indptr, layout.indices, last)

    def test_run_validates_pool_against_inferred_bound(self, rng):
        cache, layout, last = build_cache([40, 111], rng)
        w = decode_wrapper()
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((2, 4, 32))
        with pytest.raises(ValueError, match="pool holds"):
            w.run(q, cache.k_pool[:16], cache.v_pool[:16])
