"""Tests for the deterministic fault plan (repro.faults.plan)."""

import pytest

from repro.faults import FAULT_SITES, FaultPlan, chaos_plan


def fire_pattern(plan, site, n):
    return [plan.fire(site) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_pattern(self):
        a = FaultPlan(seed=11, kernel_fault_rate=0.3)
        b = FaultPlan(seed=11, kernel_fault_rate=0.3)
        assert fire_pattern(a, "kernel", 200) == fire_pattern(b, "kernel", 200)

    def test_different_seed_different_pattern(self):
        a = FaultPlan(seed=11, kernel_fault_rate=0.3)
        b = FaultPlan(seed=12, kernel_fault_rate=0.3)
        assert fire_pattern(a, "kernel", 200) != fire_pattern(b, "kernel", 200)

    def test_reset_replays_identical_schedule(self):
        plan = FaultPlan(seed=3, corruption_rate=0.25)
        first = fire_pattern(plan, "corrupt", 100)
        plan.reset()
        assert fire_pattern(plan, "corrupt", 100) == first
        assert plan.consultations("corrupt") == 100

    def test_sites_are_independent_streams(self):
        """Drawing at one site must not perturb another site's sequence."""
        solo = FaultPlan(seed=5, kernel_fault_rate=0.3)
        interleaved = FaultPlan(
            seed=5, kernel_fault_rate=0.3, alloc_fault_rate=0.4, corruption_rate=0.2
        )
        expected = fire_pattern(solo, "kernel", 100)
        got = []
        for _ in range(100):
            interleaved.fire("alloc")
            got.append(interleaved.fire("kernel"))
            interleaved.fire("corrupt")
        assert got == expected

    def test_fire_is_pure_function_of_call_index(self):
        """Firing depends only on (seed, call index) — raising another
        site's rate does not move this site's hits."""
        a = FaultPlan(seed=9, kernel_fault_rate=0.2)
        b = FaultPlan(seed=9, kernel_fault_rate=0.2, straggler_rate=0.5)
        assert fire_pattern(a, "kernel", 300) == fire_pattern(b, "kernel", 300)


class TestSchedules:
    def test_scheduled_indices_always_fire(self):
        plan = FaultPlan(seed=0, schedules={"kernel": [0, 3]})
        assert fire_pattern(plan, "kernel", 5) == [True, False, False, True, False]

    def test_schedule_combines_with_rate(self):
        plan = FaultPlan(seed=0, kernel_fault_rate=0.3, schedules={"kernel": [7]})
        hits = fire_pattern(plan, "kernel", 20)
        assert hits[7] is True
        # Rate hits still occur besides the scheduled one.
        assert sum(hits) > 1

    def test_unknown_site_in_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(schedules={"cosmic_ray": [0]})


class TestValidation:
    @pytest.mark.parametrize("rate", [1.0, 1.5, -0.1])
    def test_rates_must_be_in_unit_interval_open(self, rate):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            FaultPlan(kernel_fault_rate=rate)

    def test_straggler_factor_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultPlan(straggler_factor=0.5)

    def test_choose_requires_positive_n(self):
        with pytest.raises(ValueError):
            FaultPlan().choose("kernel", 0)

    def test_choose_in_range(self):
        plan = FaultPlan(seed=1)
        assert all(0 <= plan.choose("corrupt", 7) < 7 for _ in range(50))


class TestIntrospection:
    def test_counters(self):
        plan = FaultPlan(seed=2, alloc_fault_rate=0.5)
        hits = sum(fire_pattern(plan, "alloc", 200))
        assert plan.consultations("alloc") == 200
        assert plan.injected["alloc"] == hits
        assert plan.total_injected == hits
        assert hits > 0

    def test_enabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan(kernel_fault_rate=0.1).enabled
        assert FaultPlan(schedules={"corrupt": [4]}).enabled

    def test_all_sites_present(self):
        plan = FaultPlan()
        assert set(plan.injected) == set(FAULT_SITES)

    def test_chaos_plan_meets_acceptance_rates(self):
        plan = chaos_plan(seed=7)
        assert plan._rates["kernel"] >= 0.05
        assert plan._rates["corrupt"] >= 0.01
        assert plan.enabled


class TestStateCapture:
    """export_state / import_state / from_state / disarm — the engine
    checkpointing surface of the plan."""

    def _plan(self, seed=11):
        return FaultPlan(
            seed=seed, kernel_fault_rate=0.3, corruption_rate=0.2,
            crash_rate=0.1, schedules={"alloc": [2, 5]},
        )

    def test_from_state_continues_the_exact_schedule(self):
        a = self._plan()
        for _ in range(20):
            a.fire("kernel")
            a.fire("corrupt")
        b = FaultPlan.from_state(a.export_state())
        for site in FAULT_SITES:
            assert b.consultations(site) == a.consultations(site)
            assert fire_pattern(a, site, 30) == fire_pattern(b, site, 30)

    def test_import_state_rewinds_a_live_plan(self):
        plan = self._plan()
        saved = plan.export_state()
        first = fire_pattern(plan, "kernel", 15)
        plan.import_state(saved)
        assert fire_pattern(plan, "kernel", 15) == first

    def test_import_skip_keeps_the_live_stream(self):
        """The ``crash`` site is skipped on in-process recovery so the
        death being recovered from cannot re-fire from a rewound stream."""
        plan = self._plan()
        saved = plan.export_state()
        rewound = fire_pattern(plan, "crash", 10)
        live_calls = plan.consultations("crash")
        plan.import_state(saved, skip=("crash",))
        assert plan.consultations("crash") == live_calls  # not rewound
        assert plan.consultations("kernel") == 0  # others rewound
        # The live stream keeps drawing forward, not replaying calls 0-9.
        fire_pattern(plan, "crash", 10)
        assert plan.export_state()["sites"]["crash"]["calls"] == 20
        rewound_again = fire_pattern(FaultPlan.from_state(saved), "crash", 10)
        assert rewound_again == rewound

    def test_disarm_silences_one_site_only(self):
        plan = self._plan()
        plan.disarm("crash")
        assert not plan.armed("crash")
        assert plan.armed("kernel")
        assert plan.armed("alloc")  # schedule-armed site unaffected
        assert not any(fire_pattern(plan, "crash", 200))

    def test_disarm_survives_import_state(self):
        """Cold-start recovery rebuilds the plan from a snapshot, disarms
        ``crash``, then ``resume()`` imports the snapshot again — the
        disarm must hold (import restores streams, not rates)."""
        plan = self._plan()
        saved = plan.export_state()
        plan.disarm("crash")
        plan.import_state(saved)
        assert not plan.armed("crash")
        assert not any(fire_pattern(plan, "crash", 200))

    def test_disarm_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().disarm("meteor")

    def test_armed_reflects_rates_and_schedules(self):
        plan = FaultPlan(schedules={"corrupt": [4]})
        assert plan.armed("corrupt")
        assert not plan.armed("kernel")
        assert not plan.armed("crash")

    def test_state_round_trip_is_json_safe(self):
        import json

        plan = self._plan()
        for _ in range(7):
            plan.fire("crash")
        state = json.loads(json.dumps(plan.export_state()))
        clone = FaultPlan.from_state(state)
        assert fire_pattern(clone, "crash", 25) == fire_pattern(plan, "crash", 25)
