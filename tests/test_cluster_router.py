"""Data-parallel routing: policies, load model, cluster token-exactness."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    expected_tokens,
)
from repro.cluster.router import (
    LeastLoadedPolicy,
    LoadTracker,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    SessionAffinityPolicy,
    available_routing_policies,
    get_routing_policy,
    register_routing_policy,
)
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, Request, sharegpt_workload

MODEL = LLAMA_3_1_8B


def _req(arrival=0.0, **kw):
    kw.setdefault("prompt_len", 64)
    kw.setdefault("output_len", 8)
    return Request(arrival, **kw)


def test_load_tracker_assigns_and_drains():
    lt = LoadTracker(2, service_rate=100.0)
    lt.assign(0, 500.0)
    assert lt.loads() == [500.0, 0.0]
    lt.observe(2.0)  # drains 200 tokens from each replica
    assert lt.loads() == [300.0, 0.0]
    lt.observe(100.0)  # never goes negative
    assert lt.loads() == [0.0, 0.0]
    # Time cannot run backwards.
    lt.assign(1, 100.0)
    lt.observe(50.0)
    assert lt.loads()[1] == pytest.approx(100.0)
    with pytest.raises(ValueError):
        LoadTracker(0, 1.0)
    with pytest.raises(ValueError):
        LoadTracker(1, 0.0)


def test_round_robin_cycles():
    p = RoundRobinPolicy()
    p.reset(3)
    assert [p.choose(_req(), 0.0, [0, 0, 0]) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_least_loaded_picks_minimum_with_deterministic_ties():
    p = LeastLoadedPolicy()
    p.reset(3)
    assert p.choose(_req(), 0.0, [5.0, 1.0, 3.0]) == 1
    assert p.choose(_req(), 0.0, [2.0, 2.0, 2.0]) == 0


def test_power_of_two_is_seed_deterministic():
    choices = []
    for _ in range(2):
        p = PowerOfTwoPolicy()
        p.reset(4, seed=42)
        choices.append([p.choose(_req(), 0.0, [3.0, 1.0, 2.0, 0.5]) for _ in range(16)])
    assert choices[0] == choices[1]
    p = PowerOfTwoPolicy()
    p.reset(1, seed=0)
    assert p.choose(_req(), 0.0, [1.0]) == 0


def test_session_affinity_groups_land_together():
    p = SessionAffinityPolicy()
    p.reset(4)
    same = {
        p.choose(_req(prefix_group=7, prefix_len=16), 0.0, [0] * 4)
        for _ in range(5)
    }
    assert len(same) == 1
    # Ungrouped requests spread by rid, deterministically.
    a = p.choose(_req(rid=1), 0.0, [0] * 4)
    b = p.choose(_req(rid=1), 0.0, [0] * 4)
    assert a == b


def test_session_affinity_rebinds_off_unhealthy_replicas():
    # Regression: the hashed home replica being down must not keep
    # receiving the session's requests — rebind deterministically, to the
    # same fallback for every request of the session, and snap back home
    # once the replica rejoins.
    p = SessionAffinityPolicy()
    p.reset(4)
    req = _req(prefix_group=7, prefix_len=16)
    home = p.choose(req, 0.0, [0.0] * 4)
    healthy = [True] * 4
    healthy[home] = False
    rebound = {p.route(req, 0.0, [0.0] * 4, healthy) for _ in range(5)}
    assert len(rebound) == 1
    fallback = rebound.pop()
    assert fallback != home and healthy[fallback]
    # Healthy home: route is just choose.
    assert p.route(req, 0.0, [0.0] * 4, [True] * 4) == home
    # Another session whose home is also down keeps its own fallback
    # stream (the probe is salted by session key, not shared state).
    other = next(
        g for g in range(8, 64)
        if p.choose(_req(prefix_group=g, prefix_len=16), 0.0, [0.0] * 4) == home
    )
    other_req = _req(prefix_group=other, prefix_len=16)
    assert p.route(other_req, 0.0, [0.0] * 4, healthy) == p.route(
        other_req, 0.0, [0.0] * 4, healthy
    )
    # Nothing healthy: route returns the raw choice — the cluster engine
    # is responsible for holding the request at the front door.
    assert p.route(req, 0.0, [0.0] * 4, [False] * 4) == home


def test_base_rebind_picks_least_loaded_healthy():
    p = RoundRobinPolicy()
    p.reset(3)
    # First round-robin choice is replica 0; it is down, and replica 2 is
    # the least-loaded healthy one.
    assert p.route(_req(), 0.0, [1.0, 5.0, 2.0], [False, True, True]) == 2
    # Ties break to the lowest index.
    assert p.route(_req(), 0.0, [9.0, 3.0, 3.0], [False, True, True]) == 1


def test_load_tracker_pressure_backpressures_loads():
    lt = LoadTracker(2, service_rate=100.0)
    lt.assign(0, 50.0)
    # No pressure: loads() is exactly the outstanding work (bit-identical
    # to the pre-failover tracker).
    assert lt.loads() == [50.0, 0.0]
    lt.set_pressure(1, 2.0)  # 2 s of synthetic backlog = 200 tokens
    assert lt.loads() == [50.0, 200.0]
    lt.set_pressure(1, 0.0)
    assert lt.loads() == [50.0, 0.0]
    lt.set_pressure(0, -5.0)  # clamped
    assert lt.loads() == [50.0, 0.0]


def test_registry_contract():
    names = available_routing_policies()
    assert names[:6] == ("cache-aware", "disagg", "least-loaded",
                         "power-of-two", "round-robin", "session-affinity")
    assert isinstance(get_routing_policy("round-robin"), RoundRobinPolicy)
    with pytest.raises(ValueError, match="unknown routing policy"):
        get_routing_policy("nope")
    with pytest.raises(ValueError, match="non-default"):
        register_routing_policy(RoutingPolicy)


def test_register_custom_policy():
    class AlwaysZero(RoutingPolicy):
        name = "test-always-zero"

        def choose(self, req, t, loads):
            return 0

    try:
        register_routing_policy(AlwaysZero)
        assert isinstance(get_routing_policy("test-always-zero"), AlwaysZero)
        cm = ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(dp=2, router="test-always-zero",
                          engine=EngineConfig(max_running=64)),
        ).run(sharegpt_workload(6, rate=50.0, seed=2))
        assert len(cm.replica_requests[0]) == 6
        assert len(cm.replica_requests[1]) == 0
    finally:
        from repro.cluster import router

        router._POLICIES.pop("test-always-zero", None)


def test_routing_splits_workload_and_keeps_arrival_order():
    cluster = ClusterEngine(
        MODEL, H100_80G, ClusterConfig(dp=3, router="round-robin")
    )
    per_replica, assignments = cluster.route(
        sharegpt_workload(9, rate=100.0, seed=4)
    )
    assert assignments == [0, 1, 2] * 3
    for reqs in per_replica:
        assert len(reqs) == 3
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
    # rids cover the whole workload exactly once.
    rids = sorted(r.rid for reqs in per_replica for r in reqs)
    assert rids == list(range(9))


@pytest.mark.parametrize("router", ["round-robin", "least-loaded",
                                    "power-of-two", "session-affinity"])
def test_dp_cluster_token_exact_under_every_router(router):
    requests = sharegpt_workload(8, rate=120.0, seed=9)
    cluster = ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(dp=2, router=router, engine=EngineConfig(max_running=64)),
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, 8)


def test_dp2_least_loaded_beats_dp1_throughput():
    # The CI acceptance gate: at an overloaded arrival rate, splitting the
    # workload across two replicas must strictly raise simulated
    # throughput over one replica.
    requests = sharegpt_workload(24, rate=200.0, seed=0)
    results = {}
    for dp in (1, 2):
        results[dp] = ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(dp=dp, router="least-loaded",
                          engine=EngineConfig(max_running=256)),
        ).run(requests)
    assert (
        results[2].throughput_tokens_per_s()
        > results[1].throughput_tokens_per_s()
    )
    assert results[2].total_time < results[1].total_time


def test_cluster_summary_shape():
    cm = ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(tp=2, dp=2, engine=EngineConfig(max_running=64)),
    ).run(sharegpt_workload(6, rate=60.0, seed=1))
    s = cm.summary()
    assert s["cluster_world"] == 4.0
    assert s["cluster_requests"] == 6.0
    for i in range(2):
        assert f"replica{i}_requests" in s
        assert 0.0 <= s[f"replica{i}_utilization"] <= 1.0
    assert s["link_bytes"] > 0.0
    merged = cm.merged
    assert len(merged.traces) == 6
    assert merged.total_time == pytest.approx(cm.total_time)
