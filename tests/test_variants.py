"""Tests for the variants library against independent references (§3.2.3)."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig
from repro.baselines import unfused_rope_attention
from repro.variants import (
    alibi_slopes,
    apply_rope,
    FUSED_ROPE,
    make_alibi,
    make_attention_sink,
    make_custom_mask,
    make_flash_sigmoid,
    make_fused_rope,
    make_logits_softcap,
    make_sliding_window,
)

HEADS = HeadConfig(4, 4, 16)


def run_variant(variant, rng, kv_len=48, qo_len=48, params=None, heads=HEADS,
                causal=True, page_size=8):
    mapping, slots = make_paged_mapping([kv_len], [qo_len], page_size, causal)
    q = rng.standard_normal((qo_len, heads.num_qo_heads, heads.head_dim))
    kp = rng.standard_normal((slots, heads.num_kv_heads, heads.head_dim))
    vp = rng.standard_normal((slots, heads.num_kv_heads, heads.head_dim))
    ws = WorkspaceBuffer(1 << 26)
    w = BatchAttentionWrapper(variant, heads, ws, avg_qo_len=qo_len)
    w.plan(mapping, params=params)
    out, _, _ = w.run(q, kp, vp)
    return q, fp16(kp[:kv_len]), fp16(vp[:kv_len]), out


def dense_reference(q, k, v, transform=None, mask_fn=None, qx=None, kx=None,
                    softmax=True, causal=True):
    n_q, H, d = q.shape
    n_kv = k.shape[0]
    sm = 1 / np.sqrt(d)
    q_pos = np.arange(n_kv - n_q, n_kv)
    kv_pos = np.arange(n_kv)
    out = np.zeros_like(q)
    for h in range(H):
        qq = q[:, h] if qx is None else qx(q[:, h], q_pos)
        kk = k[:, h] if kx is None else kx(k[:, h], kv_pos)
        s = (qq @ kk.T) * sm
        if transform is not None:
            s = transform(s, h, q_pos, kv_pos)
        keep = np.ones((n_q, n_kv), dtype=bool)
        if causal:
            keep &= q_pos[:, None] >= kv_pos[None, :]
        if mask_fn is not None:
            keep &= mask_fn(q_pos[:, None], kv_pos[None, :])
        if softmax:
            s = np.where(keep, s, -np.inf)
            m = np.max(s, axis=1, keepdims=True)
            m = np.where(np.isneginf(m), 0.0, m)
            p = np.exp(s - m)
            denom = p.sum(axis=1, keepdims=True)
            denom = np.where(denom == 0, 1.0, denom)
            out[:, h] = (p / denom) @ v[:, h]
        else:
            out[:, h] = np.where(keep, s, 0.0) @ v[:, h]
    return out


class TestSlidingWindow:
    def test_matches_reference(self, rng):
        q, k, v, out = run_variant(make_sliding_window(12), rng)
        ref = dense_reference(q, k, v, mask_fn=lambda qp, kp: (qp - kp) < 12)
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_window_1_is_self_attention(self, rng):
        q, k, v, out = run_variant(make_sliding_window(1), rng, kv_len=16, qo_len=16)
        np.testing.assert_allclose(out, v, atol=1e-8)

    def test_survives_kv_chunking(self, rng):
        # Long KV forces split chunks; window mask must stay consistent.
        q, k, v, out = run_variant(make_sliding_window(64), rng, kv_len=3000, qo_len=1,
                                   heads=HeadConfig(2, 2, 16))
        ref = dense_reference(q, k, v, mask_fn=lambda qp, kp: (qp - kp) < 64)
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            make_sliding_window(0)


class TestSoftcap:
    def test_matches_reference(self, rng):
        q, k, v, out = run_variant(make_logits_softcap(5.0), rng)
        ref = dense_reference(q, k, v, transform=lambda s, h, qp, kp: 5 * np.tanh(s / 5))
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            make_logits_softcap(-1.0)


class TestALiBi:
    def test_matches_reference(self, rng):
        slopes = alibi_slopes(4)
        q, k, v, out = run_variant(make_alibi(slopes), rng)
        ref = dense_reference(
            q, k, v,
            transform=lambda s, h, qp, kp: s + slopes[h] * (kp[None, :] - qp[:, None]),
        )
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_slope_schedule(self):
        s = alibi_slopes(8)
        assert s[0] == pytest.approx(2.0 ** -1)
        assert s[-1] == pytest.approx(2.0 ** -8)


class TestFlashSigmoid:
    def test_matches_reference(self, rng):
        q, k, v, out = run_variant(make_flash_sigmoid(scale=0.5, bias=-1.0), rng)
        ref = dense_reference(
            q, k, v,
            transform=lambda s, h, qp, kp: 1 / (1 + np.exp(-(s * 0.5 - 1.0))),
            softmax=False,
        )
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_sum_composition_across_chunks(self, rng):
        q, k, v, out = run_variant(make_flash_sigmoid(), rng, kv_len=3000, qo_len=1,
                                   heads=HeadConfig(2, 2, 16))
        ref = dense_reference(
            q, k, v,
            transform=lambda s, h, qp, kp: 1 / (1 + np.exp(-s)),
            softmax=False,
        )
        np.testing.assert_allclose(out, ref, atol=1e-3, rtol=1e-4)


class TestCustomMask:
    def test_matches_reference(self, rng):
        mask = rng.random((48, 48)) > 0.4
        q, k, v, out = run_variant(make_custom_mask(mask), rng)
        ref = dense_reference(q, k, v, mask_fn=lambda qp, kp: mask[qp, kp])
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_tree_attention_mask(self, rng):
        """Speculative tree decoding: each node attends its ancestors."""
        # Chain 0-1-2 and a branch 0-3: node 3 must not see 1 or 2.
        n = 4
        mask = np.zeros((n, n), dtype=bool)
        parents = {1: 0, 2: 1, 3: 0}
        for i in range(n):
            mask[i, i] = True
            p = parents.get(i)
            while p is not None:
                mask[i, p] = True
                p = parents.get(p)
        q, k, v, out = run_variant(
            make_custom_mask(mask), rng, kv_len=n, qo_len=n, causal=False, page_size=2
        )
        ref = dense_reference(q, k, v, mask_fn=lambda qp, kp: mask[qp, kp], causal=False)
        np.testing.assert_allclose(out, ref, atol=1e-8)


class TestAttentionSink:
    def test_matches_reference(self, rng):
        q, k, v, out = run_variant(make_attention_sink(4, 8), rng)
        ref = dense_reference(
            q, k, v, mask_fn=lambda qp, kp: (kp < 4) | ((qp - kp) < 8)
        )
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_attention_sink(-1, 8)
        with pytest.raises(ValueError):
            make_attention_sink(2, 0)


class TestFusedRoPE:
    def test_rope_rotation_properties(self, rng):
        x = rng.standard_normal((5, 16))
        r = apply_rope(x, np.arange(5))
        # Rotation preserves norms.
        np.testing.assert_allclose(
            np.linalg.norm(r, axis=1), np.linalg.norm(x, axis=1)
        )
        # Position 0 is the identity.
        np.testing.assert_allclose(apply_rope(x, np.zeros(5)), x)

    def test_rope_relative_property(self, rng):
        """⟨rope(q,m), rope(k,n)⟩ depends only on m−n."""
        q = rng.standard_normal((1, 16))
        k = rng.standard_normal((1, 16))
        a = apply_rope(q, np.array([7]))[0] @ apply_rope(k, np.array([3]))[0]
        b = apply_rope(q, np.array([14]))[0] @ apply_rope(k, np.array([10]))[0]
        assert a == pytest.approx(b)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError, match="even"):
            apply_rope(np.zeros((1, 5)), np.zeros(1))

    def test_fused_matches_unfused_oracle(self, rng):
        q, k, v, out = run_variant(FUSED_ROPE, rng)
        ref = unfused_rope_attention(
            q, k, v, np.arange(48), np.arange(48), causal=True
        )
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_fused_rope_decode_with_chunking(self, rng):
        q, k, v, out = run_variant(FUSED_ROPE, rng, kv_len=2500, qo_len=1,
                                   heads=HeadConfig(2, 2, 16))
        ref = unfused_rope_attention(
            q, k, v, np.array([2499]), np.arange(2500), causal=True
        )
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_custom_theta(self, rng):
        variant = make_fused_rope(theta=500.0)
        q, k, v, out = run_variant(variant, rng)
        ref = unfused_rope_attention(
            q, k, v, np.arange(48), np.arange(48), causal=True, rope_theta=500.0
        )
        np.testing.assert_allclose(out, ref, atol=1e-8)
