"""Tests for the simulated GPU: cost model and event-driven executor."""

import pytest

from repro.gpu import A100_40G, H100_80G, KernelCostModel, PersistentKernelExecutor, TileCost


def mem_tile(bytes_read, bytes_written=0.0):
    return TileCost(flops=1.0, padded_flops=1.0, bytes_read=bytes_read,
                    bytes_written=bytes_written, uses_tensor_cores=False)


def compute_tile(flops):
    return TileCost(flops=flops, padded_flops=flops, bytes_read=0.0,
                    uses_tensor_cores=True)


class TestSpec:
    def test_per_sm_shares(self):
        assert A100_40G.sm_bandwidth * A100_40G.num_sms == pytest.approx(
            A100_40G.peak_bandwidth_bytes
        )
        assert H100_80G.sm_fp16_flops * H100_80G.num_sms == pytest.approx(
            H100_80G.peak_fp16_flops
        )

    def test_tma_flags(self):
        assert H100_80G.supports_tma and not A100_40G.supports_tma


class TestCostModel:
    def test_transaction_quantization(self):
        cm = KernelCostModel(A100_40G)
        # 64-byte runs waste half of every 128-byte transaction.
        c = TileCost(bytes_read=1000.0, contiguous_run_bytes=64.0, n_gather_segments=2)
        assert cm.effective_bytes_read(c) == pytest.approx(2000.0)
        # Aligned runs waste nothing.
        c2 = TileCost(bytes_read=1000.0, contiguous_run_bytes=256.0, n_gather_segments=2)
        assert cm.effective_bytes_read(c2) == pytest.approx(1000.0)

    def test_dense_loads_unquantized(self):
        cm = KernelCostModel(A100_40G)
        c = TileCost(bytes_read=1000.0)
        assert cm.effective_bytes_read(c) == 1000.0

    def test_resource_share_validated(self):
        cm = KernelCostModel(A100_40G)
        with pytest.raises(ValueError):
            cm.tile_time(mem_tile(100.0), resource_share=0.0)

    def test_padded_flops_floor(self):
        c = TileCost(flops=100.0, padded_flops=10.0)
        assert c.padded_flops == 100.0

    def test_merge(self):
        a = mem_tile(10.0)
        b = compute_tile(5.0)
        m = a.merge(b)
        assert m.bytes_read == 10.0 and m.flops == 6.0


class TestPersistentExecutor:
    def test_bandwidth_never_exceeds_peak(self):
        exe = PersistentKernelExecutor(A100_40G)
        queues = [[mem_tile(1e6)] for _ in range(A100_40G.num_sms)]
        rep = exe.run_persistent(queues)
        assert rep.achieved_bandwidth() <= A100_40G.peak_bandwidth_bytes * 1.001

    def test_oversubscribed_grid_not_faster(self):
        exe = PersistentKernelExecutor(A100_40G)
        n = A100_40G.num_sms
        one = exe.run_persistent([[mem_tile(1e6)] for _ in range(n)])
        two = exe.run_persistent([[mem_tile(0.5e6)] for _ in range(2 * n)])
        assert two.makespan == pytest.approx(one.makespan, rel=0.05)

    def test_straggler_limited_by_sm_cap(self):
        """A single CTA holding all bytes cannot draw full device bandwidth —
        the reason split-KV matters."""
        exe = PersistentKernelExecutor(A100_40G, single_sm_bw_fraction=0.05)
        total = 100e6
        lone = exe.run_persistent([[mem_tile(total)]] + [[] for _ in range(107)])
        split = exe.run_persistent([[mem_tile(total / 108)] for _ in range(108)])
        assert lone.makespan > 10 * split.makespan

    def test_balance_metric(self):
        exe = PersistentKernelExecutor(A100_40G)
        rep = exe.run_persistent([[mem_tile(1e6)], [mem_tile(1e6)]])
        assert rep.balance == pytest.approx(1.0)
        rep2 = exe.run_persistent([[mem_tile(1e6)], []])
        assert rep2.balance < 1.0

    def test_compute_bound_uses_tensor_roof(self):
        exe = PersistentKernelExecutor(A100_40G)
        cm = exe.cost_model
        flops = 1e9
        rep = exe.run_persistent([[compute_tile(flops)]])
        expected = flops / (A100_40G.sm_fp16_flops * cm.mma_efficiency)
        assert rep.makespan == pytest.approx(
            expected + cm.tile_latency + A100_40G.kernel_dispatch_overhead, rel=0.01
        )

    def test_cuda_core_roof_slower(self):
        exe = PersistentKernelExecutor(A100_40G)
        tc = exe.run_persistent([[compute_tile(1e9)]])
        cc = TileCost(flops=1e9, padded_flops=1e9, uses_tensor_cores=False)
        cuda = exe.run_persistent([[cc]])
        assert cuda.makespan > tc.makespan

    def test_empty(self):
        exe = PersistentKernelExecutor(A100_40G)
        rep = exe.run_persistent([])
        assert rep.num_tiles == 0 and rep.total_bytes == 0

    def test_totals_accumulate(self):
        exe = PersistentKernelExecutor(A100_40G)
        rep = exe.run_persistent([[mem_tile(100.0, 50.0), compute_tile(10.0)]])
        assert rep.total_bytes == 150.0
        assert rep.total_flops == 11.0
        assert rep.num_tiles == 2


class TestGridExecutor:
    def test_wave_quantization(self):
        """One block more than the SM count costs a whole extra wave."""
        exe = PersistentKernelExecutor(A100_40G)
        n = A100_40G.num_sms
        flops = 1e9
        full = exe.run_grid([compute_tile(flops)] * n)
        plus1 = exe.run_grid([compute_tile(flops)] * (n + 1))
        assert plus1.makespan > 1.8 * full.makespan

    def test_in_order_dispatch_tail(self):
        """A heavy block submitted last extends the makespan by its length."""
        exe = PersistentKernelExecutor(A100_40G)
        light = [compute_tile(1e7)] * (A100_40G.num_sms * 2)
        heavy = compute_tile(1e9)
        early = exe.run_grid([heavy] + light)
        late = exe.run_grid(light + [heavy])
        assert late.makespan > early.makespan

    def test_combine_sequential(self):
        exe = PersistentKernelExecutor(A100_40G)
        a = exe.run_grid([compute_tile(1e8)])
        b = exe.run_grid([compute_tile(1e8)])
        c = a.combine(b)
        assert c.makespan == pytest.approx(a.makespan + b.makespan)
        assert c.total_flops == 2e8


class TestMemEfficiency:
    def test_lower_efficiency_slower(self):
        good = PersistentKernelExecutor(A100_40G, KernelCostModel(A100_40G))
        bad = PersistentKernelExecutor(
            A100_40G, KernelCostModel(A100_40G, mem_efficiency=0.5)
        )
        queues = [[mem_tile(1e6)] for _ in range(108)]
        assert bad.run_persistent(queues).makespan > 1.5 * good.run_persistent(queues).makespan


class TestReportAccessors:
    def test_zero_makespan_guards(self):
        from repro.gpu import SimReport

        rep = SimReport(0.0, 0.0, 0.0, 0, 0, [])
        assert rep.achieved_bandwidth() == 0.0
        assert rep.achieved_flops() == 0.0
        assert rep.balance == 1.0

    def test_utilizations_consistent(self):
        exe = PersistentKernelExecutor(A100_40G)
        rep = exe.run_persistent([[mem_tile(1e6)] for _ in range(108)])
        assert rep.bandwidth_utilization(A100_40G) == pytest.approx(
            rep.achieved_bandwidth() / A100_40G.peak_bandwidth_bytes
        )
        assert 0 < rep.flops_utilization(A100_40G) < 1
