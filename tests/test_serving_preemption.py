"""Tests for preemption-by-recompute under KV-pool pressure."""

import pytest

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.kvcache import OutOfPagesError
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def engine(num_pool_pages, chunked=False, max_running=64):
    cfg = EngineConfig(
        num_pool_pages=num_pool_pages, max_running=max_running,
        chunked_prefill=chunked, prefill_chunk_size=512,
    )
    return ServingEngine(MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg)


class TestPreemption:
    def test_tight_pool_completes_with_preemptions(self):
        # 8 requests of ~40 pages each decoding to ~53 pages; a 256-page
        # pool cannot hold all eight at once.
        reqs = [Request(i * 0.001, 640, 200) for i in range(8)]
        m = engine(num_pool_pages=256).run(reqs)
        assert len(m.traces) == 8
        assert m.total_output_tokens == 8 * 200
        assert m.preemptions > 0

    def test_roomy_pool_never_preempts(self):
        reqs = [Request(i * 0.001, 640, 50) for i in range(4)]
        m = engine(num_pool_pages=1 << 12).run(reqs)
        assert m.preemptions == 0

    def test_preemption_slows_victims_not_correctness(self):
        """Token counts are preserved; the recompute shows up as an ITL
        spike on some stream."""
        reqs = [Request(i * 0.001, 640, 120) for i in range(8)]
        tight = engine(num_pool_pages=230).run(reqs)
        roomy = engine(num_pool_pages=1 << 12).run(reqs)
        assert tight.total_output_tokens == roomy.total_output_tokens
        assert tight.preemptions > 0
        # The preempted stream's worst gap exceeds the roomy worst gap.
        assert max(t.itls.max() for t in tight.traces) > max(
            t.itls.max() for t in roomy.traces
        )

    def test_chunked_prefill_path_also_preempts(self):
        reqs = [Request(i * 0.001, 640, 150) for i in range(8)]
        m = engine(num_pool_pages=256, chunked=True).run(reqs)
        assert len(m.traces) == 8
        assert m.preemptions > 0

    def test_impossible_pool_raises(self):
        # The pool cannot hold even one prompt: no schedule exists.
        reqs = [Request(0.0, 640, 10)]
        with pytest.raises(OutOfPagesError, match="num_pool_pages"):
            engine(num_pool_pages=30).run(reqs)

    def test_tight_pool_serializes_instead_of_crashing(self):
        # Two streams cannot coexist, but one at a time fits: the engine
        # must make progress by queueing/preempting, not crash.
        reqs = [Request(0.0, 640, 200), Request(0.0, 640, 200)]
        m = engine(num_pool_pages=81).run(reqs)
        assert len(m.traces) == 2
        assert m.total_output_tokens == 400

    def test_preemptions_reported_in_summary(self):
        reqs = [Request(i * 0.001, 640, 120) for i in range(8)]
        m = engine(num_pool_pages=256).run(reqs)
        assert m.summary()["preemptions"] == float(m.preemptions)
