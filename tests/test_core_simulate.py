"""Pins the vectorized cost simulation to the per-item reference path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.utils.dtypes import StorageDType


def both_paths(heads, kv_lens, qo_lens, **kwargs):
    """Run the slow (per-item) and fast (vectorized) paths; return reports."""
    page_size = kwargs.pop("page_size", 16)
    causal = kwargs.pop("causal", True)
    mapping, slots = make_paged_mapping(kv_lens, qo_lens, page_size, causal)
    ws = WorkspaceBuffer(1 << 28)
    w = BatchAttentionWrapper(
        VANILLA, heads, ws, avg_qo_len=float(np.mean(qo_lens)), **kwargs
    )
    w.plan(mapping)
    total_q = mapping.total_qo
    q = np.zeros((total_q, heads.num_qo_heads, heads.head_dim))
    kp = np.zeros((slots, heads.num_kv_heads, heads.head_dim))
    _, _, slow = w.run(q, kp, kp, compute=True)
    _, _, fast = w.run(None, compute=False)
    return slow, fast


def assert_reports_equal(slow, fast):
    assert fast.makespan == pytest.approx(slow.makespan, rel=1e-9)
    assert fast.total_flops == pytest.approx(slow.total_flops, rel=1e-9)
    assert fast.total_bytes == pytest.approx(slow.total_bytes, rel=1e-9)
    assert fast.num_tiles == slow.num_tiles


class TestEquivalence:
    def test_decode_batch(self):
        slow, fast = both_paths(HeadConfig(8, 2, 32), [100, 900, 33], [1, 1, 1])
        assert_reports_equal(slow, fast)

    def test_prefill_causal(self):
        slow, fast = both_paths(HeadConfig(4, 4, 16), [130, 64], [130, 64])
        assert_reports_equal(slow, fast)

    def test_non_causal(self):
        slow, fast = both_paths(HeadConfig(4, 2, 16), [64, 80], [8, 8], causal=False)
        assert_reports_equal(slow, fast)

    def test_split_kv_with_merges(self):
        slow, fast = both_paths(HeadConfig(4, 2, 16), [5000, 64], [1, 1])
        assert_reports_equal(slow, fast)

    def test_no_fusion(self):
        slow, fast = both_paths(
            HeadConfig(8, 2, 16), [200, 50], [1, 1], fuse_head_groups=False
        )
        assert_reports_equal(slow, fast)

    def test_fp8(self):
        slow, fast = both_paths(
            HeadConfig(4, 2, 16), [128], [1], kv_dtype=StorageDType.FP8_E4M3
        )
        assert_reports_equal(slow, fast)

    def test_dense_gather(self):
        slow, fast = both_paths(HeadConfig(4, 2, 16), [256], [16], sparse_gather=False)
        assert_reports_equal(slow, fast)

    def test_vector_sparse(self):
        slow, fast = both_paths(HeadConfig(4, 2, 16), [77], [1], page_size=1)
        assert_reports_equal(slow, fast)

    def test_fa3(self):
        from repro.gpu import H100_80G

        slow, fast = both_paths(HeadConfig(4, 2, 16), [300, 900], [32, 64], gpu=H100_80G)
        assert_reports_equal(slow, fast)

    @given(
        st.lists(
            st.tuples(st.integers(1, 64), st.integers(1, 2000)),
            min_size=1,
            max_size=6,
        ),
        st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_batches(self, lens, causal):
        qo = [min(a, b) for a, b in lens]  # causal needs qo ≤ kv
        kv = [b for _, b in lens]
        slow, fast = both_paths(HeadConfig(4, 2, 16), kv, qo, causal=causal)
        assert_reports_equal(slow, fast)
