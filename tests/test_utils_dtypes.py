"""Tests for storage dtype emulation (fp16 / fp8 e4m3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.dtypes import (
    FP8_E4M3_MAX,
    StorageDType,
    dequantize_fp8,
    quantize_fp8,
    round_to_storage,
)


class TestQuantizeFP8:
    def test_exact_values_preserved(self):
        # Powers of two and small integers are exactly representable.
        for v in [0.0, 1.0, -1.0, 2.0, 0.5, 0.25, 448.0, -448.0, 1.5, 3.5]:
            assert quantize_fp8(np.array(v)) == pytest.approx(v)

    def test_saturation(self):
        assert quantize_fp8(np.array(1e6)) == FP8_E4M3_MAX
        assert quantize_fp8(np.array(-1e6)) == -FP8_E4M3_MAX

    def test_flush_to_zero_below_subnormal(self):
        tiny = 2.0**-12
        assert quantize_fp8(np.array(tiny)) == 0.0

    def test_subnormal_grid(self):
        # Smallest subnormal is 2^-9; multiples are representable.
        v = 3 * 2.0**-9
        assert quantize_fp8(np.array(v)) == pytest.approx(v)

    def test_relative_error_bound_normals(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.02, 400.0, size=1000)
        q = quantize_fp8(x)
        # 3 mantissa bits → relative error ≤ 2^-4.
        assert np.all(np.abs(q - x) <= np.abs(x) * 2.0**-4 + 1e-12)

    @given(st.floats(-448, 448, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, v):
        q = quantize_fp8(np.array(v))
        assert quantize_fp8(q) == pytest.approx(float(q), rel=0, abs=0)

    @given(
        st.floats(-400, 400, allow_nan=False),
        st.floats(-400, 400, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone(self, a, b):
        qa = float(quantize_fp8(np.array(a)))
        qb = float(quantize_fp8(np.array(b)))
        if a <= b:
            assert qa <= qb

    def test_sign_symmetry(self):
        x = np.linspace(0.01, 440, 97)
        assert np.allclose(quantize_fp8(-x), -quantize_fp8(x))

    def test_preserves_shape_and_dtype(self):
        x = np.ones((3, 4, 5))
        q = quantize_fp8(x)
        assert q.shape == (3, 4, 5)
        assert q.dtype == np.float32


class TestDequantize:
    def test_scale(self):
        x = np.array([1.0, 2.0], dtype=np.float32)
        assert np.allclose(dequantize_fp8(x, scale=2.5), [2.5, 5.0])


class TestRoundToStorage:
    def test_fp32_passthrough(self):
        x = np.array([1.23456789], dtype=np.float64)
        assert round_to_storage(x, StorageDType.FP32)[0] == np.float32(1.23456789)

    def test_fp16_rounds(self):
        x = np.array([1.0 + 2.0**-12])
        r = round_to_storage(x, StorageDType.FP16)
        assert r[0] == np.float16(x[0])

    def test_fp8_matches_quantize(self):
        x = np.linspace(-10, 10, 31)
        assert np.allclose(round_to_storage(x, StorageDType.FP8_E4M3), quantize_fp8(x))

    def test_unknown_dtype_raises(self):
        with pytest.raises(ValueError):
            round_to_storage(np.ones(2), "fp4")  # type: ignore[arg-type]


class TestItemsize:
    def test_itemsizes(self):
        assert StorageDType.FP32.itemsize == 4
        assert StorageDType.FP16.itemsize == 2
        assert StorageDType.FP8_E4M3.itemsize == 1
