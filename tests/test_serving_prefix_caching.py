"""Tests for radix-style cross-request prefix caching in the engine."""

import pytest

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def engine(prefix_caching, chunked=False):
    cfg = EngineConfig(
        num_pool_pages=1 << 14, prefix_caching=prefix_caching,
        chunked_prefill=chunked, prefill_chunk_size=2048,
    )
    return ServingEngine(MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg)


class TestRequestValidation:
    def test_prefix_len_bounds(self):
        with pytest.raises(ValueError, match="prefix_len"):
            Request(0.0, 100, 4, prefix_len=200, prefix_group=1)

    def test_prefix_len_requires_group(self):
        with pytest.raises(ValueError, match="prefix_group"):
            Request(0.0, 100, 4, prefix_len=50)


def shared_prefix_requests(n=6, prefix=4096, suffix=64, gap=0.4):
    return [
        Request(i * gap, prefix + suffix, 4, prefix_group=7, prefix_len=prefix)
        for i in range(n)
    ]


class TestPrefixReuse:
    def test_all_complete_with_caching(self):
        m = engine(True).run(shared_prefix_requests())
        assert len(m.traces) == 6
        assert m.total_output_tokens == 24

    def test_later_requests_prefill_faster(self):
        """After the first request caches the prefix, followers prefill only
        their suffix: much lower TTFT."""
        reqs = shared_prefix_requests()
        cached = engine(True).run(reqs)
        plain = engine(False).run(reqs)
        # First request pays full prefill either way.
        assert cached.traces[0].ttft == pytest.approx(plain.traces[0].ttft, rel=0.05)
        # Followers are dominated by the 64-token suffix, not the 4k prefix.
        for trace in cached.traces[1:]:
            assert trace.ttft < 0.35 * plain.traces[1].ttft

    def test_disjoint_groups_not_shared(self):
        reqs = [
            Request(0.0, 2048, 4, prefix_group=1, prefix_len=2048 - 64),
            Request(0.5, 2048, 4, prefix_group=2, prefix_len=2048 - 64),
        ]
        m = engine(True).run(reqs)
        # Different groups: the second pays its own full prefill.
        assert m.traces[1].ttft > 0.8 * m.traces[0].ttft

    def test_fully_cached_prompt_still_computes_last_token(self):
        """prefix_len == prompt_len: at least the final position must be
        prefilled to produce logits."""
        reqs = [
            Request(0.0, 512, 3, prefix_group=1, prefix_len=512),
            Request(0.5, 512, 3, prefix_group=1, prefix_len=512),
        ]
        m = engine(True).run(reqs)
        assert len(m.traces) == 2
        assert m.traces[1].ttft > 0

    def test_works_with_chunked_prefill(self):
        reqs = shared_prefix_requests(n=4)
        m = engine(True, chunked=True).run(reqs)
        assert len(m.traces) == 4

    def test_caching_off_by_default(self):
        cfg = EngineConfig()
        assert cfg.prefix_caching is False
