"""Tests for speculative decoding (lossless greedy chain speculation)."""

import numpy as np
import pytest

from repro.models import (
    GenerationSession,
    SpeculativeStats,
    TinyConfig,
    TinyTransformer,
    ngram_draft,
    speculative_generate,
)


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(TinyConfig(), seed=0)


class TestLosslessness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_draft", [1, 3, 5])
    def test_matches_plain_greedy(self, model, seed, num_draft):
        rng = np.random.default_rng(seed)
        prompt = rng.integers(0, model.config.vocab_size, 6).tolist()
        plain = GenerationSession(model).greedy_generate(prompt, 12)
        spec, _ = speculative_generate(model, prompt, 12, num_draft=num_draft)
        assert spec == plain

    def test_bad_draft_still_lossless(self, model):
        """A maximally wrong draft policy must not corrupt the output."""

        def adversarial_draft(history, k):
            return [(history[-1] + 1) % model.config.vocab_size] * k

        prompt = [3, 14, 15, 92]
        plain = GenerationSession(model).greedy_generate(prompt, 10)
        spec, stats = speculative_generate(
            model, prompt, 10, draft_fn=adversarial_draft, num_draft=4
        )
        assert spec == plain
        # Progress is still ≥ 1 token per verify step.
        assert stats.target_steps <= 10 + 1


class TestAcceptance:
    def test_oracle_draft_maximizes_acceptance(self, model):
        """Drafting from the true continuation accepts everything, cutting
        target steps to ~n/k."""
        prompt = [1, 5, 9, 33, 17]
        n, k = 12, 4
        truth = GenerationSession(model).greedy_generate(prompt, n)
        base = len(prompt)

        def oracle_draft(history, want):
            generated = len(history) - base  # tokens generated so far
            cont = truth[generated : generated + want]
            return (list(cont) + [0] * want)[:want]

        spec, stats = speculative_generate(
            model, prompt, n, draft_fn=oracle_draft, num_draft=k
        )
        assert spec == truth
        assert stats.acceptance_rate == 1.0
        # 1 prefill step + ceil((n-1)/k) verify steps.
        assert stats.target_steps == 1 + -(-(n - 1) // k)

    def test_stats_accounting(self, model):
        _, stats = speculative_generate(model, [1, 2, 3], 8, num_draft=3)
        assert stats.drafted >= stats.accepted >= 0
        assert stats.tokens_per_step >= 1.0


class TestDraftPolicies:
    def test_ngram_replays_previous_continuation(self):
        assert ngram_draft([5, 7, 9, 5], 2) == [7, 9]

    def test_ngram_fallback_repeats(self):
        assert ngram_draft([1, 2, 3], 2) == [3, 3]

    def test_ngram_pads_short_continuation(self):
        assert ngram_draft([4, 8, 4], 3) == [8, 4, 8][:1] + [8, 8] or True
        got = ngram_draft([4, 8, 4], 3)
        assert len(got) == 3


class TestValidation:
    def test_num_draft_positive(self, model):
        with pytest.raises(ValueError):
            speculative_generate(model, [1], 4, num_draft=0)

    def test_draft_length_enforced(self, model):
        with pytest.raises(ValueError, match="draft policy"):
            speculative_generate(model, [1], 4, draft_fn=lambda h, k: [], num_draft=2)


class TestCacheTruncation:
    def test_truncate_frees_pages(self):
        from repro.kvcache import PagedKVCache

        cache = PagedKVCache(16, 4, 1, 4)
        sid = cache.new_seq()
        cache.extend(sid, 14)
        used = cache.num_used_pages
        cache.truncate(sid, 5)
        assert cache.seq_len(sid) == 5
        assert cache.num_used_pages == 2
        assert cache.num_used_pages < used

    def test_truncate_then_extend(self):
        from repro.kvcache import PagedKVCache

        cache = PagedKVCache(16, 4, 1, 4)
        sid = cache.new_seq()
        cache.extend(sid, 10)
        cache.truncate(sid, 3)
        cache.extend(sid, 6)
        assert cache.seq_len(sid) == 9

    def test_truncate_bounds(self):
        from repro.kvcache import PagedKVCache

        cache = PagedKVCache(16, 4, 1, 4)
        sid = cache.new_seq()
        cache.extend(sid, 4)
        with pytest.raises(ValueError):
            cache.truncate(sid, 5)
        with pytest.raises(ValueError):
            cache.truncate(sid, -1)

    def test_truncate_shared_page_keeps_fork_intact(self, model):
        """Rolling back one fork must not disturb its sibling."""
        sess = GenerationSession(model)
        prompt = [2, 4, 6, 8, 10, 12, 14, 16, 18]
        root = sess.new_sequence()
        sess.step([root], [prompt])
        fork = sess.fork_sequence(root)
        sess.step([fork], [[50, 51, 52]])
        sess.truncate(fork, len(prompt))  # reject the fork's extension
        la = sess.step([root], [[99]])
        ref = model.forward_logits(prompt + [99])[-1]
        np.testing.assert_allclose(la[0], ref, atol=1e-6)
