"""Tests for crash-safe serving: checkpoints, write-ahead journal, recovery.

The load-bearing property (ISSUE acceptance): a seeded workload interrupted
by injected engine deaths — including mid-step — and recovered from the
latest snapshot plus journal replay produces byte-identical tokens to an
uninterrupted run, and recovery *refuses* to resume from a snapshot whose
KV pages cannot be verified or rebuilt.
"""

import json

import pytest

from repro.core import HeadConfig
from repro.faults import EngineCrash, FaultPlan, ResilienceConfig
from repro.gpu import H100_80G
from repro.serving import (
    CheckpointConfig,
    CheckpointStore,
    CrashHarness,
    DirectoryStore,
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    NoSnapshotError,
    RecoveryManager,
    Request,
    ServingEngine,
    SnapshotIntegrityError,
    SnapshotVerificationError,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)

#: Alternating boundary and mid-step kills (>= 1 mid-step, per acceptance).
SCRIPT = ((3, "boundary"), (7, "mid-step"), (11, "boundary"))


def engine(**kw):
    cfg = kw.pop("config", EngineConfig(max_running=64))
    return ServingEngine(
        MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg, **kw
    )


def workload(n=8):
    return [
        Request(i * 0.004, 48 + 29 * (i % 4), 12 + 5 * (i % 3))
        for i in range(n)
    ]


def tokens_by_stream(metrics):
    return {(t.req_id, t.gen_index): t.tokens for t in metrics.traces}


def stressful_plan(seed, crash_rate=0.0):
    return FaultPlan(
        seed=seed,
        kernel_fault_rate=0.15,
        straggler_rate=0.05,
        corruption_rate=0.05,
        alloc_fault_rate=0.05,
        crash_rate=crash_rate,
    )


def crash_mid_run(store, reqs, script=((9, "boundary"),), fault_plan=None):
    """Run an engine until a scripted death; the store keeps its snapshots
    and journal, exactly like a killed process would leave on disk."""
    eng = engine(
        checkpoint=CheckpointConfig(every_steps=4),
        checkpoint_store=store,
        fault_plan=fault_plan,
    )
    eng._crash_script = set(script)
    with pytest.raises(EngineCrash):
        eng.run(reqs)


class TestKillRestore:
    def test_scripted_kills_recover_token_exact(self):
        reqs = workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        expected = tokens_by_stream(baseline)

        store = CheckpointStore()

        def factory():
            return engine(
                checkpoint=CheckpointConfig(every_steps=4),
                checkpoint_store=store,
                resilience=ResilienceConfig(),
            )

        report = CrashHarness(
            factory, reqs, store, crash_script=SCRIPT, expected_tokens=expected
        ).run()
        assert report.crashes == len(SCRIPT)
        assert report.recoveries == len(SCRIPT)
        assert "mid-step" in report.crash_phases
        assert report.compared == len(expected)
        assert report.token_divergence == 0
        s = report.metrics.summary()
        assert s["ckpt_snapshots"] > 0
        assert s["recover_replayed_tokens"] > 0
        assert s["recover_token_divergence"] == 0
        assert s["recover_resumed"] > 0

    def test_kill_restore_composes_with_chaos(self):
        """Deaths on top of kernel faults, KV corruption, alloc failures
        and stragglers — every surviving stream still matches the
        uninterrupted chaos run byte for byte."""
        reqs = workload(10)
        baseline = engine(
            fault_plan=stressful_plan(7), resilience=ResilienceConfig()
        ).run(reqs)
        expected = tokens_by_stream(baseline)

        store = CheckpointStore()
        # One plan shared across lives keeps the crash stream advanced
        # past already-fired deaths; every other stream is rewound to the
        # snapshot by resume().
        shared = stressful_plan(7, crash_rate=0.02)

        def factory():
            return engine(
                checkpoint=CheckpointConfig(every_steps=4),
                checkpoint_store=store,
                fault_plan=shared,
            )

        report = CrashHarness(
            factory, reqs, store, crash_script=SCRIPT, expected_tokens=expected
        ).run()
        assert report.crashes >= len(SCRIPT)
        assert report.token_divergence == 0
        assert report.compared > 0
        assert report.metrics.summary()["faults_injected"] > 0

    def test_crash_before_first_periodic_snapshot_uses_genesis(self):
        """A death at step 1 lands before any periodic snapshot; recovery
        falls back to the genesis snapshot taken before step 0."""
        reqs = workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        store = CheckpointStore()

        def factory():
            return engine(
                checkpoint=CheckpointConfig(every_steps=50),
                checkpoint_store=store,
            )

        report = CrashHarness(
            factory, reqs, store, crash_script=((1, "boundary"),),
            expected_tokens=tokens_by_stream(baseline),
        ).run()
        assert report.crashes == 1
        assert report.token_divergence == 0

    def test_seeded_crash_without_checkpoint_kills_the_run(self):
        """The crash fault site is real death: with no checkpoint layer the
        run aborts instead of degrading into some partial recovery."""
        eng = engine(fault_plan=FaultPlan(seed=0, crash_rate=0.5))
        with pytest.raises(EngineCrash) as exc:
            eng.run(workload(4))
        assert exc.value.phase in ("boundary", "mid-step")

    def test_kill_restore_is_deterministic(self):
        reqs = workload()

        def campaign():
            store = CheckpointStore()

            def factory():
                return engine(
                    checkpoint=CheckpointConfig(every_steps=4),
                    checkpoint_store=store,
                )

            return CrashHarness(factory, reqs, store, crash_script=SCRIPT).run()

        a, b = campaign(), campaign()
        assert a.crash_phases == b.crash_phases
        assert tokens_by_stream(a.metrics) == tokens_by_stream(b.metrics)
        assert a.metrics.summary() == b.metrics.summary()


class TestColdStart:
    def test_directory_store_cold_start_recovers_token_exact(self, tmp_path):
        """Kill the 'process' (engine + store objects dropped), reopen the
        journal directory fresh, recover and resume — the snapshot is
        self-contained, no request list need be re-supplied."""
        reqs = workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        crash_mid_run(DirectoryStore(tmp_path), reqs, ((9, "mid-step"),))
        assert (tmp_path / "journal.jsonl").exists()
        assert sorted(tmp_path.glob("snap-*.json"))

        store = DirectoryStore(tmp_path)  # a new process opening the dir
        recovered = RecoveryManager(store).recover()
        assert [r.arrival for r in recovered.requests] == [
            r.arrival for r in reqs
        ]
        eng = engine(
            checkpoint=CheckpointConfig(every_steps=4), checkpoint_store=store
        )
        metrics = eng.resume(recovered)
        assert tokens_by_stream(metrics) == tokens_by_stream(baseline)
        stats = metrics.fault_stats
        assert stats["recover_token_divergence"] == 0
        assert stats["recover_replayed_tokens"] > 0

    def test_recover_with_no_snapshot_refuses(self):
        with pytest.raises(NoSnapshotError):
            RecoveryManager(CheckpointStore()).recover()

    def test_bit_rotted_snapshot_fails_integrity(self):
        reqs = workload()
        store = CheckpointStore()
        crash_mid_run(store, reqs)
        store.corrupt_snapshot(store.latest_snapshot_id())
        with pytest.raises(SnapshotIntegrityError):
            RecoveryManager(store).recover()

    def test_recover_rejects_wrong_request_count(self):
        reqs = workload()
        store = CheckpointStore()
        crash_mid_run(store, reqs)
        with pytest.raises(Exception, match="requests"):
            RecoveryManager(store, requests=reqs[:-1]).recover()


class TestVerificationRefusal:
    def _crashed_snapshot(self, reqs):
        store = CheckpointStore()
        crash_mid_run(store, reqs)
        return store.load_snapshot(store.latest_snapshot_id())

    def _with_corrupt_page(self, snap):
        """Mark one live KV page corrupt (version bumped past its stamp),
        exactly what an undetected in-flight corruption looks like."""
        snap = json.loads(json.dumps(snap))
        live = [i for i, rc in enumerate(snap["cache"]["refcount"]) if rc > 0]
        assert live, "crash left no live pages; pick an earlier crash step"
        snap["cache"]["page_version"][live[0]] += 1
        return snap, live[0]

    def test_refuses_when_checksums_were_disabled(self):
        snap, _ = self._with_corrupt_page(self._crashed_snapshot(workload()))
        snap["cache"]["checksums"] = False
        store = CheckpointStore()
        store.put_snapshot(json.dumps(snap, sort_keys=True))
        with pytest.raises(SnapshotVerificationError, match="refusing"):
            RecoveryManager(store).recover()

    def test_refuses_when_recompute_disallowed(self):
        snap, page = self._with_corrupt_page(self._crashed_snapshot(workload()))
        store = CheckpointStore()
        store.put_snapshot(json.dumps(snap, sort_keys=True))
        with pytest.raises(SnapshotVerificationError, match=str(page)):
            RecoveryManager(store, allow_recompute=False).recover()

    def test_recompute_path_heals_corrupt_snapshot_pages(self):
        """With checksums on, recovery accepts the corrupt snapshot and the
        engine's own scrub/recompute path rebuilds the page — the resumed
        run still matches the uninterrupted baseline."""
        reqs = workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        snap, page = self._with_corrupt_page(self._crashed_snapshot(reqs))
        store = CheckpointStore()
        store.put_snapshot(json.dumps(snap, sort_keys=True))
        recovered = RecoveryManager(store).recover()
        assert recovered.corrupt_pages == [page]
        eng = engine(
            checkpoint=CheckpointConfig(every_steps=4), checkpoint_store=store
        )
        metrics = eng.resume(recovered)
        assert tokens_by_stream(metrics) == tokens_by_stream(baseline)


class TestDisabledIsFree:
    def test_disabled_checkpoint_is_bit_identical_to_plain_run(self):
        """``every_steps=0`` (the default) must be indistinguishable from
        an engine that never heard of checkpointing."""
        reqs = workload()
        plain = engine().run(reqs)
        off = engine(checkpoint=CheckpointConfig(every_steps=0)).run(reqs)
        assert off.summary() == plain.summary()

        eng = engine(checkpoint=CheckpointConfig(every_steps=0))
        assert eng.checkpoint is None
        assert eng.resilience is None  # not even the implied default
        eng.run(reqs)
        assert eng._ckpt is None and eng._journal is None

    def test_disabled_checkpoint_identical_under_resilience(self):
        reqs = workload()
        a = engine(resilience=ResilienceConfig()).run(reqs)
        b = engine(
            resilience=ResilienceConfig(),
            checkpoint=CheckpointConfig(every_steps=0),
        ).run(reqs)
        assert a.summary() == b.summary()
        assert tokens_by_stream(a) == tokens_by_stream(b)

    def test_checkpointing_on_does_not_perturb_the_trajectory(self):
        """Snapshots observe the engine; they never advance its clock or
        reorder its work."""
        reqs = workload()
        a = engine(resilience=ResilienceConfig()).run(reqs)
        b = engine(checkpoint=CheckpointConfig(every_steps=2)).run(reqs)
        assert tokens_by_stream(a) == tokens_by_stream(b)
        sa, sb = a.summary(), b.summary()
        for key in ("median_itl", "median_ttft", "p99_ttft", "throughput_tok_s"):
            assert sa[key] == sb[key]
        assert sb["ckpt_snapshots"] > 0


class TestJournal:
    def test_journal_is_a_complete_audit(self):
        reqs = workload()
        store = CheckpointStore()
        metrics = engine(
            checkpoint=CheckpointConfig(every_steps=4), checkpoint_store=store
        ).run(reqs)
        recs = store.journal_records()
        by_type = {}
        for r in recs:
            by_type.setdefault(r["type"], []).append(r)
        assert len(by_type["admit"]) == len(reqs)
        assert len(by_type["finish"]) == len(reqs)
        assert len(by_type["token"]) == sum(r.output_len for r in reqs)
        assert len(by_type["snapshot"]) == int(
            metrics.summary()["ckpt_snapshots"]
        )
        assert len(by_type["complete"]) == 1
        assert metrics.summary()["ckpt_journal_records"] == len(recs)

    def test_journal_can_be_disabled_independently(self):
        store = CheckpointStore()
        engine(
            checkpoint=CheckpointConfig(every_steps=4, journal=False),
            checkpoint_store=store,
        ).run(workload())
        assert store.journal_records() == []
        assert store.latest_snapshot_id() is not None

    def test_tampered_journal_surfaces_as_divergence(self):
        """The replay guard is a real check: corrupt one journaled token
        and the resumed run reports exactly one divergence."""
        reqs = workload()
        store = CheckpointStore()
        crash_mid_run(store, reqs)
        sid = store.latest_snapshot_id()
        recs = store.journal_records()
        marker = max(
            i for i, r in enumerate(recs)
            if r["type"] == "snapshot" and r["snapshot"] == sid
        )
        idx = next(
            i for i in range(marker + 1, len(recs))
            if recs[i]["type"] == "token"
        )
        recs[idx]["token"] += 1
        store._journal[idx] = json.dumps(recs[idx], sort_keys=True)

        recovered = RecoveryManager(store).recover()
        window = recovered.replay.window_size
        assert window > 0
        eng = engine(
            checkpoint=CheckpointConfig(every_steps=4), checkpoint_store=store
        )
        stats = eng.resume(recovered).fault_stats
        assert stats["recover_token_divergence"] == 1
        assert stats["recover_replayed_tokens"] == window - 1


class TestRecoveryMetrics:
    def test_recover_resumed_is_separate_from_preemptions(self):
        """Dashboards must not conflate capacity eviction with restart
        recovery: the two counters move independently."""
        reqs = workload()
        clean = engine(resilience=ResilienceConfig()).run(reqs)
        assert clean.summary()["recover_resumed"] == 0

        store = CheckpointStore()

        def factory():
            return engine(
                checkpoint=CheckpointConfig(every_steps=4),
                checkpoint_store=store,
            )

        report = CrashHarness(
            factory, reqs, store, crash_script=((7, "boundary"),)
        ).run()
        s = report.metrics.summary()
        assert s["recover_resumed"] > 0
        assert s["recover_resumed"] == report.metrics.recover_resumed
        # Recovery resumed streams without charging a single preemption.
        assert report.metrics.preemptions == clean.preemptions
