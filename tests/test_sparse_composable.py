"""Tests for composable-format decomposition (paper §3.1.2)."""

import numpy as np
import pytest

from conftest import make_shared_prefix_mapping
from repro.sparse import (
    ComposableFormat,
    PrefixCluster,
    decompose_shared_prefix,
    detect_shared_prefixes,
    kv_from_page_table,
)


class TestPrefixCluster:
    def test_requests_must_be_consecutive(self):
        with pytest.raises(ValueError, match="consecutive"):
            PrefixCluster((0, 2), 16)

    def test_negative_prefix_rejected(self):
        with pytest.raises(ValueError):
            PrefixCluster((0, 1), -1)


class TestDecompose:
    def test_two_formats_produced(self):
        mapping, _, clusters = make_shared_prefix_mapping(2, 3, 64, 32)
        comp = decompose_shared_prefix(mapping, clusters)
        assert [m.label for m in comp] == ["prefix", "suffix"]

    def test_exact_partition_of_kv(self):
        """Every query's KV set is covered exactly once across formats."""
        mapping, _, clusters = make_shared_prefix_mapping(2, 3, 64, 40)
        comp = decompose_shared_prefix(mapping, clusters)
        prefix, suffix = comp.mappings
        for r in range(mapping.num_groups):
            full = set(mapping.kv.slot_indices(r).tolist())
            suf = set(suffix.kv.slot_indices(r).tolist())
            # Find the prefix group covering this request's rows.
            row = int(mapping.qo_indptr[r])
            pg = None
            for g in range(prefix.num_groups):
                s = int(prefix.q_row_starts[g])
                if s <= row < s + int(prefix.qo_lens[g]):
                    pg = g
            assert pg is not None
            pre = set(prefix.kv.slot_indices(pg).tolist())
            assert pre | suf == full
            assert not (pre & suf)

    def test_positions_preserved(self):
        mapping, _, clusters = make_shared_prefix_mapping(1, 2, 64, 32)
        comp = decompose_shared_prefix(mapping, clusters)
        prefix, suffix = comp.mappings
        assert prefix.kv_pos_offset[0] == 0
        assert np.all(suffix.kv_pos_offset == 64)
        # Decode queries still sit at their absolute last positions.
        assert np.all(suffix.q_pos_offset == mapping.q_pos_offset)

    def test_prefix_not_causal(self):
        mapping, _, clusters = make_shared_prefix_mapping(1, 2, 64, 32)
        comp = decompose_shared_prefix(mapping, clusters)
        assert comp.mappings[0].causal is False
        assert comp.mappings[1].causal is True

    def test_prefix_rounds_down_to_block(self):
        mapping, _, clusters = make_shared_prefix_mapping(1, 2, 64, 32)
        cl = PrefixCluster(clusters[0].requests, 70)  # not page aligned
        comp = decompose_shared_prefix(mapping, [cl])
        assert comp.mappings[0].kv.kv_lens[0] == 64

    def test_single_request_cluster_ignored(self):
        mapping, _, _ = make_shared_prefix_mapping(1, 2, 64, 32)
        comp = decompose_shared_prefix(mapping, [PrefixCluster((0,), 64)])
        assert len(comp) == 1  # falls back to the single format

    def test_short_prefix_ignored(self):
        mapping, _, clusters = make_shared_prefix_mapping(1, 2, 64, 32, page_size=16)
        cl = PrefixCluster(clusters[0].requests, 8)  # < one block
        comp = decompose_shared_prefix(mapping, [cl])
        assert len(comp) == 1

    def test_non_shared_prefix_rejected(self):
        # Two requests with entirely distinct pages.
        kv = kv_from_page_table([np.arange(4), np.arange(4, 8)], [64, 64], 16, 8)
        mapping_qo = np.array([0, 1, 2])
        from repro.sparse import AttentionMapping

        mapping = AttentionMapping(mapping_qo, kv, causal=True)
        with pytest.raises(ValueError, match="share"):
            decompose_shared_prefix(mapping, [PrefixCluster((0, 1), 64)])

    def test_double_claim_rejected(self):
        mapping, _, clusters = make_shared_prefix_mapping(1, 3, 64, 32)
        a = PrefixCluster(clusters[0].requests[:2], 64)
        b = PrefixCluster(clusters[0].requests[1:], 64)
        with pytest.raises(ValueError, match="two clusters"):
            decompose_shared_prefix(mapping, [a, b])

    def test_block_row_size_hint(self):
        mapping, _, clusters = make_shared_prefix_mapping(2, 4, 64, 32, qo_per_stream=2)
        comp = decompose_shared_prefix(mapping, clusters)
        assert comp.mappings[0].block_row_size == 8  # 4 streams × 2 queries


class TestDetect:
    def test_detects_planted_clusters(self):
        mapping, _, clusters = make_shared_prefix_mapping(3, 4, 64, 32)
        found = detect_shared_prefixes(mapping.kv, min_prefix_blocks=2)
        assert len(found) == 3
        for got, want in zip(found, clusters):
            assert got.requests == want.requests
            assert got.prefix_len == want.prefix_len

    def test_no_clusters_in_disjoint_pool(self):
        kv = kv_from_page_table(
            [np.arange(0, 2), np.arange(2, 4), np.arange(4, 6)], [32, 32, 32], 16, 6
        )
        assert detect_shared_prefixes(kv) == []

    def test_min_cluster_size(self):
        mapping, _, _ = make_shared_prefix_mapping(1, 2, 64, 32)
        assert detect_shared_prefixes(mapping.kv, min_cluster_size=3) == []


class TestComposableFormat:
    def test_single(self):
        mapping, _, _ = make_shared_prefix_mapping(1, 2, 64, 32)
        comp = ComposableFormat.single(mapping)
        assert len(comp) == 1
        assert comp.total_qo == mapping.total_qo


class TestMultiLevel:
    def _two_level_setup(self):
        """8 requests: all share a 32-token system prompt; requests 0-3 and
        4-7 additionally share 32 more tokens each (fork prompts)."""
        from repro.sparse import kv_from_page_table, AttentionMapping

        page = 16
        sys_pages = np.arange(0, 2)          # 32 tokens shared by everyone
        grp_a = np.arange(2, 4)              # +32 shared by requests 0-3
        grp_b = np.arange(4, 6)              # +32 shared by requests 4-7
        pages, kv_lens, c = [], [], 6
        for r in range(8):
            grp = grp_a if r < 4 else grp_b
            own = np.arange(c, c + 2)        # 32 unique tokens
            c += 2
            pages.append(np.concatenate([sys_pages, grp, own]))
            kv_lens.append(96)
        kv = kv_from_page_table(pages, kv_lens, page, c)
        mapping = AttentionMapping(np.arange(9, dtype=np.int64), kv, causal=True)
        levels = [
            [PrefixCluster(tuple(range(8)), 32)],
            [PrefixCluster(tuple(range(4)), 64), PrefixCluster(tuple(range(4, 8)), 64)],
        ]
        return mapping, levels, c * page

    def test_three_formats_produced(self):
        from repro.sparse import decompose_multi_level

        mapping, levels, _ = self._two_level_setup()
        comp = decompose_multi_level(mapping, levels)
        assert [m.label for m in comp] == ["prefix_l0", "prefix_l1", "suffix"]
        # Level 0: one group spanning all 8 queries; level 1: two groups.
        assert comp.mappings[0].num_groups == 1
        assert comp.mappings[1].num_groups == 2
        assert np.all(comp.mappings[1].kv_pos_offset == 32)
        assert np.all(comp.mappings[2].kv_pos_offset == 64)

    def test_numerics_match_single_format(self, rng):
        from repro.sparse import decompose_multi_level
        from repro import BatchAttentionWrapper, ComposableAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig, VANILLA

        mapping, levels, slots = self._two_level_setup()
        comp = decompose_multi_level(mapping, levels)
        heads = HeadConfig(4, 2, 16)
        q = rng.standard_normal((8, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        out_c, _ = cw.run(q, kp, vp)
        sw = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        sw.plan(mapping)
        out_s, _, _ = sw.run(q, kp, vp)
        np.testing.assert_allclose(out_c, out_s, atol=1e-5)

    def test_two_levels_beat_one_on_traffic(self, rng):
        """With a large shared system prompt, peeling it into its own
        level removes its duplicate reads across fork clusters."""
        from repro.sparse import decompose_multi_level, decompose_shared_prefix, \
            kv_from_page_table, AttentionMapping
        from repro import ComposableAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig, VANILLA

        page = 16
        sys_pages = np.arange(0, 64)  # 1024-token system prompt
        # Two fork clusters of 8 requests, each sharing 64 extra tokens.
        pages, kv_lens, c = [], [], 64
        grp_a = np.arange(c, c + 4); c += 4
        grp_b = np.arange(c, c + 4); c += 4
        for r in range(16):
            grp = grp_a if r < 8 else grp_b
            own = np.arange(c, c + 1); c += 1
            pages.append(np.concatenate([sys_pages, grp, own]))
            kv_lens.append(64 * page + 4 * page + page)
        kv = kv_from_page_table(pages, kv_lens, page, c)
        mapping = AttentionMapping(np.arange(17, dtype=np.int64), kv, causal=True)
        levels = [
            [PrefixCluster(tuple(range(16)), 64 * page)],
            [PrefixCluster(tuple(range(8)), 68 * page),
             PrefixCluster(tuple(range(8, 16)), 68 * page)],
        ]
        heads = HeadConfig(4, 2, 16)
        two = decompose_multi_level(mapping, levels)
        one = decompose_shared_prefix(mapping, levels[1])  # fork level only
        traffic = {}
        for name, comp in (("two", two), ("one", one)):
            cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27))
            cw.plan(comp)
            _, rep = cw.run(None, compute=False)
            traffic[name] = rep.total_bytes
        assert traffic["two"] < traffic["one"]

    def test_inner_prefix_must_extend_outer(self):
        from repro.sparse import decompose_multi_level

        mapping, levels, _ = self._two_level_setup()
        bad = [levels[0], [PrefixCluster(tuple(range(4)), 32)]]  # same as outer
        with pytest.raises(ValueError, match="extend"):
            decompose_multi_level(mapping, bad)

    def test_unequal_peeling_rejected(self):
        from repro.sparse import decompose_multi_level

        mapping, levels, _ = self._two_level_setup()
        # Outer level only covers half the requests the inner one does.
        bad_outer = [PrefixCluster(tuple(range(2, 6)), 32)]
        with pytest.raises(ValueError, match="unequal"):
            decompose_multi_level(mapping, [bad_outer, levels[1]])


class TestDecomposeProperties:
    """Property-based checks over random cluster structures."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 4),   # number of clusters
        st.integers(2, 4),   # cluster size
        st.integers(1, 4),   # prefix pages
        st.integers(1, 5),   # suffix pages
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_and_numerics(self, seed, n_clusters, csize, ppages, spages):
        from conftest import make_shared_prefix_mapping
        from repro import BatchAttentionWrapper, ComposableAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig, VANILLA

        page = 8
        mapping, slots, clusters = make_shared_prefix_mapping(
            n_clusters, csize, ppages * page, spages * page, page_size=page
        )
        comp = decompose_shared_prefix(mapping, clusters)
        assert len(comp) == 2

        # Partition: prefix ∪ suffix == full KV, disjoint, per request.
        prefix, suffix = comp.mappings
        for r in range(mapping.num_groups):
            full = set(mapping.kv.slot_indices(r).tolist())
            suf = set(suffix.kv.slot_indices(r).tolist())
            row = int(mapping.qo_indptr[r])
            pg = next(
                g for g in range(prefix.num_groups)
                if int(prefix.q_row_starts[g]) <= row
                < int(prefix.q_row_starts[g]) + int(prefix.qo_lens[g])
            )
            pre = set(prefix.kv.slot_indices(pg).tolist())
            assert pre | suf == full and not (pre & suf)

        # Numerics: ⊕-merged stack equals the single format.
        rng = np.random.default_rng(seed)
        heads = HeadConfig(2, 2, 8)
        q = rng.standard_normal((mapping.total_qo, 2, 8))
        kp = rng.standard_normal((slots, 2, 8))
        vp = rng.standard_normal((slots, 2, 8))
        cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 26))
        cw.plan(comp)
        out_c, _ = cw.run(q, kp, vp)
        sw = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        sw.plan(mapping)
        out_s, _, _ = sw.run(q, kp, vp)
        np.testing.assert_allclose(out_c, out_s, atol=1e-5)
