"""Tests for the kernel execution layer: reference oracle and cost accounting."""

import numpy as np
import pytest

from conftest import make_paged_mapping
from repro.core import HeadConfig, reference_attention, work_item_cost
from repro.core.scheduler import WorkItem
from repro.utils.dtypes import StorageDType


class TestHeadConfig:
    def test_group_size(self):
        assert HeadConfig(32, 8, 128).group_size == 4

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            HeadConfig(6, 4, 128)


class TestReferenceAttention:
    def test_uniform_weights_average_values(self, rng):
        # Zero queries → uniform attention → output is the mean of V.
        k = rng.standard_normal((10, 2, 8))
        v = rng.standard_normal((10, 2, 8))
        q = np.zeros((1, 2, 8))
        out = reference_attention(q, k, v, causal=False)
        np.testing.assert_allclose(out[0], v.mean(axis=0))

    def test_one_hot_attention(self):
        # A huge logit on one key selects exactly its value.
        d = 8
        k = np.zeros((4, 1, d))
        k[2, 0, 0] = 100.0
        v = np.arange(4, dtype=float)[:, None, None] * np.ones((4, 1, d))
        q = np.zeros((1, 1, d))
        q[0, 0, 0] = 100.0
        out = reference_attention(q, k, v, causal=False, sm_scale=1.0)
        np.testing.assert_allclose(out[0, 0], 2.0, atol=1e-6)

    def test_gqa_head_mapping(self, rng):
        # With g=2, query heads (0,1) must both read KV head 0.
        k = rng.standard_normal((6, 2, 8))
        v = rng.standard_normal((6, 2, 8))
        q = rng.standard_normal((1, 4, 8))
        out = reference_attention(q, k, v, causal=False)
        q2 = q.copy()
        q2[0, 1] = q[0, 0]
        out2 = reference_attention(q2, k, v, causal=False)
        np.testing.assert_allclose(out2[0, 0], out2[0, 1])

    def test_default_positions_causal_decode(self, rng):
        # Single query at the end sees everything: causal == non-causal.
        k = rng.standard_normal((6, 2, 8))
        v = rng.standard_normal((6, 2, 8))
        q = rng.standard_normal((1, 2, 8))
        np.testing.assert_allclose(
            reference_attention(q, k, v, causal=True),
            reference_attention(q, k, v, causal=False),
        )


def item_cost(kv_lens, qo_lens, item, heads=HeadConfig(8, 2, 32), **kwargs):
    mapping, _ = make_paged_mapping(kv_lens, qo_lens, 16)
    defaults = dict(
        kv_tile=64, kv_dtype=StorageDType.FP16, q_tile_size=16,
        fuse_head_groups=True, uses_tensor_cores=True, sparse_gather=True,
    )
    defaults.update(kwargs)
    return work_item_cost(item, mapping, heads, **defaults)


class TestWorkItemCost:
    def test_causal_halves_useful_flops(self):
        # Full prefill tile over its own KV: roughly half the positions live.
        item = WorkItem(0, 0, 0, 0, 128, 0, 128, 0, -1)
        causal = item_cost([128], [128], item)
        mapping, _ = make_paged_mapping([128], [128], 16, causal=False)
        full = work_item_cost(
            item, mapping, HeadConfig(8, 2, 32), 64, StorageDType.FP16, 16,
            True, True, True,
        )
        assert causal.flops < 0.6 * full.flops

    def test_fully_masked_chunk_free(self):
        # Chunk entirely in the future of the tile's queries (full prefill:
        # query row 0 sits at position 0, the chunk covers 100..200).
        item = WorkItem(0, 0, 0, 0, 1, 100, 200, 0, -1)
        c = item_cost([200], [200], item)
        assert c.flops == 0
        assert c.padded_flops == 0

    def test_gqa_fusion_cuts_kv_traffic(self):
        heads = HeadConfig(8, 2, 32)
        item = WorkItem(0, 0, 0, 0, 1, 0, 512, 0, -1)
        fused = item_cost([512], [1], item, heads=heads, fuse_head_groups=True)
        unfused = item_cost([512], [1], item, heads=heads, fuse_head_groups=False)
        # Per-item KV bytes identical, but the fused item serves g=4 query
        # heads at once: per-query-head traffic is 4× lower.
        kv_bytes = 512 * 32 * 2 * 2
        assert fused.bytes_read >= kv_bytes and unfused.bytes_read >= kv_bytes
        assert fused.flops == pytest.approx(4 * unfused.flops)

    def test_partial_slot_writes_state(self):
        item_final = WorkItem(0, 0, 0, 0, 1, 0, 128, 0, -1)
        item_partial = WorkItem(0, 0, 0, 0, 1, 0, 128, 0, 3)
        final = item_cost([128], [1], item_final)
        partial = item_cost([128], [1], item_partial)
        assert partial.bytes_written > final.bytes_written  # (D+1)·fp32 vs D·fp16

    def test_fp8_halves_kv_bytes(self):
        item = WorkItem(0, 0, 0, 0, 1, 0, 512, 0, -1)
        f16 = item_cost([512], [1], item, kv_dtype=StorageDType.FP16)
        f8 = item_cost([512], [1], item, kv_dtype=StorageDType.FP8_E4M3)
        assert f8.bytes_read < 0.6 * f16.bytes_read

    def test_dense_gather_no_segments(self):
        item = WorkItem(0, 0, 0, 0, 1, 0, 128, 0, -1)
        dense = item_cost([128], [1], item, sparse_gather=False)
        sparse = item_cost([128], [1], item, sparse_gather=True)
        assert dense.n_gather_segments == 0
        assert sparse.n_gather_segments > 0

    def test_compute_penalty_scales_padded_only(self):
        item = WorkItem(0, 0, 0, 0, 1, 0, 128, 0, -1)
        base = item_cost([128], [1], item)
        pen = item_cost([128], [1], item, compute_penalty=1.1)
        assert pen.padded_flops == pytest.approx(1.1 * base.padded_flops)
        assert pen.flops == base.flops


class TestKVReuseFactor:
    """The L2 reuse model: how many query tiles re-read a KV chunk."""

    def _item(self, kv_start, kv_stop, group=0):
        return WorkItem(0, group, 0, 0, 1, kv_start, kv_stop, 0, -1)

    def test_decode_reuse_is_one(self):
        from repro.core.kernels import kv_reuse_factor

        mapping, _ = make_paged_mapping([1024], [1], 16)
        assert kv_reuse_factor(self._item(0, 1024), mapping, 16) == 1

    def test_prefill_first_chunk_read_by_all_tiles(self):
        from repro.core.kernels import kv_reuse_factor

        mapping, _ = make_paged_mapping([256], [256], 16)
        # 256 queries, tile 64 → 4 tiles; the first KV chunk is visible to all.
        assert kv_reuse_factor(self._item(0, 64), mapping, 64) == 4

    def test_prefill_last_chunk_read_once(self):
        from repro.core.kernels import kv_reuse_factor

        mapping, _ = make_paged_mapping([256], [256], 16)
        assert kv_reuse_factor(self._item(200, 256), mapping, 64) == 1

    def test_non_causal_every_tile(self):
        from repro.core.kernels import kv_reuse_factor

        mapping, _ = make_paged_mapping([256], [256], 16, causal=False)
        assert kv_reuse_factor(self._item(200, 256), mapping, 64) == 4

    def test_reuse_divides_kv_traffic(self):
        item = WorkItem(0, 0, 0, 0, 64, 0, 64, 0, -1)
        heads = HeadConfig(4, 4, 32)
        mapping, _ = make_paged_mapping([256], [256], 16)
        c = work_item_cost(item, mapping, heads, 64, StorageDType.FP16, 64,
                           True, True, True)
        # First chunk: reuse 4 → KV bytes quartered vs logical.
        logical_kv = 64 * 32 * 2 * 2
        q_bytes = 64 * 32 * 2
        assert c.bytes_read == pytest.approx(logical_kv / 4 + q_bytes)
