"""Tests for BlockSparseKV and AttentionMapping."""

import numpy as np
import pytest

from repro.sparse import AttentionMapping, BlockSparseKV, kv_from_page_table
from repro.sparse.conversions import bsr_from_page_table, mapping_from_bsr


class TestBlockSparseKV:
    def test_slot_indices_full(self):
        kv = kv_from_page_table([np.array([2, 0, 1])], [12], 4, 3)
        assert np.array_equal(kv.slot_indices(0), [8, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 7])

    def test_slot_indices_partial_last_page(self):
        kv = kv_from_page_table([np.array([0, 1])], [6], 4, 2)
        assert np.array_equal(kv.slot_indices(0), [0, 1, 2, 3, 4, 5])

    def test_slot_indices_chunk_range(self):
        kv = kv_from_page_table([np.array([1, 0, 2])], [12], 4, 3)
        # Chunk [3, 9): crosses the first→second page boundary.
        assert np.array_equal(kv.slot_indices(0, 3, 9), [7, 0, 1, 2, 3, 8])

    def test_chunk_beyond_length_clamps(self):
        kv = kv_from_page_table([np.array([0])], [3], 4, 1)
        assert np.array_equal(kv.slot_indices(0, 1, 100), [1, 2])

    def test_chunk_invalid_range(self):
        kv = kv_from_page_table([np.array([0])], [3], 4, 1)
        with pytest.raises(ValueError):
            kv.slot_indices(0, 2, 1)

    def test_empty_chunk(self):
        kv = kv_from_page_table([np.array([0])], [4], 4, 1)
        assert kv.slot_indices(0, 2, 2).size == 0

    def test_page_count_validation(self):
        with pytest.raises(ValueError, match="pages"):
            kv_from_page_table([np.array([0])], [9], 4, 2)

    def test_kv_lens_shape_validation(self):
        with pytest.raises(ValueError):
            BlockSparseKV(4, 2, np.array([0, 1]), np.array([0]), np.array([4, 4]))

    def test_block_indices_range(self):
        with pytest.raises(ValueError, match="pool"):
            BlockSparseKV(4, 2, np.array([0, 1]), np.array([5]), np.array([4]))

    def test_from_slot_lists(self):
        kv = BlockSparseKV.from_slot_lists(
            [np.array([4, 5, 6, 7, 0, 1])], block_size=4, pool_blocks=2
        )
        assert np.array_equal(kv.group_blocks(0), [1, 0])
        assert kv.kv_lens[0] == 6

    def test_from_slot_lists_rejects_misaligned(self):
        with pytest.raises(ValueError, match="aligned"):
            BlockSparseKV.from_slot_lists([np.array([1, 2, 3, 4])], 4, 2)

    def test_from_slot_lists_rejects_noncontiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            BlockSparseKV.from_slot_lists([np.array([0, 1, 3, 2])], 4, 1)


class TestAttentionMapping:
    def test_default_positions_decode(self):
        kv = kv_from_page_table([np.arange(2), np.arange(2, 4)], [8, 5], 4, 4)
        m = AttentionMapping(np.array([0, 1, 2]), kv, causal=True)
        # Decode convention: the single query sits at the last position.
        assert np.array_equal(m.q_pos_offset, [7, 4])
        assert np.array_equal(m.kv_pos_offset, [0, 0])
        assert np.array_equal(m.q_row_starts, [0, 1])

    def test_default_positions_prefill(self):
        kv = kv_from_page_table([np.arange(2)], [8], 4, 2)
        m = AttentionMapping(np.array([0, 8]), kv)
        assert m.q_pos_offset[0] == 0

    def test_group_count_mismatch(self):
        kv = kv_from_page_table([np.arange(2)], [8], 4, 2)
        with pytest.raises(ValueError, match="groups"):
            AttentionMapping(np.array([0, 4, 8]), kv)

    def test_explicit_offsets_validated(self):
        kv = kv_from_page_table([np.arange(2)], [8], 4, 2)
        with pytest.raises(ValueError, match="q_pos_offset"):
            AttentionMapping(np.array([0, 8]), kv, q_pos_offset=np.array([0, 1]))

    def test_qo_lens(self):
        kv = kv_from_page_table([np.arange(1), np.arange(1, 2)], [4, 4], 4, 2)
        m = AttentionMapping(np.array([0, 3, 4]), kv)
        assert np.array_equal(m.qo_lens, [3, 1])
        assert m.total_qo == 4


class TestBSRBridge:
    def test_figure2_bsr_from_page_table(self):
        # Paper Figure 2: B_r = queries per request, B_c = page size.
        bsr = bsr_from_page_table(
            [np.array([0, 2]), np.array([1])], [8, 3], 4, 3, queries_per_request=4
        )
        assert bsr.shape == (8, 12)
        assert bsr.block_size == (4, 4)
        mask = bsr.to_dense_mask()
        assert mask[0:4, 0:4].all() and mask[0:4, 8:12].all()
        assert mask[4:8, 4:7].all() and not mask[4:8, 7].any()

    def test_mapping_from_bsr(self):
        bsr = bsr_from_page_table([np.array([0])], [4], 4, 1, queries_per_request=2)
        m = mapping_from_bsr(bsr, causal=False)
        assert m.num_groups == 1
        assert m.total_qo == 2
        assert np.array_equal(m.kv.slot_indices(0), [0, 1, 2, 3])


class TestStructuralSparseAttention:
    """Attention restricted by BSR *structure* (paper §3.1.1): the kernel
    simply never gathers the zero blocks — no mask functor involved."""

    def _block_mask(self, n_brows, n_bcols, density, rng):
        mask = rng.random((n_brows, n_bcols)) < density
        mask[:, 0] = True  # keep every row non-empty
        return mask

    def test_bsr_structure_equals_dense_mask(self, rng=None):
        import numpy as np
        from repro import BatchAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig, VANILLA
        from repro.sparse import BSRMatrix, mapping_from_bsr
        from repro.utils.dtypes import StorageDType, round_to_storage

        rng = np.random.default_rng(5)
        br, bc = 4, 8
        n_brows, n_bcols = 6, 8
        blocks = self._block_mask(n_brows, n_bcols, 0.5, rng)
        dense_mask = np.kron(blocks, np.ones((br, bc), dtype=bool))
        bsr = BSRMatrix.from_dense_mask(dense_mask, (br, bc))
        mapping = mapping_from_bsr(bsr, causal=False)

        heads = HeadConfig(2, 2, 16)
        n_q, n_kv = n_brows * br, n_bcols * bc
        q = rng.standard_normal((n_q, 2, 16))
        kp = rng.standard_normal((n_kv, 2, 16))
        vp = rng.standard_normal((n_kv, 2, 16))
        w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 26), avg_qo_len=br)
        w.plan(mapping)
        out, _, _ = w.run(q, kp, vp)

        kr = round_to_storage(kp, StorageDType.FP16).astype(np.float64)
        vr = round_to_storage(vp, StorageDType.FP16).astype(np.float64)
        sm = 1 / np.sqrt(16)
        for h in range(2):
            s = (q[:, h] @ kr[:, h].T) * sm
            s = np.where(dense_mask, s, -np.inf)
            m = s.max(axis=1, keepdims=True)
            p = np.exp(s - m)
            ref = (p / p.sum(axis=1, keepdims=True)) @ vr[:, h]
            np.testing.assert_allclose(out[:, h, :], ref, atol=1e-6)

    def test_structure_skips_zero_blocks_traffic(self):
        import numpy as np
        from repro import BatchAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig, VANILLA
        from repro.sparse import BSRMatrix, mapping_from_bsr

        rng = np.random.default_rng(6)
        br, bc, n_brows, n_bcols = 4, 16, 8, 32
        sparse_blocks = self._block_mask(n_brows, n_bcols, 0.25, rng)
        full_blocks = np.ones_like(sparse_blocks)
        heads = HeadConfig(2, 2, 16)
        traffic = {}
        for name, blocks in (("sparse", sparse_blocks), ("full", full_blocks)):
            mask = np.kron(blocks, np.ones((br, bc), dtype=bool))
            bsr = BSRMatrix.from_dense_mask(mask, (br, bc))
            mapping = mapping_from_bsr(bsr, causal=False)
            w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27),
                                      avg_qo_len=br)
            w.plan(mapping)
            _, _, rep = w.run(None, compute=False)
            traffic[name] = rep.total_bytes
        assert traffic["sparse"] < 0.5 * traffic["full"]
