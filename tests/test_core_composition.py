"""Tests for the contraction kernel (partial-state merging)."""

import numpy as np
import pytest

from repro.core import contract_entry, contraction_cost, distribute_merges
from repro.core.scheduler import MergeEntry


class TestContractEntry:
    def test_matches_joint_softmax(self, rng):
        """Contracting per-chunk states equals attention over the whole KV."""
        d, rows, n_kv = 8, 3, 30
        q = rng.standard_normal((rows, d))
        k = rng.standard_normal((n_kv, d))
        v = rng.standard_normal((n_kv, d))
        chunks = [(0, 10), (10, 22), (22, 30)]
        partial_o = np.zeros((3, rows, d))
        partial_lse = np.zeros((3, rows))
        for i, (a, b) in enumerate(chunks):
            s = q @ k[a:b].T
            lse = np.log(np.exp(s).sum(axis=1))
            partial_o[i] = (np.exp(s - lse[:, None])) @ v[a:b]
            partial_lse[i] = lse
        entry = MergeEntry(0, 0, 0, rows, 0, (0, 1, 2))
        o, lse = contract_entry(entry, partial_o, partial_lse)
        s = q @ k.T
        ref_lse = np.log(np.exp(s).sum(axis=1))
        ref_o = np.exp(s - ref_lse[:, None]) @ v
        assert np.allclose(o, ref_o)
        assert np.allclose(lse, ref_lse)

    def test_sum_semantics(self, rng):
        partial_o = rng.standard_normal((2, 3, 4))
        entry = MergeEntry(0, 0, 0, 3, 0, (0, 1))
        o, _ = contract_entry(entry, partial_o, np.zeros((2, 3)), use_softmax=False)
        assert np.allclose(o, partial_o.sum(axis=0))

    def test_empty_entry_rejected(self):
        with pytest.raises(ValueError):
            contract_entry(MergeEntry(0, 0, 0, 1, 0, ()), np.zeros((1, 1, 1)), np.zeros((1, 1)))

    def test_single_slot_passthrough(self, rng):
        partial_o = rng.standard_normal((1, 2, 4))
        partial_lse = rng.standard_normal((1, 2))
        entry = MergeEntry(0, 0, 0, 2, 0, (0,))
        o, lse = contract_entry(entry, partial_o, partial_lse)
        assert np.allclose(o, partial_o[0])
        assert np.allclose(lse, partial_lse[0])


class TestContractionCost:
    def test_traffic_scales_with_slots(self):
        e2 = MergeEntry(0, 0, 0, 4, 0, (0, 1))
        e4 = MergeEntry(0, 0, 0, 4, 0, (0, 1, 2, 3))
        c2 = contraction_cost(e2, rows=4, head_dim=16)
        c4 = contraction_cost(e4, rows=4, head_dim=16)
        assert c4.bytes_read == 2 * c2.bytes_read
        assert c4.bytes_written == c2.bytes_written

    def test_not_tensor_core(self):
        c = contraction_cost(MergeEntry(0, 0, 0, 1, 0, (0, 1)), 1, 8)
        assert not c.uses_tensor_cores


class TestDistribute:
    def test_round_robin(self):
        merges = [MergeEntry(0, 0, 0, 1, 0, (0, 1))] * 5
        queues = distribute_merges(merges, 2)
        assert queues == [[0, 2, 4], [1, 3]]

    def test_empty(self):
        assert distribute_merges([], 3) == [[], [], []]
