"""Tests for the FlashInfer-compatible API façade."""

import numpy as np
import pytest

from conftest import fp16
from repro.api import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
    BatchPrefillWithRaggedKVCacheWrapper,
    merge_state,
    merge_states,
    single_decode_with_kv_cache,
    single_prefill_with_kv_cache,
)
from repro.core import reference_attention
from repro.gpu import WorkspaceBuffer
from repro.kvcache import PagedKVCache


def build_cache(kv_lens, rng, page_size=16, heads=2, dim=32):
    cache = PagedKVCache(256, page_size, heads, dim)
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, heads, dim)),
                     rng.standard_normal((n, heads, dim)))
        seqs.append(sid)
    layout = cache.layout(seqs)
    last_page_len = np.asarray(
        [n - (len(cache.seq_pages(s)) - 1) * page_size for n, s in zip(kv_lens, seqs)]
    )
    return cache, seqs, layout, last_page_len


class TestBatchDecode:
    def test_matches_reference(self, rng):
        kv_lens = [40, 111, 7]
        cache, seqs, layout, last = build_cache(kv_lens, rng)
        ws = WorkspaceBuffer(1 << 27)
        w = BatchDecodeWithPagedKVCacheWrapper(ws, 4, 2, 32, page_size=16)
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((3, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        for r, sid in enumerate(seqs):
            k, v = cache.gather(sid)
            ref = reference_attention(q[r : r + 1], fp16(k), fp16(v), causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)

    def test_return_lse(self, rng):
        cache, seqs, layout, last = build_cache([24], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((1, 4, 32))
        out, lse = w.run(q, cache.k_pool, cache.v_pool, return_lse=True)
        assert lse.shape == (1, 4)
        assert np.all(np.isfinite(lse))

    def test_replan_with_grown_kv(self, rng):
        cache, seqs, layout, last = build_cache([24, 30], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 26), 4, 2, 32, 16, max_batch_size=8
        )
        w.plan(layout.indptr, layout.indices, last)
        cache.append(seqs[0], rng.standard_normal((1, 2, 32)),
                     rng.standard_normal((1, 2, 32)))
        layout2 = cache.layout(seqs)
        last2 = np.asarray(
            [cache.seq_len(s) - (len(cache.seq_pages(s)) - 1) * 16 for s in seqs]
        )
        w.plan(layout2.indptr, layout2.indices, last2)
        q = rng.standard_normal((2, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        ref = reference_attention(q[0:1], fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out[0:1], ref, atol=1e-6)


class TestBatchPrefill:
    def test_paged_incremental_prefill(self, rng):
        # 5 new query tokens against a 50-token history.
        cache, seqs, layout, last = build_cache([50], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, page_size=16, avg_qo_len=5
        )
        w.plan(np.array([0, 5]), layout.indptr, layout.indices, last)
        q = rng.standard_normal((5, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_ragged_full_prefill(self, rng):
        lens = [33, 57]
        total = sum(lens)
        q = rng.standard_normal((total, 4, 32))
        k = rng.standard_normal((total, 2, 32))
        v = rng.standard_normal((total, 2, 32))
        indptr = np.array([0, 33, 90])
        w = BatchPrefillWithRaggedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, avg_qo_len=45
        )
        w.plan(indptr, indptr, causal=True)
        out = w.run(q, k, v)
        for s0, s1 in zip(indptr, indptr[1:]):
            ref = reference_attention(q[s0:s1], fp16(k[s0:s1]), fp16(v[s0:s1]),
                                      causal=True)
            np.testing.assert_allclose(out[s0:s1], ref, atol=1e-6)

    def test_ragged_is_dense_path(self):
        w = BatchPrefillWithRaggedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32)
        assert w._inner.sparse_gather is False


class TestSingleRequest:
    def test_single_prefill(self, rng):
        q = rng.standard_normal((20, 4, 32))
        k = rng.standard_normal((20, 2, 32))
        v = rng.standard_normal((20, 2, 32))
        out = single_prefill_with_kv_cache(q, k, v, causal=True)
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_single_decode(self, rng):
        q = rng.standard_normal((4, 32))
        k = rng.standard_normal((77, 2, 32))
        v = rng.standard_normal((77, 2, 32))
        out = single_decode_with_kv_cache(q, k, v)
        ref = reference_attention(q[None], fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref[0], atol=1e-6)

    def test_single_prefill_with_variant(self, rng):
        from repro.variants import make_sliding_window

        q = rng.standard_normal((16, 2, 16))
        k = rng.standard_normal((16, 2, 16))
        v = rng.standard_normal((16, 2, 16))
        out = single_prefill_with_kv_cache(q, k, v, variant=make_sliding_window(1))
        np.testing.assert_allclose(out, fp16(v), atol=1e-6)


class TestMergeOps:
    def test_merge_state_pair(self, rng):
        d = 8
        q = rng.standard_normal(d)
        k = rng.standard_normal((12, d))
        v = rng.standard_normal((12, d))

        def state(sl):
            s = k[sl] @ q
            lse = np.log(np.exp(s).sum())
            return np.exp(s - lse) @ v[sl], lse

        va, sa = state(slice(0, 5))
        vb, sb = state(slice(5, 12))
        vm, sm = merge_state(va, np.asarray(sa), vb, np.asarray(sb))
        v_ref, s_ref = state(slice(0, 12))
        np.testing.assert_allclose(vm, v_ref)
        assert sm == pytest.approx(s_ref)

    def test_merge_states_stack(self, rng):
        vs = rng.standard_normal((4, 3, 8))
        ss = rng.uniform(-2, 2, (4, 3))
        vm, sm = merge_states(vs, ss)
        # Fold by hand.
        ve, se = vs[0], ss[0]
        for i in range(1, 4):
            ve, se = merge_state(ve, se, vs[i], ss[i])
        np.testing.assert_allclose(vm, ve)
        np.testing.assert_allclose(sm, se)

    def test_merge_states_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_states(np.zeros((0, 2, 4)), np.zeros((0, 2)))


class TestAPIWithVariants:
    def test_decode_wrapper_with_sliding_window(self, rng):
        from repro.variants import make_sliding_window

        cache, seqs, layout, last = build_cache([60], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 26), 4, 2, 32, 16,
            variant=make_sliding_window(16),
        )
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((1, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        kd, vd = fp16(k), fp16(v)
        pos = np.arange(60)
        sm = 1 / np.sqrt(32)
        ref = np.zeros((1, 4, 32))
        for h in range(4):
            s = (q[0, h] @ kd[:, h // 2].T) * sm
            s = np.where((59 - pos) < 16, s, -np.inf)
            p = np.exp(s - s.max())
            ref[0, h] = (p / p.sum()) @ vd[:, h // 2]
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_prefill_wrapper_simulated_report(self, rng):
        cache, seqs, layout, last = build_cache([128], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=128
        )
        w.plan(np.array([0, 128]), layout.indptr, layout.indices, last)
        w.run(rng.standard_normal((128, 4, 32)), cache.k_pool, cache.v_pool)
        assert w.last_report is not None
        assert w.last_report.makespan > 0


class TestPlanRunDiscipline:
    """run() before plan() must fail loudly, naming the wrapper (§3.4)."""

    def test_decode_run_before_plan(self, rng):
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        q = rng.standard_normal((1, 4, 32))
        pool = rng.standard_normal((16, 2, 32))
        with pytest.raises(RuntimeError, match=r"BatchDecodeWithPagedKVCacheWrapper\.run\(\) called before plan\(\)"):
            w.run(q, pool, pool)

    def test_paged_prefill_run_before_plan(self, rng):
        w = BatchPrefillWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        q = rng.standard_normal((4, 4, 32))
        pool = rng.standard_normal((16, 2, 32))
        with pytest.raises(RuntimeError, match="BatchPrefillWithPagedKVCacheWrapper"):
            w.run(q, pool, pool)

    def test_ragged_prefill_run_before_plan(self, rng):
        w = BatchPrefillWithRaggedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32)
        q = rng.standard_normal((4, 4, 32))
        kv = rng.standard_normal((4, 2, 32))
        with pytest.raises(RuntimeError, match="BatchPrefillWithRaggedKVCacheWrapper"):
            w.run(q, kv, kv)


class TestPoolInference:
    """pool_num_pages is inferred at plan() and validated at run()."""

    def test_explicit_pool_num_pages_removed(self, rng):
        cache, seqs, layout, last = build_cache([40], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        with pytest.raises(TypeError, match="pool_num_pages"):
            w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        # The inferred path computes the same answer the old one did.
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((1, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        ref = reference_attention(q[0:1], fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out[0:1], ref, atol=1e-6)

    def test_prefill_explicit_pool_num_pages_removed(self, rng):
        cache, seqs, layout, last = build_cache([50], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=5
        )
        with pytest.raises(TypeError, match="pool_num_pages"):
            w.plan(np.array([0, 5]), layout.indptr, layout.indices, last,
                   pool_num_pages=cache.num_pages)

    def test_inferred_plan_emits_no_warning(self, rng):
        import warnings

        cache, seqs, layout, last = build_cache([40], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            w.plan(layout.indptr, layout.indices, last)

    def test_run_rejects_too_small_pool(self, rng):
        cache, seqs, layout, last = build_cache([40, 111, 7], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 27), 4, 2, 32, 16)
        w.plan(layout.indptr, layout.indices, last)
        q = rng.standard_normal((3, 4, 32))
        with pytest.raises(ValueError, match="pool holds"):
            w.run(q, cache.k_pool[:16], cache.v_pool[:16])


class TestWrapperParity:
    """Decode/prefill wrappers agree with a direct BatchAttentionWrapper
    planned on the same mapping."""

    def test_decode_parity(self, rng):
        from repro.core import VANILLA, HeadConfig
        from repro.sparse.layout import AttentionMapping
        from repro.core.wrapper import BatchAttentionWrapper
        from repro.gpu import A100_40G

        kv_lens = [40, 111, 7]
        cache, seqs, layout, last = build_cache(kv_lens, rng)
        q = rng.standard_normal((3, 4, 32))

        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 27), 4, 2, 32, 16)
        w.plan(layout.indptr, layout.indices, last)
        out = w.run(q, cache.k_pool, cache.v_pool)

        direct = BatchAttentionWrapper(
            VANILLA, HeadConfig(4, 2, 32), WorkspaceBuffer(1 << 27), A100_40G,
            avg_qo_len=1.0,
        )
        mapping = AttentionMapping(np.arange(4), cache.layout(seqs), causal=True)
        direct.plan(mapping)
        ref, _, _ = direct.run(q, cache.k_pool, cache.v_pool)
        np.testing.assert_allclose(out, ref, atol=0)

    def test_prefill_parity(self, rng):
        from repro.core import VANILLA, HeadConfig
        from repro.sparse.layout import AttentionMapping
        from repro.core.wrapper import BatchAttentionWrapper
        from repro.gpu import A100_40G

        cache, seqs, layout, last = build_cache([50, 80], rng)
        qo_indptr = np.array([0, 5, 12])
        q = rng.standard_normal((12, 4, 32))

        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=6
        )
        w.plan(qo_indptr, layout.indptr, layout.indices, last)
        out = w.run(q, cache.k_pool, cache.v_pool)

        direct = BatchAttentionWrapper(
            VANILLA, HeadConfig(4, 2, 32), WorkspaceBuffer(1 << 27), A100_40G,
            avg_qo_len=6.0,
        )
        mapping = AttentionMapping(qo_indptr, cache.layout(seqs), causal=True)
        direct.plan(mapping)
        ref, _, _ = direct.run(q, cache.k_pool, cache.v_pool)
        np.testing.assert_allclose(out, ref, atol=0)


class TestWorkspaceCache:
    """single_prefill_with_kv_cache reuses one module-level workspace per
    size class instead of allocating a fresh ≥64 MB buffer every call."""

    def setup_method(self):
        from repro.api import clear_workspace_cache

        clear_workspace_cache()

    teardown_method = setup_method

    def test_repeat_calls_share_one_workspace(self, rng):
        import repro.api.wrappers as wmod

        q = rng.standard_normal((20, 4, 32))
        k = rng.standard_normal((20, 2, 32))
        v = rng.standard_normal((20, 2, 32))
        single_prefill_with_kv_cache(q, k, v)
        assert len(wmod._WORKSPACE_CACHE) == 1
        assert len(wmod._SINGLE_WRAPPER_CACHE) == 1
        wrapper = next(iter(wmod._SINGLE_WRAPPER_CACHE.values()))

        q2 = rng.standard_normal((31, 4, 32))
        k2 = rng.standard_normal((64, 2, 32))
        v2 = rng.standard_normal((64, 2, 32))
        out = single_prefill_with_kv_cache(q2, k2, v2)
        # Same size class + geometry → same buffer, same wrapper object.
        assert len(wmod._WORKSPACE_CACHE) == 1
        assert next(iter(wmod._SINGLE_WRAPPER_CACHE.values())) is wrapper
        ref = reference_attention(q2, fp16(k2), fp16(v2), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_distinct_geometries_get_distinct_wrappers(self, rng):
        import repro.api.wrappers as wmod

        single_prefill_with_kv_cache(
            rng.standard_normal((8, 4, 32)), rng.standard_normal((8, 2, 32)),
            rng.standard_normal((8, 2, 32)))
        single_prefill_with_kv_cache(
            rng.standard_normal((8, 2, 16)), rng.standard_normal((8, 2, 16)),
            rng.standard_normal((8, 2, 16)))
        assert len(wmod._SINGLE_WRAPPER_CACHE) == 2
        assert len(wmod._WORKSPACE_CACHE) == 1  # both fit the 64 MB class

    def test_single_decode_uses_cache(self, rng):
        import repro.api.wrappers as wmod

        q = rng.standard_normal((4, 32))
        k = rng.standard_normal((77, 2, 32))
        v = rng.standard_normal((77, 2, 32))
        out1 = single_decode_with_kv_cache(q, k, v)
        out2 = single_decode_with_kv_cache(q, k, v)
        assert len(wmod._WORKSPACE_CACHE) == 1
        np.testing.assert_allclose(out1, out2, atol=0)

    def test_tracer_records_standalone_kernel(self, rng):
        from repro.obs import StepTracer

        tracer = StepTracer()
        q = rng.standard_normal((16, 4, 32))
        kv = rng.standard_normal((16, 2, 32))
        single_prefill_with_kv_cache(q, kv, kv, tracer=tracer)
        assert tracer.num_kernels == 1
        rec = tracer.kernels[0]
        assert rec.phase == "prefill"
        assert rec.makespan > 0
        # Tracer is detached afterwards: a second untraced call records nothing.
        single_prefill_with_kv_cache(q, kv, kv)
        assert tracer.num_kernels == 1
