"""Tests for the FlashInfer-compatible API façade."""

import numpy as np
import pytest

from conftest import fp16
from repro.api import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
    BatchPrefillWithRaggedKVCacheWrapper,
    merge_state,
    merge_states,
    single_decode_with_kv_cache,
    single_prefill_with_kv_cache,
)
from repro.core import reference_attention
from repro.gpu import WorkspaceBuffer
from repro.kvcache import PagedKVCache


def build_cache(kv_lens, rng, page_size=16, heads=2, dim=32):
    cache = PagedKVCache(256, page_size, heads, dim)
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, heads, dim)),
                     rng.standard_normal((n, heads, dim)))
        seqs.append(sid)
    layout = cache.layout(seqs)
    last_page_len = np.asarray(
        [n - (len(cache.seq_pages(s)) - 1) * page_size for n, s in zip(kv_lens, seqs)]
    )
    return cache, seqs, layout, last_page_len


class TestBatchDecode:
    def test_matches_reference(self, rng):
        kv_lens = [40, 111, 7]
        cache, seqs, layout, last = build_cache(kv_lens, rng)
        ws = WorkspaceBuffer(1 << 27)
        w = BatchDecodeWithPagedKVCacheWrapper(ws, 4, 2, 32, page_size=16)
        w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        q = rng.standard_normal((3, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        for r, sid in enumerate(seqs):
            k, v = cache.gather(sid)
            ref = reference_attention(q[r : r + 1], fp16(k), fp16(v), causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)

    def test_return_lse(self, rng):
        cache, seqs, layout, last = build_cache([24], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32, 16)
        w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        q = rng.standard_normal((1, 4, 32))
        out, lse = w.run(q, cache.k_pool, cache.v_pool, return_lse=True)
        assert lse.shape == (1, 4)
        assert np.all(np.isfinite(lse))

    def test_replan_with_grown_kv(self, rng):
        cache, seqs, layout, last = build_cache([24, 30], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 26), 4, 2, 32, 16, max_batch_size=8
        )
        w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        cache.append(seqs[0], rng.standard_normal((1, 2, 32)),
                     rng.standard_normal((1, 2, 32)))
        layout2 = cache.layout(seqs)
        last2 = np.asarray(
            [cache.seq_len(s) - (len(cache.seq_pages(s)) - 1) * 16 for s in seqs]
        )
        w.plan(layout2.indptr, layout2.indices, last2, cache.num_pages)
        q = rng.standard_normal((2, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        ref = reference_attention(q[0:1], fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out[0:1], ref, atol=1e-6)


class TestBatchPrefill:
    def test_paged_incremental_prefill(self, rng):
        # 5 new query tokens against a 50-token history.
        cache, seqs, layout, last = build_cache([50], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, page_size=16, avg_qo_len=5
        )
        w.plan(np.array([0, 5]), layout.indptr, layout.indices, last, cache.num_pages)
        q = rng.standard_normal((5, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_ragged_full_prefill(self, rng):
        lens = [33, 57]
        total = sum(lens)
        q = rng.standard_normal((total, 4, 32))
        k = rng.standard_normal((total, 2, 32))
        v = rng.standard_normal((total, 2, 32))
        indptr = np.array([0, 33, 90])
        w = BatchPrefillWithRaggedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, avg_qo_len=45
        )
        w.plan(indptr, indptr, causal=True)
        out = w.run(q, k, v)
        for s0, s1 in zip(indptr, indptr[1:]):
            ref = reference_attention(q[s0:s1], fp16(k[s0:s1]), fp16(v[s0:s1]),
                                      causal=True)
            np.testing.assert_allclose(out[s0:s1], ref, atol=1e-6)

    def test_ragged_is_dense_path(self):
        w = BatchPrefillWithRaggedKVCacheWrapper(WorkspaceBuffer(1 << 26), 4, 2, 32)
        assert w._inner.sparse_gather is False


class TestSingleRequest:
    def test_single_prefill(self, rng):
        q = rng.standard_normal((20, 4, 32))
        k = rng.standard_normal((20, 2, 32))
        v = rng.standard_normal((20, 2, 32))
        out = single_prefill_with_kv_cache(q, k, v, causal=True)
        ref = reference_attention(q, fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_single_decode(self, rng):
        q = rng.standard_normal((4, 32))
        k = rng.standard_normal((77, 2, 32))
        v = rng.standard_normal((77, 2, 32))
        out = single_decode_with_kv_cache(q, k, v)
        ref = reference_attention(q[None], fp16(k), fp16(v), causal=True)
        np.testing.assert_allclose(out, ref[0], atol=1e-6)

    def test_single_prefill_with_variant(self, rng):
        from repro.variants import make_sliding_window

        q = rng.standard_normal((16, 2, 16))
        k = rng.standard_normal((16, 2, 16))
        v = rng.standard_normal((16, 2, 16))
        out = single_prefill_with_kv_cache(q, k, v, variant=make_sliding_window(1))
        np.testing.assert_allclose(out, fp16(v), atol=1e-6)


class TestMergeOps:
    def test_merge_state_pair(self, rng):
        d = 8
        q = rng.standard_normal(d)
        k = rng.standard_normal((12, d))
        v = rng.standard_normal((12, d))

        def state(sl):
            s = k[sl] @ q
            lse = np.log(np.exp(s).sum())
            return np.exp(s - lse) @ v[sl], lse

        va, sa = state(slice(0, 5))
        vb, sb = state(slice(5, 12))
        vm, sm = merge_state(va, np.asarray(sa), vb, np.asarray(sb))
        v_ref, s_ref = state(slice(0, 12))
        np.testing.assert_allclose(vm, v_ref)
        assert sm == pytest.approx(s_ref)

    def test_merge_states_stack(self, rng):
        vs = rng.standard_normal((4, 3, 8))
        ss = rng.uniform(-2, 2, (4, 3))
        vm, sm = merge_states(vs, ss)
        # Fold by hand.
        ve, se = vs[0], ss[0]
        for i in range(1, 4):
            ve, se = merge_state(ve, se, vs[i], ss[i])
        np.testing.assert_allclose(vm, ve)
        np.testing.assert_allclose(sm, se)

    def test_merge_states_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_states(np.zeros((0, 2, 4)), np.zeros((0, 2)))


class TestAPIWithVariants:
    def test_decode_wrapper_with_sliding_window(self, rng):
        from repro.variants import make_sliding_window

        cache, seqs, layout, last = build_cache([60], rng)
        w = BatchDecodeWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 26), 4, 2, 32, 16,
            variant=make_sliding_window(16),
        )
        w.plan(layout.indptr, layout.indices, last, cache.num_pages)
        q = rng.standard_normal((1, 4, 32))
        out = w.run(q, cache.k_pool, cache.v_pool)
        k, v = cache.gather(seqs[0])
        kd, vd = fp16(k), fp16(v)
        pos = np.arange(60)
        sm = 1 / np.sqrt(32)
        ref = np.zeros((1, 4, 32))
        for h in range(4):
            s = (q[0, h] @ kd[:, h // 2].T) * sm
            s = np.where((59 - pos) < 16, s, -np.inf)
            p = np.exp(s - s.max())
            ref[0, h] = (p / p.sum()) @ vd[:, h // 2]
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_prefill_wrapper_simulated_report(self, rng):
        cache, seqs, layout, last = build_cache([128], rng)
        w = BatchPrefillWithPagedKVCacheWrapper(
            WorkspaceBuffer(1 << 27), 4, 2, 32, 16, avg_qo_len=128
        )
        w.plan(np.array([0, 128]), layout.indptr, layout.indices, last,
               cache.num_pages)
        w.run(rng.standard_normal((128, 4, 32)), cache.k_pool, cache.v_pool)
        assert w.last_report is not None
        assert w.last_report.makespan > 0
