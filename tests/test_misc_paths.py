"""Coverage for less-travelled paths: no-split wrappers, unbalanced plans,
batched streaming caches, grid occupancy, engine feature interplay."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention

HEADS = HeadConfig(4, 2, 16)


class TestNoSplitWrapper:
    def test_numerics_without_kv_splitting(self, rng):
        """split_kv=False (the scheduler ablation's configuration) must
        still be exact — whole-KV work items, no partial states."""
        mapping, slots = make_paged_mapping([3000, 70], [1, 1])
        q = rng.standard_normal((2, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        w = BatchAttentionWrapper(
            VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1, split_kv=False
        )
        plan = w.plan(mapping)
        assert plan.num_partial_slots == 0
        out, _, _ = w.run(q, kp, vp)
        for r in range(2):
            sl = mapping.kv.slot_indices(r)
            ref = reference_attention(q[r : r + 1], fp16(kp[sl]), fp16(vp[sl]),
                                      causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)


class TestUnbalancedPlanExecution:
    def test_round_robin_plan_is_numerically_exact(self, rng):
        """The naive-scheduler baseline path (plan injected directly)."""
        from repro.core import plan_unbalanced

        mapping, slots = make_paged_mapping([500, 120], [1, 1])
        q = rng.standard_normal((2, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        plan = plan_unbalanced(
            mapping.qo_lens, mapping.kv.kv_lens, w._sched_q_tile, w.num_ctas,
            num_kv_heads=HEADS.num_kv_heads,
        )
        w._ensure_sections(mapping.num_groups, mapping.total_qo)
        w._write_plan(plan)
        w._mapping = mapping
        w._params = VANILLA.bind_params({})
        out, _, _ = w.run(q, kp, vp)
        for r in range(2):
            sl = mapping.kv.slot_indices(r)
            ref = reference_attention(q[r : r + 1], fp16(kp[sl]), fp16(vp[sl]),
                                      causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)


class TestStreamingBatch:
    def test_multi_sequence_mapping_through_wrapper(self, rng):
        """A batched StreamingKVCache mapping attends each sequence's own
        rolling window."""
        from repro.kvcache import StreamingKVCache

        c = StreamingKVCache(3, num_sinks=2, window=6, num_kv_heads=2, head_dim=16)
        hist = {}
        for s in range(3):
            n = 5 + 4 * s  # different stream lengths; seq 2 overflows
            for i in range(n):
                k = rng.standard_normal((1, 2, 16))
                v = rng.standard_normal((1, 2, 16))
                c.append(s, k, v)
        m = c.mapping([0, 1, 2], [1, 1, 1])
        q = rng.standard_normal((3, 4, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(m)
        out, _, _ = w.run(q, c.k_pool, c.v_pool)
        for s in range(3):
            slots = m.kv.slot_indices(s)
            ref = reference_attention(
                q[s : s + 1], fp16(c.k_pool[slots]), fp16(c.v_pool[slots]), causal=True
            )
            np.testing.assert_allclose(out[s : s + 1], ref, atol=1e-6)


class TestGridOccupancy:
    def test_two_ctas_per_sm_shares_resources(self):
        from repro.gpu import A100_40G, PersistentKernelExecutor, TileCost

        exe = PersistentKernelExecutor(A100_40G)
        blocks = [TileCost(flops=1e9, padded_flops=1e9)] * A100_40G.num_sms * 2
        one = exe.run_grid(blocks, ctas_per_sm=1)
        two = exe.run_grid(blocks, ctas_per_sm=2)
        # Two resident CTAs split the SM: same total compute throughput.
        assert two.makespan == pytest.approx(one.makespan, rel=0.05)


class TestRaggedGQA:
    def test_ragged_wrapper_with_group_size_4(self, rng):
        from repro.api import BatchPrefillWithRaggedKVCacheWrapper
        from repro.gpu import WorkspaceBuffer as WS

        lens = [40, 24]
        total = sum(lens)
        q = rng.standard_normal((total, 8, 16))
        k = rng.standard_normal((total, 2, 16))
        v = rng.standard_normal((total, 2, 16))
        indptr = np.array([0, 40, 64])
        w = BatchPrefillWithRaggedKVCacheWrapper(WS(1 << 27), 8, 2, 16, avg_qo_len=32)
        w.plan(indptr, indptr, causal=True)
        out = w.run(q, k, v)
        for s0, s1 in zip(indptr, indptr[1:]):
            ref = reference_attention(q[s0:s1], fp16(k[s0:s1]), fp16(v[s0:s1]),
                                      causal=True)
            np.testing.assert_allclose(out[s0:s1], ref, atol=1e-6)


class TestEngineFeatureInterplay:
    def test_chunked_prefix_caching_and_parallel_generation(self):
        """Every engine feature on at once: chunked prefill + prefix cache +
        composable parallel generation + tight-ish pool."""
        from repro.core import HeadConfig as HC
        from repro.gpu import H100_80G
        from repro.serving import (EngineConfig, FlashInferBackend,
                                   LLAMA_3_1_8B, Request, ServingEngine)

        model = LLAMA_3_1_8B
        heads = HC(model.num_qo_heads, model.num_kv_heads, model.head_dim)
        cfg = EngineConfig(
            num_pool_pages=1 << 12, chunked_prefill=True, prefill_chunk_size=256,
            prefix_caching=True, composable=True, max_running=64,
        )
        be = FlashInferBackend(heads, H100_80G, composable=True)
        reqs = [
            Request(i * 0.05, 512, 6, n=2, prefix_group=1, prefix_len=448)
            for i in range(4)
        ]
        m = ServingEngine(model, be, H100_80G, cfg).run(reqs)
        assert len(m.traces) == 8
        assert m.total_output_tokens == 48
