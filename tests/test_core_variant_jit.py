"""Tests for variant specs, the kernel template and the JIT cache (§3.2.3)."""

import numpy as np
import pytest

from repro.core import (
    AttentionVariant,
    KernelTraits,
    ParamDecl,
    VANILLA,
    cache_info,
    get_kernel,
)
from repro.core.jit import clear_cache
from repro.core.template import render_kernel_source


class TestVariantValidation:
    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            AttentionVariant(name="bad name")

    def test_param_name_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            ParamDecl("2bad")

    def test_duplicate_params(self):
        with pytest.raises(ValueError, match="duplicate"):
            AttentionVariant(name="v", params=(ParamDecl("a"), ParamDecl("a")))

    def test_bad_expression_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="logits_transform"):
            AttentionVariant(name="v", logits_transform="1 +")

    def test_statement_rejected(self):
        with pytest.raises(ValueError):
            AttentionVariant(name="v", logits_mask="x = 1")


class TestBindParams:
    def test_defaults(self):
        v = AttentionVariant(name="v", params=(ParamDecl("a", 2.0),))
        assert v.bind_params().a == 2.0

    def test_override(self):
        v = AttentionVariant(name="v", params=(ParamDecl("a", 2.0),))
        assert v.bind_params({"a": 5.0}).a == 5.0

    def test_missing_required(self):
        v = AttentionVariant(name="v", params=(ParamDecl("a"),))
        with pytest.raises(ValueError, match="not provided"):
            v.bind_params()

    def test_unknown_param(self):
        v = AttentionVariant(name="v")
        with pytest.raises(ValueError, match="unknown"):
            v.bind_params({"zzz": 1})


class TestTemplateSpecialization:
    def test_identity_functors_compiled_out(self):
        src = render_kernel_source("k", "v", None, None, None, None, None, True)
        assert "_query_transform" not in src
        assert "_logits_mask" not in src
        assert "np.where(keep, logits, -np.inf)" in src

    def test_declared_functors_inlined(self):
        src = render_kernel_source(
            "k", "v", "q * 2", None, None, "logits + 1", "q_pos >= kv_pos", True
        )
        assert "def _query_transform" in src
        assert "q * 2" in src
        assert "def _logits_mask" in src

    def test_no_softmax_epilogue(self):
        src = render_kernel_source("k", "v", None, None, None, None, None, False)
        assert "np.where(keep, logits, 0.0)" in src
        assert "np.log" not in src

    def test_source_compiles(self):
        src = render_kernel_source(
            "kern", "v", "q + 0", "k + 0", "v + 0", "logits", "q_pos >= kv_pos", True
        )
        compile(src, "<test>", "exec")


class TestJITCache:
    def test_cache_hit_same_spec(self):
        clear_cache()
        traits = KernelTraits(head_dim=16)
        k1 = get_kernel(VANILLA, traits)
        k2 = get_kernel(VANILLA, traits)
        assert k1 is k2
        assert cache_info()["cached"] == 1

    def test_cache_miss_different_traits(self):
        clear_cache()
        k1 = get_kernel(VANILLA, KernelTraits(head_dim=16))
        k2 = get_kernel(VANILLA, KernelTraits(head_dim=32))
        assert k1 is not k2
        assert cache_info()["cached"] == 2

    def test_cache_miss_different_variant(self):
        clear_cache()
        v = AttentionVariant(name="scaled", logits_transform="logits * 2.0")
        k1 = get_kernel(VANILLA, KernelTraits(head_dim=16))
        k2 = get_kernel(v, KernelTraits(head_dim=16))
        assert k1 is not k2

    def test_equivalent_specs_share_kernel(self):
        clear_cache()
        a = AttentionVariant(name="same", logits_transform="logits * 2.0")
        b = AttentionVariant(name="same", logits_transform="logits * 2.0")
        assert get_kernel(a, KernelTraits(head_dim=16)) is get_kernel(
            b, KernelTraits(head_dim=16)
        )

    def test_source_attached(self):
        k = get_kernel(VANILLA, KernelTraits(head_dim=16))
        assert "attention_kernel_vanilla" in k.source

    def test_output_transform_compiled(self):
        v = AttentionVariant(name="scaled_out", output_transform="o * 3.0")
        k = get_kernel(v, KernelTraits(head_dim=4))
        o = np.ones((2, 4))
        assert np.allclose(k.output_transform(o, np.arange(2), 0, None), 3.0)


class TestKernelTraits:
    def test_fa3_row_tile_constraint(self):
        with pytest.raises(ValueError, match="64"):
            KernelTraits(head_dim=16, q_tile=32, backend="fa3")

    def test_fa3_allows_decode_tile_1(self):
        KernelTraits(head_dim=16, q_tile=1, backend="fa3")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            KernelTraits(head_dim=16, backend="fa9")

    def test_cuda_core_microkernel_for_tile1(self):
        assert not KernelTraits(head_dim=16, q_tile=1).uses_tensor_cores
        assert KernelTraits(head_dim=16, q_tile=64).uses_tensor_cores


class TestGeneratedKernelNumerics:
    def _run(self, variant, q, k, v, causal=True, kv_tile=7, sm_scale=0.25, params=None):
        kern = get_kernel(variant, KernelTraits(head_dim=q.shape[1]))
        n_q, n_kv = q.shape[0], k.shape[0]
        return kern.fn(
            q, k, v,
            np.arange(n_kv - n_q, n_kv), np.arange(n_kv),
            np.zeros(n_q, dtype=np.int64), 0,
            variant.bind_params(params), sm_scale, causal, kv_tile,
        )

    def test_matches_dense_softmax(self, rng):
        q = rng.standard_normal((5, 8))
        k = rng.standard_normal((12, 8))
        v = rng.standard_normal((12, 8))
        o, lse = self._run(VANILLA, q, k, v, causal=False)
        s = (q @ k.T) * 0.25
        p = np.exp(s - s.max(axis=1, keepdims=True))
        ref = (p / p.sum(axis=1, keepdims=True)) @ v
        assert np.allclose(o, ref)
        assert np.allclose(lse, np.log(np.exp(s).sum(axis=1)))

    def test_online_sweep_tile_size_invariant(self, rng):
        """The online softmax result must not depend on the KV tile size."""
        q = rng.standard_normal((3, 8))
        k = rng.standard_normal((29, 8))
        v = rng.standard_normal((29, 8))
        o1, lse1 = self._run(VANILLA, q, k, v, kv_tile=1)
        o2, lse2 = self._run(VANILLA, q, k, v, kv_tile=29)
        o3, lse3 = self._run(VANILLA, q, k, v, kv_tile=8)
        assert np.allclose(o1, o2) and np.allclose(o1, o3)
        assert np.allclose(lse1, lse2) and np.allclose(lse1, lse3)

    def test_causal_masks_future(self, rng):
        q = rng.standard_normal((4, 8))
        k = rng.standard_normal((4, 8))
        v = rng.standard_normal((4, 8))
        o, _ = self._run(VANILLA, q, k, v, causal=True)
        # Row 0 attends only position 0.
        assert np.allclose(o[0], v[0])

    def test_empty_kv_returns_identity_state(self, rng):
        q = rng.standard_normal((2, 8))
        o, lse = self._run(VANILLA, q, np.zeros((0, 8)), np.zeros((0, 8)), causal=False)
        assert np.allclose(o, 0.0)
        assert np.all(np.isneginf(lse))

    def test_fully_masked_rows_safe(self, rng):
        # Causal with queries placed before every key.
        kern = get_kernel(VANILLA, KernelTraits(head_dim=4))
        q = rng.standard_normal((2, 4))
        k = rng.standard_normal((3, 4))
        v = rng.standard_normal((3, 4))
        o, lse = kern.fn(
            q, k, v,
            np.array([-5, -4]), np.arange(3), np.zeros(2, dtype=np.int64), 0,
            VANILLA.bind_params(), 1.0, True, 2,
        )
        assert np.allclose(o, 0.0)
        assert np.all(np.isneginf(lse))
        assert not np.any(np.isnan(o))

    def test_no_softmax_sum_semantics(self, rng):
        v_spec = AttentionVariant(name="linear", use_softmax=False)
        q = rng.standard_normal((3, 8))
        k = rng.standard_normal((9, 8))
        v = rng.standard_normal((9, 8))
        o, lse = self._run(v_spec, q, k, v, causal=False, sm_scale=1.0)
        assert np.allclose(o, (q @ k.T) @ v)
        assert np.allclose(lse, 0.0)


class TestComposeVariants:
    def test_masks_and_together(self, rng):
        from repro.core import compose_variants
        from repro.variants import make_sliding_window

        a = make_sliding_window(8)
        b = AttentionVariant(name="even_only", logits_mask="(kv_pos % 2) == 0")
        c = compose_variants("win_even", a, b)
        kern = get_kernel(c, KernelTraits(head_dim=8))
        q = rng.standard_normal((1, 8))
        k = rng.standard_normal((16, 8))
        v = rng.standard_normal((16, 8))
        o, _ = kern.fn(
            q, k, v, np.array([15]), np.arange(16), np.zeros(1, dtype=np.int64), 0,
            c.bind_params(), 1.0, True, 16,
        )
        # Reference: window of 8 AND even positions.
        keep = ((15 - np.arange(16)) < 8) & (np.arange(16) % 2 == 0)
        s = np.where(keep, q @ k.T, -np.inf)[0]
        p = np.exp(s - s.max())
        ref = (p / p.sum()) @ v
        np.testing.assert_allclose(o[0], ref, atol=1e-10)

    def test_transform_plus_mask(self, rng):
        from repro.core import compose_variants
        from repro.variants import make_logits_softcap, make_sliding_window

        c = compose_variants("cap_win", make_logits_softcap(5.0), make_sliding_window(4))
        assert c.logits_transform is not None
        assert c.logits_mask is not None
        assert len(c.params) == 2

    def test_functor_collision_rejected(self):
        from repro.core import compose_variants
        from repro.variants import make_logits_softcap, make_flash_sigmoid

        with pytest.raises(ValueError, match="use_softmax"):
            compose_variants("x", make_logits_softcap(5.0), make_flash_sigmoid())
        a = AttentionVariant(name="a", logits_transform="logits * 2")
        b = AttentionVariant(name="b", logits_transform="logits + 1")
        with pytest.raises(ValueError, match="logits_transform"):
            compose_variants("x", a, b)

    def test_param_collision_rejected(self):
        from repro.core import compose_variants

        a = AttentionVariant(name="a", params=(ParamDecl("w", 1.0),))
        b = AttentionVariant(name="b", params=(ParamDecl("w", 2.0),))
        with pytest.raises(ValueError, match="collision"):
            compose_variants("x", a, b)

    def test_gemma2_style_combo(self, rng):
        """Gemma-2 layers use soft-cap together with sliding windows."""
        from repro.core import compose_variants
        from repro.variants import make_logits_softcap, make_sliding_window
        from conftest import fp16, make_paged_mapping
        from repro import BatchAttentionWrapper, WorkspaceBuffer
        from repro.core import HeadConfig

        c = compose_variants("gemma2", make_logits_softcap(30.0), make_sliding_window(16))
        heads = HeadConfig(4, 2, 16)
        mapping, slots = make_paged_mapping([48], [48], 8)
        q = rng.standard_normal((48, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        w = BatchAttentionWrapper(c, heads, WorkspaceBuffer(1 << 26), avg_qo_len=48)
        w.plan(mapping)
        out, _, _ = w.run(q, kp, vp)

        k, v = fp16(kp[:48]), fp16(vp[:48])
        pos = np.arange(48)
        sm = 1 / np.sqrt(16)
        ref = np.zeros_like(q)
        for h in range(4):
            s = 30 * np.tanh((q[:, h] @ k[:, h // 2].T) * sm / 30)
            keep = (pos[:, None] >= pos[None, :]) & ((pos[:, None] - pos[None, :]) < 16)
            s = np.where(keep, s, -np.inf)
            m = s.max(axis=1, keepdims=True)
            p = np.exp(s - m)
            ref[:, h] = (p / p.sum(axis=1, keepdims=True)) @ v[:, h // 2]
        np.testing.assert_allclose(out, ref, atol=1e-8)


class TestJITThreadSafety:
    def test_concurrent_compilation_single_kernel(self):
        """Racing get_kernel calls must all return the same cached object."""
        import threading

        clear_cache()
        v = AttentionVariant(name="race", logits_transform="logits * 1.5")
        traits = KernelTraits(head_dim=16)
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(get_kernel(v, traits))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(r is results[0] for r in results)
        assert cache_info()["cached"] == 1
