"""Tests for the plan cache: accounting, invalidation, determinism."""

import pytest

from conftest import SMALL_HEADS, make_paged_mapping
from repro.core import VANILLA, BatchAttentionWrapper, HeadConfig
from repro.gpu import H100_80G, WorkspaceBuffer
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    PlanCache,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def make_engine(plan_cache=True, **cfg_kwargs):
    cfg = EngineConfig(num_pool_pages=1 << 12, plan_cache=plan_cache, **cfg_kwargs)
    return ServingEngine(MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg)


def decode_heavy_requests(n=4, prompt=64, output=32):
    return [Request(i * 0.001, prompt, output) for i in range(n)]


class TestAccounting:
    def test_miss_then_hit(self):
        pc = PlanCache(capacity=4)
        assert pc.get("a") is None
        pc.put("a", "plan-a")
        assert pc.get("a") == "plan-a"
        assert (pc.hits, pc.misses) == (1, 1)

    def test_replay_factor_charges_per_launch(self):
        # One planned shape on an 8-layer model = 1 CPU plan + 7 replays;
        # a resident shape = 8 replayed launches (§3.3.1 plan/run split).
        pc = PlanCache(capacity=4, replay_factor=8)
        pc.get("a")
        pc.put("a", "plan-a")
        assert (pc.hits, pc.misses) == (7, 1)
        pc.get("a")
        assert (pc.hits, pc.misses) == (15, 1)

    def test_lru_eviction_and_recency_refresh(self):
        pc = PlanCache(capacity=2)
        pc.put("a", 1)
        pc.put("b", 2)
        pc.get("a")  # refresh: "b" is now least recently used
        pc.put("c", 3)
        assert pc.evictions == 1
        assert pc.get("b") is None
        assert pc.get("a") == 1 and pc.get("c") == 3

    def test_stats_delta_semantics(self):
        pc = PlanCache(capacity=4, replay_factor=2)
        pc.get("a")
        pc.put("a", 1)
        before = (pc.hits, pc.misses)
        pc.get("a")
        s = pc.stats(since=before)
        assert s["plan_cache_hits"] == 2.0
        assert s["plan_cache_misses"] == 0.0
        assert s["plan_cache_hit_rate"] == 1.0
        assert s["plan_cache_entries"] == 1.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)
        with pytest.raises(ValueError, match="replay_factor"):
            PlanCache(replay_factor=0)


class TestInvalidation:
    def test_bind_same_geometry_keeps_entries(self):
        pc = PlanCache()
        pc.bind(16, 1024)
        pc.put("a", 1)
        pc.bind(16, 1024)
        assert len(pc) == 1

    def test_bind_pool_size_change_flushes(self):
        pc = PlanCache()
        pc.bind(16, 1024)
        pc.put("a", 1)
        pc.bind(16, 2048)
        assert len(pc) == 0

    def test_bind_page_size_change_flushes(self):
        pc = PlanCache()
        pc.bind(16, 1024)
        pc.put("a", 1)
        pc.bind(32, 1024)
        assert len(pc) == 0

    def test_invalidate_preserves_counters(self):
        pc = PlanCache()
        pc.get("a")
        pc.put("a", 1)
        pc.get("a")
        pc.invalidate()
        assert len(pc) == 0
        assert (pc.hits, pc.misses) == (1, 1)


class TestWrapperDeterminism:
    def _wrapper(self, cache=None):
        w = BatchAttentionWrapper(
            VANILLA, SMALL_HEADS, WorkspaceBuffer(1 << 26), H100_80G, avg_qo_len=1.0
        )
        w.plan_cache = cache
        return w

    def test_cached_plan_identical_to_uncached(self):
        mapping, _ = make_paged_mapping([128, 300, 77], [1, 1, 1], 16)
        pc = PlanCache()
        cached = self._wrapper(pc)
        cached.plan(mapping)  # miss: computes and stores
        hit_plan = cached.plan(mapping)  # hit: replayed from the cache
        assert (pc.hits, pc.misses) == (1, 1)
        fresh_plan = self._wrapper().plan(mapping)
        assert hit_plan == fresh_plan

    def test_distinct_shapes_do_not_collide(self):
        m1, _ = make_paged_mapping([128, 300], [1, 1], 16)
        m2, _ = make_paged_mapping([128, 301], [1, 1], 16)
        pc = PlanCache()
        w = self._wrapper(pc)
        p1 = w.plan(m1)
        p2 = w.plan(m2)
        assert pc.misses == 2 and pc.hits == 0
        assert p1 != p2


class TestEngineIntegration:
    def test_decode_heavy_hit_rate(self):
        # Decode steps repeat the same batch shape for every layer and most
        # steps; with a 32-layer model the per-launch hit rate must clear
        # 50% by a wide margin.
        m = make_engine().run(decode_heavy_requests())
        s = m.summary()
        assert s["plan_cache_hit_rate"] >= 0.5
        assert s["plan_cache_hits"] > 0
        assert s["plan_cache_misses"] > 0

    def test_cache_off_omits_keys(self):
        s = make_engine(plan_cache=False).run(decode_heavy_requests()).summary()
        assert not any(k.startswith("plan_cache") for k in s)

    def test_cache_never_changes_results(self):
        reqs = decode_heavy_requests()
        with_cache = make_engine(plan_cache=True).run(reqs).summary()
        without = make_engine(plan_cache=False).run(reqs).summary()
        stripped = {
            k: v for k, v in with_cache.items() if not k.startswith("plan_cache")
        }
        assert stripped == without

    def test_stats_are_per_run_deltas(self):
        eng = make_engine()
        reqs = decode_heavy_requests()
        eng.run(reqs)
        second = eng.run(reqs)  # every shape is already resident
        assert second.plan_cache_stats["plan_cache_misses"] == 0.0
        assert second.plan_cache_stats["plan_cache_hit_rate"] == 1.0

    def test_chunked_prefill_with_cache(self):
        m = make_engine(chunked_prefill=True, prefill_chunk_size=128).run(
            decode_heavy_requests(prompt=400)
        )
        assert len(m.traces) == 4
        assert m.summary()["plan_cache_hit_rate"] >= 0.5
