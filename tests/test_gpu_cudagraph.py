"""Tests for CUDAGraph capture/replay semantics (paper §3.3.1, App. D.1)."""

import pytest

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, CudaGraph, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.gpu.cudagraph import GraphCaptureError


class TestBasics:
    def test_capture_records_launches(self):
        g = CudaGraph()
        calls = []
        with g.capture():
            CudaGraph.add_launch(lambda: calls.append(1), signature=(1,))
            CudaGraph.add_launch(lambda: calls.append(2), signature=(2,))
        assert g.num_launches == 2
        assert calls == [1, 2]  # capture also executes (warm-up semantics)

    def test_replay_reexecutes(self):
        g = CudaGraph()
        calls = []
        with g.capture():
            CudaGraph.add_launch(lambda: calls.append("k"), signature=())
        g.replay()
        g.replay()
        assert calls == ["k", "k", "k"]
        assert g.replay_count == 2

    def test_launch_outside_capture_not_recorded(self):
        g = CudaGraph()
        CudaGraph.add_launch(lambda: None, signature=())
        assert g.num_launches == 0

    def test_nested_capture_rejected(self):
        g1, g2 = CudaGraph(), CudaGraph()
        with g1.capture():
            with pytest.raises(GraphCaptureError, match="nested"):
                with g2.capture():
                    pass

    def test_recapture_rejected(self):
        g = CudaGraph()
        with g.capture():
            pass
        with pytest.raises(GraphCaptureError):
            with g.capture():
                pass

    def test_replay_before_capture_rejected(self):
        with pytest.raises(GraphCaptureError):
            CudaGraph().replay()

    def test_signature_change_detected(self):
        g = CudaGraph()
        state = {"sig": (1,)}

        def fn():
            return "x"

        fn.current_signature = lambda: state["sig"]
        with g.capture():
            CudaGraph.add_launch(fn, signature=state["sig"], name="k")
        g.replay()  # unchanged: fine
        state["sig"] = (2,)
        with pytest.raises(GraphCaptureError, match="signature changed"):
            g.replay()


class TestWrapperIntegration:
    def _setup(self):
        heads = HeadConfig(2, 2, 8)
        ws = WorkspaceBuffer(1 << 26)
        w = BatchAttentionWrapper(VANILLA, heads, ws, avg_qo_len=1,
                                  max_batch_size=8, max_total_qo=8)
        return heads, ws, w

    def test_replay_uses_fresh_plan_data(self, rng):
        """Plan → capture → new plan → replay must reflect the new lengths,
        exactly as Listing 1 requires."""
        heads, ws, w = self._setup()
        m1, slots1 = make_paged_mapping([64, 64], [1, 1], 16)
        w.plan(m1)
        g = CudaGraph()
        with g.capture():
            w.run(None, compute=False)
        first = w.last_report.makespan

        m2, _ = make_paged_mapping([512, 512], [1, 1], 16)
        w.plan(m2)  # plan() is host code, not captured
        g.replay()
        second = w.last_report.makespan
        assert second > first  # longer KV → more simulated work

    def test_replay_rejects_changed_grid(self, rng):
        """Changing the wrapper's launch signature (e.g. pointing it at a
        workspace section that moved) must fail replay loudly."""
        heads, ws, w = self._setup()
        m, _ = make_paged_mapping([64], [1], 16)
        w.plan(m)
        g = CudaGraph()
        with g.capture():
            w.run(None, compute=False)
        w.num_ctas += 1  # simulate an incompatible reconfiguration
        with pytest.raises(GraphCaptureError):
            g.replay()

    def test_graph_amortizes_launches(self):
        heads, ws, w = self._setup()
        m, _ = make_paged_mapping([64], [1], 16)
        w.plan(m)
        g = CudaGraph()
        with g.capture():
            w.run(None, compute=False)
        assert g.num_launches == 1
