"""Tests for workload generators and the Request type."""

import numpy as np
import pytest

from repro.serving import (
    Request,
    constant_lengths,
    mtbench_workload,
    poisson_arrivals,
    sharegpt_workload,
    uniform_lengths,
    variable_workload,
    zipf_lengths,
)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0.0, 0, 10)
        with pytest.raises(ValueError):
            Request(0.0, 10, 0)
        with pytest.raises(ValueError):
            Request(0.0, 10, 10, n=0)


class TestArrivals:
    def test_monotone(self):
        rng = np.random.default_rng(0)
        t = poisson_arrivals(100, 5.0, rng)
        assert np.all(np.diff(t) >= 0)

    def test_rate(self):
        rng = np.random.default_rng(0)
        t = poisson_arrivals(5000, 10.0, rng)
        assert t[-1] == pytest.approx(500.0, rel=0.1)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0, np.random.default_rng(0))


class TestShareGPT:
    def test_length_statistics(self):
        reqs = sharegpt_workload(3000, rate=1.0, seed=0)
        prompts = np.array([r.prompt_len for r in reqs])
        outputs = np.array([r.output_len for r in reqs])
        # Means in the ballpark of the reported ShareGPT statistics.
        assert 100 < prompts.mean() < 300
        assert 200 < outputs.mean() < 450
        assert prompts.max() <= 4096
        assert prompts.min() >= 4

    def test_deterministic_by_seed(self):
        a = sharegpt_workload(10, 1.0, seed=42)
        b = sharegpt_workload(10, 1.0, seed=42)
        assert [(r.arrival, r.prompt_len) for r in a] == [
            (r.arrival, r.prompt_len) for r in b
        ]

    def test_n_parameter(self):
        reqs = sharegpt_workload(5, 1.0, seed=0, n=4)
        assert all(r.n == 4 for r in reqs)


class TestVariable:
    def test_range(self):
        reqs = variable_workload(500, 1.0, seed=0)
        prompts = np.array([r.prompt_len for r in reqs])
        assert prompts.min() >= 512 and prompts.max() <= 2048


class TestMTBench:
    def test_lengths(self):
        reqs = mtbench_workload(100, 1.0, seed=0)
        assert all(40 <= r.prompt_len < 500 for r in reqs)


class TestKernelDistributions:
    def test_constant(self):
        assert np.all(constant_lengths(4, 1024) == 1024)

    def test_uniform_bounds(self):
        lens = uniform_lengths(1000, 512, 1024, seed=0)
        assert lens.min() >= 512 and lens.max() <= 1024

    def test_zipf_mean(self):
        lens = zipf_lengths(2000, mean=1024, seed=0)
        assert lens.mean() == pytest.approx(1024, rel=0.25)
        assert lens.min() >= 16

    def test_zipf_is_skewed(self):
        lens = zipf_lengths(2000, mean=1024, seed=0)
        assert np.median(lens) < lens.mean()  # heavy right tail
