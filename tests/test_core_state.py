"""Tests for attention states and the ⊕ operator (paper §2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttentionState, merge_all, merge_states, merge_states_sum


def state_of(q, k, v):
    """Direct (O, LSE) of softmax attention for one query over (k, v)."""
    s = k @ q
    lse = np.log(np.exp(s).sum())
    o = (np.exp(s - lse) @ v)
    return o, lse


class TestMergeCorrectness:
    def test_merge_equals_joint_computation(self, rng):
        d = 8
        q = rng.standard_normal(d)
        k = rng.standard_normal((10, d))
        v = rng.standard_normal((10, d))
        o_a, lse_a = state_of(q, k[:4], v[:4])
        o_b, lse_b = state_of(q, k[4:], v[4:])
        o, lse = merge_states(o_a, lse_a, o_b, lse_b)
        o_ref, lse_ref = state_of(q, k, v)
        assert np.allclose(o, o_ref)
        assert np.isclose(lse, lse_ref)

    def test_identity_element(self, rng):
        st_ = AttentionState(rng.standard_normal((3, 8)), rng.standard_normal(3))
        ident = AttentionState.identity((3,), 8)
        merged = st_.merge(ident)
        assert np.allclose(merged.o, st_.o)
        assert np.allclose(merged.lse, st_.lse)
        merged2 = ident.merge(st_)
        assert np.allclose(merged2.o, st_.o)

    def test_both_empty(self):
        a = AttentionState.identity((2,), 4)
        m = a.merge(a)
        assert np.all(np.isneginf(m.lse))
        assert np.allclose(m.o, 0.0)
        assert not np.any(np.isnan(m.o))

    def test_large_lse_no_overflow(self):
        o_a = np.ones((1, 4))
        o_b = np.zeros((1, 4))
        o, lse = merge_states(o_a, np.array([1000.0]), o_b, np.array([990.0]))
        assert np.all(np.isfinite(o))
        assert np.isfinite(lse[0]) and lse[0] >= 1000.0

    def test_batched_shapes(self, rng):
        o_a = rng.standard_normal((2, 3, 8))
        lse_a = rng.standard_normal((2, 3))
        o, lse = merge_states(o_a, lse_a, o_a, lse_a)
        assert o.shape == (2, 3, 8)
        assert lse.shape == (2, 3)
        # Merging a state with itself keeps O, bumps LSE by log 2.
        assert np.allclose(o, o_a)
        assert np.allclose(lse, lse_a + np.log(2))


finite_states = st.integers(0, 2**32 - 1)


class TestAlgebraicProperties:
    @given(finite_states)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, seed):
        rng = np.random.default_rng(seed)
        o_a, o_b = rng.standard_normal((2, 4))
        lse_a, lse_b = rng.uniform(-5, 5, 2)
        x = merge_states(o_a, np.array(lse_a), o_b, np.array(lse_b))
        y = merge_states(o_b, np.array(lse_b), o_a, np.array(lse_a))
        assert np.allclose(x[0], y[0]) and np.allclose(x[1], y[1])

    @given(finite_states)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, seed):
        rng = np.random.default_rng(seed)
        os = rng.standard_normal((3, 4))
        lses = rng.uniform(-5, 5, 3)

        def m(a, b):
            return merge_states(a[0], a[1], b[0], b[1])

        states = [(os[i], np.array(lses[i])) for i in range(3)]
        left = m(m(states[0], states[1]), states[2])
        right = m(states[0], m(states[1], states[2]))
        assert np.allclose(left[0], right[0])
        assert np.allclose(left[1], right[1])

    @given(finite_states)
    @settings(max_examples=50, deadline=None)
    def test_merge_all_order_insensitive(self, seed):
        rng = np.random.default_rng(seed)
        states = [
            AttentionState(rng.standard_normal((2, 4)), rng.uniform(-3, 3, 2))
            for _ in range(4)
        ]
        a = merge_all(states)
        b = merge_all(list(reversed(states)))
        assert np.allclose(a.o, b.o)
        assert np.allclose(a.lse, b.lse)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="batch shape"):
            AttentionState(np.zeros((2, 4)), np.zeros(3))

    def test_merge_all_empty(self):
        with pytest.raises(ValueError):
            merge_all([])

    def test_matmul_operator(self, rng):
        a = AttentionState(rng.standard_normal((1, 4)), np.zeros(1))
        b = AttentionState(rng.standard_normal((1, 4)), np.zeros(1))
        m = a @ b
        assert np.allclose(m.o, (a.o + b.o) / 2)


class TestSumComposition:
    def test_plain_addition(self, rng):
        a, b = rng.standard_normal((2, 3, 4))
        assert np.allclose(merge_states_sum(a, b), a + b)
