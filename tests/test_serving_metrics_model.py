"""Tests for latency metrics and the model cost roofline."""

import numpy as np
import pytest

from repro.gpu import A100_40G, H100_80G
from repro.serving import LLAMA_3_1_8B, LLAMA_3_1_70B, VICUNA_13B, RequestTrace, ServingMetrics


class TestMetrics:
    def test_ttft(self):
        t = RequestTrace(arrival=1.0, first_token_time=1.5)
        assert t.ttft == pytest.approx(0.5)

    def test_itls(self):
        t = RequestTrace(arrival=0.0, first_token_time=1.0, token_times=[1.2, 1.5, 1.9])
        np.testing.assert_allclose(t.itls, [0.2, 0.3, 0.4])

    def test_aggregation(self):
        m = ServingMetrics()
        m.add(RequestTrace(0.0, 0.5, [0.7]))
        m.add(RequestTrace(1.0, 2.0, [2.4]))
        m.total_time = 3.0
        assert m.median_ttft() == pytest.approx(0.75)
        np.testing.assert_allclose(sorted(m.all_itls), [0.2, 0.4])
        assert m.median_itl() == pytest.approx(0.3)
        assert m.total_output_tokens == 4
        assert m.throughput_tokens_per_s() == pytest.approx(4 / 3)

    def test_empty_metrics_nan(self):
        m = ServingMetrics()
        assert np.isnan(m.median_ttft())
        assert np.isnan(m.median_itl())

    def test_summary_keys(self):
        m = ServingMetrics()
        m.add(RequestTrace(0.0, 0.5, [0.7]))
        s = m.summary()
        for key in ("median_ttft", "p99_ttft", "median_itl", "p99_itl"):
            assert key in s


class TestModelConfigs:
    def test_parameter_counts_plausible(self):
        # Layer weights × layers should land near the advertised sizes (fp16).
        for model, params_b in ((LLAMA_3_1_8B, 8e9), (LLAMA_3_1_70B, 70e9), (VICUNA_13B, 13e9)):
            weights = model.layer_weight_bytes() * model.num_layers / model.dtype_bytes
            assert weights == pytest.approx(params_b, rel=0.25)

    def test_gqa_geometry(self):
        assert LLAMA_3_1_8B.num_qo_heads // LLAMA_3_1_8B.num_kv_heads == 4
        assert VICUNA_13B.num_qo_heads == VICUNA_13B.num_kv_heads  # MHA


class TestRoofline:
    def test_decode_is_weight_bandwidth_bound(self):
        m = LLAMA_3_1_8B
        t = m.layer_nonattn_time(8, H100_80G, gemm_efficiency=0.9)
        weight_time = m.layer_weight_bytes() / H100_80G.peak_bandwidth_bytes
        assert t == pytest.approx(weight_time, rel=0.2)

    def test_prefill_is_compute_bound(self):
        m = LLAMA_3_1_8B
        t = m.layer_nonattn_time(8192, H100_80G, gemm_efficiency=0.9)
        flop_time = m.layer_gemm_flops(8192) / (H100_80G.peak_fp16_flops * 0.9)
        assert t == pytest.approx(flop_time, rel=0.05)

    def test_tensor_parallel_shrinks_shard(self):
        m = LLAMA_3_1_70B
        t1 = m.layer_nonattn_time(4, H100_80G, 0.9, tensor_parallel=1)
        t4 = m.layer_nonattn_time(4, H100_80G, 0.9, tensor_parallel=4)
        assert t4 < t1 / 3

    def test_allreduce_zero_without_tp(self):
        assert LLAMA_3_1_70B.allreduce_time(16, tensor_parallel=1) == 0.0

    def test_allreduce_scales_with_tokens(self):
        m = LLAMA_3_1_70B
        a = m.allreduce_time(1, 4)
        b = m.allreduce_time(1000, 4)
        assert b > a

    def test_allreduce_efficiency(self):
        m = LLAMA_3_1_70B
        assert m.allreduce_time(100, 4, efficiency=2.0) < m.allreduce_time(100, 4)

    def test_lm_head_time_positive(self):
        assert LLAMA_3_1_8B.lm_head_time(16, A100_40G, 0.9) > 0


class TestVicunaAndSpecScaling:
    def test_bigger_models_cost_more_per_layer(self):
        t8 = LLAMA_3_1_8B.layer_nonattn_time(4, H100_80G, 0.9)
        t70 = LLAMA_3_1_70B.layer_nonattn_time(4, H100_80G, 0.9)
        assert t70 > 2.5 * t8

    def test_qkv_features_gqa(self):
        # Llama 8B: 32 q heads + 2×8 kv heads, head_dim 128.
        assert LLAMA_3_1_8B.qkv_out_features == (32 + 16) * 128
        assert LLAMA_3_1_8B.attn_out_features == 32 * 128

    def test_h100_faster_than_a100(self):
        m = LLAMA_3_1_8B
        assert m.layer_nonattn_time(4, H100_80G, 0.9) < m.layer_nonattn_time(
            4, A100_40G, 0.9
        )
