"""Tests for the StreamingLLM rolling KV cache."""

import numpy as np
import pytest

from repro.kvcache import StreamingKVCache


def token(i, heads=1, dim=4):
    return np.full((heads, dim), float(i)), np.full((heads, dim), float(-i))


class TestAppendOrder:
    def test_before_overflow_keeps_everything(self):
        c = StreamingKVCache(1, num_sinks=2, window=4, num_kv_heads=1, head_dim=4)
        for i in range(5):
            c.append(0, *token(i))
        order = c.slot_order(0)
        assert c.cache_len(0) == 5
        assert np.allclose(c.k_pool[order][:, 0, 0], [0, 1, 2, 3, 4])

    def test_overflow_evicts_oldest_window_token(self):
        c = StreamingKVCache(1, num_sinks=2, window=4, num_kv_heads=1, head_dim=4)
        for i in range(9):  # 2 sinks + tokens 2..8 through a window of 4
            c.append(0, *token(i))
        order = c.slot_order(0)
        # Expected: sinks (0, 1) then the last 4 tokens (5, 6, 7, 8).
        assert np.allclose(c.k_pool[order][:, 0, 0], [0, 1, 5, 6, 7, 8])
        assert c.cache_len(0) == 6

    def test_constant_memory(self):
        c = StreamingKVCache(1, num_sinks=4, window=8, num_kv_heads=1, head_dim=4)
        for i in range(1000):
            c.append(0, *token(i))
        assert c.cache_len(0) == 12
        order = c.slot_order(0)
        assert np.allclose(c.k_pool[order][:, 0, 0],
                           [0, 1, 2, 3] + list(range(992, 1000)))

    def test_no_sinks(self):
        c = StreamingKVCache(1, num_sinks=0, window=3, num_kv_heads=1, head_dim=4)
        for i in range(7):
            c.append(0, *token(i))
        order = c.slot_order(0)
        assert np.allclose(c.k_pool[order][:, 0, 0], [4, 5, 6])

    def test_multi_token_append(self):
        c = StreamingKVCache(1, num_sinks=1, window=3, num_kv_heads=1, head_dim=4)
        k = np.arange(5, dtype=float).reshape(5, 1, 1) * np.ones((5, 1, 4))
        c.append(0, k, -k)
        order = c.slot_order(0)
        assert np.allclose(c.k_pool[order][:, 0, 0], [0, 2, 3, 4])

    def test_batch_isolation(self):
        c = StreamingKVCache(2, num_sinks=1, window=2, num_kv_heads=1, head_dim=4)
        c.append(0, *token(10))
        c.append(1, *token(99))
        assert c.k_pool[c.slot_order(0)][0, 0, 0] == 10
        assert c.k_pool[c.slot_order(1)][0, 0, 0] == 99

    def test_shape_validation(self):
        c = StreamingKVCache(1, 1, 2, num_kv_heads=2, head_dim=4)
        with pytest.raises(ValueError, match="shape"):
            c.append(0, np.zeros((1, 1, 4)), np.zeros((1, 1, 4)))


class TestMappingExport:
    def test_cache_positions(self):
        c = StreamingKVCache(2, num_sinks=2, window=4, num_kv_heads=1, head_dim=4)
        for i in range(9):
            c.append(0, *token(i))
        for i in range(3):
            c.append(1, *token(i + 50))
        m = c.mapping([0, 1], [1, 1])
        assert m.causal
        assert np.array_equal(m.kv.kv_lens, [6, 3])
        # kv_pos are cache positions (offset 0), queries at the last position.
        assert np.array_equal(m.kv_pos_offset, [0, 0])
        assert np.array_equal(m.q_pos_offset, [5, 2])

    def test_gather_order_is_logical(self):
        c = StreamingKVCache(1, num_sinks=1, window=3, num_kv_heads=1, head_dim=4)
        for i in range(7):
            c.append(0, *token(i))
        m = c.mapping([0], [1])
        slots = m.kv.slot_indices(0)
        assert np.allclose(c.k_pool[slots][:, 0, 0], [0, 4, 5, 6])

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingKVCache(0, 1, 2, 1, 4)
        with pytest.raises(ValueError):
            StreamingKVCache(1, -1, 2, 1, 4)
        with pytest.raises(ValueError):
            StreamingKVCache(1, 1, 0, 1, 4)
