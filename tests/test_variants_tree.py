"""Tests for tree attention (speculative decoding) and SM partitioning."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.variants import make_tree_attention, tree_attention_mask

HEADS = HeadConfig(4, 2, 16)


class TestTreeMask:
    def test_chain_is_causal(self):
        # A pure chain degenerates to a causal mask.
        mask = tree_attention_mask([-1, 0, 1, 2])
        assert np.array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_branches_are_isolated(self):
        mask = tree_attention_mask([-1, 0, 0])
        assert mask[1, 2] == False  # siblings cannot see each other
        assert mask[2, 1] == False
        assert mask[1, 0] and mask[2, 0]

    def test_context_always_visible(self):
        mask = tree_attention_mask([-1, 0], context_len=3)
        assert mask[:, :3].all()
        assert mask.shape == (2, 5)

    def test_invalid_parent(self):
        with pytest.raises(ValueError, match="parent"):
            tree_attention_mask([-1, 5])

    def test_self_visibility(self):
        mask = tree_attention_mask([-1, 0, 1])
        assert np.all(np.diag(mask))


class TestTreeAttentionKernel:
    def test_every_node_matches_path_reference(self, rng):
        context_len = 30
        parents = [-1, 0, 0, 1, 2, 2, 4]
        n = len(parents)
        total = context_len + n
        mapping, slots = make_paged_mapping([total], [n], page_size=4)
        q = rng.standard_normal((n, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        variant = make_tree_attention(parents, context_len)
        w = BatchAttentionWrapper(variant, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=n)
        w.plan(mapping)
        out, _, _ = w.run(q, kp, vp)

        k = fp16(kp[:total])
        v = fp16(vp[:total])
        for i in range(n):
            path = list(range(context_len))
            node = i
            anc = []
            while node != -1:
                anc.append(context_len + node)
                node = parents[node]
            path += sorted(anc)
            ref = reference_attention(q[i : i + 1], k[path], v[path], causal=False)
            np.testing.assert_allclose(out[i : i + 1], ref, atol=1e-6)

    def test_two_trees_share_compiled_kernel(self):
        from repro.core import KernelTraits, get_kernel

        a = make_tree_attention([-1, 0], 4)
        b = make_tree_attention([-1, 0, 1], 8)
        # Same functor structure → same cached kernel; masks flow in as
        # parameters at plan time.
        assert get_kernel(a, KernelTraits(head_dim=16)) is get_kernel(
            b, KernelTraits(head_dim=16)
        )


class TestSMPartitioning:
    def test_sm_limit_shrinks_grid(self):
        mapping, _ = make_paged_mapping([1024] * 8, [1] * 8, 16)
        full = BatchAttentionWrapper(
            VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1
        )
        half = BatchAttentionWrapper(
            VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1, sm_limit=54
        )
        assert half.num_ctas == full.num_ctas // 2

    def test_fewer_sms_slow_compute_bound_prefill(self):
        # Compute-bound prefill scales with the SM share; memory-bound
        # decode would not (27 SMs can already saturate HBM).
        mapping, _ = make_paged_mapping([1024] * 8, [1024] * 8, 16)
        times = {}
        for limit in (108, 27):
            w = BatchAttentionWrapper(
                VANILLA, HeadConfig(8, 8, 64), WorkspaceBuffer(1 << 27),
                avg_qo_len=1024, sm_limit=limit,
            )
            w.plan(mapping)
            _, _, rep = w.run(None, compute=False)
            times[limit] = rep.makespan
        assert times[27] > 1.5 * times[108]

    def test_invalid_limit(self):
        with pytest.raises(ValueError, match="sm_limit"):
            BatchAttentionWrapper(
                VANILLA, HEADS, WorkspaceBuffer(1 << 20), sm_limit=0
            )
        with pytest.raises(ValueError, match="sm_limit"):
            BatchAttentionWrapper(
                VANILLA, HEADS, WorkspaceBuffer(1 << 20), sm_limit=10_000
            )
