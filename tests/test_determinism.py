"""Determinism guarantees (paper §3.3.1: "LLM serving requires
deterministic outputs, we did not incorporate atomic aggregation").

The scheduler must produce an identical plan — and the engine bitwise
identical outputs — for identical sequence-length inputs, regardless of
how the work was split and merged.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, plan_schedule

HEADS = HeadConfig(4, 2, 16)


class TestSchedulerDeterminism:
    @given(
        st.lists(st.integers(1, 5000), min_size=1, max_size=12),
        st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_plans_for_identical_lengths(self, kv, heads):
        a = plan_schedule([1] * len(kv), kv, 16, 32, num_kv_heads=heads)
        b = plan_schedule([1] * len(kv), kv, 16, 32, num_kv_heads=heads)
        assert a.cta_queues == b.cta_queues
        assert a.merges == b.merges
        assert a.num_partial_slots == b.num_partial_slots


class TestKernelDeterminism:
    def test_bitwise_identical_outputs_across_runs(self, rng):
        """Same inputs → bit-identical outputs, including the split-KV
        contraction path (fixed merge order, no atomics)."""
        kv_lens = [3000, 64, 900]
        mapping, slots = make_paged_mapping(kv_lens, [1, 1, 1])
        q = rng.standard_normal((3, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))

        outs = []
        for _ in range(2):
            w = BatchAttentionWrapper(
                VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1
            )
            w.plan(mapping)
            out, _, _ = w.run(q, kp, vp)
            outs.append(out)
        assert np.array_equal(outs[0], outs[1])

    def test_bitwise_identical_after_replanning(self, rng):
        """Replanning with the *same* lengths must not change results."""
        mapping, slots = make_paged_mapping([2500], [1])
        q = rng.standard_normal((1, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        w.plan(mapping)
        a, _, _ = w.run(q, kp, vp)
        w.plan(mapping)
        b, _, _ = w.run(q, kp, vp)
        assert np.array_equal(a, b)

    def test_batch_order_invariance_of_per_request_results(self, rng):
        """A request's output must not depend on its batch neighbours."""
        kv_lens = [500, 1200]
        mapping, slots = make_paged_mapping(kv_lens, [1, 1])
        q = rng.standard_normal((2, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        w.plan(mapping)
        both, _, _ = w.run(q, kp, vp)

        solo_map, _ = make_paged_mapping([500], [1])
        w2 = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        w2.plan(solo_map)
        solo, _, _ = w2.run(q[:1], kp, vp)
        np.testing.assert_allclose(both[0], solo[0], atol=1e-12)


class TestSimulationDeterminism:
    def test_reports_are_reproducible(self):
        mapping, _ = make_paged_mapping([777, 1234, 55], [1, 1, 1])
        spans = []
        for _ in range(2):
            w = BatchAttentionWrapper(
                VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1
            )
            w.plan(mapping)
            _, _, rep = w.run(None, compute=False)
            spans.append(rep.makespan)
        assert spans[0] == spans[1]
