"""Overload layer: front door, circuit breakers, brownout ladder, SLOs.

Unit coverage for each overload piece plus the acceptance scenario from
the issue: a 3x sustained-overload burst at dp=2 must keep every accepted
stream token-exact against an uncontended reference, open *and* close a
breaker via a half-open probe, engage the brownout ladder and fully
anneal back, and beat the unprotected run's SLO attainment on the same
trace — while ``overload=None`` runs stay bit-identical to the
pre-overload engine.
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
from repro.cluster.router import (
    BreakerConfig,
    CircuitBreaker,
    IllegalBreakerTransition,
)
from repro.faults import FaultPlan
from repro.gpu import H100_80G
from repro.serving import (
    BROWNOUT_LADDER,
    BrownoutController,
    EngineConfig,
    FrontDoor,
    LLAMA_3_1_8B,
    OverloadConfig,
    TokenBucket,
    bursty_workload,
    sharegpt_workload,
)
from repro.serving.overload import overload_token_divergence, slo_attainment

MODEL = LLAMA_3_1_8B


class TestTokenBucket:
    def test_burst_then_sustained_rate(self):
        b = TokenBucket(rate=2.0, capacity=3.0)
        # The full bucket absorbs a burst of capacity...
        assert [b.allow(0.0) for _ in range(4)] == [True, True, True, False]
        # ...then refills at rate: one token every 0.5 s.
        assert not b.allow(0.25)
        assert b.allow(0.5)
        assert not b.allow(0.6)

    def test_refill_caps_at_capacity(self):
        b = TokenBucket(rate=100.0, capacity=2.0)
        assert b.allow(0.0)
        assert [b.allow(1e9) for _ in range(3)] == [True, True, False]

    def test_time_never_runs_backwards(self):
        b = TokenBucket(rate=1.0, capacity=1.0)
        assert b.allow(5.0)
        b.allow(1.0)  # stale timestamp must not mint tokens
        assert not b.allow(5.5)
        assert b.allow(6.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)


class TestFrontDoor:
    def workload(self, n=24, rate=400.0):
        # The door runs on rid-stamped workloads (ClusterEngine.run stamps
        # before routing); stamp here the same way.
        from repro.cluster import assign_rids

        return assign_rids(bursty_workload(n, rate, seed=3, tenants=4))

    def door(self, **kw):
        base = dict(tenants=4, admit_rate=40.0, burst_capacity=2.0, seed=1)
        base.update(kw)
        return FrontDoor(OverloadConfig(**base))

    def test_admission_is_deterministic(self):
        reqs = self.workload()
        a1, r1 = self.door().admit(reqs)
        a2, r2 = self.door().admit(reqs)
        assert [(q.rid, q.arrival) for q in a1] == [(q.rid, q.arrival) for q in a2]
        assert r1.summary() == r2.summary()

    def test_conservation_and_arrival_order(self):
        reqs = self.workload()
        admitted, rep = self.door().admit(reqs)
        assert rep.offered == len(reqs)
        assert rep.admitted + rep.dropped == rep.offered
        assert len(admitted) == rep.admitted
        arrivals = [q.arrival for q in admitted]
        assert arrivals == sorted(arrivals)

    def test_retries_keep_rid_and_record_origin(self):
        reqs = self.workload()
        admitted, rep = self.door().admit(reqs)
        assert rep.retries > 0
        assert sorted(q.rid for q in admitted) == sorted(
            r.rid for r in reqs if r.rid in {q.rid for q in admitted}
        )
        by_rid = {r.rid: r for r in reqs}
        for rid, first_arrival in rep.origin.items():
            assert by_rid[rid].arrival == first_arrival
            (re_admitted,) = [q for q in admitted if q.rid == rid]
            assert re_admitted.arrival > first_arrival

    def test_retry_budget_bounds_the_storm(self):
        reqs = self.workload()
        _, rep = self.door(retry_budget=0.25, max_client_retries=10).admit(reqs)
        assert rep.retries <= -(-len(reqs) * 25 // 100)  # ceil(0.25 * n)
        _, unbounded = self.door(retry_budget=10.0, max_client_retries=10).admit(reqs)
        assert unbounded.retries > rep.retries

    def test_weighted_fair_shares(self):
        reqs = self.workload(n=48, rate=2000.0)
        _, rep = self.door(
            tenant_weights=(6.0, 1.0, 1.0, 1.0), max_client_retries=0
        ).admit(reqs)
        heavy = rep.tenant_admitted.get(0, 0)
        assert heavy >= max(rep.tenant_admitted.get(t, 0) for t in (1, 2, 3))

    def test_untagged_requests_hash_by_rid(self):
        door = self.door()
        req = dataclasses.replace(self.workload()[0], tenant=None)
        assert door.tenant_of(req) == req.rid % 4

    def test_tenant_weights_must_match_tenant_count(self):
        with pytest.raises(ValueError, match="one positive weight"):
            self.door(tenant_weights=(1.0, 2.0)).admit(self.workload())


class TestBrownoutController:
    def controller(self, **kw):
        base = dict(enter=0.9, exit=0.6, engage_after=2, anneal_after=3)
        base.update(kw)
        return BrownoutController(**base)

    def test_ladder_engages_rung_by_rung_with_dwell(self):
        bo = self.controller()
        assert bo.observe(2.0, t=0.0) == 0  # first hot sample: dwell
        assert bo.observe(2.0, t=0.1) == 1
        assert (bo.level, bo.rung_name) == (1, "shrink-prefill-chunk")
        assert bo.chunk_budget(512) == 128 and not bo.cascade_disabled
        for step, want in ((2, "disable-cascade"), (3, "clamp-new-tokens"),
                           (4, "shed-low-priority")):
            bo.observe(2.0, t=step)
            assert bo.observe(2.0, t=step + 0.1) == 1
            assert bo.rung_name == want
        assert bo.cascade_disabled and bo.token_clamp == 32 and bo.shed_active
        # Fully engaged: further hot samples cannot climb past the ladder.
        assert bo.observe(2.0, t=9.0) == 0 and bo.observe(2.0, t=9.1) == 0
        assert bo.level == bo.peak_level == len(BROWNOUT_LADDER)

    def test_anneals_back_and_band_holds(self):
        bo = self.controller()
        for t in range(4):
            bo.observe(1.0, t=float(t))
        assert bo.level == 2
        # The hysteresis band between exit and enter holds the rung...
        for t in range(10):
            assert bo.observe(0.75, t=10.0 + t) == 0
        assert bo.level == 2
        # ...and the band resets the cool dwell: 2 cool + band + 2 cool != 3.
        bo.observe(0.1, t=20.0)
        bo.observe(0.1, t=20.1)
        bo.observe(0.75, t=20.2)
        bo.observe(0.1, t=20.3)
        bo.observe(0.1, t=20.4)
        assert bo.level == 2
        assert bo.observe(0.1, t=20.5) == -1
        assert bo.observe(0.1, t=20.6) == 0
        for t in range(6):
            bo.observe(0.1, t=21.0 + t)
        assert (bo.level, bo.rung_name) == (0, "off")
        assert bo.anneal_events == 2 and bo.peak_level == 2
        assert [lv for _, _, lv in bo.transitions] == [1, 2, 1, 0]

    def test_state_roundtrip(self):
        bo = self.controller()
        bo.observe(2.0, t=0.0)
        bo.observe(2.0, t=0.1)
        clone = self.controller()
        clone.import_state(bo.export_state())
        assert clone.level == bo.level
        assert clone.export_state() == bo.export_state()

    def test_from_config_carries_the_knobs(self):
        bo = BrownoutController.from_config(
            OverloadConfig(brownout_chunk=64, brownout_clamp=16,
                           engage_after=5, anneal_after=7)
        )
        assert bo.chunk_size == 64 and bo.clamp_tokens == 16
        assert bo.engage_after == 5 and bo.anneal_after == 7

    def test_validates(self):
        with pytest.raises(ValueError):
            BrownoutController(enter=0.5, exit=0.5)


class TestCircuitBreaker:
    def breaker(self, **kw):
        base = dict(fail_threshold=2, cooldown=1.0, probe_successes=2)
        base.update(kw)
        return CircuitBreaker(0, BreakerConfig(**base))

    def test_full_lifecycle_closed_open_half_open_closed(self):
        b = self.breaker()
        assert b.allow(0.0)
        b.record_failure(0.1, "timeout")
        assert b.state == "closed"  # one strike under the threshold
        b.record_failure(0.2, "timeout")
        assert b.state == "open"
        assert not b.allow(0.5)  # cooldown still running
        assert b.allow(1.3)  # cooldown elapsed -> half-open probe
        assert b.state == "half-open"
        b.record_success(1.4)
        assert b.state == "half-open"  # needs probe_successes=2
        b.record_success(1.5)
        assert b.state == "closed"
        assert (b.open_count, b.half_open_count, b.close_count) == (1, 1, 1)

    def test_failed_probe_reopens_and_rearms_cooldown(self):
        b = self.breaker()
        b.record_failure(0.0, "timeout")
        b.record_failure(0.1, "timeout")
        assert b.allow(1.2) and b.state == "half-open"
        b.record_failure(1.3, "pressure")
        assert b.state == "open"
        assert not b.allow(2.0)  # cooldown restarted at 1.3
        assert b.allow(2.4)
        assert b.open_count == 2 and b.half_open_count == 2

    def test_success_decays_strikes(self):
        b = self.breaker(fail_threshold=2)
        b.record_failure(0.0, "timeout")
        b.record_success(0.1)  # leaky decay: strike forgiven
        b.record_failure(0.2, "timeout")
        assert b.state == "closed"
        b.record_failure(0.3, "timeout")
        assert b.state == "open"

    def test_transitions_are_validated_and_timestamped(self):
        b = self.breaker()
        with pytest.raises(IllegalBreakerTransition):
            b.to("closed", t=0.0)  # closed -> closed is not an edge
        with pytest.raises(IllegalBreakerTransition):
            b.to("half-open", t=0.0)  # must pass through open
        b.record_failure(0.0, "timeout")
        b.record_failure(0.5, "timeout")
        assert [(tr.frm, tr.to, tr.t) for tr in b.transitions] == [
            ("closed", "open", 0.5)
        ]


class TestBurstyWorkload:
    def test_deterministic_and_tenant_tagged(self):
        a = bursty_workload(32, 50.0, seed=5, tenants=3)
        b = bursty_workload(32, 50.0, seed=5, tenants=3)
        assert a == b
        assert {r.tenant for r in a} <= {0, 1, 2}
        assert all(r.arrival >= 0 for r in a)
        assert [r.arrival for r in a] == sorted(r.arrival for r in a)

    def test_premium_tenants_carry_priority(self):
        reqs = bursty_workload(64, 50.0, seed=2, tenants=4, premium_tenants=2)
        for r in reqs:
            assert r.priority == (1 if r.tenant < 2 else 0)

    def test_burst_multiplier_compresses_the_span(self):
        calm = bursty_workload(64, 30.0, seed=1, burst=1.0)
        bursty = bursty_workload(64, 30.0, seed=1, burst=4.0)
        assert bursty[-1].arrival < calm[-1].arrival


class TestClusterOverloadScenario:
    """The acceptance scenario: 3x sustained burst at dp=2."""

    @pytest.fixture(scope="class")
    def scenario(self):
        requests = bursty_workload(96, 40.0, seed=0, tenants=4, burst=3.0,
                                   burst_len=0.25, burst_every=0.6)
        engine_cfg = EngineConfig(max_running=16, chunked_prefill=True,
                                  composable=True, prefill_chunk_size=256)
        overload = OverloadConfig(
            tenants=4, admit_rate=24.0, burst_capacity=8.0,
            max_client_retries=5, retry_budget=2.0, retry_base=0.08,
            seed=0, slo_ttft=0.4, engage_after=25, anneal_after=60,
            brownout_clamp=32,
            breaker=BreakerConfig(fail_threshold=3, cooldown=0.25,
                                  probe_successes=2, pressure_threshold=0.5),
        )
        cluster = ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(dp=2, engine=engine_cfg, overload=overload),
            fault_plan=FaultPlan(seed=0, timeout_rate=0.08),
        )
        reference = cluster.run_reference(requests)
        cm = cluster.run(requests)
        baseline = ClusterEngine(
            MODEL, H100_80G, ClusterConfig(dp=2, engine=engine_cfg),
        ).run(requests)
        return requests, reference, cm, baseline, overload

    def test_accepted_streams_are_token_exact(self, scenario):
        requests, reference, cm, _, _ = scenario
        divergent, compared = overload_token_divergence(
            cm, expected_tokens(reference)
        )
        assert divergent == 0
        assert compared > 0
        # At least one compared stream was brownout-clamped (the prefix
        # branch of the check really ran).
        clamped = [t for m in cm.replicas for t in m.traces
                   if t.outcome_reason == "brownout-clamp"]
        assert clamped

    def test_door_sheds_and_queue_depth_stays_bounded(self, scenario):
        _, _, cm, _, overload = scenario
        s = cm.summary()
        assert s["overload_rejected"] > 0
        assert s["overload_retries"] > 0
        assert s["overload_admitted"] + s["overload_dropped"] == s["overload_offered"]
        # The door keeps the concurrency gate's saturation bounded: an
        # unprotected run would park all 96 requests at once (sat = 6 x
        # max_running across dp=2); the admitted trickle stays well under.
        for m in cm.replicas:
            assert 0.0 < m.admission_pressure < 3.0
            assert 0.0 < m.admission_pressure_mean <= m.admission_pressure

    def test_a_breaker_opens_and_later_closes(self, scenario):
        _, _, cm, _, _ = scenario
        s = cm.summary()
        assert s["breaker_open_total"] > 0
        assert s["breaker_half_open_total"] > 0
        assert s["breaker_close_total"] > 0
        # The close really came through a half-open probe: the transition
        # log shows open -> half-open -> closed in time order.
        seq = [(tr.t, tr.frm, tr.to) for tr in cm.overload.breaker_transitions]
        assert any(frm == "half-open" and to == "closed" for _, frm, to in seq)

    def test_brownout_engages_and_fully_anneals(self, scenario):
        _, _, cm, _, _ = scenario
        s = cm.summary()
        assert s["brownout_engaged"] > 0
        assert s["brownout_annealed"] > 0
        assert s["brownout_peak_level"] >= 3  # the clamp rung really ran
        assert s["brownout_final_level"] == 0

    def test_slo_attainment_beats_the_unprotected_baseline(self, scenario):
        requests, _, cm, baseline, overload = scenario
        offered = sum(r.n for r in requests)
        _, base_frac = slo_attainment(baseline, offered, overload.slo_ttft)
        assert cm.summary()["slo_attainment"] > base_frac

    def test_hedging_issued_hedges(self, scenario):
        _, _, cm, _, _ = scenario
        assert cm.summary()["hedged_prefills"] > 0


class TestOverloadDisabled:
    def test_summary_has_no_overload_keys_and_run_matches(self):
        requests = sharegpt_workload(8, rate=120.0, seed=6)
        cfg = ClusterConfig(dp=2, engine=EngineConfig(max_running=64))
        cm = ClusterEngine(MODEL, H100_80G, cfg).run(requests)
        s = cm.summary()
        assert not [k for k in s if k.startswith(("overload_", "breaker_",
                                                  "brownout_", "hedge"))]
        assert "slo_attainment" not in s
        # And the overloaded config on the same trace admits everything
        # it can token-exactly: the two runs agree on every stream both
        # served (rid-keyed tokens are arrival-independent).
        ov_cfg = ClusterConfig(
            dp=2, engine=EngineConfig(max_running=64),
            overload=OverloadConfig(admit_rate=1000.0, burst_capacity=64.0),
        )
        ov = ClusterEngine(MODEL, H100_80G, ov_cfg).run(requests)
        plain = {
            (req_list[t.req_id].rid, t.gen_index): t.tokens
            for req_list, m in zip(cm.replica_requests, cm.replicas)
            for t in m.traces
        }
        for req_list, m in zip(ov.replica_requests, ov.replicas):
            for t in m.traces:
                key = (req_list[t.req_id].rid, t.gen_index)
                assert plain[key] == t.tokens
