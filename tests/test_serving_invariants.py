"""Property-based invariants of the serving engine over random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)

request_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 2.0),     # arrival
        st.integers(1, 600),     # prompt
        st.integers(1, 12),      # output
        st.sampled_from([1, 2, 3]),  # n
    ),
    min_size=1,
    max_size=8,
)


def build(reqs_spec):
    return [Request(a, p, o, n=n) for a, p, o, n in reqs_spec]


def run_engine(reqs, **cfg):
    base = dict(num_pool_pages=1 << 13, max_running=64)
    base.update(cfg)
    be = FlashInferBackend(HEADS, H100_80G, composable=base.get("composable", False))
    return ServingEngine(MODEL, be, H100_80G, EngineConfig(**base)).run(reqs)


class TestEngineInvariants:
    @given(request_strategy, st.booleans(), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_completion_and_token_conservation(self, spec, chunked, composable):
        reqs = build(spec)
        m = run_engine(reqs, chunked_prefill=chunked, composable=composable)
        # One trace per generation stream; every token accounted for.
        assert len(m.traces) == sum(r.n for r in reqs)
        assert m.total_output_tokens == sum(r.n * r.output_len for r in reqs)

    @given(request_strategy, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_temporal_causality(self, spec, chunked):
        reqs = build(spec)
        m = run_engine(reqs, chunked_prefill=chunked)
        for tr in m.traces:
            times = [tr.arrival, tr.first_token_time] + tr.token_times
            assert all(b >= a for a, b in zip(times, times[1:]))
            assert tr.ttft >= 0

    @given(request_strategy)
    @settings(max_examples=15, deadline=None)
    def test_chunked_matches_unchunked_token_counts(self, spec):
        reqs = build(spec)
        a = run_engine(reqs, chunked_prefill=False)
        b = run_engine(reqs, chunked_prefill=True, prefill_chunk_size=128)
        assert a.total_output_tokens == b.total_output_tokens

    @given(request_strategy)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_replay(self, spec):
        reqs = build(spec)
        a = run_engine(reqs).summary()
        b = run_engine(reqs).summary()
        for key in a:
            if np.isnan(a[key]):
                assert np.isnan(b[key])
            else:
                assert a[key] == pytest.approx(b[key], rel=1e-12)
