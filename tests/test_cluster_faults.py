"""Cluster fault injection: link degradation, replica crash recovery,
and the checkpoint world-shape guard."""

import json

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    ReplicaFailure,
    expected_tokens,
)
from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    CheckpointConfig,
    CheckpointStore,
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    RecoveryManager,
    ServingEngine,
    WorldMismatchError,
    sharegpt_workload,
)

MODEL = LLAMA_3_1_8B


def _engine(store=None, tensor_parallel=1, every=2):
    heads = HeadConfig(
        MODEL.num_qo_heads // tensor_parallel,
        max(MODEL.num_kv_heads // tensor_parallel, 1),
        MODEL.head_dim,
    )
    return ServingEngine(
        MODEL, FlashInferBackend(heads, H100_80G), H100_80G,
        EngineConfig(max_running=64, tensor_parallel=tensor_parallel),
        checkpoint=CheckpointConfig(every_steps=every),
        checkpoint_store=store,
    )


def test_link_degradation_slows_the_cluster():
    requests = sharegpt_workload(6, rate=60.0, seed=3)
    cfg = ClusterConfig(tp=2, engine=EngineConfig(max_running=64))
    healthy = ClusterEngine(MODEL, H100_80G, cfg).run(requests)
    # Derate the interconnect to 10% for the entire run window.
    degraded = ClusterEngine(
        MODEL, H100_80G, cfg, link_faults=((0.0, 1e6, 0.1),)
    ).run(requests)
    assert degraded.total_time > healthy.total_time
    assert degraded.summary()["link_degradations"] == 1.0


def test_link_degradation_window_only_slows_covered_steps():
    requests = sharegpt_workload(6, rate=60.0, seed=3)
    cfg = ClusterConfig(tp=2, engine=EngineConfig(max_running=64))
    healthy = ClusterEngine(MODEL, H100_80G, cfg).run(requests)
    # A window entirely after the run changes nothing.
    after = ClusterEngine(
        MODEL, H100_80G, cfg,
        link_faults=((healthy.total_time + 1.0, healthy.total_time + 2.0, 0.1),),
    ).run(requests)
    assert after.total_time == pytest.approx(healthy.total_time)
    # Degradation moves time only: tokens stay identical.
    degraded = ClusterEngine(
        MODEL, H100_80G, cfg, link_faults=((0.0, 1e6, 0.1),)
    ).run(requests)
    healthy_tokens = [t.tokens for m in healthy.replicas for t in m.traces]
    degraded_tokens = [t.tokens for m in degraded.replicas for t in m.traces]
    assert healthy_tokens == degraded_tokens


def test_replica_crash_recovers_token_exact():
    requests = sharegpt_workload(8, rate=120.0, seed=6)
    cluster = ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(dp=2, router="round-robin",
                      engine=EngineConfig(max_running=64),
                      checkpoint_every=3),
        replica_failures={0: [ReplicaFailure(3, "crash", "boundary"),
                              ReplicaFailure(7, "crash", "mid-step")]},
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    assert cm.crash_reports is not None
    report = cm.crash_reports[0]
    assert report.crashes == 2
    assert report.recoveries == 2
    assert cm.crash_reports[1] is None
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert (divergent, compared) == (0, 8)
    s = cm.summary()
    assert s["cluster_crashes"] == 2.0
    assert s["cluster_recoveries"] == 2.0


def test_replica_crashes_alias_is_removed():
    """The deprecated ``replica_crashes=`` spelling now fails fast with a
    TypeError that spells out the ``replica_failures=`` migration instead
    of warning and translating."""
    cfg = ClusterConfig(dp=2, router="round-robin",
                        engine=EngineConfig(max_running=64),
                        checkpoint_every=3)
    with pytest.raises(TypeError, match="replica_failures="):
        ClusterEngine(
            MODEL, H100_80G, cfg,
            replica_crashes={0: [(3, "boundary")]},
        )
    # The removal hint names the replacement shape, not just the kwarg.
    with pytest.raises(TypeError, match="ReplicaFailure"):
        ClusterEngine(
            MODEL, H100_80G, cfg,
            replica_crashes={0: [(3, "boundary")]},
        )


def test_replica_failures_and_crashes_together_is_an_error():
    """Passing both the modern and the removed spelling raises the same
    removal TypeError — the removed kwarg never merges into (or silently
    shadows) the modern failure script."""
    cfg = ClusterConfig(dp=2, router="round-robin",
                        engine=EngineConfig(max_running=64),
                        checkpoint_every=3)
    with pytest.raises(TypeError, match="removed"):
        ClusterEngine(
            MODEL, H100_80G, cfg,
            replica_failures={0: ReplicaFailure(3, "crash", "boundary")},
            replica_crashes={1: [(5, "boundary")]},
        )


def test_snapshots_carry_the_world_shape():
    store = CheckpointStore()
    _engine(store).run(sharegpt_workload(4, rate=50.0, seed=1))
    sid = store.latest_snapshot_id()
    assert sid is not None
    snap = store.load_snapshot(sid)
    assert snap["world"] == {"tp": 1, "dp": 1, "replica": 0}


def test_recovery_refuses_a_mismatched_cluster_shape():
    store = CheckpointStore()
    requests = sharegpt_workload(4, rate=50.0, seed=1)
    _engine(store).run(requests)
    with pytest.raises(WorldMismatchError, match="tp"):
        RecoveryManager(store, expected_world={"tp": 2}).recover()
    with pytest.raises(WorldMismatchError, match="dp"):
        RecoveryManager(store, expected_world={"tp": 1, "dp": 4}).recover()
    # The matching shape recovers fine.
    recovered = RecoveryManager(
        store, expected_world={"tp": 1, "dp": 1}
    ).recover()
    assert recovered.snapshot["world"]["tp"] == 1


def test_resume_refuses_a_mismatched_engine_shape():
    store = CheckpointStore()
    requests = sharegpt_workload(4, rate=50.0, seed=1)
    _engine(store).run(requests)
    recovered = RecoveryManager(store).recover()
    # Rebuilding the engine at tp=2 must refuse the tp=1 snapshot even
    # when the recovery manager was not told what shape to expect.
    with pytest.raises(WorldMismatchError, match="tp"):
        _engine(store, tensor_parallel=2).resume(recovered)


def test_pre_world_snapshots_default_to_single_gpu_shape():
    store = CheckpointStore()
    _engine(store).run(sharegpt_workload(4, rate=50.0, seed=1))
    snap = store.load_snapshot(store.latest_snapshot_id())
    del snap["world"]  # a snapshot from before the field existed
    store.put_snapshot(json.dumps(snap))
    recovered = RecoveryManager(
        store, expected_world={"tp": 1, "dp": 1}
    ).recover()
    assert "world" not in recovered.snapshot
    with pytest.raises(WorldMismatchError, match="snapshot has 1"):
        RecoveryManager(store, expected_world={"tp": 2}).recover()
