"""Simulated collectives: exact numerics, cost charging, ring parity."""

import numpy as np
import pytest

from repro.cluster.collectives import (
    all_gather,
    all_reduce,
    all_reduce_states,
    p2p_send,
    reduce_scatter,
)
from repro.cluster.topology import TOPOLOGY_PRESETS, Topology
from repro.core import HeadConfig
from repro.core.state import AttentionState, merge_all


def _shards(world, shape=(6, 8), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


@pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
@pytest.mark.parametrize("world", [2, 3, 4])
def test_all_reduce_exact_on_every_topology(preset, world):
    topo = Topology.preset(preset, world=world)
    shards = _shards(world)
    result, cost = all_reduce(shards, topo)
    # Deterministic rank-order fold: bit-identical to the sequential sum.
    expected = shards[0].copy()
    for s in shards[1:]:
        expected = expected + s
    np.testing.assert_array_equal(result, expected)
    assert cost > 0.0
    assert cost == pytest.approx(
        topo.all_reduce_time(float(result.nbytes), world)
    )


def test_all_reduce_max_and_validation():
    shards = _shards(3)
    result, _ = all_reduce(shards, op="max")
    np.testing.assert_array_equal(result, np.maximum.reduce(shards))
    with pytest.raises(ValueError, match="unknown reduce op"):
        all_reduce(shards, op="mean")
    with pytest.raises(ValueError, match="zero ranks"):
        all_reduce([])
    with pytest.raises(ValueError, match="shape"):
        all_reduce([np.zeros((2, 2)), np.zeros((3, 2))])


def test_all_reduce_without_topology_is_free():
    result, cost = all_reduce(_shards(4))
    assert cost == 0.0
    assert result.shape == (6, 8)


def test_reduce_scatter_then_all_gather_reconstructs_all_reduce():
    topo = Topology.preset("nvlink", world=4)
    shards = _shards(4, shape=(10, 4))
    reduced, _ = all_reduce(shards)
    pieces, rs_cost = reduce_scatter(shards, topo)
    assert len(pieces) == 4
    gathered, ag_cost = all_gather(pieces, topo)
    np.testing.assert_array_equal(gathered, reduced)
    # Both halves together cost what one all-reduce costs.
    assert rs_cost + ag_cost == pytest.approx(
        topo.all_reduce_time(float(reduced.nbytes), 4), rel=1e-6
    )


def test_p2p_send_is_bitwise_and_charged():
    topo = Topology.preset("nvlink", world=2)
    a = np.random.default_rng(1).standard_normal((5, 5))
    received, cost = p2p_send(a, topo)
    np.testing.assert_array_equal(received, a)
    assert received is not a
    assert cost == pytest.approx(topo.p2p_time(float(a.nbytes)))
    assert topo.traffic_bytes["p2p"] == pytest.approx(float(a.nbytes))


@pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
def test_all_reduce_states_matches_merge_all(preset):
    rng = np.random.default_rng(2)
    states = [
        AttentionState(
            rng.standard_normal((4, 8, 64)), rng.standard_normal((4, 8))
        )
        for _ in range(4)
    ]
    topo = Topology.preset(preset, world=4)
    merged, cost = all_reduce_states(states, topo)
    expected = merge_all(states)
    # Same rank-order fold as merge_all: bit-identical, not just close.
    np.testing.assert_array_equal(merged.o, expected.o)
    np.testing.assert_array_equal(merged.lse, expected.lse)
    assert cost > 0.0
    assert "all_reduce_states" in topo.traffic_bytes


def test_collective_charging_accumulates_per_kind():
    topo = Topology.preset("nvlink", world=3)
    shards = _shards(3)
    all_reduce(shards, topo)
    all_reduce(shards, topo)
    all_gather(shards, topo)
    stats = topo.link_stats()
    assert stats["link_all_reduce_bytes"] == pytest.approx(
        2 * topo.all_reduce_wire_bytes(float(shards[0].nbytes), 3)
    )
    assert stats["link_all_gather_bytes"] > 0.0
    assert topo.total_busy_seconds > 0.0


def test_degraded_window_raises_collective_cost():
    topo = Topology.preset("nvlink", world=4)
    shards = _shards(4, shape=(256, 256))
    _, healthy = all_reduce(shards, topo, t=0.0)
    topo.degrade(10.0, 20.0, factor=0.1)
    result, degraded = all_reduce(shards, topo, t=15.0)
    assert degraded > healthy
    # Degradation moves time only; numerics are untouched.
    np.testing.assert_array_equal(result, all_reduce(shards)[0])


def test_zigzag_and_contiguous_ring_attention_agree():
    # The zigzag shard strategy re-partitions causal work across devices;
    # it must not change the attention output, only the balance.
    from repro.distributed.ring import RingAttention

    heads = HeadConfig(4, 4, 64)
    rng = np.random.default_rng(3)
    n = 256
    q = rng.standard_normal((n, 4, 64))
    k = rng.standard_normal((n, 4, 64))
    v = rng.standard_normal((n, 4, 64))
    out = {}
    reports = {}
    for strategy in ("contiguous", "zigzag"):
        ring = RingAttention(4, heads, shard_strategy=strategy)
        out[strategy], reports[strategy] = ring.run(q, k, v, causal=True)
    np.testing.assert_allclose(out["zigzag"], out["contiguous"], rtol=1e-10)
    # Zigzag exists to balance causal work: the per-step critical path
    # (max over devices) must never be worse than contiguous sharding.
    assert reports["zigzag"].compute_time <= reports["contiguous"].compute_time
    assert reports["contiguous"].skipped_pairs > 0
