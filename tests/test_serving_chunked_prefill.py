"""Tests for Sarathi-serve-style chunked prefill in the engine."""


from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def engine(chunked, chunk_size=512, composable=False):
    be = FlashInferBackend(HEADS, H100_80G, composable=composable)
    cfg = EngineConfig(
        num_pool_pages=1 << 14, chunked_prefill=chunked,
        prefill_chunk_size=chunk_size, composable=composable,
    )
    return ServingEngine(MODEL, be, H100_80G, cfg)


class TestCorrectness:
    def test_all_requests_complete(self):
        reqs = [Request(i * 0.01, 700, 6) for i in range(4)]
        m = engine(True).run(reqs)
        assert len(m.traces) == 4
        assert m.total_output_tokens == 24

    def test_token_times_monotone(self):
        reqs = [Request(0.0, 1500, 8), Request(0.05, 100, 8)]
        m = engine(True).run(reqs)
        for tr in m.traces:
            times = [tr.arrival, tr.first_token_time] + tr.token_times
            assert all(a <= b for a, b in zip(times, times[1:]))

    def test_matches_unchunked_token_counts(self):
        reqs = [Request(i * 0.02, 900, 5) for i in range(5)]
        chunked = engine(True).run(reqs)
        plain = engine(False).run(reqs)
        assert chunked.total_output_tokens == plain.total_output_tokens

    def test_parallel_generation_compatible(self):
        reqs = [Request(0.0, 600, 5, n=3)]
        m = engine(True, composable=True).run(reqs)
        assert len(m.traces) == 3

    def test_prompt_shorter_than_chunk(self):
        reqs = [Request(0.0, 64, 4)]
        m = engine(True, chunk_size=512).run(reqs)
        assert len(m.traces) == 1


class TestLatencyShape:
    def test_chunking_bounds_decode_stalls(self):
        """A giant prompt arriving mid-decode must not freeze running
        streams for its whole prefill (the Sarathi-serve claim)."""
        reqs = [Request(0.0, 64, 200)] + [Request(0.2, 16384, 4)]
        worst = {}
        for chunked in (False, True):
            m = engine(chunked, chunk_size=1024).run(reqs)
            long_stream = max(m.traces, key=lambda tr: len(tr.token_times))
            worst[chunked] = float(long_stream.itls.max())
        # Unchunked: the decode stream stalls for the full 16k prefill in
        # one step; chunking bounds the stall to roughly one chunk's work.
        assert worst[False] > 3.0 * worst[True]

    def test_chunking_delays_ttft_slightly(self):
        """The flip side: a chunked prompt's own TTFT is a bit worse."""
        reqs = [Request(0.0, 8192, 4)]
        ttft = {}
        for chunked in (False, True):
            m = engine(chunked, chunk_size=1024).run(reqs)
            ttft[chunked] = m.median_ttft()
        assert ttft[True] >= ttft[False] * 0.95
