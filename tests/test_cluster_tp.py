"""Tensor parallelism: sharding plans, interconnect pricing, token-exactness."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    TPInterconnect,
    Topology,
    expected_tokens,
    plan_tp_sharding,
)
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, sharegpt_workload

MODEL = LLAMA_3_1_8B


def test_plan_tp_sharding_shapes():
    plan = plan_tp_sharding(MODEL, 2)
    assert plan.shard_heads.num_qo_heads == 16
    assert plan.shard_heads.num_kv_heads == 4
    assert plan.shard_heads.head_dim == MODEL.head_dim
    assert plan.kv_replication == 1
    plan4 = plan_tp_sharding(MODEL, 4)
    assert plan4.shard_heads.num_qo_heads == 8
    assert plan4.shard_heads.num_kv_heads == 2
    # Per-shard KV bytes shrink with tp — the capacity win TP buys.
    assert plan4.kv_bytes_per_token(MODEL.head_dim) == pytest.approx(
        plan.kv_bytes_per_token(MODEL.head_dim) / 2
    )


def test_plan_tp_sharding_gqa_over_sharding_replicates_kv():
    # tp beyond the model's 8 KV heads: each shard keeps one replicated
    # KV head (the GQA over-sharding case).
    plan = plan_tp_sharding(MODEL, 16)
    assert plan.shard_heads.num_qo_heads == 2
    assert plan.shard_heads.num_kv_heads == 1
    assert plan.kv_replication == 2


def test_plan_tp_sharding_validation():
    with pytest.raises(ValueError, match="must divide"):
        plan_tp_sharding(MODEL, 3)
    with pytest.raises(ValueError, match=">= 1"):
        plan_tp_sharding(MODEL, 0)


def test_interconnect_pricing_and_charging():
    topo = Topology.preset("nvlink", world=4)
    ic = TPInterconnect(topo, MODEL, 4)
    per_layer = ic.allreduce_per_layer(num_tokens=64)
    assert per_layer == pytest.approx(
        2.0 * topo.all_reduce_time(
            64.0 * MODEL.hidden_size * MODEL.dtype_bytes, 4
        )
    )
    ic.charge_step(num_tokens=64)
    # One step charges both all-reduces of every layer.
    stats = topo.link_stats()
    assert stats["link_all_reduce_busy_s"] == pytest.approx(
        MODEL.num_layers * per_layer
    )
    assert stats["link_all_reduce_bytes"] > 0.0
    with pytest.raises(ValueError, match="exceeds topology world"):
        TPInterconnect(Topology.preset("nvlink", world=2), MODEL, 4)


def test_interconnect_trivial_group_is_free():
    topo = Topology.preset("nvlink", world=2)
    ic = TPInterconnect(topo, MODEL, 1)
    assert ic.allreduce_per_layer(64) == 0.0
    ic.charge_step(64)
    assert topo.total_traffic_bytes == 0.0


def test_interconnect_prices_degradation_windows():
    topo = Topology.preset("nvlink", world=2)
    ic = TPInterconnect(topo, MODEL, 2)
    healthy = ic.allreduce_per_layer(64, t=0.0)
    topo.degrade(1.0, 2.0, factor=0.2)
    assert ic.allreduce_per_layer(64, t=1.5) > healthy
    assert ic.allreduce_per_layer(64, t=5.0) == pytest.approx(healthy)


@pytest.mark.parametrize("tp", [2, 4])
def test_tp_token_exact_vs_single_gpu(tp):
    requests = sharegpt_workload(10, rate=60.0, seed=11)
    cluster = ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(tp=tp, engine=EngineConfig(max_running=64)),
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    assert compared == 10
    assert divergent == 0
    # Sharding the GEMMs makes the run strictly faster despite paying for
    # the all-reduces on the wire.
    assert cm.total_time < reference.total_time
    assert cm.topology.total_traffic_bytes > 0.0
    assert "link_all_reduce_bytes" in cm.summary()


def test_tp_speedup_is_monotone_but_sublinear():
    requests = sharegpt_workload(8, rate=80.0, seed=5)
    makespans = {}
    for tp in (1, 2, 4):
        cm = ClusterEngine(
            MODEL, H100_80G,
            ClusterConfig(tp=tp, engine=EngineConfig(max_running=64)),
        ).run(requests)
        makespans[tp] = cm.total_time
    assert makespans[2] < makespans[1]
    assert makespans[4] < makespans[2]
    # All-reduce cost keeps the scaling sublinear.
    assert makespans[1] / makespans[4] < 4.0


def test_cluster_engine_rejects_bad_shapes():
    with pytest.raises(ValueError, match="must divide"):
        ClusterEngine(MODEL, H100_80G, ClusterConfig(tp=3))
    with pytest.raises(ValueError, match=">= 1"):
        ClusterEngine(MODEL, H100_80G, ClusterConfig(dp=0))
    with pytest.raises(ValueError, match="unknown topology"):
        ClusterEngine(MODEL, H100_80G, ClusterConfig(topology="token-ring"))
    with pytest.raises(ValueError, match="unknown routing policy"):
        ClusterEngine(MODEL, H100_80G, ClusterConfig(router="dartboard"))
