"""Additional scheduler behaviours: hyperparameters, causal weighting."""


from repro.core import plan_schedule
from repro.core.scheduler import DEFAULT_ALPHA, DEFAULT_BETA


class TestHyperparameters:
    def test_min_kv_chunk_floor(self):
        plan = plan_schedule([1], [10000], 16, num_ctas=1000, min_kv_chunk=512,
                             chunk_granularity=1)
        assert plan.kv_chunk_size >= 512

    def test_granularity_rounds_up(self):
        plan = plan_schedule([1], [10000], 16, num_ctas=16, chunk_granularity=96)
        assert plan.kv_chunk_size % 96 == 0

    def test_alpha_beta_change_assignment_costs(self):
        """α weighs query rows, β weighs KV: flipping them regroups items.

        Items (q,kv): A=(100,10), B=(1,100), C=(1,90) on two CTAs.  Sorted
        by KV length the order is B, C, A; β-only costing then pairs A with
        C, while α-only costing pairs A's big query elsewhere.
        """
        qo = [100, 1, 1]
        kv = [10, 100, 90]
        by_kv = plan_schedule(qo, kv, 128, num_ctas=2, alpha=0.0, beta=1.0,
                              split_kv=False)
        by_q = plan_schedule(qo, kv, 128, num_ctas=2, alpha=1.0, beta=0.0,
                             split_kv=False)

        def groups(plan):
            return [sorted(w.group for w in q) for q in plan.cta_queues]

        assert groups(by_kv) != groups(by_q)


class TestCausalWeighting:
    def test_causal_flag_balances_prefill_tiles(self):
        """A single long causal prefill: early tiles are cheap, late tiles
        expensive; causal-aware weights spread the late tiles."""
        qo = [4096]
        kv = [4096]

        def max_visible(plan):
            worst = 0
            for queue in plan.cta_queues:
                vis = 0
                for w in queue:
                    last_pos = w.q_start + w.q_rows  # offsets are 0 here
                    vis += min(max(last_pos - w.kv_start, 0), w.kv_len)
                worst = max(worst, vis)
            return worst

        aware = plan_schedule(qo, kv, 128, num_ctas=8, causal=True,
                              q_pos_offset=[0], kv_pos_offset=[0])
        naive = plan_schedule(qo, kv, 128, num_ctas=8, causal=False)
        assert max_visible(aware) <= max_visible(naive)

    def test_offsets_respected(self):
        # Custom offsets place queries mid-sequence; must not crash and
        # must weight by the visible region.
        plan = plan_schedule(
            [64], [512], 16, num_ctas=4, causal=True,
            q_pos_offset=[100], kv_pos_offset=[0],
        )
        assert plan.num_work_items > 0


class TestDefaults:
    def test_alpha_beta_constants(self):
        assert DEFAULT_ALPHA > 0 and DEFAULT_BETA > 0
        assert DEFAULT_BETA > DEFAULT_ALPHA  # KV traffic dominates
