"""Tests for diagnostics rendering and the CLI entry point."""

import pytest

from conftest import make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.diagnostics import format_cta_load, format_plan, format_plan_load, format_report


@pytest.fixture
def plan_and_report():
    mapping, _ = make_paged_mapping([3000, 64, 900], [1, 1, 1])
    w = BatchAttentionWrapper(
        VANILLA, HeadConfig(4, 2, 16), WorkspaceBuffer(1 << 27), avg_qo_len=1
    )
    plan = w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return plan, report, w


class TestDiagnostics:
    def test_format_report_mentions_key_metrics(self, plan_and_report):
        _, report, _ = plan_and_report
        text = format_report(report, A100_40G)
        for token in ("makespan", "work tiles", "bandwidth", "balance"):
            assert token in text

    def test_format_plan_counts_items(self, plan_and_report):
        plan, _, _ = plan_and_report
        text = format_plan(plan)
        assert f"{plan.num_work_items}" in text.splitlines()[0]
        assert "kv_range" in text

    def test_format_plan_truncates(self, plan_and_report):
        plan, _, _ = plan_and_report
        text = format_plan(plan, max_rows=2)
        assert "more)" in text

    def test_plan_load_histogram(self, plan_and_report):
        plan, _, _ = plan_and_report
        text = format_plan_load(plan, buckets=4)
        assert text.count("CTA") >= 4
        assert "█" in text

    def test_cta_load_handles_combined_reports(self, plan_and_report):
        _, report, _ = plan_and_report
        combined = report.combine(report)
        assert "unavailable" in format_cta_load(combined)

    def test_cta_load_histogram(self):
        from repro.gpu import PersistentKernelExecutor, TileCost

        exe = PersistentKernelExecutor(A100_40G)
        rep = exe.run_persistent(
            [[TileCost(flops=1e8, padded_flops=1e8)] for _ in range(8)]
        )
        assert format_cta_load(rep).count("CTA") >= 1


class TestCLI:
    def test_info(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "H100" in out

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "schedule plan" in out and "simulated execution" in out

    def test_generate(self, capsys):
        from repro.__main__ import main

        assert main(["generate", "--tokens", "5", "--temperature", "0"]) == 0
        out = capsys.readouterr().out
        assert "output" in out

    def test_generate_deterministic_at_temp0(self, capsys):
        from repro.__main__ import main

        main(["generate", "--tokens", "5", "--temperature", "0"])
        a = capsys.readouterr().out
        main(["generate", "--tokens", "5", "--temperature", "0"])
        b = capsys.readouterr().out
        assert a == b

    def test_figures(self, capsys):
        from repro.__main__ import main

        assert main(["figures"]) == 0
        assert "fig7" in capsys.readouterr().out
