"""Tests for the small utility helpers (validation, RNG plumbing)."""

import numpy as np
import pytest

from repro.utils import check_2d, check_3d, check_positive, new_rng


class TestValidation:
    def test_check_2d(self):
        assert check_2d(np.zeros((2, 3)), "x").shape == (2, 3)
        with pytest.raises(ValueError, match="2-D"):
            check_2d(np.zeros(3), "x")

    def test_check_3d(self):
        assert check_3d(np.zeros((2, 3, 4)), "kv").shape == (2, 3, 4)
        with pytest.raises(ValueError, match="3-D"):
            check_3d(np.zeros((2, 3)), "kv")

    def test_check_positive(self):
        assert check_positive(5, "n") == 5
        with pytest.raises(ValueError):
            check_positive(0, "n")
        with pytest.raises(ValueError):
            check_positive(-1, "n")
        with pytest.raises(ValueError):
            check_positive(2.5, "n")  # floats rejected

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="my_arg"):
            check_positive(0, "my_arg")


class TestRng:
    def test_int_seed_deterministic(self):
        assert new_rng(7).integers(0, 1 << 30) == new_rng(7).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_none_gives_entropy(self):
        # Two entropy-seeded generators should (overwhelmingly) differ.
        a = new_rng(None).integers(0, 1 << 62)
        b = new_rng(None).integers(0, 1 << 62)
        assert isinstance(int(a), int) and isinstance(int(b), int)
