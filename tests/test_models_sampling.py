"""Tests for sampling policies."""

import numpy as np
import pytest

from repro.models.sampling import SamplingParams, sample_token


class TestGreedy:
    def test_temperature_zero_is_argmax(self):
        logits = np.array([0.1, 3.0, -1.0])
        assert sample_token(logits, SamplingParams(temperature=0.0)) == 1


class TestDistributions:
    def test_matches_softmax_frequencies(self):
        rng = np.random.default_rng(0)
        logits = np.array([2.0, 1.0, 0.0])
        counts = np.zeros(3)
        for _ in range(4000):
            counts[sample_token(logits, SamplingParams(), rng)] += 1
        probs = np.exp(logits) / np.exp(logits).sum()
        np.testing.assert_allclose(counts / 4000, probs, atol=0.03)

    def test_low_temperature_sharpens(self):
        rng = np.random.default_rng(0)
        logits = np.array([1.0, 0.5])
        hot = sum(sample_token(logits, SamplingParams(temperature=5.0), rng) == 0
                  for _ in range(1000))
        cold = sum(sample_token(logits, SamplingParams(temperature=0.1), rng) == 0
                   for _ in range(1000))
        assert cold > hot

    def test_top_k_excludes_tail(self):
        rng = np.random.default_rng(0)
        logits = np.array([5.0, 4.0, -10.0, -10.0])
        for _ in range(200):
            assert sample_token(logits, SamplingParams(top_k=2), rng) in (0, 1)

    def test_top_p_excludes_tail(self):
        rng = np.random.default_rng(0)
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        # p(token0) > 0.99: nucleus of 0.9 keeps only token 0.
        for _ in range(100):
            assert sample_token(logits, SamplingParams(top_p=0.9), rng) == 0

    def test_top_p_keeps_at_least_one(self):
        rng = np.random.default_rng(0)
        logits = np.zeros(4)
        assert sample_token(logits, SamplingParams(top_p=0.01), rng) in range(4)

    def test_seed_reproducible(self):
        logits = np.linspace(0, 1, 8)
        a = [sample_token(logits, SamplingParams(), np.random.default_rng(7)) for _ in range(3)]
        b = [sample_token(logits, SamplingParams(), np.random.default_rng(7)) for _ in range(3)]
        assert a == b


class TestValidation:
    def test_param_bounds(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-1)
        with pytest.raises(ValueError):
            SamplingParams(top_k=-1)
        with pytest.raises(ValueError):
            SamplingParams(top_p=0.0)

    def test_logits_shape(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros((2, 2)))

    def test_all_neg_inf_rejected(self):
        with pytest.raises(ValueError):
            sample_token(np.full(4, -np.inf), SamplingParams(temperature=1.0))
