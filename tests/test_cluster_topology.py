"""Topology link model: presets, collective costs, degradation, accounting."""

import pytest

from repro.cluster.topology import (
    DEFAULT_LINK_BANDWIDTH,
    NVLINK_P2P,
    PCIE_HOST,
    TOPOLOGY_PRESETS,
    Link,
    LinkDegradation,
    Topology,
)

MB = 1 << 20


def test_presets_construct_and_unknown_rejected():
    for name in TOPOLOGY_PRESETS:
        topo = Topology.preset(name, world=4)
        assert topo.world == 4
        assert topo.name == name
    with pytest.raises(ValueError, match="unknown topology"):
        Topology.preset("infiniband", world=4)
    with pytest.raises(ValueError):
        Topology("bad", world=0, link=NVLINK_P2P)


def test_link_transfer_time_is_latency_plus_bytes_over_bandwidth():
    link = Link("test", bandwidth=100e9, latency=1e-6)
    assert link.transfer_time(0) == pytest.approx(1e-6)
    assert link.transfer_time(100e9) == pytest.approx(1.0 + 1e-6)
    # Efficiency derates the bandwidth, not the latency.
    assert link.transfer_time(100e9, efficiency=0.5) == pytest.approx(2.0 + 1e-6)
    with pytest.raises(ValueError):
        link.transfer_time(-1)


@pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
def test_all_reduce_cost_monotone_in_world_size(preset):
    costs = [
        Topology.preset(preset, world=g).all_reduce_time(64 * MB)
        for g in (2, 3, 4, 6, 8)
    ]
    for smaller, larger in zip(costs, costs[1:]):
        assert larger > smaller


@pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
@pytest.mark.parametrize(
    "collective", ["all_reduce_time", "all_gather_time", "reduce_scatter_time", "p2p_time"]
)
def test_collective_cost_monotone_in_message_bytes(preset, collective):
    topo = Topology.preset(preset, world=4)
    fn = getattr(topo, collective)
    costs = [fn(nbytes) for nbytes in (1 * MB, 4 * MB, 16 * MB, 64 * MB)]
    for smaller, larger in zip(costs, costs[1:]):
        assert larger > smaller
    assert fn(0.0) >= 0.0


def test_all_reduce_matches_ring_formula():
    # NVLink ring: 2(g-1) rounds of bytes/g, one hop latency per round.
    topo = Topology.preset("nvlink", world=4)
    nbytes = 64 * MB
    g = 4
    expected = 2 * (g - 1) * (
        NVLINK_P2P.latency + (nbytes / g) / NVLINK_P2P.bandwidth
    )
    assert topo.all_reduce_time(nbytes) == pytest.approx(expected)
    # Trivial group: free.
    assert topo.all_reduce_time(nbytes, group_size=1) == 0.0


def test_pcie_host_bridge_serializes_and_double_hops():
    # Same round count, but each round's g transfers serialize on the
    # root complex and every hop pays the bridge twice.
    nvlink = Topology.preset("nvlink", world=4)
    pcie = Topology.preset("pcie", world=4)
    nbytes = 16 * MB
    g = 4
    expected = 2 * (g - 1) * (
        2 * PCIE_HOST.latency + g * (nbytes / g) / PCIE_HOST.bandwidth
    )
    assert pcie.all_reduce_time(nbytes) == pytest.approx(expected)
    assert pcie.all_reduce_time(nbytes) > nvlink.all_reduce_time(nbytes)


def test_reduce_scatter_and_all_gather_are_half_an_all_reduce():
    topo = Topology.preset("nvlink", world=8)
    nbytes = 32 * MB
    assert topo.all_gather_time(nbytes) == pytest.approx(
        topo.reduce_scatter_time(nbytes)
    )
    assert topo.all_reduce_time(nbytes) == pytest.approx(
        topo.all_gather_time(nbytes) + topo.reduce_scatter_time(nbytes)
    )


def test_group_size_validation():
    topo = Topology.preset("nvlink", world=4)
    with pytest.raises(ValueError, match="group_size"):
        topo.all_reduce_time(MB, group_size=5)
    with pytest.raises(ValueError, match="group_size"):
        topo.all_gather_time(MB, group_size=0)


def test_degradation_window_slows_only_inside_the_window():
    topo = Topology.preset("nvlink", world=4)
    healthy = topo.all_reduce_time(64 * MB, t=0.0)
    topo.degrade(1.0, 2.0, factor=0.25)
    assert topo.all_reduce_time(64 * MB, t=0.5) == pytest.approx(healthy)
    assert topo.all_reduce_time(64 * MB, t=1.5) > healthy
    assert topo.all_reduce_time(64 * MB, t=2.0) == pytest.approx(healthy)
    # Overlapping windows compound.
    topo.degrade(1.0, 2.0, factor=0.5)
    assert topo.bandwidth_factor(1.5) == pytest.approx(0.125)
    assert topo.bandwidth_factor(0.5) == 1.0


def test_degradation_validation():
    with pytest.raises(ValueError):
        LinkDegradation(0.0, 1.0, factor=0.0)
    with pytest.raises(ValueError):
        LinkDegradation(0.0, 1.0, factor=1.5)
    with pytest.raises(ValueError):
        LinkDegradation(1.0, 1.0, factor=0.5)


def test_traffic_accounting_and_link_stats():
    topo = Topology.preset("nvlink", world=4)
    topo.charge("all_reduce", 1000.0, 0.25)
    topo.charge("all_reduce", 500.0, 0.25)
    topo.charge("p2p", 100.0, 0.1)
    assert topo.total_traffic_bytes == pytest.approx(1600.0)
    assert topo.total_busy_seconds == pytest.approx(0.6)
    stats = topo.link_stats(makespan=1.2)
    assert stats["link_bytes"] == pytest.approx(1600.0)
    assert stats["link_all_reduce_bytes"] == pytest.approx(1500.0)
    assert stats["link_p2p_busy_s"] == pytest.approx(0.1)
    assert stats["link_utilization"] == pytest.approx(0.5)
    assert topo.utilization(0.0) == 0.0


def test_constant_unification_keeps_legacy_values():
    # The former literals moved here unchanged, so every pre-cluster cost
    # (ring attention, the flat all-reduce model) is bit-identical.
    from repro.distributed.ring import DEFAULT_LINK_BANDWIDTH as ring_bw
    from repro.serving.model import ALLREDUCE_LATENCY, NVLINK_ALLREDUCE_BW

    assert ring_bw == DEFAULT_LINK_BANDWIDTH == 200e9
    assert NVLINK_ALLREDUCE_BW == 300e9
    assert ALLREDUCE_LATENCY == 8e-6
