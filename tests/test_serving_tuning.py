"""Tests for the P99-TTFT operating-point search."""

import pytest

from repro.serving import RequestTrace, ServingMetrics, find_max_rate


def fake_runner(knee: float):
    """P99 TTFT grows slowly below the knee, explodes above it."""

    def run(rate: float) -> ServingMetrics:
        m = ServingMetrics()
        ttft = 0.02 + (0.0 if rate <= knee else (rate - knee) * 0.05)
        for _ in range(10):
            m.add(RequestTrace(arrival=0.0, first_token_time=ttft, token_times=[ttft + 0.01]))
        m.total_time = 1.0
        return m

    return run


class TestBisection:
    def test_converges_to_knee(self):
        op = find_max_rate(fake_runner(knee=40.0), p99_ttft_limit=0.2, lo=1, hi=512)
        # Limit 0.2s is reached ~3.6 rate units past the knee.
        assert 40.0 <= op.rate <= 45.0
        assert op.p99_ttft <= 0.2

    def test_lo_already_violating(self):
        op = find_max_rate(fake_runner(knee=0.5), p99_ttft_limit=0.05, lo=2, hi=100)
        assert op.rate == 2
        assert op.p99_ttft > 0.05  # caller sees the violation

    def test_hi_satisfies(self):
        op = find_max_rate(fake_runner(knee=1e9), p99_ttft_limit=0.2, lo=1, hi=100)
        assert op.rate == 100

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            find_max_rate(fake_runner(10), lo=5, hi=5)

    def test_monotone_call_count_bounded(self):
        calls = []

        def run(rate):
            calls.append(rate)
            return fake_runner(40.0)(rate)

        find_max_rate(run, p99_ttft_limit=0.2, lo=1, hi=512, max_iters=8)
        assert len(calls) <= 10  # lo + hi + max_iters


class TestOnRealEngine:
    def test_search_on_small_engine(self):
        from repro.core import HeadConfig
        from repro.gpu import H100_80G
        from repro.serving import (EngineConfig, FlashInferBackend, LLAMA_3_1_8B,
                                   ServingEngine, sharegpt_workload)

        model = LLAMA_3_1_8B
        heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)

        def run(rate: float):
            be = FlashInferBackend(heads, H100_80G)
            eng = ServingEngine(model, be, H100_80G, EngineConfig(max_running=256))
            return eng.run(sharegpt_workload(20, rate, seed=0))

        op = find_max_rate(run, p99_ttft_limit=0.05, lo=4, hi=200, max_iters=3)
        assert op.rate >= 4
        assert op.p99_ttft <= 0.05 or op.rate == 4
