"""Tests for the calibrated fp8 KV-cache path (paper Appendix F)."""

import numpy as np
import pytest

from conftest import make_paged_mapping
from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, reference_attention
from repro.utils.dtypes import FP8_E4M3_MAX, StorageDType
from repro.variants.fp8 import (
    calibrate_kv_scales,
    make_fp8_variant,
    quantize_kv_pool,
)

HEADS = HeadConfig(4, 2, 16)


class TestCalibration:
    def test_scales_cover_amax(self, rng):
        k = rng.standard_normal((50, 2, 16)) * 100.0
        v = rng.standard_normal((50, 2, 16))
        ks, vs = calibrate_kv_scales(k, v)
        assert np.all(np.abs(k / ks[None, :, None]) <= FP8_E4M3_MAX)
        assert np.all(np.abs(v / vs[None, :, None]) <= FP8_E4M3_MAX)

    def test_per_head_scales(self, rng):
        k = rng.standard_normal((50, 2, 16))
        k[:, 1] *= 1000.0
        ks, _ = calibrate_kv_scales(k, k)
        assert ks[1] > 100 * ks[0]

    def test_headroom_validation(self, rng):
        k = rng.standard_normal((4, 2, 16))
        with pytest.raises(ValueError):
            calibrate_kv_scales(k, k, headroom=0.0)

    def test_quantized_pool_on_fp8_grid(self, rng):
        from repro.utils.dtypes import quantize_fp8

        k = rng.standard_normal((20, 2, 16)) * 10
        ks, vs = calibrate_kv_scales(k, k)
        kq, _ = quantize_kv_pool(k, k, ks, vs)
        np.testing.assert_allclose(quantize_fp8(kq), kq)


class TestFP8Attention:
    def _run(self, variant, q, k_pool, v_pool, kv_len):
        mapping, _ = make_paged_mapping([kv_len], [1], 16)
        w = BatchAttentionWrapper(
            variant, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1,
            kv_dtype=StorageDType.FP8_E4M3,
        )
        w.plan(mapping)
        out, _, _ = w.run(q, k_pool, v_pool)
        return out

    def test_calibrated_fp8_close_to_fp32(self, rng):
        n = 64
        k = rng.standard_normal((n, 2, 16))
        v = rng.standard_normal((n, 2, 16))
        q = rng.standard_normal((1, 4, 16))
        ks, vs = calibrate_kv_scales(k, v)
        kq, vq = quantize_kv_pool(k, v, ks, vs)
        out = self._run(make_fp8_variant(ks, vs), q, kq, vq, n)
        ref = reference_attention(q, k, v, causal=True)
        assert np.abs(out - ref).max() < 0.15  # e4m3 has a 3-bit mantissa

    def test_calibration_rescues_large_magnitudes(self, rng):
        """Uncalibrated fp8 saturates at ±448; calibrated scales recover."""
        n = 64
        scale_up = 5000.0
        k = rng.standard_normal((n, 2, 16)) * scale_up
        v = rng.standard_normal((n, 2, 16)) * scale_up
        q = rng.standard_normal((1, 4, 16)) / scale_up
        ref = reference_attention(q, k, v, causal=True)

        # Raw fp8: values clip at ±448 and the output collapses.
        from repro.core import VANILLA

        out_raw = self._run(VANILLA, q, k, v, n)
        raw_err = np.abs(out_raw - ref).max()

        ks, vs = calibrate_kv_scales(k, v)
        kq, vq = quantize_kv_pool(k, v, ks, vs)
        out_cal = self._run(make_fp8_variant(ks, vs), q, kq, vq, n)
        cal_err = np.abs(out_cal - ref).max()
        assert cal_err < 0.05 * raw_err

    def test_compose_with_base_variant(self, rng):
        from repro.variants import make_logits_softcap

        n = 48
        k = rng.standard_normal((n, 2, 16))
        v = rng.standard_normal((n, 2, 16))
        q = rng.standard_normal((1, 4, 16))
        ks, vs = calibrate_kv_scales(k, v)
        kq, vq = quantize_kv_pool(k, v, ks, vs)
        variant = make_fp8_variant(ks, vs, base=make_logits_softcap(5.0))
        out = self._run(variant, q, kq, vq, n)
        # Reference: softcap on fp32 inputs.
        sm = 1 / np.sqrt(16)
        ref = np.zeros_like(q)
        for h in range(4):
            s = 5 * np.tanh((q[0, h] @ k[:, h // 2].T) * sm / 5)
            p = np.exp(s - s.max())
            ref[0, h] = (p / p.sum()) @ v[:, h // 2]
        assert np.abs(out - ref).max() < 0.15

    def test_base_with_kv_transform_rejected(self):
        from repro.variants import FUSED_ROPE

        with pytest.raises(ValueError, match="key/value"):
            make_fp8_variant(np.ones(2), np.ones(2), base=FUSED_ROPE)

    def test_fp8_halves_simulated_traffic(self, rng):
        mapping, _ = make_paged_mapping([4096], [1], 16)
        reports = {}
        for dtype in (StorageDType.FP16, StorageDType.FP8_E4M3):
            from repro.core import VANILLA

            w = BatchAttentionWrapper(
                VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1,
                kv_dtype=dtype,
            )
            w.plan(mapping)
            _, _, rep = w.run(None, compute=False)
            reports[dtype] = rep.total_bytes
        ratio = reports[StorageDType.FP8_E4M3] / reports[StorageDType.FP16]
        assert 0.45 < ratio < 0.65
