"""Property tests for the shared-bandwidth drain (the executor's core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100_40G, PersistentKernelExecutor, TileCost
from repro.gpu.executor import SINGLE_SM_BANDWIDTH_FRACTION


def executor():
    return PersistentKernelExecutor(A100_40G)


work = st.lists(
    st.tuples(st.floats(0, 1e-4), st.floats(0, 1e7)),  # (serial s, bytes)
    min_size=1,
    max_size=40,
)


class TestDrainInvariants:
    @given(work)
    @settings(max_examples=100, deadline=None)
    def test_all_jobs_finish(self, jobs):
        exe = executor()
        serial = np.array([j[0] for j in jobs])
        mem = np.array([j[1] for j in jobs])
        finish = exe._drain(serial, mem, resident=1)
        assert np.all(np.isfinite(finish))
        assert np.all(finish >= 0)

    @given(work)
    @settings(max_examples=100, deadline=None)
    def test_finish_not_before_either_stream(self, jobs):
        """A job can't finish before its serial time nor before its bytes
        could drain at full device bandwidth."""
        exe = executor()
        serial = np.array([j[0] for j in jobs])
        mem = np.array([j[1] for j in jobs])
        finish = exe._drain(serial, mem, resident=1)
        lower = np.maximum(serial, mem / A100_40G.peak_bandwidth_bytes)
        assert np.all(finish >= lower - 1e-12)

    @given(work)
    @settings(max_examples=100, deadline=None)
    def test_bandwidth_conservation(self, jobs):
        """Total bytes drained can never exceed peak_bw × makespan."""
        exe = executor()
        serial = np.array([j[0] for j in jobs])
        mem = np.array([j[1] for j in jobs])
        finish = exe._drain(serial, mem, resident=1)
        makespan = float(finish.max())
        if makespan > 0:
            assert mem.sum() <= A100_40G.peak_bandwidth_bytes * makespan * (1 + 1e-9)

    @given(work)
    @settings(max_examples=100, deadline=None)
    def test_single_cta_cap(self, jobs):
        """No single job drains faster than the per-SM bandwidth cap."""
        exe = executor()
        serial = np.array([j[0] for j in jobs])
        mem = np.array([j[1] for j in jobs])
        finish = exe._drain(serial, mem, resident=1)
        cap = A100_40G.peak_bandwidth_bytes * SINGLE_SM_BANDWIDTH_FRACTION
        assert np.all(finish >= mem / cap - 1e-12)

    @given(work, st.floats(1.1, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_work(self, jobs, factor):
        """Scaling every job's work up never reduces the makespan."""
        exe = executor()
        serial = np.array([j[0] for j in jobs])
        mem = np.array([j[1] for j in jobs])
        base = exe._drain(serial, mem, resident=1).max()
        more = exe._drain(serial * factor, mem * factor, resident=1).max()
        assert more >= base - 1e-15

    def test_empty_streams(self):
        exe = executor()
        finish = exe._drain(np.zeros(3), np.zeros(3), resident=1)
        assert np.all(finish == 0.0)

    def test_grid_matches_persistent_when_one_wave(self):
        """With ≤ one block per slot, grid and persistent agree."""
        exe = executor()
        tiles = [
            TileCost(flops=1e8, padded_flops=1e8, bytes_read=1e5)
            for _ in range(A100_40G.num_sms)
        ]
        grid = exe.run_grid(tiles)
        persistent = exe.run_persistent([[t] for t in tiles])
        assert grid.makespan == pytest.approx(persistent.makespan, rel=1e-9)
