"""Cluster failover: health state machine, heartbeat detection, live KV
migration over priced links, and token-exact takeover."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    FailoverConfig,
    FailureDetector,
    HealthSchedule,
    IllegalTransitionError,
    KVMigrator,
    MigrationChecksumError,
    MigrationError,
    ReplicaFailure,
    ReplicaHealth,
    expected_tokens,
)
from repro.cluster.topology import Topology
from repro.faults import FaultPlan
from repro.gpu import H100_80G
from repro.kvcache import PagedKVCache
from repro.serving import EngineConfig, LLAMA_3_1_8B, sharegpt_workload

MODEL = LLAMA_3_1_8B


def _cluster(dp=2, failover=None, **kwargs):
    return ClusterEngine(
        MODEL, H100_80G,
        ClusterConfig(dp=dp, router="least-loaded",
                      engine=EngineConfig(max_running=64),
                      failover=failover),
        **kwargs,
    )


# -- health state machine ------------------------------------------------------


def test_health_state_machine_legal_path():
    h = ReplicaHealth(0)
    for state, t in [("suspected", 1.0), ("dead", 2.0),
                     ("recovering", 3.0), ("rejoined", 4.0)]:
        h.to(state, t)
    assert h.state == "rejoined"
    assert [tr.to for tr in h.transitions] == [
        "suspected", "dead", "recovering", "rejoined",
    ]
    assert [tr.t for tr in h.transitions] == [1.0, 2.0, 3.0, 4.0]


def test_health_state_machine_rejects_illegal_edges():
    h = ReplicaHealth(0)
    with pytest.raises(IllegalTransitionError, match="healthy -> dead"):
        h.to("dead", 1.0)
    h.to("suspected", 1.0)
    h.to("dead", 2.0)
    # Dead must pass through recovery before serving again.
    with pytest.raises(IllegalTransitionError, match="dead -> healthy"):
        h.to("healthy", 3.0)
    with pytest.raises(IllegalTransitionError, match="unknown health state"):
        h.to("zombie", 3.0)


def test_detector_backdates_timeouts_deterministically():
    cfg = FailoverConfig(heartbeat_interval=0.01, suspect_after=2, dead_after=4)
    det = FailureDetector(2, cfg)
    det.heartbeat(0, 0.05)
    det.heartbeat(1, 0.05)
    # Poll far past both deadlines: the transitions are stamped at the
    # exact deadlines, not the polling time.
    fired = det.advance(10.0, replicas=[0])
    assert [(tr.to, tr.t) for tr in fired] == [
        ("suspected", pytest.approx(0.07)), ("dead", pytest.approx(0.09)),
    ]
    assert det.state(0) == "dead"
    # Replica 1 was not in the monitored subset: still healthy.
    assert det.state(1) == "healthy"
    assert det.healthy_mask() == [False, True]


def test_detector_heartbeat_flaps_suspected_back_to_healthy():
    cfg = FailoverConfig(heartbeat_interval=0.01, suspect_after=2, dead_after=4)
    det = FailureDetector(1, cfg)
    det.heartbeat(0, 0.01)
    det.advance(0.035, replicas=[0])  # past suspect, before dead
    assert det.state(0) == "suspected"
    det.heartbeat(0, 0.036)  # late heartbeat arrives
    assert det.state(0) == "healthy"
    trs = det.transitions()
    assert [tr.to for tr in trs] == ["suspected", "healthy"]


def test_failover_config_validation():
    with pytest.raises(ValueError, match="suspect_after"):
        FailoverConfig(suspect_after=4, dead_after=2)
    with pytest.raises(ValueError, match="heartbeat_interval"):
        FailoverConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError, match="step"):
        ReplicaFailure(-1)
    with pytest.raises(ValueError, match="mode"):
        ReplicaFailure(3, "explode")


def test_health_schedule_windows_and_recovery():
    sched = HealthSchedule(2).add_window(0, 1.0, 2.0).add_window(1, 1.5, 3.0)
    assert sched.mask(0.5) == [True, True]
    assert sched.mask(1.6) == [False, False]
    assert sched.mask(2.5) == [True, False]
    # First replica healthy at/after an all-down instant is replica 0 at 2.0.
    assert sched.next_recovery(1.6) == (2.0, 0)
    with pytest.raises(ValueError, match="empty unhealthy window"):
        sched.add_window(0, 5.0, 5.0)


# -- live KV migration ---------------------------------------------------------


def _snapshot_with_live_pages(num_seqs=3, tokens=40):
    """A minimal snapshot dict over a real cache with live pages."""
    cache = PagedKVCache(64, 16, 2, 8, materialize=True, checksums=True)
    rng = np.random.default_rng(0)
    for _ in range(num_seqs):
        sid = cache.new_seq()
        kv = rng.standard_normal((tokens, 2, 8)).astype(np.float32)
        cache.append(sid, kv, kv)
    return {"t": 0.25, "cache": cache.export_state()}, cache


def test_migration_ships_live_pages_chunked_and_priced():
    snap, cache = _snapshot_with_live_pages()
    live = cache.used_pages()
    topo = Topology.preset("nvlink", world=2)
    mig = KVMigrator(topo, FailoverConfig(chunk_pages=2))
    received, report = mig.migrate(snap, t=0.25, source=0, target=1)
    assert report.pages == len(live) > 0
    # 1 control chunk + ceil(pages / chunk_pages) page chunks.
    assert report.chunks == 1 + -(-len(live) // 2)
    assert report.retries == 0
    assert report.t_end > report.t_start == 0.25
    # Page payload priced at the modeled fp16 KV bytes.
    assert report.wire_bytes > len(live) * cache.page_kv_bytes
    stats = topo.link_stats()
    assert stats["link_migration_bytes"] == pytest.approx(report.wire_bytes)
    # The received snapshot rebuilds to an uncorrupted, identical cache.
    rebuilt = PagedKVCache.from_state(received["cache"])
    assert rebuilt.find_corrupted() == []
    assert rebuilt.used_pages() == live
    assert received["cache"]["refcount"] == snap["cache"]["refcount"]
    assert received["cache"]["page_version"] == snap["cache"]["page_version"]
    assert received["cache"]["page_stamp"] == snap["cache"]["page_stamp"]


def test_migration_retries_link_faults_with_backoff():
    snap, cache = _snapshot_with_live_pages()
    topo = Topology.preset("nvlink", world=2)
    cfg = FailoverConfig(chunk_pages=64, backoff_base=0.002, backoff_factor=2.0)
    # Fault the first two transfer attempts (the control chunk twice).
    plan = FaultPlan(schedules={"link": [0, 1]})
    mig = KVMigrator(topo, cfg, fault_plan=plan)
    received, report = mig.migrate(snap, t=0.0, source=0, target=1)
    assert report.retries == 2
    # Wasted attempts are still charged: control chunk went 3x on the wire.
    clean_topo = Topology.preset("nvlink", world=2)
    _, clean = KVMigrator(clean_topo, cfg).migrate(snap, t=0.0, source=0, target=1)
    assert (
        topo.link_stats()["link_migration_busy_s"]
        > clean_topo.link_stats()["link_migration_busy_s"]
    )
    # ...and the backoffs show up in wall time: base*2^0 + base*2^1.
    assert report.seconds >= clean.seconds + 0.002 + 0.004
    # But the accounted wire_bytes (useful payload) is identical.
    assert report.wire_bytes == pytest.approx(clean.wire_bytes)


def test_migration_exhausted_retries_raise():
    snap, _ = _snapshot_with_live_pages()
    cfg = FailoverConfig(max_retries=2)
    plan = FaultPlan(schedules={"link": range(16)})  # every attempt faults
    mig = KVMigrator(Topology.preset("nvlink", world=2), cfg, fault_plan=plan)
    with pytest.raises(MigrationError, match="all 3 transfer attempts"):
        mig.migrate(snap, t=0.0, source=0, target=1)


def test_migration_refuses_checksum_tampered_chunk():
    snap, _ = _snapshot_with_live_pages()
    mig = KVMigrator(Topology.preset("nvlink", world=2), FailoverConfig(chunk_pages=2))
    with pytest.raises(MigrationChecksumError, match="refusing to import"):
        mig.migrate(snap, t=0.0, source=0, target=1, corrupt_chunks=[0])
    # MigrationChecksumError is both a verification error and a migration
    # error, and is NOT retried (one attempt, refused outright).
    from repro.serving.checkpoint import SnapshotVerificationError

    assert issubclass(MigrationChecksumError, SnapshotVerificationError)


def test_migration_partially_filled_last_page_roundtrips():
    # 40 tokens at page_size=16 → 3 pages with the tail page only half
    # full: chunk export ships whole pages, priced at full page_kv_bytes,
    # and the partial fill survives the round trip exactly.
    cache = PagedKVCache(64, 16, 2, 8, materialize=True, checksums=True)
    rng = np.random.default_rng(1)
    sid = cache.new_seq()
    kv = rng.standard_normal((40, 2, 8)).astype(np.float32)
    cache.append(sid, kv, kv)
    assert cache.seq_len(sid) == 40  # not page-aligned: 40 % 16 == 8
    live = cache.used_pages()
    assert len(live) == 3
    topo = Topology.preset("nvlink", world=2)
    mig = KVMigrator(topo, FailoverConfig(chunk_pages=2))
    received, report = mig.migrate(
        {"t": 0.0, "cache": cache.export_state()}, t=0.0, source=0, target=1
    )
    assert report.pages == 3
    assert report.chunks == 1 + 2  # control + ceil(3 / chunk_pages)
    # Whole-page wire pricing: the half-filled tail page still costs a
    # full page of modeled KV bytes (page granularity is the transfer
    # unit, exactly like the allocator's).
    assert report.wire_bytes >= 3 * cache.page_kv_bytes
    rebuilt = PagedKVCache.from_state(received["cache"])
    assert rebuilt.used_pages() == live
    assert rebuilt.seq_len(sid) == 40
    assert rebuilt.find_corrupted() == []


def test_migration_zero_live_page_sequence_ships_control_only():
    # A registered sequence with no tokens yet owns no pages: the
    # migration is a single control chunk, zero page traffic — and the
    # empty sequence is still alive and growable on the target.
    cache = PagedKVCache(64, 16, 2, 8, materialize=True, checksums=True)
    sid = cache.new_seq()
    assert cache.used_pages() == []
    topo = Topology.preset("nvlink", world=2)
    mig = KVMigrator(topo, FailoverConfig(chunk_pages=2))
    received, report = mig.migrate(
        {"t": 0.0, "cache": cache.export_state()}, t=0.0, source=0, target=1
    )
    assert report.pages == 0
    assert report.chunks == 1
    assert report.retries == 0
    assert report.wire_bytes == pytest.approx(
        topo.link_stats()["link_migration_bytes"]
    )
    rebuilt = PagedKVCache.from_state(received["cache"])
    assert rebuilt.used_pages() == []
    assert rebuilt.seq_len(sid) == 0
    rng = np.random.default_rng(2)
    kv = rng.standard_normal((4, 2, 8)).astype(np.float32)
    rebuilt.append(sid, kv, kv)
    assert rebuilt.seq_len(sid) == 4
    assert len(rebuilt.used_pages()) == 1
    assert issubclass(MigrationChecksumError, MigrationError)


# -- end-to-end failover -------------------------------------------------------


def _run_failover(mode, step=6, dp=2, **kwargs):
    requests = sharegpt_workload(16, rate=120.0, seed=7)
    cluster = _cluster(
        dp=dp, failover=FailoverConfig(),
        replica_failures={0: ReplicaFailure(step, mode)},
        **kwargs,
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    return cm, (divergent, compared)


def test_crash_failover_migrates_and_stays_token_exact():
    cm, divergence = _run_failover("crash")
    assert divergence == (0, 16)
    s = cm.summary()
    assert s["failover_crashes"] == 1.0
    assert s["failover_migrations"] == 1.0
    assert s["migration_pages"] > 0
    assert s["migration_bytes"] > 0
    assert s["link_migration_bytes"] > 0
    assert s["failover_fallbacks"] == 0.0
    # Detection paid the heartbeat timeout; recovery includes migration.
    assert s["failover_detect_s"] > 0
    assert s["failover_recovery_s"] >= s["failover_detect_s"]
    # healthy → suspected → dead → recovering → rejoined.
    assert [tr.to for tr in cm.failover.transitions] == [
        "suspected", "dead", "recovering", "rejoined",
    ]
    assert cm.crash_reports is None  # failover path, not the in-place harness


def test_drain_skips_detection_and_hands_off_immediately():
    cm, divergence = _run_failover("drain")
    assert divergence == (0, 16)
    s = cm.summary()
    assert s["failover_drains"] == 1.0
    assert s["failover_crashes"] == 0.0
    assert s["failover_detect_s"] == 0.0  # planned: no timeout to pay
    assert s["migration_pages"] > 0
    assert [tr.to for tr in cm.failover.transitions] == [
        "draining", "dead", "recovering", "rejoined",
    ]


def test_failover_dp1_falls_back_in_place():
    cm, divergence = _run_failover("crash", dp=1)
    assert divergence == (0, 16)
    s = cm.summary()
    assert s["failover_fallbacks"] == 1.0
    assert s["failover_migrations"] == 0.0


def test_failover_migration_faults_exhausted_falls_back_in_place():
    cm, divergence = _run_failover(
        "crash", fault_plan=FaultPlan(schedules={"link": range(64)}),
    )
    assert divergence == (0, 16)
    s = cm.summary()
    assert s["failover_fallbacks"] == 1.0
    assert s["failover_migrations"] == 0.0


def test_failover_enabled_without_failure_is_inert():
    requests = sharegpt_workload(12, rate=120.0, seed=3)
    plain = _cluster().run(requests)
    enabled = _cluster(failover=FailoverConfig()).run(requests)
    plain_tokens = [t.tokens for m in plain.replicas for t in m.traces]
    enabled_tokens = [t.tokens for m in enabled.replicas for t in m.traces]
    assert plain_tokens == enabled_tokens
    ps, es = plain.summary(), enabled.summary()
    # Core timing/throughput keys are bit-identical; the failover run only
    # adds its (all-zero) counters.
    for key in ps:
        assert es[key] == ps[key], key
    assert es["failover_crashes"] == 0.0
    assert "failover_crashes" not in ps


def test_drain_without_failover_is_rejected():
    cluster = _cluster(replica_failures={0: ReplicaFailure(3, "drain")})
    with pytest.raises(ValueError, match="drain requires"):
        cluster.run(sharegpt_workload(4, rate=60.0, seed=1))


def test_seeded_replica_site_draws_deterministically():
    requests = sharegpt_workload(12, rate=120.0, seed=5)

    def failures(seed):
        cluster = _cluster(
            failover=FailoverConfig(),
            fault_plan=FaultPlan(seed=seed, replica_fail_rate=0.9),
        )
        return cluster._resolve_failures()

    a, b = failures(11), failures(11)
    assert a == b  # same seed, same draws
    assert a  # rate 0.9 across 2 replicas: at least one fires
    cluster = _cluster(
        failover=FailoverConfig(),
        fault_plan=FaultPlan(seed=11, replica_fail_rate=0.9),
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    assert cm.token_divergence(expected_tokens(reference)) == (0, 12)
    assert cm.summary()["failover_crashes"] >= 1.0


# -- routing under unhealthy replicas ------------------------------------------


def test_all_replicas_unhealthy_holds_arrivals_never_drops():
    requests = sharegpt_workload(10, rate=200.0, seed=4)
    # Both replicas down over a window covering the middle arrivals;
    # replica 1 rejoins first.
    sched = (
        HealthSchedule(2)
        .add_window(0, 0.0, 0.30)
        .add_window(1, 0.01, 0.20)
    )
    cluster = _cluster(failover=FailoverConfig(), health_schedule=sched)
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    # Nothing dropped: every stream completes, token-exactly.
    assert cm.token_divergence(expected_tokens(reference)) == (0, 10)
    s = cm.summary()
    assert s["cluster_requests"] == 10.0
    assert s["cluster_sheds"] == 0.0
    assert s["cluster_held_requests"] > 0
    assert s["failover_held_requests"] == s["cluster_held_requests"]
    # Held arrivals were clamped to the first rejoin inside the window.
    held_arrivals = [
        r.arrival for lst in cm.replica_requests for r in lst
    ]
    assert all(a >= 0.0 for a in held_arrivals)
    for lst in cm.replica_requests:
        assert [r.arrival for r in lst] == sorted(r.arrival for r in lst)


def test_unhealthy_window_steers_routing_and_backpressure():
    requests = sharegpt_workload(12, rate=300.0, seed=2)
    sched = HealthSchedule(2).add_window(0, 0.0, 10.0)  # replica 0 down all run
    cluster = _cluster(health_schedule=sched)
    per_replica, assignments = cluster.route(requests)
    assert all(a == 1 for a in assignments)
    assert len(per_replica[0]) == 0


def test_health_schedule_without_failover_still_routes_token_exact():
    requests = sharegpt_workload(10, rate=120.0, seed=8)
    sched = HealthSchedule(2).add_window(0, 0.0, 0.05)
    cluster = _cluster(health_schedule=sched)
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    assert cm.token_divergence(expected_tokens(reference)) == (0, 10)
