"""Tests for the paged KV cache (page table, refcounts, COW)."""

import numpy as np
import pytest

from repro.kvcache import OutOfPagesError, PagedKVCache


def make_cache(num_pages=16, page_size=4, heads=2, dim=8):
    return PagedKVCache(num_pages, page_size, heads, dim)


def kv(n, heads=2, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, heads, dim)), rng.standard_normal((n, heads, dim))


class TestAppendGather:
    def test_append_round_trip(self):
        c = make_cache()
        s = c.new_seq()
        k, v = kv(10)
        c.append(s, k, v)
        gk, gv = c.gather(s)
        assert np.allclose(gk, k) and np.allclose(gv, v)

    def test_incremental_appends(self):
        c = make_cache()
        s = c.new_seq()
        k, v = kv(11)
        for i in range(11):
            c.append(s, k[i : i + 1], v[i : i + 1])
        gk, _ = c.gather(s)
        assert np.allclose(gk, k)
        assert c.seq_len(s) == 11
        assert len(c.seq_pages(s)) == 3  # ceil(11/4)

    def test_page_accounting(self):
        c = make_cache(num_pages=4)
        s = c.new_seq()
        k, v = kv(9)
        c.append(s, k, v)
        assert c.num_used_pages == 3
        c.free_seq(s)
        assert c.num_used_pages == 0
        assert c.num_free_pages == 4

    def test_out_of_pages(self):
        c = make_cache(num_pages=2)
        s = c.new_seq()
        k, v = kv(8)
        c.append(s, k, v)
        with pytest.raises(OutOfPagesError):
            c.append(s, k[:1], v[:1])

    def test_shape_validation(self):
        c = make_cache()
        s = c.new_seq()
        with pytest.raises(ValueError, match="shape"):
            c.append(s, np.zeros((1, 3, 8)), np.zeros((1, 3, 8)))

    def test_kv_shape_mismatch(self):
        c = make_cache()
        s = c.new_seq()
        with pytest.raises(ValueError, match="shape"):
            c.append(s, np.zeros((1, 2, 8)), np.zeros((2, 2, 8)))

    def test_unknown_seq(self):
        c = make_cache()
        with pytest.raises(KeyError):
            c.seq_len(99)


class TestForkCow:
    def test_fork_shares_full_pages(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(8)  # exactly 2 pages
        c.append(a, k, v)
        b = c.fork_seq(a)
        assert c.seq_pages(a) == c.seq_pages(b)
        assert c.num_used_pages == 2
        for p in c.seq_pages(a):
            assert c.page_refcount(p) == 2

    def test_fork_copies_partial_page(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(6)  # 1.5 pages
        c.append(a, k, v)
        b = c.fork_seq(a)
        assert c.seq_pages(a)[0] == c.seq_pages(b)[0]
        assert c.seq_pages(a)[1] != c.seq_pages(b)[1]
        gk, _ = c.gather(b)
        assert np.allclose(gk, k)

    def test_writes_after_fork_are_isolated(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(6)
        c.append(a, k, v)
        b = c.fork_seq(a)
        k2, v2 = kv(1, seed=7)
        c.append(a, k2, v2)
        gk_b, _ = c.gather(b)
        assert gk_b.shape[0] == 6
        assert np.allclose(gk_b, k)  # fork unaffected

    def test_cow_on_shared_partial_page(self):
        """Appending to a sequence whose partial last page is shared must
        copy before writing (prefix-cache safety)."""
        c = make_cache()
        a = c.new_seq()
        k, v = kv(8)
        c.append(a, k, v)
        b = c.fork_seq(a)  # shares both full pages
        k2, v2 = kv(2, seed=3)
        c.append(a, k2, v2)  # new page for a
        c.append(b, k2, v2)  # new page for b
        ga, _ = c.gather(a)
        gb, _ = c.gather(b)
        assert np.allclose(ga, gb)

    def test_free_fork_keeps_parent(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(8)
        c.append(a, k, v)
        b = c.fork_seq(a)
        c.free_seq(b)
        gk, _ = c.gather(a)
        assert np.allclose(gk, k)
        assert c.num_used_pages == 2


class TestSharedPrefix:
    def test_new_seq_from_cached_pages(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(8)
        c.append(a, k, v)
        pages = c.seq_pages(a)
        b = c.new_seq(shared_pages=pages, shared_len=8)
        gk, _ = c.gather(b)
        assert np.allclose(gk, k)
        c.free_seq(a)
        gk2, _ = c.gather(b)  # pages kept alive by b's reference
        assert np.allclose(gk2, k)

    def test_shared_len_must_fill_pages(self):
        c = make_cache()
        with pytest.raises(ValueError, match="shared_len"):
            c.new_seq(shared_pages=[0], shared_len=3)

    def test_retain_release(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(4)
        c.append(a, k, v)
        p = c.seq_pages(a)
        c.retain_pages(p)
        c.free_seq(a)
        assert c.num_used_pages == 1
        c.release_pages(p)
        assert c.num_used_pages == 0


class TestExtend:
    def test_extend_allocates_structure(self):
        c = make_cache()
        s = c.new_seq()
        c.extend(s, 9)
        assert c.seq_len(s) == 9
        assert len(c.seq_pages(s)) == 3

    def test_extend_negative_rejected(self):
        c = make_cache()
        s = c.new_seq()
        with pytest.raises(ValueError):
            c.extend(s, -1)

    def test_extend_cow(self):
        c = make_cache()
        a = c.new_seq()
        c.extend(a, 6)
        b = c.fork_seq(a)
        pages_before = c.seq_pages(b)
        c.extend(b, 1)
        assert c.seq_len(b) == 7
        # b's partial page was private after fork, so no change of page ids.
        assert c.seq_pages(b)[:2] == pages_before[:2]


class TestLayoutExport:
    def test_layout_matches_pages(self):
        c = make_cache()
        a, b = c.new_seq(), c.new_seq()
        c.extend(a, 6)
        c.extend(b, 4)
        layout = c.layout([a, b])
        assert layout.block_size == 4
        assert np.array_equal(layout.kv_lens, [6, 4])
        assert np.array_equal(layout.group_blocks(0), c.seq_pages(a))
        assert np.array_equal(layout.group_blocks(1), c.seq_pages(b))

    def test_layout_slots_gather_correct_data(self):
        c = make_cache()
        a = c.new_seq()
        k, v = kv(7)
        c.append(a, k, v)
        layout = c.layout([a])
        slots = layout.slot_indices(0)
        assert np.allclose(c.k_pool[slots], k)


class TestStructureOnlyMode:
    def test_materialize_false_has_no_pools(self):
        c = PagedKVCache(8, 4, 2, 8, materialize=False)
        assert c.k_pool is None and c.v_pool is None

    def test_append_rejected(self):
        c = PagedKVCache(8, 4, 2, 8, materialize=False)
        s = c.new_seq()
        with pytest.raises(RuntimeError, match="materialized"):
            c.append(s, np.zeros((1, 2, 8)), np.zeros((1, 2, 8)))

    def test_gather_rejected(self):
        c = PagedKVCache(8, 4, 2, 8, materialize=False)
        s = c.new_seq()
        c.extend(s, 4)
        with pytest.raises(RuntimeError, match="materialized"):
            c.gather(s)

    def test_structure_operations_work(self):
        c = PagedKVCache(8, 4, 2, 8, materialize=False)
        a = c.new_seq()
        c.extend(a, 10)
        b = c.fork_seq(a)
        c.extend(b, 1)  # COW on the shared partial page, no data copied
        layout = c.layout([a, b])
        assert np.array_equal(layout.kv_lens, [10, 11])
        c.truncate(b, 3)
        assert c.seq_len(b) == 3
