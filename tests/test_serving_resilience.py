"""Tests for the serving engine's fault-injection and resilience layer.

The load-bearing property (ISSUE acceptance): a seeded chaos run completes
with *token-exact* final outputs for every non-shed request, and shedding /
degradation are deterministic functions of the seed.
"""

import pytest

from repro.core import HeadConfig
from repro.faults import FaultPlan, ResilienceConfig
from repro.gpu import H100_80G
from repro.kvcache import OutOfPagesError
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def engine(cfg=None, fault_plan=None, resilience=None, tracer=None):
    return ServingEngine(
        MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G,
        cfg or EngineConfig(max_running=64),
        tracer=tracer, fault_plan=fault_plan, resilience=resilience,
    )


def small_workload(n=10):
    return [
        Request(i * 0.004, 64 + 37 * (i % 5), 16 + 5 * (i % 4))
        for i in range(n)
    ]


def tokens_by_stream(metrics):
    return {(t.req_id, t.gen_index): t.tokens for t in metrics.traces}


def stressful_plan(seed):
    """Rates pushed well past the chaos preset so short test workloads
    still see every site fire."""
    return FaultPlan(
        seed=seed,
        kernel_fault_rate=0.15,
        straggler_rate=0.05,
        corruption_rate=0.05,
        alloc_fault_rate=0.05,
    )


class TestTokenExactness:
    @pytest.mark.parametrize("seed", [7, 23])
    def test_chaos_run_is_token_exact(self, seed):
        reqs = small_workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        chaotic = engine(
            fault_plan=stressful_plan(seed), resilience=ResilienceConfig()
        ).run(reqs)

        stats = chaotic.fault_stats
        assert stats["faults_injected"] > 0
        expected = tokens_by_stream(baseline)
        compared = 0
        for key, toks in tokens_by_stream(chaotic).items():
            if key in expected:
                assert toks == expected[key], f"stream {key} diverged"
                compared += 1
        assert compared > 0

    def test_chaos_run_token_exact_with_chunked_prefill(self):
        cfg = EngineConfig(
            max_running=64, chunked_prefill=True, prefill_chunk_size=64
        )
        reqs = small_workload()
        baseline = engine(cfg).run(reqs)  # plain run for counts
        chaotic = engine(
            EngineConfig(max_running=64, chunked_prefill=True,
                         prefill_chunk_size=64),
            fault_plan=stressful_plan(11),
            resilience=ResilienceConfig(),
        ).run(reqs)
        done = {(t.req_id, t.gen_index) for t in chaotic.traces}
        shed = {(t.req_id, t.gen_index) for t in chaotic.shed_traces}
        # Every stream is accounted for exactly once.
        assert len(done) + len(shed) == len(reqs)
        assert len(baseline.traces) == len(reqs)
        # Completed streams produced their full token budget.
        for t in chaotic.traces:
            assert len(t.tokens) == reqs[t.req_id].output_len

    def test_chaos_is_deterministic(self):
        reqs = small_workload()
        a = engine(fault_plan=stressful_plan(5)).run(reqs)
        b = engine(fault_plan=stressful_plan(5)).run(reqs)
        assert a.summary() == b.summary()
        assert tokens_by_stream(a) == tokens_by_stream(b)

    def test_detection_off_is_a_load_bearing_negative_control(self):
        """With checksums disabled, injected corruption reaches decoded
        tokens — proving the detection layer does the work."""
        reqs = small_workload()
        baseline = engine(resilience=ResilienceConfig()).run(reqs)
        plan = FaultPlan(seed=3, corruption_rate=0.2)
        tainted = engine(
            fault_plan=plan,
            resilience=ResilienceConfig(checksums=False),
        ).run(reqs)
        assert plan.injected["corrupt"] > 0
        expected = tokens_by_stream(baseline)
        divergent = sum(
            toks != expected[key]
            for key, toks in tokens_by_stream(tainted).items()
            if key in expected
        )
        assert divergent > 0


class TestAccounting:
    def test_pool_fully_reclaimed_after_chaos(self):
        cfg = EngineConfig(max_running=64, num_pool_pages=512)
        e = engine(cfg, fault_plan=stressful_plan(7),
                   resilience=ResilienceConfig())
        e.run(small_workload())
        assert e._cache.num_free_pages == cfg.num_pool_pages
        assert e._cache.find_corrupted() == []

    def test_every_injected_fault_has_a_matching_event(self):
        from repro.obs import StepTracer

        tracer = StepTracer()
        plan = stressful_plan(7)
        engine(fault_plan=plan, resilience=ResilienceConfig(),
               tracer=tracer).run(small_workload())
        assert plan.total_injected > 0
        by_action = {}
        for ev in tracer.fault_events:
            by_action.setdefault(ev.action, []).append(ev)
        # Injections are all traced, and each triggered a reaction.
        assert len(by_action["injected"]) == plan.total_injected
        reactions = sum(
            len(by_action.get(a, ()))
            for a in ("retry", "detected", "shed", "degraded")
        )
        assert reactions > 0

    def test_fault_stats_only_on_resilience_runs(self):
        reqs = small_workload(4)
        plain = engine().run(reqs)
        assert plain.fault_stats is None
        resil = engine(resilience=ResilienceConfig()).run(reqs)
        assert resil.fault_stats is not None
        assert resil.fault_stats["faults_injected"] == 0

    def test_no_fault_resilience_matches_plain_core_metrics(self):
        reqs = small_workload()
        plain = engine().run(reqs).summary()
        resil = engine(resilience=ResilienceConfig()).run(reqs).summary()
        for key in ("median_ttft", "p99_ttft", "median_itl",
                    "throughput_tok_s", "num_requests", "preemptions"):
            assert resil[key] == plain[key], key


class TestDeadlines:
    def deadline_run(self):
        # Four streams carry a deadline they cannot meet (their 60-token
        # decode takes ~100 ms of simulated time); four are unconstrained.
        reqs = [
            Request(i * 0.001, 320, 60,
                    deadline=0.03 if i % 2 == 0 else None)
            for i in range(8)
        ]
        return engine(resilience=ResilienceConfig()).run(reqs), reqs

    def test_deadline_shedding_is_deterministic_and_recorded(self):
        a, reqs = self.deadline_run()
        b, _ = self.deadline_run()
        shed_a = {(t.req_id, t.gen_index) for t in a.shed_traces}
        assert shed_a == {(i, 0) for i in range(8) if i % 2 == 0}
        assert shed_a == {(t.req_id, t.gen_index) for t in b.shed_traces}
        assert all(t.outcome_reason == "deadline" for t in a.shed_traces)
        assert all(t.outcome == "shed" for t in a.shed_traces)
        # Per-request shed records appear in the summary.
        summary = a.summary()
        for req_id, gen in shed_a:
            assert f"shed_req_{req_id}_{gen}" in summary
        assert summary["sheds"] == len(shed_a)
        # Unconstrained streams all completed.
        assert {(t.req_id, t.gen_index) for t in a.traces} == {
            (i, 0) for i in range(8) if i % 2 == 1
        }


class TestOverload:
    def test_overload_sheds_instead_of_raising(self):
        # The pool cannot hold even one prompt (cf. the preemption test
        # that expects OutOfPagesError on this shape).
        cfg = EngineConfig(max_running=64, num_pool_pages=30)
        m = engine(cfg, resilience=ResilienceConfig()).run([Request(0.0, 640, 10)])
        assert len(m.traces) == 0
        assert m.sheds == 1
        assert m.shed_traces[0].outcome_reason == "overload"

    def test_overload_raise_preserved_when_shedding_disabled(self):
        cfg = EngineConfig(max_running=64, num_pool_pages=30)
        resil = ResilienceConfig(shed_on_overload=False)
        with pytest.raises(OutOfPagesError, match="num_pool_pages"):
            engine(cfg, resilience=resil).run([Request(0.0, 640, 10)])


class TestDegradation:
    def test_consecutive_kernel_faults_degrade_then_anneal(self):
        # Three scheduled back-to-back kernel faults trip degradation
        # (degrade_after=3); the run is long enough to anneal back.
        plan = FaultPlan(seed=0, schedules={"kernel": [5, 6, 7]})
        resil = ResilienceConfig(degrade_after=3, anneal_after=4)
        m = engine(fault_plan=plan, resilience=resil).run(small_workload())
        stats = m.fault_stats
        assert stats["kernel_faults"] == 3
        assert stats["degrade_events"] == 1
        assert stats["degraded_steps"] >= 1
        assert stats["anneal_events"] == 1
        # Degradation changed the backend, not the tokens.
        baseline = engine(resilience=ResilienceConfig()).run(small_workload())
        assert tokens_by_stream(m) == tokens_by_stream(baseline)

    def test_degraded_steps_marked_in_trace(self):
        from repro.obs import StepTracer

        tracer = StepTracer()
        plan = FaultPlan(seed=0, schedules={"kernel": [5, 6, 7]})
        resil = ResilienceConfig(degrade_after=3, anneal_after=4)
        engine(fault_plan=plan, resilience=resil,
               tracer=tracer).run(small_workload())
        degraded = [e for e in tracer.events if e.degraded]
        assert degraded
        assert all("degraded" in e.to_dict() for e in degraded)
        clean = [e for e in tracer.events if not e.degraded]
        assert all("degraded" not in e.to_dict() for e in clean)


class TestWatchdog:
    def test_watchdog_flags_over_budget_steps(self):
        resil = ResilienceConfig(step_budget=1e-9)
        m = engine(resilience=resil).run(small_workload(4))
        assert m.fault_stats["watchdog_flags"] > 0

    def test_no_flags_with_roomy_budget(self):
        resil = ResilienceConfig(step_budget=10.0)
        m = engine(resilience=resil).run(small_workload(4))
        assert m.fault_stats["watchdog_flags"] == 0
