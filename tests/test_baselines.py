"""Tests for the FlashAttention baseline and unfused pipelines."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping
from repro import A100_40G
from repro.baselines import (
    FlashAttentionBaseline,
    naive_attention,
    naive_attention_report,
    rope_kernel_report,
    unfused_streaming_step,
)
from repro.core import HeadConfig, reference_attention

HEADS = HeadConfig(8, 2, 32)


class TestNumericParity:
    def test_fa2_prefill_matches_reference(self, rng):
        mapping, slots = make_paged_mapping([70, 40], [70, 40], 16)
        q = rng.standard_normal((110, 8, 32))
        kp = rng.standard_normal((slots, 2, 32))
        vp = rng.standard_normal((slots, 2, 32))
        fa = FlashAttentionBaseline(HEADS, A100_40G, version="fa2")
        out, _ = fa.run(mapping, q, kp, vp, decode=False, compute=True)
        for r, (s0, s1) in enumerate(zip(mapping.qo_indptr, mapping.qo_indptr[1:])):
            sl = mapping.kv.slot_indices(r)
            ref = reference_attention(q[s0:s1], fp16(kp[sl]), fp16(vp[sl]), causal=True)
            np.testing.assert_allclose(out[s0:s1], ref, atol=1e-6)

    def test_fa3_decode_split_matches_reference(self, rng):
        # Small batch forces flash-decoding splits.
        mapping, slots = make_paged_mapping([600, 300], [1, 1], 16)
        q = rng.standard_normal((2, 8, 32))
        kp = rng.standard_normal((slots, 2, 32))
        vp = rng.standard_normal((slots, 2, 32))
        fa = FlashAttentionBaseline(HEADS, A100_40G, version="fa3")
        out, _ = fa.run(mapping, q, kp, vp, decode=True, compute=True)
        for r in range(2):
            sl = mapping.kv.slot_indices(r)
            ref = reference_attention(q[r : r + 1], fp16(kp[sl]), fp16(vp[sl]), causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-5)

    def test_compute_requires_tensors(self):
        mapping, _ = make_paged_mapping([64], [1], 16)
        fa = FlashAttentionBaseline(HEADS)
        with pytest.raises(ValueError):
            fa.run(mapping, decode=True, compute=True)

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            FlashAttentionBaseline(HEADS, version="fa9")


class TestSchedulingCharacter:
    def test_skew_hurts_fa2_decode(self, rng):
        flat, _ = make_paged_mapping([1024] * 16, [1] * 16, 16)
        skew, _ = make_paged_mapping([10240] + [400] * 15, [1] * 16, 16)
        fa = FlashAttentionBaseline(HeadConfig(32, 32, 128), A100_40G, version="fa2")
        _, rep_flat = fa.run(flat, decode=True)
        _, rep_skew = fa.run(skew, decode=True)
        assert rep_skew.bandwidth_utilization(A100_40G) < rep_flat.bandwidth_utilization(
            A100_40G
        )

    def test_fa3_split_helps_small_batches(self):
        mapping, _ = make_paged_mapping([8192, 8192], [1, 1], 16)
        heads = HeadConfig(8, 8, 128)
        fa2 = FlashAttentionBaseline(heads, A100_40G, version="fa2")
        fa3 = FlashAttentionBaseline(heads, A100_40G, version="fa3")
        _, r2 = fa2.run(mapping, decode=True)
        _, r3 = fa3.run(mapping, decode=True)
        assert r3.makespan < r2.makespan

    def test_decode_tile_padding_waste(self):
        """FA2's 128-row prefill tile wastes compute on single-query decode
        (the §3.2.2 motivation)."""
        mapping, _ = make_paged_mapping([2048] * 8, [1] * 8, 16)
        heads = HeadConfig(8, 8, 128)
        fa2 = FlashAttentionBaseline(heads, A100_40G, version="fa2")
        _, rep = fa2.run(mapping, decode=True)
        # Useful flops are a tiny fraction of a 128-row tile's padded work.
        assert rep.flops_utilization(A100_40G) < 0.05


class TestNaive:
    def test_numerics_exact(self, rng):
        q = rng.standard_normal((8, 4, 16))
        k = rng.standard_normal((8, 4, 16))
        v = rng.standard_normal((8, 4, 16))
        np.testing.assert_allclose(
            naive_attention(q, k, v, causal=True),
            reference_attention(q, k, v, causal=True),
        )

    def test_quadratic_traffic_dominates_at_long_context(self):
        heads = HeadConfig(8, 8, 64)
        short = naive_attention_report(128, 128, heads)
        long = naive_attention_report(4096, 4096, heads)
        # Logits traffic is quadratic: 32× length → ~1024× bytes.
        assert long.total_bytes > 500 * short.total_bytes


class TestUnfusedPipelines:
    def test_rope_kernel_is_bandwidth_bound(self):
        rep = rope_kernel_report(100_000, 8, 128, A100_40G)
        assert rep.achieved_bandwidth() > 0.5 * A100_40G.peak_bandwidth_bytes

    def test_unfused_adds_rope_cost(self):
        from repro.gpu import SimReport

        attn = SimReport(10e-6, 0.0, 0.0, 1, 1, [])
        step = unfused_streaming_step(attn, cache_len=2048, batch_size=4,
                                      heads=HeadConfig(8, 8, 128))
        assert step.total.makespan > attn.makespan
        assert step.rope is not None

    def test_original_impl_slower_than_unfused(self):
        from repro.gpu import SimReport

        attn = SimReport(10e-6, 0.0, 0.0, 1, 1, [])
        heads = HeadConfig(8, 8, 128)
        unfused = unfused_streaming_step(attn, 2048, 4, heads)
        original = unfused_streaming_step(attn, 2048, 4, heads, original_impl=True)
        assert original.total.makespan > unfused.total.makespan
