"""Tests for tile-size heuristics and occupancy (paper §3.2.2)."""


from repro.core import select_kv_tile, select_q_tile, select_tiles
from repro.core.tiles import ctas_per_sm, fused_query_length, regs_per_thread, smem_bytes
from repro.gpu import A100_40G, H100_80G
from repro.utils.dtypes import StorageDType


class TestQTileSelection:
    def test_decode_mha_picks_cuda_core_tile(self):
        # Decode, no GQA: average fused length 1 → tile 1 (CUDA cores).
        assert select_q_tile(1.0) == 1

    def test_minimal_tile_meeting_average(self):
        assert select_q_tile(2.0) == 16
        assert select_q_tile(16.0) == 16
        assert select_q_tile(17.0) == 32
        assert select_q_tile(100.0) == 128

    def test_caps_at_largest(self):
        assert select_q_tile(100000.0) == 128

    def test_fa3_multiples_of_64(self):
        assert select_q_tile(2.0, backend="fa3") == 64
        assert select_q_tile(1.0, backend="fa3") == 1
        assert select_q_tile(65.0, backend="fa3") == 128

    def test_gqa_fusion_lifts_decode_tile(self):
        # Paper Appendix A: group size fuses into the row dimension.
        assert fused_query_length(1.0, 8) == 8.0
        assert select_q_tile(fused_query_length(1.0, 8)) == 16

    def test_fusion_disabled(self):
        assert fused_query_length(1.0, 8, fuse=False) == 1.0


class TestOccupancy:
    def test_smem_grows_with_tiles(self):
        a = smem_bytes(64, 64, 128, StorageDType.FP16)
        b = smem_bytes(128, 64, 128, StorageDType.FP16)
        c = smem_bytes(64, 128, 128, StorageDType.FP16)
        assert b > a and c > a

    def test_fp8_kv_halves_kv_smem(self):
        f16 = smem_bytes(64, 64, 128, StorageDType.FP16)
        f8 = smem_bytes(64, 64, 128, StorageDType.FP8_E4M3)
        assert f8 < f16

    def test_regs_grow_with_tiles(self):
        assert regs_per_thread(128, 128, 128) > regs_per_thread(16, 32, 128)

    def test_occupancy_monotone_in_tile_size(self):
        small = ctas_per_sm(16, 32, 128, StorageDType.FP16, A100_40G)
        large = ctas_per_sm(128, 128, 128, StorageDType.FP16, A100_40G)
        assert small >= large

    def test_occupancy_at_least_resident_for_defaults(self):
        assert ctas_per_sm(64, 64, 128, StorageDType.FP16, A100_40G) >= 1
        assert ctas_per_sm(64, 64, 128, StorageDType.FP16, H100_80G) >= 1


class TestKVTileSelection:
    def test_prefers_occupancy(self):
        kv_tile = select_kv_tile(64, 128, StorageDType.FP16, A100_40G)
        assert kv_tile in (32, 64, 128)
        # The choice must keep at least one CTA resident.
        assert ctas_per_sm(64, kv_tile, 128, StorageDType.FP16, A100_40G) >= 1

    def test_full_heuristic(self):
        q_tile, kv_tile = select_tiles(
            [1] * 16, group_size=4, head_dim=128,
            kv_dtype=StorageDType.FP16, spec=A100_40G,
        )
        assert q_tile == 16  # fused decode length 4 → tile 16
        assert kv_tile in (32, 64, 128)

    def test_prefill_heuristic_picks_large_tile(self):
        q_tile, _ = select_tiles(
            [1024] * 16, group_size=1, head_dim=128,
            kv_dtype=StorageDType.FP16, spec=A100_40G,
        )
        assert q_tile == 128

    def test_empty_batch(self):
        q_tile, _ = select_tiles(
            [], group_size=1, head_dim=128,
            kv_dtype=StorageDType.FP16, spec=A100_40G,
        )
        assert q_tile == 1
