"""Tests for the step-level tracing/profiling layer (``repro.obs``)."""

import json

import numpy as np
import pytest

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.obs import (
    STEP_COMPONENTS,
    KernelRecord,
    RollingHistogram,
    StepEvent,
    StepTracer,
    summary_table,
    to_chrome_trace,
    to_csv,
    validate_event,
)
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
    sharegpt_workload,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def make_engine(tracer=None, **cfg_kwargs):
    cfg = EngineConfig(max_running=64, **cfg_kwargs)
    backend = FlashInferBackend(HEADS, H100_80G)
    return ServingEngine(MODEL, backend, H100_80G, cfg, tracer=tracer)


class CountingBackend(FlashInferBackend):
    """Counts attention_time calls — exactly one per engine step."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self.calls = 0

    def attention_time(self, formats, decode):
        self.calls += 1
        return super().attention_time(formats, decode)


def run_traced(requests, **cfg_kwargs):
    tracer = StepTracer()
    cfg = EngineConfig(max_running=64, **cfg_kwargs)
    backend = CountingBackend(HEADS, H100_80G)
    engine = ServingEngine(MODEL, backend, H100_80G, cfg, tracer=tracer)
    metrics = engine.run(requests)
    return tracer, metrics, backend


class TestEventCounts:
    """One StepEvent per engine step, across all scheduling modes."""

    def test_plain_run(self):
        reqs = [Request(i * 0.002, 200, 20) for i in range(6)]
        tracer, metrics, backend = run_traced(reqs)
        assert tracer.num_steps == backend.calls
        assert len(metrics.traces) == 6
        for ev in tracer.events:
            validate_event(ev)

    def test_chunked_prefill_run(self):
        reqs = [Request(i * 0.002, 700, 25) for i in range(5)]
        tracer, metrics, backend = run_traced(
            reqs, chunked_prefill=True, prefill_chunk_size=256
        )
        assert tracer.num_steps == backend.calls
        assert tracer.steps_by_kind.get("mixed", 0) > 0
        assert tracer.total_prefill_tokens == sum(r.prompt_len for r in reqs)

    def test_preempting_run_records_resume_and_preemptions(self):
        reqs = [Request(i * 0.001, 640, 200) for i in range(8)]
        tracer, metrics, backend = run_traced(reqs, num_pool_pages=256)
        assert metrics.preemptions > 0
        assert tracer.num_steps == backend.calls
        assert tracer.total_preemptions == metrics.preemptions
        assert tracer.steps_by_kind.get("resume", 0) > 0

    def test_token_accounting(self):
        reqs = [Request(0.0, 128, 10) for _ in range(4)]
        tracer, metrics, _ = run_traced(reqs)
        assert tracer.total_prefill_tokens == 4 * 128
        # Every output token beyond the prefill's first lands in a decode step.
        assert tracer.total_decode_tokens == metrics.total_output_tokens - 4


class TestReconciliation:
    """Summed component durations reconcile with ServingMetrics.total_time."""

    @pytest.mark.parametrize("cfg", [{}, {"chunked_prefill": True}])
    def test_components_tile_total_time(self, cfg):
        reqs = [Request(i * 0.002, 300, 30) for i in range(6)]
        tracer, metrics, _ = run_traced(reqs, **cfg)
        component_sum = sum(
            sum(ev.breakdown.values()) for ev in tracer.events
        )
        assert component_sum + tracer.idle_time == pytest.approx(
            metrics.total_time, rel=0.01
        )
        # Events tile [0, total_time] with no gaps or overlaps.
        cursor = 0.0
        for ev in tracer.events:
            assert ev.t_start == pytest.approx(cursor, abs=1e-12)
            cursor = ev.t_end
        assert cursor == pytest.approx(metrics.total_time)

    def test_attention_component_matches_kernel_reports(self):
        reqs = [Request(0.0, 200, 15) for _ in range(3)]
        tracer, _, _ = run_traced(reqs)
        for ev in tracer.events:
            if ev.kind == "idle":
                continue
            assert len(ev.kernels) >= 1
            kernel_sum = sum(k.makespan for k in ev.kernels)
            assert ev.component("attention") == pytest.approx(
                MODEL.num_layers * kernel_sum, rel=1e-9
            )


class TestZeroOverheadWhenDisabled:
    def test_no_event_objects_allocated(self, monkeypatch):
        """An untraced run must never construct a StepEvent."""
        import repro.serving.executor as executor_mod

        def bomb(*a, **kw):
            raise AssertionError("StepEvent allocated without a tracer")

        monkeypatch.setattr(executor_mod, "StepEvent", bomb)
        reqs = [Request(i * 0.002, 200, 10) for i in range(3)]
        metrics = make_engine().run(reqs)
        assert metrics.total_output_tokens == 30
        assert metrics.step_stats is None

    def test_backend_reports_not_collected(self):
        backend = FlashInferBackend(HEADS, H100_80G)
        engine = ServingEngine(MODEL, backend, H100_80G, EngineConfig(max_running=64))
        engine.run([Request(0.0, 100, 5)])
        assert backend.collect_kernel_reports is False
        assert backend.pop_kernel_reports() == []

    def test_tracer_toggles_collection_per_run(self):
        backend = FlashInferBackend(HEADS, H100_80G)
        engine = ServingEngine(MODEL, backend, H100_80G, EngineConfig(max_running=64))
        tracer = StepTracer()
        engine.run([Request(0.0, 100, 5)], tracer=tracer)
        assert sum(len(e.kernels) for e in tracer.events) == tracer.num_steps
        engine.run([Request(0.0, 100, 5)])  # untraced again
        assert backend.collect_kernel_reports is False


class TestExporters:
    def _traced(self):
        reqs = sharegpt_workload(6, 80.0, seed=1)
        return run_traced(reqs)

    def test_chrome_trace_roundtrips_json(self, tmp_path):
        tracer, _, _ = self._traced()
        trace = to_chrome_trace(tracer.events, metadata={"model": MODEL.name})
        parsed = json.loads(json.dumps(trace))
        assert parsed["metadata"]["model"] == MODEL.name
        events = parsed["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(slices) > tracer.num_steps  # steps + components + kernels
        assert counters, "expected kv_pages/live_streams counter events"
        # Step slices carry the schema's args.
        step_slices = [e for e in slices if e.get("cat") == "step"]
        assert len(step_slices) == tracer.num_steps
        for s in step_slices:
            assert {"prefill_tokens", "decode_tokens", "streams"} <= set(s["args"])

    def test_component_slices_tile_step_interval(self):
        tracer, _, _ = self._traced()
        trace = to_chrome_trace(tracer.events)
        comp = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e.get("cat") == "component"]
        by_step = {}
        for c in comp:
            by_step.setdefault(c["args"]["step"], []).append(c)
        for ev in tracer.events:
            if ev.kind == "idle":
                continue
            slices = by_step[ev.index]
            total = sum(c["dur"] for c in slices)
            assert total == pytest.approx(ev.duration * 1e6, rel=1e-6)

    def test_csv_export(self):
        tracer, _, _ = self._traced()
        csv = to_csv(tracer.events)
        lines = csv.strip().splitlines()
        assert len(lines) == len(tracer.events) + 1
        header = lines[0].split(",")
        for comp in STEP_COMPONENTS:
            assert comp in header
        assert len(lines[1].split(",")) == len(header)

    def test_summary_table_renders(self):
        tracer, _, _ = self._traced()
        text = summary_table(tracer)
        assert "steps" in text and "attention" in text and "gemm" in text

    def test_write_chrome_trace_file(self, tmp_path):
        from repro.obs import write_chrome_trace

        tracer, _, _ = self._traced()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer.events)
        assert json.loads(path.read_text())["traceEvents"]


class TestMetricsFolding:
    def test_summary_carries_obs_counters(self):
        reqs = [Request(i * 0.002, 200, 20) for i in range(4)]
        tracer, metrics, _ = run_traced(reqs)
        s = metrics.summary()
        assert s["obs_steps"] == tracer.num_steps
        assert s["obs_time_attention"] == pytest.approx(
            tracer.component_time["attention"]
        )
        assert s["obs_busy_time"] + s["obs_idle_time"] == pytest.approx(
            metrics.total_time
        )
        assert "obs_step_p50" in s and "obs_step_p99" in s

    def test_untraced_summary_unchanged(self):
        reqs = [Request(0.0, 100, 5)]
        metrics = make_engine().run(reqs)
        assert not any(k.startswith("obs_") for k in metrics.summary())


class TestRollingHistogram:
    def test_quantiles_bracket_observations(self):
        h = RollingHistogram()
        rng = np.random.default_rng(0)
        values = rng.uniform(1e-4, 1e-2, 500)
        for v in values:
            h.add(v)
        assert h.total == 500
        assert h.min <= h.quantile(0.5) <= h.max
        assert h.quantile(0.99) >= h.quantile(0.5)
        assert h.mean == pytest.approx(values.mean())

    def test_ignores_nonpositive(self):
        h = RollingHistogram()
        h.add(0.0)
        h.add(-1.0)
        assert h.total == 0
        assert np.isnan(h.quantile(0.5))


class TestStandaloneKernelRecords:
    def test_record_kernel_outside_steps(self):
        tracer = StepTracer()
        from repro.gpu.executor import SimReport

        rep = SimReport(1e-5, 1e9, 1e6, 4, 2, [1e-5, 0.5e-5])
        tracer.record_kernel(KernelRecord.from_report("standalone", "single", rep))
        assert tracer.num_kernels == 1
        assert tracer.kernels[0].balance == pytest.approx(0.75)

    def test_keep_events_false_drops_events(self):
        reqs = [Request(0.0, 100, 10)]
        tracer = StepTracer(keep_events=False)
        make_engine(tracer=tracer).run(reqs)
        assert tracer.events == []
        assert tracer.num_steps > 0
        assert tracer.busy_time > 0


class TestEventSchema:
    def test_validate_rejects_unknown_kind(self):
        ev = StepEvent(index=0, kind="warp", t_start=0.0, t_end=1.0)
        with pytest.raises(ValueError, match="unknown step kind"):
            validate_event(ev)

    def test_to_dict_has_all_components(self):
        ev = StepEvent(index=0, kind="decode", t_start=0.0, t_end=1.0,
                       breakdown={"attention": 0.5})
        d = ev.to_dict()
        for comp in STEP_COMPONENTS:
            assert comp in d
        assert d["duration"] == 1.0
