"""Tests for fault injection and detection hooks (executor, wrapper, cache)."""

import numpy as np
import pytest

from repro.core import HeadConfig, VANILLA
from repro.core.wrapper import BatchAttentionWrapper
from repro.faults import (
    FaultPlan,
    KernelFault,
    KVCorruptionError,
    NumericalFault,
    OutputGuard,
    TransientAllocFault,
)
from repro.gpu import A100_40G, WorkspaceBuffer
from repro.kvcache import OutOfPagesError, PagedKVCache
from repro.sparse.layout import AttentionMapping

HEADS = HeadConfig(4, 2, 32)


def build_mapping(rng, kv_lens=(40, 111, 70), page_size=16):
    cache = PagedKVCache(256, page_size, 2, 32)
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, 2, 32)),
                     rng.standard_normal((n, 2, 32)))
        seqs.append(sid)
    mapping = AttentionMapping(
        np.arange(len(seqs) + 1), cache.layout(seqs), causal=True
    )
    return cache, mapping


def decode_wrapper():
    return BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 26), A100_40G, avg_qo_len=1
    )


class TestExecutorInjection:
    def test_scheduled_kernel_fault_raises(self, rng):
        _, mapping = build_mapping(rng)
        w = decode_wrapper()
        w.plan(mapping)
        w.executor.fault_injector = FaultPlan(schedules={"kernel": [0]})
        with pytest.raises(KernelFault):
            w.run(None, compute=False)

    def test_retry_after_transient_fault_succeeds(self, rng):
        _, mapping = build_mapping(rng)
        w = decode_wrapper()
        w.plan(mapping)
        w.executor.fault_injector = FaultPlan(schedules={"kernel": [0]})
        with pytest.raises(KernelFault):
            w.run(None, compute=False)
        # The fault was transient: the very next launch goes through.
        _, _, report = w.run(None, compute=False)
        assert report.makespan > 0

    def test_straggler_inflates_makespan(self):
        # A uniformly loaded grid, so whichever CTA the plan picks as the
        # straggler sits on the critical path.
        from repro.gpu.cost import TileCost
        from repro.gpu.executor import PersistentKernelExecutor

        queues = [
            [TileCost(flops=1e9, padded_flops=1e9, bytes_read=1e6,
                      uses_tensor_cores=True)]
            for _ in range(8)
        ]
        ex = PersistentKernelExecutor(A100_40G)
        base = ex.run_persistent(queues)
        ex.fault_injector = FaultPlan(
            schedules={"straggler": [0]}, straggler_factor=16.0
        )
        slow = ex.run_persistent(queues)
        assert slow.makespan > base.makespan

    def test_disabled_plan_changes_nothing(self, rng):
        _, mapping = build_mapping(rng)
        clean = decode_wrapper()
        clean.plan(mapping)
        _, _, base = clean.run(None, compute=False)

        attached = decode_wrapper()
        attached.plan(mapping)
        attached.executor.fault_injector = FaultPlan(seed=42)  # all rates 0
        _, _, report = attached.run(None, compute=False)
        assert report.makespan == base.makespan


class TestNumericGuard:
    def test_injected_nan_caught_by_output_guard(self, rng):
        cache, mapping = build_mapping(rng)
        w = decode_wrapper()
        w.plan(mapping)
        w.executor.fault_injector = FaultPlan(schedules={"numeric": [0]})
        w.output_guard = OutputGuard()
        q = rng.standard_normal((3, 4, 32))
        with pytest.raises(NumericalFault):
            w.run(q, cache.k_pool, cache.v_pool)

    def test_no_guard_lets_nan_through(self, rng):
        cache, mapping = build_mapping(rng)
        w = decode_wrapper()
        w.plan(mapping)
        w.executor.fault_injector = FaultPlan(schedules={"numeric": [0]})
        q = rng.standard_normal((3, 4, 32))
        out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
        assert not np.isfinite(out).all()

    def test_guard_passes_clean_output(self, rng):
        cache, mapping = build_mapping(rng)
        w = decode_wrapper()
        w.plan(mapping)
        w.output_guard = OutputGuard()
        q = rng.standard_normal((3, 4, 32))
        out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
        assert np.isfinite(out).all()

    def test_guard_unit(self):
        guard = OutputGuard()
        guard.check(np.ones((4, 2, 8)), "test")  # finite: no raise
        bad = np.ones((4, 2, 8))
        bad[2] = np.inf
        with pytest.raises(NumericalFault, match="test"):
            guard.check(bad, "test")
        with pytest.raises(ValueError):
            OutputGuard(sample_stride=0)


class TestCacheIntegrity:
    def make(self, rng, checksums=True, num_pages=16, page_size=4):
        cache = PagedKVCache(num_pages, page_size, 1, 8, checksums=checksums)
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((10, 1, 8)),
                     rng.standard_normal((10, 1, 8)))
        return cache, sid

    def test_corruption_detected(self, rng):
        cache, sid = self.make(rng)
        page = cache.seq_pages(sid)[1]
        assert not cache.page_is_corrupt(page)
        assert not cache.seq_is_corrupt(sid)
        cache.corrupt_page(page)
        assert cache.page_is_corrupt(page)
        assert cache.seq_is_corrupt(sid)
        assert cache.find_corrupted() == [page]
        with pytest.raises(KVCorruptionError) as exc:
            cache.gather(sid)
        assert page in exc.value.pages
        with pytest.raises(KVCorruptionError):
            cache.layout([sid])

    def test_checksums_off_skips_export_verification(self, rng):
        cache, sid = self.make(rng, checksums=False)
        cache.corrupt_page(cache.seq_pages(sid)[0])
        cache.gather(sid)  # no raise: export verification gated off
        # ... but the bookkeeping still sees it.
        assert cache.seq_is_corrupt(sid)

    def test_write_restamps_checksum(self, rng):
        cache, sid = self.make(rng)
        page = cache.seq_pages(sid)[-1]
        cache.corrupt_page(page)
        # Appending writes through the partial last page, re-stamping it.
        cache.append(sid, rng.standard_normal((1, 1, 8)),
                     rng.standard_normal((1, 1, 8)))
        assert not cache.page_is_corrupt(page)

    def test_realloc_sanitizes_freed_corrupted_page(self, rng):
        cache, sid = self.make(rng, num_pages=3)
        page = cache.seq_pages(sid)[0]
        cache.corrupt_page(page)
        cache.free_seq(sid)
        # Exhaust the pool so the corrupted page must be reused.
        sid2 = cache.new_seq()
        cache.append(sid2, rng.standard_normal((12, 1, 8)),
                     rng.standard_normal((12, 1, 8)))
        assert page in cache.seq_pages(sid2)
        assert cache.find_corrupted() == []
        k, _ = cache.gather(sid2)
        assert np.isfinite(k).all()

    def test_truncate_releases_pages(self, rng):
        cache, sid = self.make(rng)  # 10 tokens over 3 pages of 4
        free_before = cache.num_free_pages
        cache.truncate(sid, 5)
        assert cache.seq_len(sid) == 5
        assert len(cache.seq_pages(sid)) == 2
        assert cache.num_free_pages == free_before + 1
        cache.truncate(sid, 0)
        assert cache.seq_pages(sid) == []

    def test_pool_stats(self, rng):
        cache, sid = self.make(rng)
        stats = cache.pool_stats()
        assert stats["num_pages"] == 16
        assert stats["used_pages"] == 3
        assert stats["free_pages"] == 13
        assert stats["seq_pages"] == {sid: 3}
        assert stats["corrupted_pages"] == 0
        cache.corrupt_page(cache.seq_pages(sid)[0])
        assert cache.pool_stats()["corrupted_pages"] == 1

    def test_exhaustion_message_carries_pool_state(self, rng):
        cache = PagedKVCache(2, 4, 1, 8)
        sid = cache.new_seq()
        with pytest.raises(OutOfPagesError, match="free / 2 total"):
            cache.append(sid, np.zeros((12, 1, 8)), np.zeros((12, 1, 8)))


class TestAllocFault:
    def test_scheduled_alloc_fault_is_transient(self, rng):
        cache = PagedKVCache(16, 4, 1, 8)
        cache.fault_injector = FaultPlan(schedules={"alloc": [0]})
        sid = cache.new_seq()
        k = rng.standard_normal((3, 1, 8))
        with pytest.raises(TransientAllocFault):
            cache.append(sid, k, k)
        # Subclass of OutOfPagesError, so legacy handlers still catch it.
        assert issubclass(TransientAllocFault, OutOfPagesError)
        # Next attempt (call index 1) succeeds.
        cache.append(sid, k, k)
        assert cache.seq_len(sid) == 3

    def test_no_injection_without_plan(self, rng):
        cache = PagedKVCache(16, 4, 1, 8)
        sid = cache.new_seq()
        k = rng.standard_normal((9, 1, 8))
        cache.append(sid, k, k)
        assert cache.seq_len(sid) == 9


class TestDegradeController:
    """State-machine boundaries of the PRIMARY ↔ DEGRADED controller."""

    def _controller(self):
        from repro.faults.recover import DegradeController

        return DegradeController(degrade_after=3, anneal_after=2)

    def test_degrade_and_anneal_cycle(self):
        dc = self._controller()
        assert not dc.on_kernel_fault()
        assert not dc.on_kernel_fault()
        assert dc.on_kernel_fault()  # third strike trips it
        assert dc.degraded
        assert not dc.on_clean_step()
        assert dc.on_clean_step()  # second clean step anneals back
        assert not dc.degraded
        assert (dc.degrade_events, dc.anneal_events) == (1, 1)

    def test_re_degrades_after_completed_anneal(self):
        """Annealing must fully reset the strike counter: a fresh burst of
        faults after recovery re-trips degradation at the same threshold,
        not earlier and not never."""
        dc = self._controller()
        for _ in range(3):
            dc.on_kernel_fault()
        for _ in range(2):
            dc.on_clean_step()
        assert not dc.degraded
        # One stray fault is below threshold again — no hair trigger.
        assert not dc.on_kernel_fault()
        assert not dc.degraded
        # A clean step while healthy clears the stray strike entirely.
        dc.on_clean_step()
        assert not dc.on_kernel_fault()
        assert not dc.on_kernel_fault()
        assert dc.on_kernel_fault()  # full threshold needed once more
        assert dc.degraded
        assert (dc.degrade_events, dc.anneal_events) == (2, 1)

    def test_force_degrade_is_idempotent_while_degraded(self):
        dc = self._controller()
        assert dc.force_degrade()
        assert not dc.force_degrade()
        assert dc.degrade_events == 1

    def test_faulty_steps_do_not_advance_the_anneal_streak(self):
        """While degraded, only clean steps count toward annealing; a step
        with a fault neither advances nor rewinds the streak."""
        dc = self._controller()
        for _ in range(3):
            dc.on_kernel_fault()
        dc.on_clean_step()
        dc.on_kernel_fault()  # faulty step: streak holds at 1
        assert dc.degraded
        assert dc.on_clean_step()  # second clean step completes the anneal
        assert not dc.degraded

    def test_state_round_trips_through_export(self):
        from repro.faults.recover import DegradeController

        dc = self._controller()
        for _ in range(3):
            dc.on_kernel_fault()
        dc.on_clean_step()
        other = DegradeController(degrade_after=3, anneal_after=2)
        other.import_state(dc.export_state())
        # The clone continues the exact trajectory: one more clean step
        # completes the anneal on both.
        assert dc.on_clean_step() and other.on_clean_step()
        assert other.export_state() == dc.export_state()
