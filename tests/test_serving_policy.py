"""Tests for pluggable scheduling policies (registry, ordering, exactness)."""

from collections import deque

import pytest

import repro.serving.policy as policy_mod
from repro.core import HeadConfig
from repro.faults import ResilienceConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FCFSPolicy,
    FlashInferBackend,
    LLAMA_3_1_8B,
    PriorityPolicy,
    Request,
    SchedulerPolicy,
    ServingEngine,
    SLAAwarePolicy,
    available_policies,
    get_policy,
    register_policy,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


class ShortestFirstPolicy(SchedulerPolicy):
    """Toy third-party policy: shortest prompt first (SJF)."""

    name = "shortest-first"

    def order(self, queue, requests, now, default_deadline=None):
        self._sort(queue, key=lambda i: requests[i].prompt_len)


@pytest.fixture
def shortest_first():
    register_policy(ShortestFirstPolicy)
    yield
    policy_mod._POLICIES.pop(ShortestFirstPolicy.name, None)


def make_engine(policy="fcfs", resilience=None, **cfg_kwargs):
    cfg = EngineConfig(
        num_pool_pages=1 << 12, max_prefill_tokens=2048, policy=policy, **cfg_kwargs
    )
    return ServingEngine(
        MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg,
        resilience=resilience,
    )


class TestRegistry:
    def test_builtins_available(self):
        names = available_policies()
        assert ("fcfs", "priority", "sla-aware") == names[:3]

    def test_get_policy_instantiates(self):
        assert isinstance(get_policy("fcfs"), FCFSPolicy)
        assert isinstance(get_policy("priority"), PriorityPolicy)
        assert isinstance(get_policy("sla-aware"), SLAAwarePolicy)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="fcfs"):
            get_policy("does-not-exist")

    def test_register_rejects_default_name(self):
        class Nameless(SchedulerPolicy):
            pass

        with pytest.raises(ValueError, match="name"):
            register_policy(Nameless)

    def test_register_and_engine_construction(self, shortest_first):
        assert "shortest-first" in available_policies()
        eng = make_engine(policy="shortest-first")
        assert isinstance(eng._policy, ShortestFirstPolicy)

    def test_unknown_policy_rejected_at_engine_construction(self):
        with pytest.raises(ValueError, match="policy"):
            make_engine(policy="bogus")

    def test_entry_point_discovery(self, monkeypatch):
        import importlib.metadata as md

        class FakeEntryPoint:
            def load(self):
                return ShortestFirstPolicy

        def fake_entry_points(group=None):
            assert group == policy_mod._ENTRY_POINT_GROUP
            return [FakeEntryPoint()]

        monkeypatch.setattr(policy_mod, "_ENTRY_POINTS_LOADED", False)
        monkeypatch.setattr(md, "entry_points", fake_entry_points)
        try:
            assert "shortest-first" in available_policies()
            assert isinstance(get_policy("shortest-first"), ShortestFirstPolicy)
        finally:
            policy_mod._POLICIES.pop(ShortestFirstPolicy.name, None)
            policy_mod._ENTRY_POINTS_LOADED = True


class TestQueueOrdering:
    def test_fcfs_is_a_no_op(self):
        reqs = [Request(0.0, 8, 1, priority=9), Request(0.0, 4, 1)]
        q = deque([1, 0])
        FCFSPolicy().order(q, reqs, 0.0)
        assert list(q) == [1, 0]

    def test_priority_sorts_stably(self):
        reqs = [
            Request(0.0, 8, 1, priority=0),
            Request(0.0, 8, 1, priority=5),
            Request(0.0, 8, 1, priority=5),
        ]
        q = deque([0, 1, 2])
        PriorityPolicy().order(q, reqs, 0.0)
        assert list(q) == [1, 2, 0]

    def test_sla_aware_is_edf_with_fallback(self):
        reqs = [
            Request(0.0, 8, 1),  # no deadline: sorts last
            Request(0.0, 8, 1, deadline=10.0),
            Request(0.5, 8, 1, deadline=1.0),  # earliest absolute deadline
        ]
        q = deque([0, 1, 2])
        SLAAwarePolicy().order(q, reqs, 1.0, default_deadline=None)
        assert list(q) == [2, 1, 0]
        # With an engine-wide default, the bare request gets arrival + 0.5.
        q = deque([0, 1, 2])
        SLAAwarePolicy().order(q, reqs, 1.0, default_deadline=0.5)
        assert list(q) == [0, 2, 1]


class TestEngineOrdering:
    """A policy reorders service; it can never change a stream's tokens."""

    def _reqs(self):
        # Simultaneous arrivals (so both are queued when the policy runs);
        # input order: long prompt first, short second.  Each prompt fills
        # the 2048-token prefill budget alone, forcing separate steps.
        return [Request(0.0, 2048, 6), Request(0.0, 256, 6)]

    def _ttft(self, metrics):
        return {t.req_id: t.ttft for t in metrics.traces}

    def _tokens(self, metrics):
        return {(t.req_id, t.gen_index): t.tokens for t in metrics.traces}

    def test_shortest_first_reorders_but_stays_token_exact(self, shortest_first):
        resil = ResilienceConfig()
        fcfs = make_engine("fcfs", resilience=resil).run(self._reqs())
        sjf = make_engine("shortest-first", resilience=resil).run(self._reqs())
        # FCFS serves the long prompt first; SJF flips the order.
        assert self._ttft(fcfs)[0] < self._ttft(fcfs)[1]
        assert self._ttft(sjf)[1] < self._ttft(sjf)[0]
        # Token ids are a pure function of (request, generation, position):
        # every stream decodes the same tokens under either order.
        assert self._tokens(sjf) == self._tokens(fcfs)

    def test_priority_preempts_queue_order(self):
        reqs = [Request(0.0, 2048, 6), Request(0.0, 2048, 6, priority=10)]
        resil = ResilienceConfig()
        fcfs = make_engine("fcfs", resilience=resil).run(reqs)
        prio = make_engine("priority", resilience=resil).run(reqs)
        assert self._ttft(fcfs)[0] < self._ttft(fcfs)[1]
        assert self._ttft(prio)[1] < self._ttft(prio)[0]
        assert self._tokens(prio) == self._tokens(fcfs)

    def test_fcfs_default_matches_explicit(self):
        reqs = self._reqs()
        default = ServingEngine(
            MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G,
            EngineConfig(num_pool_pages=1 << 12, max_prefill_tokens=2048),
        ).run(reqs)
        explicit = make_engine("fcfs").run(reqs)
        assert default.summary() == explicit.summary()
