"""Tests for the workspace buffer (paper Appendix D)."""

import numpy as np
import pytest

from repro.gpu import WorkspaceBuffer


class TestSections:
    def test_fixed_offsets(self):
        ws = WorkspaceBuffer(4096)
        a = ws.allocate_section("a", 100)
        b = ws.allocate_section("b", 100)
        assert a.offset == 0
        assert b.offset == 256  # 256B-aligned
        # Idempotent re-allocation keeps the address.
        assert ws.allocate_section("a", 50).offset == 0

    def test_growth_raises(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("a", 100)
        with pytest.raises(ValueError, match="upper bound"):
            ws.allocate_section("a", 200)

    def test_exhaustion(self):
        ws = WorkspaceBuffer(1024)
        with pytest.raises(MemoryError):
            ws.allocate_section("big", 2048)

    def test_addresses_distinguish_buffers(self):
        a = WorkspaceBuffer(1024).allocate_section("x", 8)
        b = WorkspaceBuffer(1024).allocate_section("x", 8)
        assert a.address != b.address

    def test_bytes_allocated(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("a", 100)
        assert ws.bytes_allocated == 100

    def test_empty_buffer_rejected(self):
        with pytest.raises(ValueError):
            WorkspaceBuffer(0)


class TestDataPath:
    def test_write_read_round_trip(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("plan", 256)
        data = np.arange(10, dtype=np.int64)
        ws.write("plan", data)
        assert np.array_equal(ws.read("plan", np.int64, 10), data)

    def test_partial_fill_allowed(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("plan", 256)
        ws.write("plan", np.arange(2, dtype=np.int64))
        assert np.array_equal(ws.read("plan", np.int64, 2), [0, 1])

    def test_overflow_write_rejected(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("plan", 16)
        with pytest.raises(ValueError, match="exceeds"):
            ws.write("plan", np.arange(10, dtype=np.int64))

    def test_overflow_read_rejected(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("plan", 16)
        with pytest.raises(ValueError, match="exceeds"):
            ws.read("plan", np.int64, 10)

    def test_view_is_live(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("buf", 64)
        v = ws.view("buf", np.float32)
        v[0] = 7.0
        assert ws.read("buf", np.float32, 1)[0] == 7.0

    def test_sections_do_not_alias(self):
        ws = WorkspaceBuffer(4096)
        ws.allocate_section("a", 64)
        ws.allocate_section("b", 64)
        ws.write("a", np.full(8, 1.0))
        ws.write("b", np.full(8, 2.0))
        assert np.all(ws.read("a", np.float64, 8) == 1.0)
        assert np.all(ws.read("b", np.float64, 8) == 2.0)
