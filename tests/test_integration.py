"""Cross-module integration tests: cache managers feeding real attention."""

import numpy as np

from conftest import fp16
from repro import BatchAttentionWrapper, ComposableAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.kvcache import PagedKVCache, RadixTree, StreamingKVCache
from repro.sparse import AttentionMapping, decompose_shared_prefix, detect_shared_prefixes
from repro.baselines import unfused_rope_attention
from repro.variants import FUSED_ROPE

HEADS = HeadConfig(4, 2, 16)


class TestPagedCacheToKernel:
    def test_multi_step_decode_loop(self, rng):
        """Prefill into the cache, then decode step by step; every step's
        attention output must match the oracle over the live cache."""
        cache = PagedKVCache(64, 4, 2, 16)
        sid = cache.new_seq()
        prompt = 13
        k_hist = rng.standard_normal((prompt, 2, 16))
        v_hist = rng.standard_normal((prompt, 2, 16))
        cache.append(sid, k_hist, v_hist)
        ws = WorkspaceBuffer(1 << 26)
        w = BatchAttentionWrapper(VANILLA, HEADS, ws, avg_qo_len=1,
                                  max_batch_size=4, max_total_qo=16)
        for step in range(5):
            k_new = rng.standard_normal((1, 2, 16))
            v_new = rng.standard_normal((1, 2, 16))
            cache.append(sid, k_new, v_new)
            k_hist = np.concatenate([k_hist, k_new])
            v_hist = np.concatenate([v_hist, v_new])
            q = rng.standard_normal((1, 4, 16))
            mapping = AttentionMapping(
                np.array([0, 1]), cache.layout([sid]), causal=True
            )
            w.plan(mapping)
            out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
            ref = reference_attention(q, fp16(k_hist), fp16(v_hist), causal=True)
            np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_forked_sequences_attend_correctly(self, rng):
        """Parallel generation: forks share prompt pages but attend their own
        suffixes."""
        cache = PagedKVCache(64, 4, 2, 16)
        root = cache.new_seq()
        k0 = rng.standard_normal((8, 2, 16))
        v0 = rng.standard_normal((8, 2, 16))
        cache.append(root, k0, v0)
        forks = [cache.fork_seq(root) for _ in range(2)] + [root]
        hist = {}
        for i, s in enumerate(forks):
            kn = rng.standard_normal((2, 2, 16)) + i  # distinct suffixes
            vn = rng.standard_normal((2, 2, 16)) - i
            cache.append(s, kn, vn)
            hist[s] = (np.concatenate([k0, kn]), np.concatenate([v0, vn]))
        mapping = AttentionMapping(
            np.arange(len(forks) + 1), cache.layout(forks), causal=True
        )
        q = rng.standard_normal((len(forks), 4, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(mapping)
        out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
        for r, s in enumerate(forks):
            kh, vh = hist[s]
            ref = reference_attention(q[r : r + 1], fp16(kh), fp16(vh), causal=True)
            np.testing.assert_allclose(out[r : r + 1], ref, atol=1e-6)

    def test_fork_cluster_composable_numerics(self, rng):
        """Auto-detected prefix clusters + composable wrapper == single format."""
        cache = PagedKVCache(128, 4, 2, 16)
        root = cache.new_seq()
        cache.append(root, rng.standard_normal((16, 2, 16)), rng.standard_normal((16, 2, 16)))
        streams = [cache.fork_seq(root) for _ in range(3)] + [root]
        for s in streams:
            cache.append(s, rng.standard_normal((3, 2, 16)), rng.standard_normal((3, 2, 16)))
        mapping = AttentionMapping(
            np.arange(len(streams) + 1), cache.layout(streams), causal=True
        )
        clusters = detect_shared_prefixes(mapping.kv)
        assert clusters and clusters[0].prefix_len == 16
        comp = decompose_shared_prefix(mapping, clusters)
        q = rng.standard_normal((len(streams), 4, 16))
        cw = ComposableAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        out_c, _ = cw.run(q, cache.k_pool, cache.v_pool)
        sw = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        sw.plan(mapping)
        out_s, _, _ = sw.run(q, cache.k_pool, cache.v_pool)
        np.testing.assert_allclose(out_c, out_s, atol=1e-6)


class TestRadixToKernel:
    def test_prefix_cache_hit_preserves_attention(self, rng):
        """A second request reusing cached prefix pages must compute the same
        attention as one that recomputed the prefix."""
        cache = PagedKVCache(64, 4, 2, 16)
        tree = RadixTree(cache)
        tokens = list(range(12))
        a = cache.new_seq()
        ka = rng.standard_normal((12, 2, 16))
        va = rng.standard_normal((12, 2, 16))
        cache.append(a, ka, va)
        tree.insert(tokens, cache.seq_pages(a))

        matched, pages = tree.match_prefix(tokens + [99])
        assert matched == 12
        b = cache.new_seq(shared_pages=pages, shared_len=matched)
        kb = rng.standard_normal((1, 2, 16))
        vb = rng.standard_normal((1, 2, 16))
        cache.append(b, kb, vb)

        mapping = AttentionMapping(np.array([0, 1]), cache.layout([b]), causal=True)
        q = rng.standard_normal((1, 4, 16))
        w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(mapping)
        out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
        ref = reference_attention(
            q, fp16(np.concatenate([ka, kb])), fp16(np.concatenate([va, vb])), causal=True
        )
        np.testing.assert_allclose(out, ref, atol=1e-6)


class TestStreamingLLMPipeline:
    def test_fused_rope_on_rolling_cache_matches_oracle(self, rng):
        """The §4.3 pipeline: StreamingKVCache + fused-RoPE kernel equals the
        unfused oracle (rotate cache at cache positions, then attend)."""
        c = StreamingKVCache(1, num_sinks=2, window=6, num_kv_heads=2, head_dim=16)
        kept_k, kept_v = [], []
        rng2 = np.random.default_rng(1)
        for i in range(15):
            k = rng2.standard_normal((1, 2, 16))
            v = rng2.standard_normal((1, 2, 16))
            c.append(0, k, v)
        m = c.mapping([0], [1])
        slots = m.kv.slot_indices(0)
        k_cache = c.k_pool[slots]
        v_cache = c.v_pool[slots]

        q = rng.standard_normal((1, 4, 16))
        w = BatchAttentionWrapper(FUSED_ROPE, HEADS, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        w.plan(m)
        out, _, _ = w.run(q, c.k_pool, c.v_pool)

        n = len(slots)
        ref = unfused_rope_attention(
            q, fp16(k_cache), fp16(v_cache),
            q_pos=np.array([n - 1]), kv_pos=np.arange(n), causal=True,
        )
        np.testing.assert_allclose(out, ref, atol=1e-6)
