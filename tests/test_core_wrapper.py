"""End-to-end wrapper tests: plan/run vs the dense reference oracle."""

import numpy as np
import pytest

from conftest import fp16, make_paged_mapping, make_shared_prefix_mapping
from repro import BatchAttentionWrapper, ComposableAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.sparse import decompose_shared_prefix
from repro.utils.dtypes import StorageDType


def run_and_check(heads, kv_lens, qo_lens, rng, page_size=16, causal=True,
                  atol=1e-6, **wrapper_kwargs):
    """Build a batch, run the wrapper, compare every request to the oracle."""
    mapping, slots = make_paged_mapping(kv_lens, qo_lens, page_size, causal)
    total_q = int(mapping.total_qo)
    q = rng.standard_normal((total_q, heads.num_qo_heads, heads.head_dim))
    k_pool = rng.standard_normal((slots, heads.num_kv_heads, heads.head_dim))
    v_pool = rng.standard_normal((slots, heads.num_kv_heads, heads.head_dim))
    ws = WorkspaceBuffer(256 * 1024 * 1024)
    w = BatchAttentionWrapper(
        VANILLA, heads, ws, avg_qo_len=float(np.mean(qo_lens)), **wrapper_kwargs
    )
    w.plan(mapping)
    out, lse, report = w.run(q, k_pool, v_pool)
    kv_dtype = wrapper_kwargs.get("kv_dtype", StorageDType.FP16)
    from repro.utils.dtypes import round_to_storage

    for r in range(mapping.num_groups):
        sl = mapping.kv.slot_indices(r)
        kr = round_to_storage(k_pool[sl], kv_dtype).astype(np.float64)
        vr = round_to_storage(v_pool[sl], kv_dtype).astype(np.float64)
        s0, s1 = mapping.qo_indptr[r], mapping.qo_indptr[r + 1]
        ref = reference_attention(q[s0:s1], kr, vr, causal=causal)
        np.testing.assert_allclose(out[s0:s1], ref, atol=atol)
    return out, lse, report, w


class TestCorrectness:
    def test_single_request_prefill(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [40], [40], rng)

    def test_batch_decode(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [33, 128, 7, 255], [1, 1, 1, 1], rng)

    def test_split_kv_long_decode(self, rng):
        # Long KV forces split + merge through fp32 partial states.
        run_and_check(HeadConfig(4, 2, 16), [3000, 50], [1, 1], rng, atol=1e-5)

    def test_incremental_prefill(self, rng):
        # Query shorter than KV (chunked prefill / speculative verify).
        run_and_check(HeadConfig(4, 2, 16), [100, 64], [10, 5], rng)

    def test_non_causal(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [48, 32], [48, 32], rng, causal=False)

    def test_mha(self, rng):
        run_and_check(HeadConfig(4, 4, 16), [60], [60], rng)

    def test_gqa_group_8(self, rng):
        run_and_check(HeadConfig(8, 1, 16), [90, 30], [1, 1], rng)

    def test_fusion_disabled_same_result(self, rng):
        heads = HeadConfig(4, 2, 16)
        a = run_and_check(heads, [70, 30], [1, 1], rng, fuse_head_groups=True)[0]
        rng2 = np.random.default_rng(0)
        b = run_and_check(heads, [70, 30], [1, 1], rng2, fuse_head_groups=False)[0]
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_vector_sparse_page_size_1(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [37, 12], [1, 1], rng, page_size=1)

    def test_large_pages(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [100, 260], [1, 1], rng, page_size=64)

    def test_fp8_kv_cache(self, rng):
        # Appendix F: fp8 KV, fp16 Q/O — checked against the fp8-rounded oracle.
        run_and_check(
            HeadConfig(4, 2, 16), [64, 120], [1, 1], rng,
            kv_dtype=StorageDType.FP8_E4M3, atol=1e-5,
        )

    def test_fa3_backend(self, rng):
        from repro.gpu import H100_80G

        run_and_check(HeadConfig(4, 2, 16), [64, 300], [64, 300], rng, gpu=H100_80G,
                      atol=1e-5)

    def test_explicit_tiles(self, rng):
        run_and_check(HeadConfig(4, 2, 16), [100], [100], rng, q_tile=16, kv_tile=32)

    def test_lse_returned(self, rng):
        heads = HeadConfig(2, 2, 8)
        mapping, slots = make_paged_mapping([20], [20], 4)
        q = rng.standard_normal((20, 2, 8))
        kp = rng.standard_normal((slots, 2, 8))
        vp = rng.standard_normal((slots, 2, 8))
        ws = WorkspaceBuffer(64 * 1024 * 1024)
        w = BatchAttentionWrapper(VANILLA, heads, ws, avg_qo_len=20)
        w.plan(mapping)
        _, lse, _ = w.run(q, kp, vp)
        kr = fp16(kp[:20])
        s = np.einsum("qhd,khd->qhk", q, kr[:, [0, 1]]) / np.sqrt(8)
        s = np.where(np.tril(np.ones((20, 20), dtype=bool))[:, None, :], s, -np.inf)
        ref_lse = np.log(np.exp(s).sum(axis=2))
        np.testing.assert_allclose(lse, ref_lse, atol=1e-6)


class TestOutputTransform:
    def test_applied_once_to_final_output(self, rng):
        from repro.core import AttentionVariant

        variant = AttentionVariant(name="tripled", output_transform="o * 3.0")
        heads = HeadConfig(2, 2, 8)
        mapping, slots = make_paged_mapping([2000], [1], 16)
        q = rng.standard_normal((1, 2, 8))
        kp = rng.standard_normal((slots, 2, 8))
        vp = rng.standard_normal((slots, 2, 8))
        ws = WorkspaceBuffer(64 * 1024 * 1024)
        w = BatchAttentionWrapper(variant, heads, ws, avg_qo_len=1)
        w.plan(mapping)
        out, _, _ = w.run(q, kp, vp)
        ref = reference_attention(q, fp16(kp[mapping.kv.slot_indices(0)]),
                                  fp16(vp[mapping.kv.slot_indices(0)]), causal=True)
        np.testing.assert_allclose(out, 3.0 * ref, atol=1e-4)


class TestLifecycle:
    def test_run_before_plan(self):
        w = BatchAttentionWrapper(
            VANILLA, HeadConfig(2, 2, 8), WorkspaceBuffer(1 << 20)
        )
        with pytest.raises(RuntimeError, match="plan"):
            w.run(np.zeros((1, 2, 8)), np.zeros((1, 2, 8)), np.zeros((1, 2, 8)))

    def test_cost_only_requires_no_tensors(self, rng):
        mapping, _ = make_paged_mapping([64], [1], 16)
        w = BatchAttentionWrapper(
            VANILLA, HeadConfig(2, 2, 8), WorkspaceBuffer(1 << 24), avg_qo_len=1
        )
        w.plan(mapping)
        out, lse, report = w.run(None, compute=False)
        assert report.makespan > 0

    def test_compute_without_tensors_raises(self):
        mapping, _ = make_paged_mapping([64], [1], 16)
        w = BatchAttentionWrapper(
            VANILLA, HeadConfig(2, 2, 8), WorkspaceBuffer(1 << 24), avg_qo_len=1
        )
        w.plan(mapping)
        with pytest.raises(ValueError, match="compute"):
            w.run(None, compute=True)

    def test_growth_beyond_first_plan_bounds_raises(self):
        heads = HeadConfig(2, 2, 8)
        w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 26), avg_qo_len=1)
        m1, _ = make_paged_mapping([64] * 2, [1] * 2, 16)
        w.plan(m1)
        # The workspace is sized with 2·#CTA slack (Appendix D.3), so growth
        # only trips once the batch exceeds that upper bound.
        m2, _ = make_paged_mapping([64] * 1200, [1] * 1200, 16)
        with pytest.raises(ValueError, match="bound|sized"):
            w.plan(m2)

    def test_explicit_bounds_allow_growth(self):
        heads = HeadConfig(2, 2, 8)
        w = BatchAttentionWrapper(
            VANILLA, heads, WorkspaceBuffer(1 << 26), avg_qo_len=1,
            max_batch_size=256, max_total_qo=256,
        )
        m1, _ = make_paged_mapping([64] * 2, [1] * 2, 16)
        w.plan(m1)
        m2, _ = make_paged_mapping([64] * 200, [1] * 200, 16)
        w.plan(m2)  # must not raise

    def test_plan_count_tracks(self):
        heads = HeadConfig(2, 2, 8)
        w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 24), avg_qo_len=1)
        m, _ = make_paged_mapping([64], [1], 16)
        w.plan(m)
        w.plan(m)
        assert w.plan_count == 2


class TestComposableWrapper:
    def test_matches_single_format(self, rng):
        heads = HeadConfig(4, 2, 16)
        mapping, slots, clusters = make_shared_prefix_mapping(2, 3, 64, 48)
        comp = decompose_shared_prefix(mapping, clusters)
        total_q = mapping.total_qo
        q = rng.standard_normal((total_q, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))

        cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        out_c, _ = cw.run(q, kp, vp)

        sw = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        sw.plan(mapping)
        out_s, _, _ = sw.run(q, kp, vp)
        np.testing.assert_allclose(out_c, out_s, atol=1e-5)

    def test_prefix_format_reduces_traffic(self, rng):
        heads = HeadConfig(4, 2, 16)
        mapping, slots, clusters = make_shared_prefix_mapping(4, 8, 256, 32)
        comp = decompose_shared_prefix(mapping, clusters)
        cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        _, rep_c = cw.run(None, compute=False)
        sw = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        sw.plan(mapping)
        _, _, rep_s = sw.run(None, compute=False)
        assert rep_c.total_bytes < rep_s.total_bytes

    def test_format_count_pinned(self, rng):
        heads = HeadConfig(4, 2, 16)
        mapping, _, clusters = make_shared_prefix_mapping(2, 3, 64, 48)
        comp = decompose_shared_prefix(mapping, clusters)
        cw = ComposableAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        with pytest.raises(ValueError, match="formats"):
            cw.plan(mapping)  # 1 format after 2

    def test_run_before_plan(self):
        cw = ComposableAttentionWrapper(
            VANILLA, HeadConfig(2, 2, 8), WorkspaceBuffer(1 << 20)
        )
        with pytest.raises(RuntimeError):
            cw.run(None, compute=False)


class TestComposableExtras:
    def test_output_transform_applied_once_across_formats(self, rng):
        """The output transform must run on the ⊕-merged result, not per
        format (it is not linear in general)."""
        from repro.core import AttentionVariant

        variant = AttentionVariant(name="squared_out", output_transform="o * o")
        heads = HeadConfig(4, 2, 16)
        mapping, slots, clusters = make_shared_prefix_mapping(2, 3, 64, 48)
        comp = decompose_shared_prefix(mapping, clusters)
        q = rng.standard_normal((mapping.total_qo, 4, 16))
        kp = rng.standard_normal((slots, 2, 16))
        vp = rng.standard_normal((slots, 2, 16))

        cw = ComposableAttentionWrapper(variant, heads, WorkspaceBuffer(1 << 27))
        cw.plan(comp)
        out_c, _ = cw.run(q, kp, vp)

        sw = BatchAttentionWrapper(variant, heads, WorkspaceBuffer(1 << 27), avg_qo_len=1)
        sw.plan(mapping)
        out_s, _, _ = sw.run(q, kp, vp)
        np.testing.assert_allclose(out_c, out_s, atol=1e-5)

    def test_cudagraph_capture_of_composable_stack(self, rng):
        """A composable stack captures as one graph (one launch per format)
        and replays with fresh plan data."""
        from repro import CudaGraph

        heads = HeadConfig(4, 2, 16)
        mapping, slots, clusters = make_shared_prefix_mapping(2, 3, 64, 48)
        comp = decompose_shared_prefix(mapping, clusters)
        cw = ComposableAttentionWrapper(
            VANILLA, heads, WorkspaceBuffer(1 << 27),
            max_batch_size=16, max_total_qo=64,
        )
        cw.plan(comp)
        g = CudaGraph()
        with g.capture():
            cw.run(None, compute=False)
        assert g.num_launches == 2  # prefix + suffix kernels
        first = cw.last_report.makespan

        # Grow the suffixes; replan; replay picks up the new plan.
        mapping2, _, clusters2 = make_shared_prefix_mapping(2, 3, 64, 112)
        comp2 = decompose_shared_prefix(mapping2, clusters2)
        cw.plan(comp2)
        g.replay()
        # The per-wrapper reports reflect the longer suffix KV.
        assert cw.wrappers[1].last_report.makespan > 0
