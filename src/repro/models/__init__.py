"""Numerically real models served through the attention engine."""

from repro.models.transformer import GenerationSession, TinyConfig, TinyTransformer
from repro.models.speculative import (
    SpeculativeStats,
    ngram_draft,
    speculative_generate,
)

__all__ = [
    "GenerationSession",
    "TinyConfig",
    "TinyTransformer",
    "SpeculativeStats",
    "ngram_draft",
    "speculative_generate",
]
