"""A numerically real decoder-only transformer over the attention engine.

This is the full-stack integration the attention engine exists to serve: a
Llama-style model (RMSNorm → GQA attention with RoPE → SwiGLU MLP) whose
attention runs through :class:`~repro.core.BatchAttentionWrapper` over a
:class:`~repro.kvcache.PagedKVCache` — paged incremental decoding, prefix
forking, the whole serving path — with a dense no-cache forward pass as
the oracle.  ``tests/test_models_transformer.py`` pins token-exact
equivalence between the two.

Weights are randomly initialized (there is no pretrained checkpoint in
this reproduction); what is being validated is the *engine*, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.kernels import HeadConfig
from repro.core.variant import VANILLA
from repro.core.wrapper import BatchAttentionWrapper
from repro.gpu.spec import A100_40G, GPUSpec
from repro.gpu.workspace import WorkspaceBuffer
from repro.kvcache.paged import PagedKVCache
from repro.sparse.layout import AttentionMapping
from repro.utils.dtypes import StorageDType
from repro.utils.rng import SeedLike, new_rng
from repro.variants.rope import apply_rope


@dataclass(frozen=True)
class TinyConfig:
    """Geometry of the toy model (Llama-style).

    ``sliding_window``/``sliding_layers`` turn selected layers into
    sliding-window attention (Gemma-2's alternating local/global pattern),
    exercising per-layer attention variants through the serving path.
    """

    vocab_size: int = 128
    hidden_size: int = 64
    num_layers: int = 2
    num_qo_heads: int = 4
    num_kv_heads: int = 2
    head_dim: int = 16
    intermediate_size: int = 128
    rope_theta: float = 10000.0
    rms_eps: float = 1e-6
    sliding_window: "int | None" = None
    sliding_layers: "tuple | None" = None

    def __post_init__(self) -> None:
        if self.num_qo_heads * self.head_dim != self.hidden_size:
            raise ValueError("num_qo_heads * head_dim must equal hidden_size")
        if self.num_qo_heads % self.num_kv_heads != 0:
            raise ValueError("num_qo_heads must be a multiple of num_kv_heads")
        if self.sliding_layers and self.sliding_window is None:
            raise ValueError("sliding_layers requires a sliding_window")
        if self.sliding_layers:
            bad = [l for l in self.sliding_layers if not 0 <= l < self.num_layers]
            if bad:
                raise ValueError(f"sliding_layers out of range: {bad}")

    def layer_window(self, layer: int) -> "int | None":
        """The sliding window applying to ``layer`` (None = full causal)."""
        if self.sliding_layers and layer in self.sliding_layers:
            return self.sliding_window
        return None

    @property
    def heads(self) -> HeadConfig:
        return HeadConfig(self.num_qo_heads, self.num_kv_heads, self.head_dim)


def _rms_norm(x: np.ndarray, weight: np.ndarray, eps: float) -> np.ndarray:
    var = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(var + eps) * weight


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _dense_layer_attention(q, k, v, window):
    """Dense causal attention, optionally with a sliding window (oracle)."""
    from repro.core.kernels import reference_attention

    if window is None:
        return reference_attention(q, k, v, causal=True)
    n = q.shape[0]
    h_qo, h_kv = q.shape[1], k.shape[1]
    g = h_qo // h_kv
    pos = np.arange(n)
    keep = (pos[:, None] >= pos[None, :]) & ((pos[:, None] - pos[None, :]) < window)
    d = q.shape[2]
    out = np.zeros_like(q)
    for h in range(h_qo):
        s = (q[:, h] @ k[:, h // g].T) / np.sqrt(d)
        s = np.where(keep, s, -np.inf)
        m = s.max(axis=1, keepdims=True)
        p = np.exp(s - m)
        out[:, h] = (p / p.sum(axis=1, keepdims=True)) @ v[:, h // g]
    return out


class TinyTransformer:
    """Randomly initialized decoder-only transformer."""

    def __init__(self, config: TinyConfig = TinyConfig(), seed: SeedLike = 0):
        self.config = config
        rng = new_rng(seed)
        c = config
        s = 1.0 / np.sqrt(c.hidden_size)
        self.weights: Dict[str, np.ndarray] = {
            "embed": rng.standard_normal((c.vocab_size, c.hidden_size)) * s,
            "lm_head": rng.standard_normal((c.hidden_size, c.vocab_size)) * s,
            "final_norm": np.ones(c.hidden_size),
        }
        kv_out = c.num_kv_heads * c.head_dim
        for layer in range(c.num_layers):
            p = f"l{layer}."
            self.weights[p + "attn_norm"] = np.ones(c.hidden_size)
            self.weights[p + "wq"] = rng.standard_normal((c.hidden_size, c.hidden_size)) * s
            self.weights[p + "wk"] = rng.standard_normal((c.hidden_size, kv_out)) * s
            self.weights[p + "wv"] = rng.standard_normal((c.hidden_size, kv_out)) * s
            self.weights[p + "wo"] = rng.standard_normal((c.hidden_size, c.hidden_size)) * s
            self.weights[p + "mlp_norm"] = np.ones(c.hidden_size)
            self.weights[p + "w_gate"] = rng.standard_normal((c.hidden_size, c.intermediate_size)) * s
            self.weights[p + "w_up"] = rng.standard_normal((c.hidden_size, c.intermediate_size)) * s
            self.weights[p + "w_down"] = rng.standard_normal((c.intermediate_size, c.hidden_size)) * s

    # -- shared layer math ---------------------------------------------------

    def _qkv(self, layer: int, h_norm: np.ndarray, positions: np.ndarray):
        """Project and rotate: returns q (n, Hq, D) and k/v (n, Hkv, D)."""
        c = self.config
        p = f"l{layer}."
        n = h_norm.shape[0]
        q = (h_norm @ self.weights[p + "wq"]).reshape(n, c.num_qo_heads, c.head_dim)
        k = (h_norm @ self.weights[p + "wk"]).reshape(n, c.num_kv_heads, c.head_dim)
        v = (h_norm @ self.weights[p + "wv"]).reshape(n, c.num_kv_heads, c.head_dim)
        for h in range(c.num_qo_heads):
            q[:, h] = apply_rope(q[:, h], positions, c.rope_theta)
        for h in range(c.num_kv_heads):
            k[:, h] = apply_rope(k[:, h], positions, c.rope_theta)
        return q, k, v

    def _mlp(self, layer: int, h: np.ndarray) -> np.ndarray:
        p = f"l{layer}."
        gated = _silu(h @ self.weights[p + "w_gate"]) * (h @ self.weights[p + "w_up"])
        return gated @ self.weights[p + "w_down"]

    # -- dense oracle ------------------------------------------------------------

    def forward_logits(self, tokens: Sequence[int]) -> np.ndarray:
        """No-cache full forward pass: ``(len(tokens), vocab)`` logits."""
        c = self.config
        tokens = np.asarray(tokens, dtype=np.int64)
        h = self.weights["embed"][tokens]
        positions = np.arange(tokens.size)
        for layer in range(c.num_layers):
            p = f"l{layer}."
            h_norm = _rms_norm(h, self.weights[p + "attn_norm"], c.rms_eps)
            q, k, v = self._qkv(layer, h_norm, positions)
            window = c.layer_window(layer)
            attn = _dense_layer_attention(q, k, v, window)
            h = h + attn.reshape(tokens.size, -1) @ self.weights[p + "wo"]
            h_norm = _rms_norm(h, self.weights[p + "mlp_norm"], c.rms_eps)
            h = h + self._mlp(layer, h_norm)
        h = _rms_norm(h, self.weights["final_norm"], c.rms_eps)
        return h @ self.weights["lm_head"]

    def greedy_generate_dense(self, prompt: Sequence[int], num_tokens: int) -> List[int]:
        """Oracle generation: recompute the full forward pass every step."""
        tokens = list(prompt)
        out = []
        for _ in range(num_tokens):
            logits = self.forward_logits(tokens)
            nxt = int(np.argmax(logits[-1]))
            out.append(nxt)
            tokens.append(nxt)
        return out


class GenerationSession:
    """Batched paged-cache generation through the attention engine.

    One prefill/decode wrapper pair serves every layer and every sequence;
    plans are made per step and reused across layers, exactly like the
    serving integration of paper §3.4.
    """

    def __init__(
        self,
        model: TinyTransformer,
        num_pages: int = 512,
        page_size: int = 8,
        gpu: GPUSpec = A100_40G,
        max_batch_size: int = 16,
    ):
        self.model = model
        c = model.config
        self.cache = [
            PagedKVCache(num_pages, page_size, c.num_kv_heads, c.head_dim)
            for _ in range(c.num_layers)
        ]
        ws = WorkspaceBuffer(128 * 1024 * 1024)
        # fp32 storage keeps the engine bit-comparable to the dense oracle.
        common = dict(
            gpu=gpu, kv_dtype=StorageDType.FP32,
            max_batch_size=max_batch_size, max_total_qo=max_batch_size * 4096,
        )
        # One (prefill, decode) wrapper pair per distinct layer variant:
        # full-causal layers share a pair; sliding-window layers get their
        # own JIT-specialized kernels (Gemma-2-style mixed models).
        from repro.variants import make_sliding_window

        def variant_for(layer: int):
            window = c.layer_window(layer)
            return (window, make_sliding_window(window)) if window else (None, VANILLA)

        self._layer_wrappers = []
        pair_cache = {}
        uid = 0
        for layer in range(c.num_layers):
            key, variant = variant_for(layer)
            if key not in pair_cache:
                pair_cache[key] = (
                    BatchAttentionWrapper(
                        variant, c.heads, ws, avg_qo_len=128.0,
                        name=f"model_prefill_{uid}", **common,
                    ),
                    BatchAttentionWrapper(
                        variant, c.heads, ws, avg_qo_len=1.0,
                        name=f"model_decode_{uid}", **common,
                    ),
                )
                uid += 1
            self._layer_wrappers.append(pair_cache[key])
        self.seqs: List[List[int]] = []  # per-sequence cache seq ids by layer
        self.lengths: List[int] = []

    # -- sequence management ----------------------------------------------------

    def new_sequence(self) -> int:
        sid = len(self.seqs)
        self.seqs.append([cache.new_seq() for cache in self.cache])
        self.lengths.append(0)
        return sid

    def fork_sequence(self, sid: int) -> int:
        """Fork a sequence's KV pages in every layer (parallel generation)."""
        new_id = len(self.seqs)
        self.seqs.append(
            [cache.fork_seq(layer_sid) for cache, layer_sid in zip(self.cache, self.seqs[sid])]
        )
        self.lengths.append(self.lengths[sid])
        return new_id

    # -- forward ------------------------------------------------------------------

    def _attention(self, layer, q, decode, seq_ids, qo_lens):
        wrapper = self._layer_wrappers[layer][1 if decode else 0]
        cache = self.cache[layer]
        layer_seqs = [self.seqs[s][layer] for s in seq_ids]
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(layer_seqs),
            causal=True,
        )
        wrapper.plan(mapping)
        out, _, _ = wrapper.run(q, cache.k_pool, cache.v_pool)
        return out

    def truncate(self, sid: int, new_len: int) -> None:
        """Roll a sequence's KV back to ``new_len`` tokens in every layer
        (speculative-decoding rejection)."""
        for layer_cache, layer_sid in zip(self.cache, self.seqs[sid]):
            layer_cache.truncate(layer_sid, new_len)
        self.lengths[sid] = new_len

    def step_all_positions(
        self, seq_ids: Sequence[int], token_lists: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        """Like :meth:`step`, but return logits at *every* fed position:
        one ``(len(tokens_i), vocab)`` array per sequence.  This is the
        verification call of speculative decoding."""
        h, qo_lens = self._forward(seq_ids, token_lists)
        h = _rms_norm(h, self.model.weights["final_norm"], self.model.config.rms_eps)
        logits = h @ self.model.weights["lm_head"]
        bounds = np.concatenate([[0], np.cumsum(qo_lens)])
        return [logits[bounds[i] : bounds[i + 1]] for i in range(len(seq_ids))]

    def step(self, seq_ids: Sequence[int], token_lists: Sequence[Sequence[int]]) -> np.ndarray:
        """Feed ``token_lists[i]`` to sequence ``seq_ids[i]``; return the
        last-position logits per sequence ``(batch, vocab)``.

        Handles both prefill (many tokens) and decode (one token) — and
        mixed batches, the chunked-prefill case.
        """
        h, qo_lens = self._forward(seq_ids, token_lists)
        h = _rms_norm(h, self.model.weights["final_norm"], self.model.config.rms_eps)
        last_rows = np.cumsum(qo_lens) - 1
        return h[last_rows] @ self.model.weights["lm_head"]

    def _forward(self, seq_ids: Sequence[int], token_lists: Sequence[Sequence[int]]):
        """Shared transformer stack: returns pre-final-norm hidden states
        for every fed position plus the per-sequence token counts."""
        m, c = self.model, self.model.config
        qo_lens = [len(t) for t in token_lists]
        if any(l == 0 for l in qo_lens):
            raise ValueError("every sequence must receive at least one token")
        flat_tokens = np.concatenate([np.asarray(t, dtype=np.int64) for t in token_lists])
        positions = np.concatenate(
            [self.lengths[s] + np.arange(l) for s, l in zip(seq_ids, qo_lens)]
        )
        h = m.weights["embed"][flat_tokens]
        decode = max(qo_lens) == 1

        for layer in range(c.num_layers):
            p = f"l{layer}."
            h_norm = _rms_norm(h, m.weights[p + "attn_norm"], c.rms_eps)
            q, k, v = m._qkv(layer, h_norm, positions)
            # Append this step's K/V, then attend over the full cache.
            offset = 0
            for s, l in zip(seq_ids, qo_lens):
                self.cache[layer].append(self.seqs[s][layer], k[offset : offset + l],
                                         v[offset : offset + l])
                offset += l
            attn = self._attention(layer, q, decode, seq_ids, qo_lens)
            h = h + attn.reshape(h.shape[0], -1) @ m.weights[p + "wo"]
            h_norm = _rms_norm(h, m.weights[p + "mlp_norm"], c.rms_eps)
            h = h + m._mlp(layer, h_norm)

        for s, l in zip(seq_ids, qo_lens):
            self.lengths[s] += l
        return h, qo_lens

    def greedy_generate(self, prompt: Sequence[int], num_tokens: int) -> List[int]:
        """Single-sequence greedy decoding through the paged engine."""
        sid = self.new_sequence()
        logits = self.step([sid], [list(prompt)])
        out = [int(np.argmax(logits[0]))]
        for _ in range(num_tokens - 1):
            logits = self.step([sid], [[out[-1]]])
            out.append(int(np.argmax(logits[0])))
        return out
