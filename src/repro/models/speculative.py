"""Greedy speculative decoding through the attention engine.

The paper motivates tree/speculative decoding as one of the attention
patterns the block-sparse engine unifies (§3.1.1).  This module runs the
full serving loop for *chain* speculation with greedy (lossless)
acceptance:

1. a cheap draft policy proposes ``k`` tokens;
2. the target model scores the whole chain in **one** incremental-prefill
   attention call (``qo = k`` against the paged cache);
3. the longest prefix whose draft tokens match the target's greedy choices
   is accepted; on a mismatch the target's own prediction replaces the
   first rejected token (so every verify step commits ≥ 1 token);
4. rejected draft K/V is rolled back with
   :meth:`~repro.kvcache.PagedKVCache.truncate`.

Greedy acceptance guarantees output identical to plain greedy decoding —
pinned by ``tests/test_models_speculative.py`` — while the number of
target steps drops by the mean accepted length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.models.transformer import GenerationSession, TinyTransformer

#: A draft policy: (token history) -> proposed next tokens (length k).
DraftFn = Callable[[Sequence[int], int], List[int]]


@dataclass
class SpeculativeStats:
    """Acceptance accounting for one generation."""

    target_steps: int = 0
    drafted: int = 0
    accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.drafted if self.drafted else 0.0

    @property
    def tokens_per_step(self) -> float:
        return (self.accepted + self.target_steps) / max(self.target_steps, 1)


def ngram_draft(history: Sequence[int], k: int) -> List[int]:
    """A trivial self-drafting policy: replay the continuation that followed
    the most recent earlier occurrence of the last token (prompt-lookup
    decoding).  Falls back to repeating the last token."""
    history = list(history)
    last = history[-1]
    for i in range(len(history) - 2, -1, -1):
        if history[i] == last:
            cont = history[i + 1 : i + 1 + k]
            if cont:
                return (cont + [cont[-1]] * k)[:k]
    return [last] * k


def speculative_generate(
    model: TinyTransformer,
    prompt: Sequence[int],
    num_tokens: int,
    draft_fn: DraftFn = ngram_draft,
    num_draft: int = 4,
    session: "GenerationSession | None" = None,
) -> "tuple[List[int], SpeculativeStats]":
    """Generate ``num_tokens`` greedily with chain speculation.

    Returns ``(tokens, stats)``; ``tokens`` is identical to
    ``GenerationSession.greedy_generate`` output (lossless).
    """
    if num_draft < 1:
        raise ValueError("num_draft must be >= 1")
    sess = session or GenerationSession(model)
    sid = sess.new_sequence()
    stats = SpeculativeStats()

    history = list(prompt)
    logits = sess.step([sid], [list(prompt)])
    stats.target_steps += 1
    out = [int(np.argmax(logits[0]))]
    history.append(out[-1])

    while len(out) < num_tokens:
        k = min(num_draft, num_tokens - len(out))
        draft = draft_fn(history, k)
        if len(draft) != k:
            raise ValueError(f"draft policy returned {len(draft)} tokens, wanted {k}")
        stats.drafted += k

        # One chained verification step: feed [committed_last] + draft[:-1]
        # so position i's logits predict draft[i].
        chain = [out[-1]] + list(draft[:-1])
        base_len = sess.lengths[sid]
        logits = sess.step_all_positions([sid], [chain])[0]
        stats.target_steps += 1
        target_choice = np.argmax(logits, axis=1)

        accepted = 0
        while accepted < k and int(target_choice[accepted]) == draft[accepted]:
            accepted += 1
        stats.accepted += accepted

        if accepted == k:
            # Whole chain accepted: commit exactly the drafted tokens (the
            # chain fed draft[:-1], so there is no extra free prediction).
            new_tokens = list(draft)
            out.extend(new_tokens)
            history.extend(new_tokens)
        else:
            # Keep accepted draft tokens plus the target's correction.
            new_tokens = list(draft[:accepted]) + [int(target_choice[accepted])]
            # Roll back the KV of rejected chain tokens: the verify step
            # appended len(chain) entries; valid ones cover the committed
            # token plus the accepted drafts.
            sess.truncate(sid, base_len + 1 + accepted)
            out.extend(new_tokens)
            history.extend(new_tokens)

    return out[:num_tokens], stats
