"""Token sampling policies for generation.

Greedy decoding is what the correctness tests pin (deterministic); serving
systems additionally expose temperature / top-k / top-p sampling, provided
here over raw logits with a seeded generator so runs stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class SamplingParams:
    """Standard nucleus-sampling knobs.

    ``temperature=0`` short-circuits to greedy argmax.  ``top_k=0`` and
    ``top_p=1.0`` disable their respective truncations.
    """

    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")
        if not 0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1]")


def sample_token(
    logits: np.ndarray,
    params: SamplingParams = SamplingParams(),
    rng: SeedLike = None,
) -> int:
    """Sample one token id from a 1-D logits vector."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 1:
        raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
    if params.temperature == 0.0:
        return int(np.argmax(logits))
    gen = new_rng(rng)

    scaled = logits / params.temperature
    if params.top_k:
        kth = np.partition(scaled, -params.top_k)[-params.top_k]
        scaled = np.where(scaled >= kth, scaled, -np.inf)
    probs = _softmax(scaled)
    if params.top_p < 1.0:
        order = np.argsort(-probs, kind="stable")
        cum = np.cumsum(probs[order])
        # Keep the minimal prefix with mass ≥ top_p (always ≥ 1 token).
        cutoff = int(np.searchsorted(cum, params.top_p)) + 1
        mask = np.zeros_like(probs, dtype=bool)
        mask[order[:cutoff]] = True
        probs = np.where(mask, probs, 0.0)
        probs = probs / probs.sum()
    return int(gen.choice(probs.size, p=probs))


def _softmax(x: np.ndarray) -> np.ndarray:
    m = np.max(x)
    if np.isneginf(m):
        raise ValueError("all logits are -inf")
    e = np.exp(x - m)
    return e / e.sum()
