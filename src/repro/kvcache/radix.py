"""Radix-tree prefix cache (SGLang-style RadixAttention substrate).

Maps token sequences to KV-cache pages at page granularity: a lookup returns
the longest cached prefix (in whole pages) plus its page ids; an insert
registers a computed sequence's pages for future reuse.  Unreferenced leaves
are evicted LRU when the paged pool runs dry.

Internally the tree is a compressed trie whose edges are labelled with
page-aligned token chunks; each node owns the pages backing its chunk and
holds a reference on them in the :class:`~repro.kvcache.paged.PagedKVCache`
so shared prefixes stay live while cached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.kvcache.paged import PagedKVCache


class _Node:
    __slots__ = ("tokens", "pages", "children", "parent", "last_used")

    def __init__(self, tokens: Tuple[int, ...], pages: List[int], parent: Optional["_Node"]):
        self.tokens = tokens  # page-aligned token chunk labelling the edge in
        self.pages = pages  # pages backing this chunk (len = len(tokens)/page_size)
        self.children: Dict[int, "_Node"] = {}  # keyed by first token of child chunk
        self.parent = parent
        self.last_used = 0


class RadixTree:
    """Token-level prefix cache over a :class:`PagedKVCache`.

    All chunks are multiples of ``page_size`` tokens, so a cache hit always
    hands over whole pages — matching the constraint that only whole pages
    can be shared without data movement (paper §3.1.2).
    """

    def __init__(self, cache: PagedKVCache):
        self.cache = cache
        self.page_size = cache.page_size
        self._root = _Node((), [], None)
        self._clock = 0
        self._num_cached_pages = 0

    # -- queries -----------------------------------------------------------

    @property
    def num_cached_pages(self) -> int:
        return self._num_cached_pages

    def match_prefix(self, tokens: Sequence[int]) -> Tuple[int, List[int]]:
        """Longest cached prefix of ``tokens``.

        Returns ``(matched_len, pages)`` where ``matched_len`` is a multiple
        of ``page_size``.  Touches matched nodes for LRU.
        """
        tokens = tuple(int(t) for t in tokens)
        node = self._root
        matched: List[int] = []
        pos = 0
        self._clock += 1
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            chunk = child.tokens
            if tokens[pos : pos + len(chunk)] != chunk:
                # Partial chunk match: pages are whole-chunk, cannot split a
                # hit below chunk granularity without re-splitting the node;
                # count only whole matching pages of this chunk.
                m = 0
                while (
                    m + self.page_size <= len(chunk)
                    and tokens[pos + m : pos + m + self.page_size]
                    == chunk[m : m + self.page_size]
                ):
                    m += self.page_size
                if m:
                    self._split(child, m)
                    child = node.children[tokens[pos]]
                    matched.extend(child.pages)
                    pos += m
                    child.last_used = self._clock
                break
            matched.extend(child.pages)
            pos += len(chunk)
            child.last_used = self._clock
            node = child
        return pos, matched

    def insert(self, tokens: Sequence[int], pages: Sequence[int]) -> int:
        """Register ``tokens`` (page-aligned prefix only) backed by ``pages``.

        Only the first ``len(pages) * page_size`` tokens are cached; the
        caller passes the sequence's full pages and the tree stores whole
        pages only.  Returns the number of *new* pages cached (the rest were
        already present).  The tree takes its own reference on new pages.
        """
        tokens = tuple(int(t) for t in tokens)
        usable = min(len(tokens) // self.page_size, len(pages))
        tokens = tokens[: usable * self.page_size]
        pages = list(pages[:usable])
        node = self._root
        pos = 0
        page_pos = 0
        self._clock += 1
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                chunk = tokens[pos:]
                new_pages = pages[page_pos:]
                self.cache.retain_pages(new_pages)
                leaf = _Node(chunk, new_pages, node)
                leaf.last_used = self._clock
                node.children[tokens[pos]] = leaf
                self._num_cached_pages += len(new_pages)
                return len(new_pages)
            chunk = child.tokens
            m = 0
            while (
                m + self.page_size <= len(chunk)
                and m + self.page_size <= len(tokens) - pos
                and tokens[pos + m : pos + m + self.page_size] == chunk[m : m + self.page_size]
            ):
                m += self.page_size
            if m < len(chunk):
                if m == 0:
                    # Same first token but different first page: collision on
                    # the child key; nothing sharable at page granularity.
                    return 0
                self._split(child, m)
                child = node.children[tokens[pos]]
            child.last_used = self._clock
            pos += m
            page_pos += m // self.page_size
            node = child
        return 0

    def _split(self, node: _Node, token_offset: int) -> None:
        """Split ``node`` so its first ``token_offset`` tokens become a parent."""
        assert token_offset % self.page_size == 0
        npages = token_offset // self.page_size
        parent = node.parent
        assert parent is not None
        upper = _Node(node.tokens[:token_offset], node.pages[:npages], parent)
        upper.last_used = node.last_used
        node.tokens = node.tokens[token_offset:]
        node.pages = node.pages[npages:]
        node.parent = upper
        upper.children[node.tokens[0]] = node
        parent.children[upper.tokens[0]] = upper

    # -- eviction ------------------------------------------------------------

    def evict(self, num_pages: int) -> int:
        """Evict up to ``num_pages`` pages from LRU leaves.

        Returns the number of pages actually released.  Pages still
        referenced by live sequences remain allocated in the pool (the tree
        merely drops its own reference).
        """
        released = 0
        while released < num_pages:
            leaf = self._lru_leaf()
            if leaf is None:
                break
            self.cache.release_pages(leaf.pages)
            released += len(leaf.pages)
            self._num_cached_pages -= len(leaf.pages)
            assert leaf.parent is not None
            del leaf.parent.children[leaf.tokens[0]]
        return released

    def _lru_leaf(self) -> Optional[_Node]:
        best: Optional[_Node] = None
        stack = list(self._root.children.values())
        while stack:
            n = stack.pop()
            if n.children:
                stack.extend(n.children.values())
            else:
                if best is None or n.last_used < best.last_used:
                    best = n
        return best

    def evictable_pages(self) -> int:
        """Cached pages that eviction could return to the free pool.

        A page only becomes free when the tree holds the last reference —
        pages pinned by in-flight sequences stay allocated even after the
        tree drops them, so they don't count toward reclaimable headroom.
        """
        free = 0
        stack = list(self._root.children.values())
        while stack:
            n = stack.pop()
            stack.extend(n.children.values())
            free += sum(1 for p in n.pages if self.cache.page_refcount(p) == 1)
        return free

    def evict_until(self, target_free: int) -> int:
        """Evict LRU leaves until the pool has ``target_free`` free pages.

        Returns the number of pages whose last reference was released (i.e.
        actually freed).  Stops early once the tree is empty; pages pinned
        by live sequences are dropped from the tree but stay allocated.
        """
        freed = 0
        while self.cache.num_free_pages < target_free and self._num_cached_pages:
            leaf = self._lru_leaf()
            if leaf is None:
                break
            before = self.cache.num_free_pages
            self.cache.release_pages(leaf.pages)
            freed += self.cache.num_free_pages - before
            self._num_cached_pages -= len(leaf.pages)
            assert leaf.parent is not None
            del leaf.parent.children[leaf.tokens[0]]
        return freed

    # -- snapshot / restore ---------------------------------------------------

    def export_state(self) -> dict:
        """JSON-serializable snapshot of the tree structure.

        Page references are *not* re-taken on restore: the paged cache's own
        snapshot already carries refcounts that include the tree's holds, so
        :meth:`from_state` only rebuilds the trie over the restored pool.
        """

        def node_state(n: _Node) -> dict:
            return {
                "tokens": list(n.tokens),
                "pages": list(n.pages),
                "last_used": n.last_used,
                "children": [node_state(c) for c in n.children.values()],
            }

        return {"clock": self._clock, "root": node_state(self._root)}

    @classmethod
    def from_state(cls, cache: PagedKVCache, state: dict) -> "RadixTree":
        """Rebuild a tree over ``cache`` from :meth:`export_state` output.

        ``cache`` must be the restored pool whose refcounts already include
        this tree's references — no pages are retained here.
        """
        tree = cls.__new__(cls)
        tree.cache = cache
        tree.page_size = cache.page_size
        tree._clock = int(state["clock"])
        tree._num_cached_pages = 0

        def build(ns: dict, parent: Optional[_Node]) -> _Node:
            node = _Node(tuple(ns["tokens"]), list(ns["pages"]), parent)
            node.last_used = int(ns["last_used"])
            if parent is not None:
                tree._num_cached_pages += len(node.pages)
            for cs in ns["children"]:
                child = build(cs, node)
                node.children[child.tokens[0]] = child
            return node

        tree._root = build(state["root"], None)
        return tree

    def __repr__(self) -> str:
        return f"RadixTree(cached_pages={self._num_cached_pages})"
