"""Paged KV cache: a vLLM-style page table over a fixed slot pool.

The cache owns two pools ``(pool_slots, num_kv_heads, head_dim)`` for keys
and values, carved into pages of ``page_size`` slots.  Sequences hold
ordered page lists; pages are refcounted so that forked sequences (parallel
generation) and radix-cached prefixes share physical pages.  Appending to a
shared partial page triggers copy-on-write.

The exported structure (:meth:`layout`) is the ``(kv_indptr, kv_indices,
last_page_len)`` triple of the paper, wrapped as
:class:`repro.sparse.BlockSparseKV`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.sparse.layout import BlockSparseKV
from repro.utils.validation import check_positive


class OutOfPagesError(RuntimeError):
    """Raised when an allocation cannot be satisfied from the free pool."""


class TransientAllocFault(OutOfPagesError):
    """An injected, retryable page-allocation failure (fault plan ``alloc``
    site): the pool has pages, but this particular allocation hiccuped.
    Subclasses :class:`OutOfPagesError` so non-resilient callers see the
    usual failure mode."""


class KVCorruptionError(RuntimeError):
    """Integrity check failed: a live page's checksum no longer matches.

    Carries the offending page ids in :attr:`pages` so the engine can map
    corruption back to the sequences that reference those pages.
    """

    def __init__(self, message: str, pages: Sequence[int] = ()):
        super().__init__(message)
        self.pages = list(pages)


class _SeqState:
    __slots__ = ("pages", "length")

    def __init__(self) -> None:
        self.pages: List[int] = []
        self.length: int = 0


class PagedKVCache:
    """Fixed-pool paged KV cache with refcounted pages.

    Parameters
    ----------
    num_pages:
        Total pages in the pool.
    page_size:
        Slots (tokens) per page — the BSR column block size ``B_c``.
        ``page_size=1`` gives the vector-sparse layout.
    num_kv_heads, head_dim:
        Shape of each slot's K and V entries.
    checksums:
        Verify per-page integrity on :meth:`gather`/:meth:`layout`
        (raising :class:`KVCorruptionError` on mismatch).  The underlying
        write-versioned checksum bookkeeping is always maintained — two
        O(1) array writes per page write — so detection can also be driven
        externally via :meth:`find_corrupted`; this flag only gates the
        export-time verification.
    """

    #: Optional fault injector (duck-typed :class:`repro.faults.FaultPlan`):
    #: consulted on sequence-growth page allocations (``alloc`` site).
    fault_injector = None

    def __init__(
        self,
        num_pages: int,
        page_size: int,
        num_kv_heads: int,
        head_dim: int,
        materialize: bool = True,
        checksums: bool = False,
    ):
        check_positive(num_pages, "num_pages")
        check_positive(page_size, "page_size")
        check_positive(num_kv_heads, "num_kv_heads")
        check_positive(head_dim, "head_dim")
        self.num_pages = num_pages
        self.page_size = page_size
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.materialized = materialize
        total_slots = num_pages * page_size
        if materialize:
            self.k_pool = np.zeros((total_slots, num_kv_heads, head_dim), dtype=np.float32)
            self.v_pool = np.zeros((total_slots, num_kv_heads, head_dim), dtype=np.float32)
        else:
            # Structure-only mode for cost simulations: page-table accounting
            # without backing storage (append/gather are unavailable).
            self.k_pool = None
            self.v_pool = None
        self._free: List[int] = list(range(num_pages - 1, -1, -1))
        self._refcount = np.zeros(num_pages, dtype=np.int64)
        self._seqs: Dict[int, _SeqState] = {}
        self._next_seq_id = 0
        self.checksums = checksums
        # Write-versioned integrity state: every page write bumps the
        # version and re-stamps the checksum; corruption bumps the version
        # *without* re-stamping, so version != stamp ⇔ corrupted.
        self._page_version = np.zeros(num_pages, dtype=np.int64)
        self._page_stamp = np.zeros(num_pages, dtype=np.int64)

    # -- pool accounting -----------------------------------------------------

    @property
    def num_free_pages(self) -> int:
        return len(self._free)

    @property
    def num_used_pages(self) -> int:
        return self.num_pages - len(self._free)

    def page_refcount(self, page: int) -> int:
        return int(self._refcount[page])

    def _stats_brief(self) -> str:
        per_seq = sorted(
            ((len(st.pages), sid) for sid, st in self._seqs.items()), reverse=True
        )
        largest = (
            f", largest seq #{per_seq[0][1]} holds {per_seq[0][0]} pages"
            if per_seq
            else ""
        )
        return (
            f"{self.num_free_pages} free / {self.num_pages} total pages "
            f"({self.page_size} slots each), {len(self._seqs)} live "
            f"sequences{largest}"
        )

    def pool_stats(self) -> Dict[str, object]:
        """Pool state snapshot for diagnostics and error messages."""
        per_seq = {sid: len(st.pages) for sid, st in self._seqs.items()}
        return {
            "num_pages": self.num_pages,
            "page_size": self.page_size,
            "free_pages": self.num_free_pages,
            "used_pages": self.num_used_pages,
            "num_seqs": len(per_seq),
            "seq_pages": per_seq,
            "max_seq_pages": max(per_seq.values(), default=0),
            "shared_pages": int((self._refcount > 1).sum()),
            "corrupted_pages": len(self.find_corrupted()),
        }

    def _alloc_page(self, inject: bool = False) -> int:
        if not self._free:
            raise OutOfPagesError(
                f"KV-cache pool exhausted: {self._stats_brief()}"
            )
        if inject and self.fault_injector is not None and self.fault_injector.fire("alloc"):
            raise TransientAllocFault(
                f"injected transient page-allocation failure "
                f"({self._stats_brief()})"
            )
        page = self._free.pop()
        self._refcount[page] = 1
        if self._page_version[page] != self._page_stamp[page]:
            # A freed corrupted page must not poison its next owner.
            if self.materialized:
                slot0 = page * self.page_size
                self.k_pool[slot0 : slot0 + self.page_size] = 0.0
                self.v_pool[slot0 : slot0 + self.page_size] = 0.0
            self._page_version[page] = self._page_stamp[page] = 0
        return page

    def _touch_page(self, page: int) -> None:
        """Record a write: bump the version and re-stamp the checksum."""
        v = self._page_version[page] + 1
        self._page_version[page] = v
        self._page_stamp[page] = v

    def _release_page(self, page: int) -> None:
        self._refcount[page] -= 1
        if self._refcount[page] == 0:
            self._free.append(page)
        elif self._refcount[page] < 0:
            raise AssertionError(f"page {page} refcount underflow")

    def retain_pages(self, pages: Sequence[int]) -> None:
        """Add an external reference to ``pages`` (used by the radix cache)."""
        for p in pages:
            if self._refcount[p] <= 0:
                raise ValueError(f"page {p} is not live")
            self._refcount[p] += 1

    def release_pages(self, pages: Sequence[int]) -> None:
        """Drop an external reference added with :meth:`retain_pages`."""
        for p in pages:
            self._release_page(p)

    # -- sequence lifecycle ---------------------------------------------------

    def new_seq(self, shared_pages: Sequence[int] = (), shared_len: int = 0) -> int:
        """Create a sequence, optionally starting from cached prefix pages.

        ``shared_len`` must fill the shared pages completely (prefix caching
        hands over only whole pages).
        """
        if shared_len != len(shared_pages) * self.page_size:
            raise ValueError(
                f"shared_len ({shared_len}) must equal "
                f"len(shared_pages) * page_size ({len(shared_pages) * self.page_size})"
            )
        seq_id = self._next_seq_id
        self._next_seq_id += 1
        st = _SeqState()
        st.pages = list(shared_pages)
        st.length = shared_len
        for p in st.pages:
            if self._refcount[p] <= 0:
                raise ValueError(f"shared page {p} is not live")
            self._refcount[p] += 1
        self._seqs[seq_id] = st
        return seq_id

    def fork_seq(self, seq_id: int) -> int:
        """Fork a sequence, sharing all full pages; the partial last page is
        copied (copy-on-write happens eagerly here for simplicity)."""
        st = self._state(seq_id)
        new_id = self._next_seq_id
        self._next_seq_id += 1
        new_st = _SeqState()
        new_st.length = st.length
        full = st.length // self.page_size
        new_st.pages = st.pages[:full]
        for p in new_st.pages:
            self._refcount[p] += 1
        rem = st.length - full * self.page_size
        if rem:
            src = st.pages[full]
            dst = self._alloc_page()
            if self.materialized:
                s0, d0 = src * self.page_size, dst * self.page_size
                self.k_pool[d0 : d0 + rem] = self.k_pool[s0 : s0 + rem]
                self.v_pool[d0 : d0 + rem] = self.v_pool[s0 : s0 + rem]
            self._touch_page(dst)
            new_st.pages.append(dst)
        self._seqs[new_id] = new_st
        return new_id

    def free_seq(self, seq_id: int) -> None:
        st = self._state(seq_id)
        for p in st.pages:
            self._release_page(p)
        del self._seqs[seq_id]

    def _state(self, seq_id: int) -> _SeqState:
        try:
            return self._seqs[seq_id]
        except KeyError:
            raise KeyError(f"unknown sequence id {seq_id}") from None

    # -- data path -------------------------------------------------------------

    def append(self, seq_id: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new K/V entries ``(n, num_kv_heads, head_dim)`` to a sequence.

        Allocates pages on demand; copy-on-write if the partial last page is
        shared with another sequence.
        """
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if k.shape != v.shape:
            raise ValueError(f"k shape {k.shape} != v shape {v.shape}")
        if k.ndim != 3 or k.shape[1:] != (self.num_kv_heads, self.head_dim):
            raise ValueError(
                f"k/v must have shape (n, {self.num_kv_heads}, {self.head_dim}), got {k.shape}"
            )
        if not self.materialized:
            raise RuntimeError("append() requires a materialized cache")
        st = self._state(seq_id)
        n = k.shape[0]
        written = 0
        while written < n:
            offset = st.length % self.page_size
            if offset == 0:
                st.pages.append(self._alloc_page(inject=True))
            else:
                page = st.pages[-1]
                if self._refcount[page] > 1:
                    # Copy-on-write: unshare the partial page before writing.
                    new_page = self._alloc_page(inject=True)
                    s0, d0 = page * self.page_size, new_page * self.page_size
                    self.k_pool[d0 : d0 + offset] = self.k_pool[s0 : s0 + offset]
                    self.v_pool[d0 : d0 + offset] = self.v_pool[s0 : s0 + offset]
                    self._release_page(page)
                    st.pages[-1] = new_page
            page = st.pages[-1]
            take = min(n - written, self.page_size - st.length % self.page_size)
            slot0 = page * self.page_size + st.length % self.page_size
            self.k_pool[slot0 : slot0 + take] = k[written : written + take]
            self.v_pool[slot0 : slot0 + take] = v[written : written + take]
            self._touch_page(page)
            st.length += take
            written += take

    def extend(self, seq_id: int, n_tokens: int) -> None:
        """Grow a sequence by ``n_tokens`` without writing K/V data.

        Allocates pages (with the same copy-on-write rules as
        :meth:`append`) and advances the length; used by cost-only serving
        simulations where only the page-table *structure* matters.
        """
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        st = self._state(seq_id)
        remaining = n_tokens
        while remaining > 0:
            offset = st.length % self.page_size
            if offset == 0:
                st.pages.append(self._alloc_page(inject=True))
            else:
                page = st.pages[-1]
                if self._refcount[page] > 1:
                    new_page = self._alloc_page(inject=True)
                    if self.materialized:
                        s0, d0 = page * self.page_size, new_page * self.page_size
                        self.k_pool[d0 : d0 + offset] = self.k_pool[s0 : s0 + offset]
                        self.v_pool[d0 : d0 + offset] = self.v_pool[s0 : s0 + offset]
                    self._release_page(page)
                    st.pages[-1] = new_page
            take = min(remaining, self.page_size - st.length % self.page_size)
            self._touch_page(st.pages[-1])
            st.length += take
            remaining -= take

    def truncate(self, seq_id: int, new_len: int) -> None:
        """Roll a sequence back to ``new_len`` tokens, freeing tail pages.

        Speculative decoding appends draft K/V optimistically and truncates
        on rejection; pages that become entirely unused are released.
        """
        st = self._state(seq_id)
        if not 0 <= new_len <= st.length:
            raise ValueError(
                f"new_len must be in [0, {st.length}], got {new_len}"
            )
        keep_pages = -(-new_len // self.page_size) if new_len else 0
        for page in st.pages[keep_pages:]:
            self._release_page(page)
        st.pages = st.pages[:keep_pages]
        st.length = new_len

    # -- integrity -------------------------------------------------------------

    def corrupt_page(self, page: int) -> None:
        """Silently corrupt a live page (fault-plan ``corrupt`` site).

        Bumps the page's write version without re-stamping its checksum;
        in materialized mode the page's K/V slots are also overwritten
        with NaN so numeric guards can observe the damage.
        """
        if self._refcount[page] <= 0:
            raise ValueError(f"page {page} is not live")
        self._page_version[page] += 1
        if self.materialized:
            slot0 = page * self.page_size
            self.k_pool[slot0 : slot0 + self.page_size] = np.nan
            self.v_pool[slot0 : slot0 + self.page_size] = np.nan

    def page_is_corrupt(self, page: int) -> bool:
        return bool(self._page_version[page] != self._page_stamp[page])

    def seq_is_corrupt(self, seq_id: int) -> bool:
        """True if any page of ``seq_id`` fails its checksum."""
        st = self._state(seq_id)
        if not st.pages:
            return False
        idx = np.asarray(st.pages, dtype=np.int64)
        return bool((self._page_version[idx] != self._page_stamp[idx]).any())

    def find_corrupted(self) -> List[int]:
        """All live pages whose checksum no longer matches."""
        bad = (self._refcount > 0) & (self._page_version != self._page_stamp)
        return np.nonzero(bad)[0].tolist()

    def used_pages(self) -> List[int]:
        """All live (refcount > 0) page ids."""
        return np.nonzero(self._refcount > 0)[0].tolist()

    @property
    def page_kv_bytes(self) -> int:
        """Modeled wire size of one page's K+V payload at fp16 — the
        pricing unit for KV migration (and, later, disaggregated
        prefill→decode handoff): ``page_size`` slots × heads × head_dim
        × 2 tensors (K and V) × 2 bytes."""
        return 2 * 2 * self.page_size * self.num_kv_heads * self.head_dim

    def export_pages(self, pages: Sequence[int]) -> dict:
        """Partial page-level export: one row per requested page id
        (refcount + write-versioned checksum pair).  The migration wire
        format ships live pages in chunks of these rows; the receiver
        splices them back into a stripped :meth:`export_state` control
        record before :meth:`from_state`."""
        idx = [int(p) for p in pages]
        for p in idx:
            if not 0 <= p < self.num_pages:
                raise ValueError(f"page {p} outside [0, {self.num_pages})")
        return {
            "pages": idx,
            "refcount": [int(self._refcount[p]) for p in idx],
            "version": [int(self._page_version[p]) for p in idx],
            "stamp": [int(self._page_stamp[p]) for p in idx],
        }

    def _verify_pages(self, pages: Sequence[int], context: str) -> None:
        if not pages:
            return
        idx = np.asarray(pages, dtype=np.int64)
        bad = idx[self._page_version[idx] != self._page_stamp[idx]]
        if bad.size:
            raise KVCorruptionError(
                f"KV page checksum mismatch on {context}: "
                f"pages {bad.tolist()} were modified outside append/extend",
                pages=bad.tolist(),
            )

    def seq_len(self, seq_id: int) -> int:
        return self._state(seq_id).length

    def seq_pages(self, seq_id: int) -> List[int]:
        return list(self._state(seq_id).pages)

    def gather(self, seq_id: int) -> "tuple[np.ndarray, np.ndarray]":
        """Materialize a sequence's full K and V as dense ``(len, H, D)``."""
        if not self.materialized:
            raise RuntimeError("gather() requires a materialized cache")
        st = self._state(seq_id)
        if self.checksums:
            self._verify_pages(st.pages, f"gather(seq {seq_id})")
        slots = self._slot_indices(st)
        return self.k_pool[slots], self.v_pool[slots]

    def _slot_indices(self, st: _SeqState) -> np.ndarray:
        if not st.pages:
            return np.empty(0, dtype=np.int64)
        pages = np.asarray(st.pages, dtype=np.int64)
        slots = (pages[:, None] * self.page_size + np.arange(self.page_size)[None, :]).reshape(-1)
        return slots[: st.length]

    # -- state capture (engine checkpointing) ------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of the full page-table state.

        Captures geometry, the free list, per-page refcounts and
        write-versioned checksums (version/stamp pairs — so corruption
        present at snapshot time survives the round-trip and is re-detected
        after restore), every sequence's page list and length, and the K/V
        pools when materialized.  :meth:`from_state` rebuilds an identical
        cache.
        """
        state = {
            "num_pages": self.num_pages,
            "page_size": self.page_size,
            "num_kv_heads": self.num_kv_heads,
            "head_dim": self.head_dim,
            "materialized": self.materialized,
            "checksums": self.checksums,
            "free": list(self._free),
            "refcount": self._refcount.tolist(),
            "page_version": self._page_version.tolist(),
            "page_stamp": self._page_stamp.tolist(),
            "next_seq_id": self._next_seq_id,
            "seqs": {
                str(sid): {"pages": list(st.pages), "length": st.length}
                for sid, st in self._seqs.items()
            },
        }
        if self.materialized:
            state["k_pool"] = self.k_pool.tolist()
            state["v_pool"] = self.v_pool.tolist()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "PagedKVCache":
        """Rebuild a cache from :meth:`export_state` output."""
        cache = cls(
            num_pages=int(state["num_pages"]),
            page_size=int(state["page_size"]),
            num_kv_heads=int(state["num_kv_heads"]),
            head_dim=int(state["head_dim"]),
            materialize=bool(state["materialized"]),
            checksums=bool(state["checksums"]),
        )
        cache._free = [int(p) for p in state["free"]]
        cache._refcount = np.asarray(state["refcount"], dtype=np.int64)
        cache._page_version = np.asarray(state["page_version"], dtype=np.int64)
        cache._page_stamp = np.asarray(state["page_stamp"], dtype=np.int64)
        cache._next_seq_id = int(state["next_seq_id"])
        for sid, seq in state["seqs"].items():
            st = _SeqState()
            st.pages = [int(p) for p in seq["pages"]]
            st.length = int(seq["length"])
            cache._seqs[int(sid)] = st
        if cache.materialized:
            cache.k_pool = np.asarray(state["k_pool"], dtype=np.float32)
            cache.v_pool = np.asarray(state["v_pool"], dtype=np.float32)
        return cache

    # -- export to the attention engine -----------------------------------------

    def layout(self, seq_ids: Sequence[int]) -> BlockSparseKV:
        """Export the page-table structure for ``seq_ids`` (in order)."""
        indptr = np.zeros(len(seq_ids) + 1, dtype=np.int64)
        indices: List[int] = []
        kv_lens = np.zeros(len(seq_ids), dtype=np.int64)
        for i, sid in enumerate(seq_ids):
            st = self._state(sid)
            indices.extend(st.pages)
            indptr[i + 1] = indptr[i] + len(st.pages)
            kv_lens[i] = st.length
        if self.checksums:
            self._verify_pages(indices, f"layout({list(seq_ids)})")
        return BlockSparseKV(
            self.page_size,
            self.num_pages,
            indptr,
            np.asarray(indices, dtype=np.int64),
            kv_lens,
        )

    def __repr__(self) -> str:
        return (
            f"PagedKVCache(pages={self.num_used_pages}/{self.num_pages}, "
            f"page_size={self.page_size}, seqs={len(self._seqs)})"
        )
