"""KV-cache storage managers.

Three managers mirror the structures the paper unifies under BSR (§3.1.1):

* :class:`PagedKVCache` — vLLM-style page table over a fixed pool of pages,
  with refcounted pages so sequences can share prefixes (fork /
  copy-on-write) without copying KV data.
* :class:`RadixTree` — SGLang-style token-level prefix cache mapping token
  sequences to cached pages, with LRU eviction of unreferenced leaves.
* :class:`StreamingKVCache` — StreamingLLM sinks + rolling window with
  cache-position semantics (the §4.3 case study).

All export their per-sequence structure as
:class:`repro.sparse.BlockSparseKV`, which is what the attention kernels
consume.
"""

from repro.kvcache.paged import (
    KVCorruptionError,
    OutOfPagesError,
    PagedKVCache,
    TransientAllocFault,
)
from repro.kvcache.radix import RadixTree
from repro.kvcache.streaming import StreamingKVCache

__all__ = [
    "KVCorruptionError",
    "OutOfPagesError",
    "PagedKVCache",
    "RadixTree",
    "StreamingKVCache",
    "TransientAllocFault",
]
