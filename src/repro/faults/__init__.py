"""Deterministic fault injection and resilience for the serving stack.

Three layers, mirroring how production engines harden themselves:

1. **Injection** (:mod:`~repro.faults.plan`): a seeded
   :class:`FaultPlan` with independent per-site RNG streams — transient
   kernel failures, straggler CTAs, KV-page corruption, transient
   page-allocation failures, numeric output corruption.
2. **Detection** (:mod:`~repro.faults.inject`): :class:`OutputGuard`
   ``isfinite`` sampling on wrapper outputs, write-versioned per-page
   checksums in :class:`repro.kvcache.PagedKVCache`, and the engine's
   simulated-clock step watchdog.
3. **Recovery** (:mod:`~repro.faults.recover`):
   :class:`ResilienceConfig` — bounded retry-with-recompute from the last
   verified page, request deadlines with youngest-first load shedding,
   and the :class:`DegradeController` primary↔dense-baseline state
   machine.

Quickstart::

    from repro.faults import FaultPlan, ResilienceConfig, chaos_plan

    engine = ServingEngine(model, backend, gpu, cfg,
                           fault_plan=chaos_plan(seed=7),
                           resilience=ResilienceConfig(deadline=30.0))
    metrics = engine.run(requests)
    print(metrics.summary()["faults_injected"], metrics.summary()["sheds"])

See ``docs/ARCHITECTURE.md`` ("Resilience") for the fault sites, detection
points and the recovery state machine.
"""

from repro.faults.inject import (
    EngineCrash,
    KernelFault,
    KVCorruptionError,
    NumericalFault,
    OutputGuard,
    TransientAllocFault,
)
from repro.faults.plan import FAULT_SITES, FaultPlan, chaos_plan
from repro.faults.recover import DegradeController, ResilienceConfig

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "chaos_plan",
    "DegradeController",
    "ResilienceConfig",
    "EngineCrash",
    "KernelFault",
    "KVCorruptionError",
    "NumericalFault",
    "OutputGuard",
    "TransientAllocFault",
]
