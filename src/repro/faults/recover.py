"""Recovery policy: retries, deadlines, degradation, watchdog budgets.

:class:`ResilienceConfig` is the engine-side policy companion to the
injection-side :class:`repro.faults.FaultPlan`: the plan decides *what
breaks*, this config decides *what the engine does about it*.  The two are
deliberately independent — a deadline-only run needs no fault plan, and an
injection run with recovery disabled is the negative control that proves
the detection layer is load-bearing.

:class:`DegradeController` is the graceful-degradation state machine::

        consecutive kernel faults >= degrade_after
      PRIMARY ────────────────────────────────────────▶ DEGRADED
   (FlashInfer)  ◀──────────────────────────────────  (dense baseline)
        anneal_after consecutive clean degraded steps
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ResilienceConfig:
    """Detection and recovery knobs for :class:`repro.serving.ServingEngine`."""

    #: Per-stream bound on recompute retries (checksum rollbacks and
    #: transient-alloc re-queues); exceeding it sheds the stream.
    max_retries: int = 3
    #: Per-step bound on kernel-launch retries before the step falls back
    #: to the degraded backend.
    max_kernel_retries: int = 3
    #: Default relative deadline (seconds after arrival) applied to
    #: requests that do not carry their own; ``None`` disables shedding
    #: on time.
    deadline: Optional[float] = None
    #: Shed the youngest queued work instead of raising
    #: :class:`~repro.kvcache.OutOfPagesError` when capacity-blocked.
    shed_on_overload: bool = True
    #: Verify KV page checksums at the top of every engine step and roll
    #: corrupted sequences back to their last verified page.
    checksums: bool = True
    #: Simulated-clock watchdog: flag steps longer than this budget
    #: (seconds); ``None`` disables the watchdog.
    step_budget: Optional[float] = None
    #: Consecutive kernel faults that trip degradation to the dense
    #: baseline backend.
    degrade_after: int = 3
    #: Consecutive clean degraded steps before annealing back to the
    #: primary backend.
    anneal_after: int = 8
    #: Simulated seconds charged per failed kernel launch (the retry is
    #: not free: the host observes the fault and re-dispatches).
    fault_latency: float = 200e-6
    #: Record the deterministic per-stream token ids on each
    #: :class:`~repro.serving.RequestTrace` (needed by token-exactness
    #: checks; one list append per token when enabled).
    record_tokens: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_kernel_retries < 0:
            raise ValueError("retry bounds must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.step_budget is not None and self.step_budget <= 0:
            raise ValueError("step_budget must be positive")
        if self.degrade_after < 1 or self.anneal_after < 1:
            raise ValueError("degrade_after and anneal_after must be >= 1")
        if self.fault_latency < 0:
            raise ValueError("fault_latency must be non-negative")


class DegradeController:
    """Tracks the PRIMARY ↔ DEGRADED backend state across engine steps."""

    def __init__(self, degrade_after: int, anneal_after: int):
        self.degrade_after = degrade_after
        self.anneal_after = anneal_after
        self.degraded = False
        self._fault_strikes = 0
        self._clean_streak = 0
        self.degrade_events = 0
        self.anneal_events = 0

    def on_kernel_fault(self) -> bool:
        """Record one kernel fault; returns True if this trips degradation."""
        self._fault_strikes += 1
        if not self.degraded and self._fault_strikes >= self.degrade_after:
            self.degraded = True
            self._clean_streak = 0
            self.degrade_events += 1
            return True
        return False

    def force_degrade(self) -> bool:
        """Degrade immediately (per-step retry budget exhausted)."""
        if not self.degraded:
            self.degraded = True
            self._clean_streak = 0
            self.degrade_events += 1
            return True
        return False

    def on_clean_step(self) -> bool:
        """Record a fault-free step; returns True if this anneals back."""
        if self.degraded:
            self._clean_streak += 1
            if self._clean_streak >= self.anneal_after:
                self.degraded = False
                self._fault_strikes = 0
                self._clean_streak = 0
                self.anneal_events += 1
                return True
        else:
            self._fault_strikes = 0
        return False

    def export_state(self) -> dict:
        """Serializable snapshot for engine checkpointing."""
        return {
            "degraded": self.degraded,
            "fault_strikes": self._fault_strikes,
            "clean_streak": self._clean_streak,
            "degrade_events": self.degrade_events,
            "anneal_events": self.anneal_events,
        }

    def import_state(self, state) -> None:
        self.degraded = bool(state["degraded"])
        self._fault_strikes = int(state["fault_strikes"])
        self._clean_streak = int(state["clean_streak"])
        self.degrade_events = int(state["degrade_events"])
        self.anneal_events = int(state["anneal_events"])


class KVScrubber:
    """KV-integrity interception points around each engine step.

    Two hooks, both no-ops without an attached fault plan / checksums:

    * :meth:`scrub` — top of step, *before* any extend/COW can copy a
      corrupted page: detect corrupted pages and roll their owners back.
    * :meth:`inject` — end of step: corrupt one live page from the fault
      plan's ``corrupt`` RNG stream for the next scrub to find.

    Duck-typed against the engine pipeline (``engine`` for counters and
    fault events, ``state`` for queues/cache, ``admission`` for shedding
    and retry budgets) so the faults layer does not import serving.
    """

    def __init__(self, engine, state, admission):
        self.engine = engine
        self.state = state
        self.admission = admission

    def scrub(self, t: float) -> None:
        """Detect corrupted pages and roll their owners back.

        A stream holding one is truncated to its last verified page
        boundary and re-prefills the rest (recompute) through the
        preemption machinery; cached prefixes are evicted; partial
        prefills restart.  Per-stream retries are bounded; exceeding the
        bound sheds the stream.
        """
        eng, st, adm = self.engine, self.state, self.admission
        cache, requests = st.cache, st.requests
        bad = cache.find_corrupted()
        if not bad:
            return
        bad_set = set(bad)
        resil = eng.resilience
        eng._count("checksum_failures", len(bad))
        eng._fault_event("corrupt", "detected", t, detail=f"pages {bad}")
        for group, (pages, _length) in list(st.prefix_registry.items()):
            if bad_set.intersection(pages):
                cache.release_pages(pages)
                del st.prefix_registry[group]
        for pp in [p for p in st.prefilling if bad_set.intersection(cache.seq_pages(p.seq_id))]:
            st.prefilling.remove(pp)
            cache.free_seq(pp.seq_id)
            req = requests[pp.req_idx]
            n_retry = adm.prefill_retries.get(pp.req_idx, 0) + 1
            adm.prefill_retries[pp.req_idx] = n_retry
            if n_retry > resil.max_retries:
                adm.shed_request(req, pp.req_idx, t, "retries")
            else:
                eng._count("retries")
                eng._fault_event("corrupt", "retry", t, req_id=pp.req_idx,
                                 detail="partial prefill restarted")
                st.prefill_queue.appendleft(pp.req_idx)
        for s in [s for s in st.streams if bad_set.intersection(cache.seq_pages(s.seq_id))]:
            st.streams.remove(s)
            self._rollback_stream(s, bad_set, t)
        for s in [
            s for s in st.preempted
            if s.seq_id >= 0 and bad_set.intersection(cache.seq_pages(s.seq_id))
        ]:
            st.preempted.remove(s)
            self._rollback_stream(s, bad_set, t)

    def _rollback_stream(self, s, bad_set, t: float) -> None:
        """Truncate a corrupted stream to its last verified page boundary
        and queue the recompute, or shed it if its retry budget is spent."""
        eng, st, adm = self.engine, self.state, self.admission
        cache = st.cache
        pages = cache.seq_pages(s.seq_id)
        first_bad = min(i for i, p in enumerate(pages) if p in bad_set)
        keep = first_bad * cache.page_size
        s.resume_len = max(cache.seq_len(s.seq_id), s.resume_len)
        if keep > 0:
            cache.truncate(s.seq_id, keep)
        else:
            cache.free_seq(s.seq_id)
            s.seq_id = -1
        s.retries += 1
        if s.retries > eng.resilience.max_retries:
            if s.seq_id >= 0:
                cache.free_seq(s.seq_id)
                s.seq_id = -1
            adm.shed_stream(s, t, "retries")
        else:
            eng._count("retries")
            eng._fault_event(
                "corrupt", "retry", t, req_id=s.req_idx,
                detail=f"rolled back to {keep}/{s.resume_len} tokens",
            )
            st.preempted.append(s)

    def inject(self, t: float) -> None:
        """End-of-step KV corruption: pick a live page from the plan's
        ``corrupt`` stream.  The scrub at the top of the next step (or the
        taint path, when detection is off) observes it."""
        plan = self.engine.fault_plan
        if plan is None:
            return
        cache = self.state.cache
        used = cache.used_pages()
        if not used:
            return
        if plan.fire("corrupt"):
            page = used[plan.choose("corrupt", len(used))]
            cache.corrupt_page(page)
            self.engine._fault_event("corrupt", "injected", t, detail=f"page {page}")
