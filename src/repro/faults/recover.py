"""Recovery policy: retries, deadlines, degradation, watchdog budgets.

:class:`ResilienceConfig` is the engine-side policy companion to the
injection-side :class:`repro.faults.FaultPlan`: the plan decides *what
breaks*, this config decides *what the engine does about it*.  The two are
deliberately independent — a deadline-only run needs no fault plan, and an
injection run with recovery disabled is the negative control that proves
the detection layer is load-bearing.

:class:`DegradeController` is the graceful-degradation state machine::

        consecutive kernel faults >= degrade_after
      PRIMARY ────────────────────────────────────────▶ DEGRADED
   (FlashInfer)  ◀──────────────────────────────────  (dense baseline)
        anneal_after consecutive clean degraded steps
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ResilienceConfig:
    """Detection and recovery knobs for :class:`repro.serving.ServingEngine`."""

    #: Per-stream bound on recompute retries (checksum rollbacks and
    #: transient-alloc re-queues); exceeding it sheds the stream.
    max_retries: int = 3
    #: Per-step bound on kernel-launch retries before the step falls back
    #: to the degraded backend.
    max_kernel_retries: int = 3
    #: Default relative deadline (seconds after arrival) applied to
    #: requests that do not carry their own; ``None`` disables shedding
    #: on time.
    deadline: Optional[float] = None
    #: Shed the youngest queued work instead of raising
    #: :class:`~repro.kvcache.OutOfPagesError` when capacity-blocked.
    shed_on_overload: bool = True
    #: Verify KV page checksums at the top of every engine step and roll
    #: corrupted sequences back to their last verified page.
    checksums: bool = True
    #: Simulated-clock watchdog: flag steps longer than this budget
    #: (seconds); ``None`` disables the watchdog.
    step_budget: Optional[float] = None
    #: Consecutive kernel faults that trip degradation to the dense
    #: baseline backend.
    degrade_after: int = 3
    #: Consecutive clean degraded steps before annealing back to the
    #: primary backend.
    anneal_after: int = 8
    #: Simulated seconds charged per failed kernel launch (the retry is
    #: not free: the host observes the fault and re-dispatches).
    fault_latency: float = 200e-6
    #: Record the deterministic per-stream token ids on each
    #: :class:`~repro.serving.RequestTrace` (needed by token-exactness
    #: checks; one list append per token when enabled).
    record_tokens: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_kernel_retries < 0:
            raise ValueError("retry bounds must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.step_budget is not None and self.step_budget <= 0:
            raise ValueError("step_budget must be positive")
        if self.degrade_after < 1 or self.anneal_after < 1:
            raise ValueError("degrade_after and anneal_after must be >= 1")
        if self.fault_latency < 0:
            raise ValueError("fault_latency must be non-negative")


class DegradeController:
    """Tracks the PRIMARY ↔ DEGRADED backend state across engine steps."""

    def __init__(self, degrade_after: int, anneal_after: int):
        self.degrade_after = degrade_after
        self.anneal_after = anneal_after
        self.degraded = False
        self._fault_strikes = 0
        self._clean_streak = 0
        self.degrade_events = 0
        self.anneal_events = 0

    def on_kernel_fault(self) -> bool:
        """Record one kernel fault; returns True if this trips degradation."""
        self._fault_strikes += 1
        if not self.degraded and self._fault_strikes >= self.degrade_after:
            self.degraded = True
            self._clean_streak = 0
            self.degrade_events += 1
            return True
        return False

    def force_degrade(self) -> bool:
        """Degrade immediately (per-step retry budget exhausted)."""
        if not self.degraded:
            self.degraded = True
            self._clean_streak = 0
            self.degrade_events += 1
            return True
        return False

    def on_clean_step(self) -> bool:
        """Record a fault-free step; returns True if this anneals back."""
        if self.degraded:
            self._clean_streak += 1
            if self._clean_streak >= self.anneal_after:
                self.degraded = False
                self._fault_strikes = 0
                self._clean_streak = 0
                self.anneal_events += 1
                return True
        else:
            self._fault_strikes = 0
        return False
