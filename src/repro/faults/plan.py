"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is the single source of randomness for chaos runs.
Each injection *site* (kernel launches, KV pages, CTA stragglers, page
allocations, numeric outputs) owns an independent RNG stream derived from
``SeedSequence([seed, site_index])``, so drawing at one site never perturbs
another site's sequence — two runs with the same seed inject the same
faults at the same call indices regardless of which detection/recovery
features are switched on.

Sites fire either probabilistically (``rate`` per consultation) or at
scripted call indices (``schedules``), which tests use to force a fault at
an exact launch.  The plan counts every consultation and every firing so
that acceptance checks can match injected faults 1:1 against the recovery
or shed events the engine records.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import numpy as np

#: Injection sites in a fixed order (the order keys the per-site RNGs).
#: New sites are only ever APPENDED (``crash``, then ``replica``/``link``,
#: then ``timeout``), so pre-existing seeds keep their site streams
#: bit-for-bit.
FAULT_SITES: Tuple[str, ...] = (
    "kernel",     # transient kernel failure → KernelFault from run_*
    "straggler",  # one CTA's serial+memory streams multiplied
    "corrupt",    # NaN/Inf (or version-bump) corruption of a live KV page
    "alloc",      # transient page-allocation failure in PagedKVCache
    "numeric",    # NaN written into a kernel's output tensor
    "crash",      # whole-engine death (EngineCrash) at a step boundary or mid-step
    "replica",    # cluster-level replica death (failover path); one draw per replica per run
    "link",       # aborted interconnect transfer during KV migration (retried with backoff)
    "timeout",    # dispatch timeout at the cluster router (breaker strike + re-dispatch)
)


class _Site:
    __slots__ = ("name", "rate", "schedule", "calls", "fired")

    def __init__(self, name: str, rate: float, schedule: Optional[FrozenSet[int]]):
        self.name = name
        self.rate = rate
        self.schedule = schedule
        self.calls = 0
        self.fired = 0


class FaultPlan:
    """Seeded per-site fault injection schedule.

    Parameters
    ----------
    seed:
        Master seed; all site streams derive from it.
    kernel_fault_rate, straggler_rate, corruption_rate, alloc_fault_rate,
    numeric_fault_rate, crash_rate, replica_fail_rate, link_fault_rate,
    timeout_rate:
        Per-consultation firing probability for each site, in ``[0, 1)``.
        (Exactly 1.0 is rejected: an always-failing site would livelock
        bounded-retry recovery.)
    straggler_factor:
        Multiplier applied to the straggling CTA's serial and memory
        streams (≥ 1).
    schedules:
        ``{site: iterable of call indices}`` forcing those consultations to
        fire regardless of rate — deterministic hooks for tests.
    """

    def __init__(
        self,
        seed: int = 0,
        kernel_fault_rate: float = 0.0,
        straggler_rate: float = 0.0,
        corruption_rate: float = 0.0,
        alloc_fault_rate: float = 0.0,
        numeric_fault_rate: float = 0.0,
        crash_rate: float = 0.0,
        replica_fail_rate: float = 0.0,
        link_fault_rate: float = 0.0,
        timeout_rate: float = 0.0,
        straggler_factor: float = 8.0,
        schedules: Optional[Mapping[str, Iterable[int]]] = None,
    ):
        rates = {
            "kernel": kernel_fault_rate,
            "straggler": straggler_rate,
            "corrupt": corruption_rate,
            "alloc": alloc_fault_rate,
            "numeric": numeric_fault_rate,
            "crash": crash_rate,
            "replica": replica_fail_rate,
            "link": link_fault_rate,
            "timeout": timeout_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"{name} rate must be in [0, 1), got {rate} "
                    f"(a certain fault would livelock bounded retries)"
                )
        if straggler_factor < 1.0:
            raise ValueError(f"straggler_factor must be >= 1, got {straggler_factor}")
        sched: Dict[str, FrozenSet[int]] = {}
        for name, idxs in (schedules or {}).items():
            if name not in FAULT_SITES:
                raise ValueError(f"unknown fault site {name!r}; expected one of {FAULT_SITES}")
            sched[name] = frozenset(int(i) for i in idxs)
        self.seed = int(seed)
        self.straggler_factor = float(straggler_factor)
        self._rates = rates
        self._schedules = sched
        self._sites: Dict[str, _Site] = {}
        self._rngs: Dict[str, np.random.Generator] = {}
        self.reset()

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Rewind every site stream to call 0 (the engine resets per run,
        so reusing one plan across runs replays the identical schedule)."""
        self._sites = {
            name: _Site(name, self._rates[name], self._schedules.get(name))
            for name in FAULT_SITES
        }
        self._rngs = {
            name: np.random.default_rng(np.random.SeedSequence([self.seed, i]))
            for i, name in enumerate(FAULT_SITES)
        }

    def disarm(self, site: str) -> None:
        """Permanently silence one site (rate 0, schedule dropped).

        Cold-start recovery uses this to restart a crashed engine with the
        chaos monkey's ``crash`` site switched off while every other site
        keeps replaying its schedule.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}; expected one of {FAULT_SITES}")
        self._rates[site] = 0.0
        self._schedules.pop(site, None)
        s = self._sites[site]
        s.rate = 0.0
        s.schedule = None

    # -- state capture (engine checkpointing) ----------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot: constructor config plus per-site RNG state.

        ``import_state`` on a plan with the same config (or ``from_state``
        on a fresh one) rewinds every site stream to the captured call
        index, so replaying an engine run from a checkpoint re-draws the
        identical fault schedule.
        """
        return {
            "config": {
                "seed": self.seed,
                "rates": dict(self._rates),
                "straggler_factor": self.straggler_factor,
                "schedules": {k: sorted(v) for k, v in self._schedules.items()},
            },
            "sites": {
                name: {
                    "calls": s.calls,
                    "fired": s.fired,
                    "rng": self._rngs[name].bit_generator.state,
                }
                for name, s in self._sites.items()
            },
        }

    def import_state(self, state: Mapping, skip: Iterable[str] = ()) -> None:
        """Restore per-site counters and RNG streams from ``export_state``.

        ``skip`` names sites whose *live* state is kept (the ``crash`` site
        during in-process recovery: rewinding it would re-fire the very
        crash being recovered from, livelocking the kill/restore loop).
        """
        skip = frozenset(skip)
        for name, site_state in state["sites"].items():
            if name in skip or name not in self._sites:
                continue
            s = self._sites[name]
            s.calls = int(site_state["calls"])
            s.fired = int(site_state["fired"])
            self._rngs[name].bit_generator.state = site_state["rng"]

    @classmethod
    def from_state(cls, state: Mapping) -> "FaultPlan":
        """Rebuild a plan (config + streams) from ``export_state`` output."""
        cfg = state["config"]
        rates = cfg["rates"]
        plan = cls(
            seed=int(cfg["seed"]),
            kernel_fault_rate=rates.get("kernel", 0.0),
            straggler_rate=rates.get("straggler", 0.0),
            corruption_rate=rates.get("corrupt", 0.0),
            alloc_fault_rate=rates.get("alloc", 0.0),
            numeric_fault_rate=rates.get("numeric", 0.0),
            crash_rate=rates.get("crash", 0.0),
            replica_fail_rate=rates.get("replica", 0.0),
            link_fault_rate=rates.get("link", 0.0),
            timeout_rate=rates.get("timeout", 0.0),
            straggler_factor=cfg["straggler_factor"],
            schedules=cfg.get("schedules") or None,
        )
        plan.import_state(state)
        return plan

    # -- draws ----------------------------------------------------------------

    def fire(self, site: str) -> bool:
        """Consult a site once: does this call inject a fault?

        Every consultation advances the site's RNG by exactly one draw, so
        the firing pattern is a pure function of (seed, call index).
        """
        s = self._sites[site]
        idx = s.calls
        s.calls += 1
        u = self._rngs[site].random()  # always draw: keeps indices aligned
        hit = u < s.rate or (s.schedule is not None and idx in s.schedule)
        if hit:
            s.fired += 1
        return hit

    def choose(self, site: str, n: int) -> int:
        """Uniform index in ``[0, n)`` from the site's stream (victim pick)."""
        if n <= 0:
            raise ValueError("choose() requires n > 0")
        return int(self._rngs[site].integers(n))

    # -- introspection ---------------------------------------------------------

    def armed(self, site: str) -> bool:
        """True if ``site`` can ever fire (rate or schedule set)."""
        s = self._sites[site]
        return s.rate > 0 or bool(s.schedule)

    @property
    def enabled(self) -> bool:
        """True if any site can ever fire."""
        return any(s.rate > 0 or s.schedule for s in self._sites.values())

    @property
    def injected(self) -> Dict[str, int]:
        """Faults fired so far, per site."""
        return {name: s.fired for name, s in self._sites.items()}

    @property
    def total_injected(self) -> int:
        return sum(s.fired for s in self._sites.values())

    def consultations(self, site: str) -> int:
        return self._sites[site].calls

    def __repr__(self) -> str:
        live = ", ".join(
            f"{n}={s.rate:g}" + (f"+{len(s.schedule)}sched" if s.schedule else "")
            for n, s in self._sites.items()
            if s.rate > 0 or s.schedule
        )
        return f"FaultPlan(seed={self.seed}, {live or 'disabled'})"


def chaos_plan(seed: int = 0, crash_rate: float = 0.0) -> FaultPlan:
    """The default ``--chaos`` preset: every site active at the rates the
    acceptance checks require (kernel ≥ 5%, page corruption ≥ 1%).

    ``crash_rate`` arms seeded-random whole-engine death (off by default:
    a crash without checkpointing aborts the run, so only kill/restore
    harness runs turn it on)."""
    return FaultPlan(
        seed=seed,
        kernel_fault_rate=0.05,
        straggler_rate=0.02,
        corruption_rate=0.01,
        alloc_fault_rate=0.01,
        crash_rate=crash_rate,
        straggler_factor=8.0,
    )
