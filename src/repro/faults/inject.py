"""Fault types and detection guards.

The exception taxonomy (all transient, all retryable by design):

* :class:`KernelFault` — a simulated kernel launch failed before any work
  was timed.  Defined in :mod:`repro.gpu.executor` (the raising layer) and
  re-exported here.
* :class:`NumericalFault` — an output guard observed NaN/Inf in a kernel's
  output.  A subclass of :class:`KernelFault` so retry machinery treats a
  poisoned launch like a failed one.
* :class:`TransientAllocFault` / :class:`KVCorruptionError` — from
  :mod:`repro.kvcache.paged`: a retryable page-allocation hiccup and a
  failed page-integrity check.

:class:`OutputGuard` is the cheap detection hook the wrappers call on the
compute path: a strided ``isfinite`` sample over the output tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import sampled_isfinite
from repro.gpu.executor import KernelFault
from repro.kvcache.paged import KVCorruptionError, TransientAllocFault


class NumericalFault(KernelFault):
    """An output guard found non-finite values in a kernel's output."""


class EngineCrash(RuntimeError):
    """Injected whole-engine death (fault-plan ``crash`` site).

    Unlike every other fault in the taxonomy this one is deliberately NOT
    retryable in-process: it models the serving process dying.  All
    in-memory engine state is lost; only what the
    :mod:`repro.serving.checkpoint` layer persisted (snapshots + the
    write-ahead journal) survives, and a
    :class:`~repro.serving.checkpoint.RecoveryManager` must rebuild the
    engine from it.

    ``phase`` is ``"boundary"`` (between steps) or ``"mid-step"`` (after
    the step's attention was priced but before its results were applied —
    the half-done step is lost, exactly like a real crash).
    """

    def __init__(self, t: float, step_index: int, phase: str):
        super().__init__(
            f"injected engine crash at t={t:.6f}s "
            f"(step {step_index}, {phase})"
        )
        self.t = t
        self.step_index = step_index
        self.phase = phase


@dataclass
class OutputGuard:
    """Sampled ``isfinite`` check over kernel outputs.

    ``sample_stride`` trades coverage for cost: 1 checks every output row,
    ``k`` checks every k-th row.  NaN corruption injected by the ``numeric``
    fault site hits single rows, so tests run with stride 1; production-style
    configs can raise the stride since a corrupted kernel output typically
    poisons contiguous row ranges.
    """

    sample_stride: int = 1

    def __post_init__(self) -> None:
        if self.sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")

    def check(self, out, source: str) -> None:
        """Raise :class:`NumericalFault` if the sampled rows are not finite."""
        if not sampled_isfinite(out, self.sample_stride):
            raise NumericalFault(
                f"output guard: non-finite attention output from {source}"
            )


__all__ = [
    "EngineCrash",
    "KernelFault",
    "KVCorruptionError",
    "NumericalFault",
    "OutputGuard",
    "TransientAllocFault",
]
