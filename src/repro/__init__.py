"""FlashInfer reproduction: a customizable attention engine for LLM serving.

Pure-Python/NumPy reimplementation of *FlashInfer: Efficient and
Customizable Attention Engine for LLM Inference Serving* (MLSys 2025) with
a simulated-GPU cost model in place of CUDA hardware.  See DESIGN.md for the
substitution statement and the per-experiment index.

Public API highlights
---------------------
- :class:`repro.core.BatchAttentionWrapper` / ``ComposableAttentionWrapper``
  — the plan/run interface of paper §3.4.
- :class:`repro.core.AttentionVariant` — JIT-compiled attention variants
  (§3.2.3), with a library of ready variants in :mod:`repro.variants`.
- :mod:`repro.sparse` — BSR / composable formats unifying KV-cache storage.
- :mod:`repro.kvcache` — paged KV cache and radix-tree prefix cache.
- :mod:`repro.gpu` — the simulated GPU (A100/H100 cost model, CUDAGraph).
- :mod:`repro.serving` — continuous-batching engine for end-to-end
  experiments.
"""

__version__ = "0.2.0"

from repro.core import (
    AttentionState,
    AttentionVariant,
    BatchAttentionWrapper,
    ComposableAttentionWrapper,
    HeadConfig,
    KernelTraits,
    ParamDecl,
    VANILLA,
    get_kernel,
    merge_states,
    plan_schedule,
    reference_attention,
)
from repro.gpu import A100_40G, H100_80G, CudaGraph, GPUSpec, WorkspaceBuffer
from repro.sparse import (
    AttentionMapping,
    BSRMatrix,
    BlockSparseKV,
    ComposableFormat,
    RaggedTensor,
    decompose_shared_prefix,
)
from repro.kvcache import PagedKVCache, RadixTree

__all__ = [
    "__version__",
    "AttentionState",
    "AttentionVariant",
    "BatchAttentionWrapper",
    "ComposableAttentionWrapper",
    "HeadConfig",
    "KernelTraits",
    "ParamDecl",
    "VANILLA",
    "get_kernel",
    "merge_states",
    "plan_schedule",
    "reference_attention",
    "A100_40G",
    "H100_80G",
    "CudaGraph",
    "GPUSpec",
    "WorkspaceBuffer",
    "AttentionMapping",
    "BSRMatrix",
    "BlockSparseKV",
    "ComposableFormat",
    "RaggedTensor",
    "decompose_shared_prefix",
    "PagedKVCache",
    "RadixTree",
]
