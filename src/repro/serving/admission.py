"""Admission control: queueing, capacity gates, deadlines and shedding.

First layer of the engine pipeline.  Arrival-ordered requests are admitted
FCFS under the ``max_running`` concurrency gate (the
:class:`repro.serving.policy.SchedulerPolicy` may then reorder the
admitted queue); page-capacity fits keep one page of decode headroom per
live stream; and every way a unit of work leaves the system early —
deadline expiry, overload, retry exhaustion — lives here.

:meth:`AdmissionController.requeue` is the single transient-allocation
recovery path: queued prompts, partial prefill chunks and decode/resume
streams all fold into it (previously three near-duplicate blocks).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.kvcache.paged import TransientAllocFault
from repro.serving.batching import PartialPrefill, RunState, Stream
from repro.serving.metrics import RequestTrace
from repro.serving.workload import Request


class AdmissionController:
    """Per-run queue admission, capacity fits, requeue and shedding."""

    def __init__(self, engine, state: RunState):
        self.engine = engine
        self.state = state
        #: Per-request transient-fault retries consumed before the prompt
        #: finished prefilling (streams carry their own counter after).
        self.prefill_retries: Dict[int, int] = {}
        # Held-left integral of the saturation samples admit() records,
        # for the time-weighted admission_pressure_mean metric.
        self._pressure_t: Optional[float] = None
        self._pressure_t0 = 0.0
        self._pressure_sat = 0.0
        self._pressure_integral = 0.0

    # -- admission ------------------------------------------------------------

    def admit(self, t: float) -> None:
        """Move arrived requests into the prefill queue, FCFS, under the
        ``max_running`` concurrency gate."""
        eng = self.engine
        st, cfg = self.state, eng.config
        while st.waiting and st.requests[st.waiting[0]].arrival <= t:
            idx = st.waiting[0]
            if len(st.streams) + len(st.prefill_queue) + st.requests[idx].n > cfg.max_running:
                break
            st.prefill_queue.append(idx)
            st.waiting.popleft()
            if eng._journal is not None:
                eng._journal.admit(idx, t)
        if eng.track_pressure:
            # Overload backpressure signal for the cluster router: peak
            # saturation of the concurrency gate (admitted + running over
            # max_running).  >= 1.0 means arrivals are queueing at the door.
            sat = (len(st.streams) + len(st.prefill_queue)) / cfg.max_running
            if sat > st.metrics.admission_pressure:
                st.metrics.admission_pressure = sat
            if self._pressure_t is None:
                self._pressure_t0 = self._pressure_t = t
            else:
                self._pressure_integral += self._pressure_sat * max(
                    t - self._pressure_t, 0.0
                )
                self._pressure_t = t
            self._pressure_sat = sat

    def absorb_handoffs(self, t: float) -> None:
        """Turn admitted handed-off requests into live decode streams.

        Disaggregated decode replicas never prefill a handed-off prompt:
        the prefill pool already did that compute and shipped the KV pages
        over the topology.  Absorbing an import allocates the context's
        page-table structure (the wire transfer already priced the bytes),
        seeds each generation's stream with the prefill-side first token,
        and resumes decoding at position 1 — token-exactly, because token
        ids are a pure function of ``(rid, gen, position)``.

        Imports that do not fit under pool pressure stay queued and retry
        next step; a transient allocation fault follows the same
        retry-or-shed path as a faulted prefill.
        """
        eng = self.engine
        st = self.state
        imports = eng._handoff_imports
        record = eng._degrade is not None and eng.resilience.record_tokens
        for idx in list(st.prefill_queue):
            imps = imports.get(idx)
            if imps is None:
                continue
            if not self.fits(imps[0].context_len):
                continue  # pool pressure: keep queued, retry next step
            st.prefill_queue.remove(idx)
            req = st.requests[idx]
            base_sid = -1
            created = []
            try:
                for k, imp in enumerate(imps):
                    if k == 0:
                        sid = st.cache.new_seq()
                        created.append(sid)
                        st.cache.extend(sid, imp.context_len)
                        base_sid = sid
                    else:
                        # Generations share the prompt pages copy-on-write,
                        # exactly as colocated fork groups do.
                        sid = st.cache.fork_seq(base_sid)
                        created.append(sid)
            except TransientAllocFault:
                for sid in created:
                    st.cache.free_seq(sid)
                self.requeue_prompt(idx, t)
                continue
            for sid, imp in zip(created, imps):
                trace = RequestTrace(
                    arrival=imp.arrival, first_token_time=imp.first_token_time,
                    req_id=idx, gen_index=imp.gen,
                )
                stream = Stream(idx, sid, imp.remaining, trace)
                stream.gen_index = imp.gen
                if eng._degrade is not None:
                    stream.deadline = eng._deadline_for(req)
                if record:
                    trace.tokens = [imp.tok0]
                    if eng._journal is not None:
                        eng._journal.token(idx, imp.gen, 0, imp.tok0, t)
                    if eng._replay is not None:
                        eng._replay.check(idx, imp.gen, 0, imp.tok0, t)
                st.streams.append(stream)

    def pressure_mean(self, t_end: float) -> float:
        """Time-weighted mean admission saturation over [first admit, t_end].

        Each :meth:`admit` sample holds until the next one (held-left
        integration), so sustained saturation and a single spike of the
        same peak produce very different means — the distinction the
        breaker/brownout layer keys off.
        """
        if self._pressure_t is None:
            return 0.0
        span = t_end - self._pressure_t0
        if span <= 0:
            return self._pressure_sat
        total = self._pressure_integral + self._pressure_sat * max(
            t_end - self._pressure_t, 0.0
        )
        return total / span

    def fits(self, tokens: int) -> bool:
        """Admission control: keep one page of decode headroom per live
        stream so prefill cannot starve running decodes.

        Radix-cached pages the tree could evict count as free: cached-but-
        idle prefixes must never block admission (the batch former evicts
        them on demand before extending).
        """
        st, cfg = self.state, self.engine.config
        need = -(-tokens // cfg.page_size) + len(st.streams)
        free = st.cache.num_free_pages
        if free < need and st.radix is not None:
            free += st.radix.evictable_pages()
        return free >= need

    def fits_resume(self, s: Stream) -> bool:
        st, cfg = self.state, self.engine.config
        if s.seq_id >= 0:
            # Partial rollback: only the truncated tail needs pages.
            need = (
                -(-s.resume_len // cfg.page_size)
                - len(st.cache.seq_pages(s.seq_id))
                + len(st.streams)
            )
            free = st.cache.num_free_pages
            if free < need and st.radix is not None:
                free += st.radix.evictable_pages()
            return free >= need
        return self.fits(s.resume_len)

    # -- transient-alloc requeue (the unified helper) -------------------------

    def requeue(
        self,
        req_id: int,
        t: float,
        bump: Callable[[], int],
        on_shed: Callable[[], None],
        on_retry: Callable[[], None],
    ) -> None:
        """One transient-allocation recovery: trace the injection, charge a
        retry against the budget, then requeue or shed.

        ``bump`` advances and returns the relevant retry counter;
        ``on_retry``/``on_shed`` put the work back (queue head, prefilling
        head, or preempted deque) or account the shed.
        """
        eng = self.engine
        eng._count("alloc_faults")
        eng._fault_event("alloc", "injected", t, req_id=req_id)
        if bump() > eng.resilience.max_retries:
            on_shed()
        else:
            eng._count("retries")
            eng._fault_event("alloc", "retry", t, req_id=req_id)
            on_retry()

    def _bump_prefill(self, idx: int) -> int:
        n = self.prefill_retries.get(idx, 0) + 1
        self.prefill_retries[idx] = n
        return n

    def requeue_prompt(self, idx: int, t: float) -> None:
        """A queued prompt hit a transient allocation fault: retry it at
        the head of the queue, or shed it once its budget is spent."""
        st = self.state
        self.requeue(
            idx, t,
            bump=lambda: self._bump_prefill(idx),
            on_shed=lambda: self.shed_request(st.requests[idx], idx, t, "retries"),
            on_retry=lambda: st.prefill_queue.appendleft(idx),
        )

    def requeue_chunk(self, pp: PartialPrefill, t: float) -> None:
        """A prefill chunk hit a transient allocation fault: the partial
        prompt keeps the queue head and retries next step, unless its
        request's retry budget is spent."""
        st = self.state

        def on_shed() -> None:
            st.prefilling.remove(pp)
            st.cache.free_seq(pp.seq_id)
            self.shed_request(st.requests[pp.req_idx], pp.req_idx, t, "retries")

        self.requeue(
            pp.req_idx, t,
            bump=lambda: self._bump_prefill(pp.req_idx),
            on_shed=on_shed,
            on_retry=lambda: None,  # pp already holds the prefilling head
        )

    def requeue_stream(self, s: Stream, t: float, front: bool = False) -> None:
        """A decode extend or resume recompute hit a transient allocation
        fault: preempt the stream for recompute (``front`` restores a
        resume-step stream to the head of the preempted deque), or shed it
        when out of retries."""
        st = self.state

        def bump() -> int:
            s.retries += 1
            return s.retries

        def on_shed() -> None:
            if s.seq_id >= 0:
                st.cache.free_seq(s.seq_id)
                s.seq_id = -1
            self.shed_stream(s, t, "retries")

        def on_retry() -> None:
            if front:
                st.preempted.appendleft(s)
            else:
                st.preempted.append(s)

        self.requeue(s.req_idx, t, bump=bump, on_shed=on_shed, on_retry=on_retry)

    # -- shedding -------------------------------------------------------------

    def deadline_for(self, req: Request) -> Optional[float]:
        return self.engine._deadline_for(req)

    def shed_queued(self, req: Request, idx: int, gen: int, t: float, reason: str) -> None:
        """Shed a generation that never produced a token."""
        trace = RequestTrace(
            arrival=req.arrival, first_token_time=t,
            req_id=idx, gen_index=gen, outcome_reason=reason,
        )
        self.state.metrics.shed(trace)
        self.engine._count("sheds")
        self.engine._fault_event(reason, "shed", t, req_id=idx, detail=f"gen {gen}")
        if self.engine._journal is not None:
            self.engine._journal.shed(idx, gen, reason, t)

    def shed_request(self, req: Request, idx: int, t: float, reason: str) -> None:
        """Shed every not-yet-spawned generation of one request."""
        for j in range(req.n):
            self.shed_queued(req, idx, j, t, reason)

    def shed_stream(self, s: Stream, t: float, reason: str) -> None:
        s.trace.outcome_reason = reason
        self.state.metrics.shed(s.trace)
        self.engine._count("sheds")
        self.engine._fault_event(reason, "shed", t, req_id=s.req_idx, detail=f"gen {s.gen_index}")
        if self.engine._journal is not None:
            self.engine._journal.shed(s.req_idx, s.gen_index, reason, t)

    def shed_expired(self, t: float) -> None:
        """Deterministic deadline shedding: drop every unit of work whose
        absolute deadline has passed, scanning queues in a fixed order."""
        st = self.state
        requests, cache = st.requests, st.cache

        def expired(req: Request) -> bool:
            dl = self.deadline_for(req)
            return dl is not None and t > dl

        for idx in [i for i in st.prefill_queue if expired(requests[i])]:
            st.prefill_queue.remove(idx)
            self.shed_request(requests[idx], idx, t, "deadline")
        for pp in [p for p in st.prefilling if expired(requests[p.req_idx])]:
            st.prefilling.remove(pp)
            cache.free_seq(pp.seq_id)
            self.shed_request(requests[pp.req_idx], pp.req_idx, t, "deadline")
        for s in [s for s in st.streams if s.deadline is not None and t > s.deadline]:
            st.streams.remove(s)
            cache.free_seq(s.seq_id)
            self.shed_stream(s, t, "deadline")
        for s in [s for s in st.preempted if s.deadline is not None and t > s.deadline]:
            st.preempted.remove(s)
            if s.seq_id >= 0:
                cache.free_seq(s.seq_id)
            self.shed_stream(s, t, "deadline")

    def shed_overload(self, t: float) -> None:
        """Capacity-blocked with nothing running: shed the youngest unit of
        queued work instead of aborting the whole run.

        Youngest-first deliberately ignores ``Request.priority`` — arrival
        recency is the tiebreak even between same-age requests (the queue
        *tail* goes first).  Priority still protects high-priority work
        indirectly: :class:`repro.serving.policy.PriorityPolicy` keeps it at
        the queue head, so under pressure low-priority requests pool at the
        tail where this shed bites (covered by
        ``tests/test_serving_admission.py::TestShedPriorityInteraction``).
        Priority-*targeted* shedding is the brownout ladder's last rung
        (:class:`repro.serving.overload.BrownoutController`), not this path.
        """
        st = self.state
        if st.prefill_queue:
            idx = st.prefill_queue.pop()  # youngest admitted request
            self.shed_request(st.requests[idx], idx, t, "overload")
        else:
            s = st.preempted.pop()  # youngest preempted stream
            if s.seq_id >= 0:
                st.cache.free_seq(s.seq_id)
                s.seq_id = -1
            self.shed_stream(s, t, "overload")
