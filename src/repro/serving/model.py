"""Transformer model configurations and non-attention cost roofline.

The end-to-end experiments (paper §4.1, §4.3, §4.4) run Llama-3.1-8B/70B
and Vicuna-13B.  The engine needs, per step: the attention kernel time
(from the attention backend under test) plus everything else — QKV/O
projections, the gated MLP, the LM head, and tensor-parallel all-reduces —
which is identical across attention backends and modelled here with the
same roofline used for kernels: ``max(flops/peak, bytes/bandwidth)``.
For small decode batches the weight traffic dominates, which is what makes
inter-token latency bandwidth-bound in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec

# NVLink all-reduce effective bus bandwidth (bytes/s) and base latency —
# defined once in the cluster topology module (the single source of truth
# for link constants) and re-exported here for back-compat.
from repro.cluster.topology import ALLREDUCE_LATENCY, NVLINK_ALLREDUCE_BW


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer geometry (weights in fp16)."""

    name: str
    num_layers: int
    hidden_size: int
    num_qo_heads: int
    num_kv_heads: int
    head_dim: int
    intermediate_size: int
    vocab_size: int
    dtype_bytes: int = 2

    @property
    def qkv_out_features(self) -> int:
        return (self.num_qo_heads + 2 * self.num_kv_heads) * self.head_dim

    @property
    def attn_out_features(self) -> int:
        return self.num_qo_heads * self.head_dim

    def layer_weight_bytes(self, tensor_parallel: int = 1) -> float:
        """Per-layer weight traffic (QKV + O + gated MLP), per TP shard."""
        qkv = self.hidden_size * self.qkv_out_features
        o = self.attn_out_features * self.hidden_size
        mlp = 3 * self.hidden_size * self.intermediate_size
        return (qkv + o + mlp) * self.dtype_bytes / tensor_parallel

    def layer_gemm_flops(self, num_tokens: int, tensor_parallel: int = 1) -> float:
        """Per-layer GEMM FLOPs for ``num_tokens`` tokens, per TP shard."""
        qkv = self.hidden_size * self.qkv_out_features
        o = self.attn_out_features * self.hidden_size
        mlp = 3 * self.hidden_size * self.intermediate_size
        return 2.0 * num_tokens * (qkv + o + mlp) / tensor_parallel

    def lm_head_time(
        self, num_tokens: int, gpu: GPUSpec, gemm_efficiency: float, tensor_parallel: int = 1
    ) -> float:
        flops = 2.0 * num_tokens * self.hidden_size * self.vocab_size / tensor_parallel
        bytes_ = self.hidden_size * self.vocab_size * self.dtype_bytes / tensor_parallel
        return max(
            flops / (gpu.peak_fp16_flops * gemm_efficiency),
            bytes_ / gpu.peak_bandwidth_bytes,
        )

    def layer_nonattn_time(
        self, num_tokens: int, gpu: GPUSpec, gemm_efficiency: float, tensor_parallel: int = 1
    ) -> float:
        """Roofline time for one layer's GEMMs + activations."""
        flops = self.layer_gemm_flops(num_tokens, tensor_parallel)
        weight_bytes = self.layer_weight_bytes(tensor_parallel)
        act_bytes = 4.0 * num_tokens * self.hidden_size * self.dtype_bytes
        return max(
            flops / (gpu.peak_fp16_flops * gemm_efficiency),
            (weight_bytes + act_bytes) / gpu.peak_bandwidth_bytes,
        )

    def allreduce_time(self, num_tokens: int, tensor_parallel: int, efficiency: float = 1.0) -> float:
        """Two all-reduces per layer under tensor parallelism."""
        if tensor_parallel <= 1:
            return 0.0
        bytes_ = num_tokens * self.hidden_size * self.dtype_bytes
        return 2.0 * (bytes_ / (NVLINK_ALLREDUCE_BW * efficiency) + ALLREDUCE_LATENCY)


LLAMA_3_1_8B = ModelConfig(
    name="llama-3.1-8b",
    num_layers=32,
    hidden_size=4096,
    num_qo_heads=32,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=14336,
    vocab_size=128256,
)

LLAMA_3_1_70B = ModelConfig(
    name="llama-3.1-70b",
    num_layers=80,
    hidden_size=8192,
    num_qo_heads=64,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=28672,
    vocab_size=128256,
)

VICUNA_13B = ModelConfig(
    name="vicuna-13b",
    num_layers=40,
    hidden_size=5120,
    num_qo_heads=40,
    num_kv_heads=40,
    head_dim=128,
    intermediate_size=13824,
    vocab_size=32000,
)
