"""Memoization of wrapper ``plan()`` results (FlashInfer's plan/run split).

FlashInfer computes one load-balanced schedule per batch shape on the host
and replays it across all layers of the step (§3.3.1, §3.4): the plan
depends only on sequence lengths and scheduler geometry, both identical
for every layer, so one CPU ``plan_schedule`` serves ``num_layers``
kernel launches.  :class:`PlanCache` makes that replay explicit and — when
the same batch shape recurs across steps — extends it across steps too.

Accounting is per *launch*, mirroring plan-once/run-per-layer: a shape
planned for an ``L``-layer model scores one miss (the single CPU plan
actually computed) plus ``L - 1`` hits (the layers that replayed it); a
shape already resident scores ``L`` hits.  With ``replay_factor=1`` (the
standalone API wrappers) the counters degenerate to plain lookup
hit/miss counts.

Correctness: a hit skips only the ``plan_schedule`` recomputation.  The
cache key captures every ``plan_schedule`` input (exact per-group
lengths, tile geometry, head count, split-KV and causal flags, position
offsets), so a cached plan is *identical* — not merely similar — to the
plan that would have been recomputed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple


class PlanCache:
    """Bounded FIFO memo of :class:`repro.core.SchedulePlan` objects.

    Parameters
    ----------
    capacity:
        Maximum resident plans; the least-recently-used entry is evicted.
    replay_factor:
        Launches served per plan lookup (the model's layer count inside
        the serving engine; 1 for standalone wrapper use).
    """

    def __init__(self, capacity: int = 1024, replay_factor: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if replay_factor < 1:
            raise ValueError("replay_factor must be >= 1")
        self.capacity = capacity
        self.replay_factor = replay_factor
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        #: KV-pool geometry the resident plans were computed under; plans
        #: do not key on it (lengths are in tokens, not pages), so a
        #: geometry change conservatively flushes the cache.
        self._scope: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self._entries)

    def bind(self, page_size: int, num_pool_pages: int) -> None:
        """Invalidate resident plans when the pool geometry changes."""
        scope = (int(page_size), int(num_pool_pages))
        if self._scope is not None and self._scope != scope:
            self.invalidate()
        self._scope = scope

    def invalidate(self) -> None:
        """Drop every resident plan (counters are preserved)."""
        self._entries.clear()

    def get(self, key: Hashable):
        """Return the cached plan for ``key``, or ``None`` (and charge the
        miss plus the ``replay_factor - 1`` replayed-layer hits)."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += self.replay_factor
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        self.hits += self.replay_factor - 1
        return None

    def put(self, key: Hashable, plan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self, since: Tuple[int, int] = (0, 0)) -> Dict[str, float]:
        """Counters as ``plan_cache_*`` floats for a metrics summary.

        ``since`` is a ``(hits, misses)`` snapshot; the returned counts
        are deltas against it, so a per-run summary from a long-lived
        cache reports only that run's traffic.
        """
        hits = self.hits - since[0]
        misses = self.misses - since[1]
        total = hits + misses
        return {
            "plan_cache_hits": float(hits),
            "plan_cache_misses": float(misses),
            "plan_cache_hit_rate": hits / total if total else 0.0,
            "plan_cache_entries": float(len(self._entries)),
        }
