"""Continuous-batching LLM serving engine (the §4.1/§4.3/§4.4 harness).

A minimal Orca/SGLang-style engine over the simulated GPU, decomposed into
a pipeline of small layers that communicate through an explicit
:class:`~repro.serving.batching.StepPlan` IR — mirroring the paper's own
separation of *planning* from *execution* (§3.4)::

    AdmissionController → SchedulerPolicy → BatchFormer → [PlanCache]
        → StepExecutor → Postprocessor

* :class:`~repro.serving.admission.AdmissionController` — queueing,
  capacity fits, deadlines, shedding, transient-alloc requeue.
* :class:`~repro.serving.policy.SchedulerPolicy` — pluggable ordering of
  the admitted prefill queue (``fcfs`` reproduces the classic engine
  token-for-token; select via :attr:`EngineConfig.policy`).
* :class:`~repro.serving.batching.BatchFormer` — turns admitted work into
  one :class:`~repro.serving.batching.StepPlan` per step (prefill chunks,
  decode set, resume set, page-table deltas).
* :class:`~repro.serving.plan_cache.PlanCache` — memoizes the wrapper's
  CPU ``plan()`` across layers and steps (the plan/run split, §3.3.1).
* :class:`~repro.serving.executor.StepExecutor` — prices the plan through
  the backend; owns kernel fault-retry and degrade hooks.
* :class:`~repro.serving.executor.Postprocessor` — token recording,
  finish/fork, metrics and trace emission.

Per-step time is ``layers × (attention(backend) + GEMMs(roofline) +
allreduce(TP)) + LM head + framework overhead`` with only the attention
term differing across backends — isolating exactly the variable the
paper's end-to-end experiments vary.

Resilience (``fault_plan``/``resilience``): with a
:class:`repro.faults.FaultPlan` attached the engine injects transient
kernel faults, CTA stragglers, KV-page corruption and page-allocation
hiccups, and recovers via bounded retry-with-recompute, deadlines with
youngest-first load shedding, and graceful degradation to the dense
baseline backend (see :class:`repro.faults.recover.KVScrubber` and the
executor).  With neither argument set every fault-path guard is a single
``is None`` check and the step loop is unchanged.

Durability (``checkpoint``/``checkpoint_store``): with a
:class:`~repro.serving.checkpoint.CheckpointConfig` attached the engine
takes periodic snapshots and write-ahead-journals every admission, token
and finish; after a crash (the fault plan's ``crash`` site, or a scripted
kill) :meth:`ServingEngine.resume` continues token-exactly from a
:class:`~repro.serving.checkpoint.RecoveredState`.  Disabled (the
default) it adds nothing to the hot path — the same single ``is None``
discipline as the fault layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.kernels import HeadConfig
from repro.faults.inject import EngineCrash
from repro.faults.plan import FaultPlan
from repro.faults.recover import DegradeController, KVScrubber, ResilienceConfig
from repro.gpu.spec import GPUSpec
from repro.kvcache.paged import OutOfPagesError, PagedKVCache
from repro.obs.events import FaultEvent
from repro.obs.tracer import StepTracer
from repro.serving.admission import AdmissionController
from repro.serving.backends import AttentionBackend
from repro.serving.batching import (
    BatchFormer,
    PartialPrefill,
    RunState,
    Stream,
    TOKEN_VOCAB,
    token_id,
)
from repro.serving.checkpoint import (
    CheckpointConfig,
    Checkpointer,
    CheckpointStore,
    Journal,
    RecoveredState,
    WorldMismatchError,
)
from repro.serving.executor import Postprocessor, StepExecutor
from repro.serving.metrics import ServingMetrics
from repro.serving.model import ModelConfig
from repro.serving.plan_cache import PlanCache
from repro.serving.policy import SchedulerPolicy, get_policy
from repro.serving.workload import Request

# Back-compat aliases for the pre-pipeline module layout.
_TOKEN_VOCAB = TOKEN_VOCAB
_token = token_id
_Stream = Stream
_PartialPrefill = PartialPrefill


@dataclass
class EngineConfig:
    """Engine policy knobs."""

    page_size: int = 16
    max_running: int = 128  # concurrent decode streams
    max_prefill_tokens: int = 8192  # token budget per prefill batch
    tensor_parallel: int = 1
    num_pool_pages: int = 1 << 16
    composable: bool = False  # composable formats for fork groups (§4.4)
    scheduler_overhead: float = 30e-6  # host batching/sampling per step
    #: Sarathi-serve-style chunked prefill: prompts are prefilled in
    #: ``prefill_chunk_size``-token chunks piggybacked onto decode steps,
    #: bounding the ITL spikes long prompts otherwise cause (§5.4).
    chunked_prefill: bool = False
    prefill_chunk_size: int = 512
    #: Radix-style cross-request prefix caching: requests declaring a
    #: shared ``prefix_group`` reuse the group's cached prompt pages and
    #: prefill only their unique suffix (§5.4, RadixAttention).
    prefix_caching: bool = False
    #: Automatic longest-prefix caching over prompt *token ids* via the
    #: :class:`repro.kvcache.radix.RadixTree`: on admission the longest
    #: cached page-aligned prefix is looked up and skipped; on prefill
    #: completion the prompt's whole pages are inserted, with LRU eviction
    #: under pool pressure.  Needs no ``prefix_group`` annotation to find
    #: sharing, and combines with ``composable`` to serve shared prefixes
    #: through the multi-level cascade (§3.1.2).
    prefix_cache: bool = False
    #: Scheduling-policy name (see :mod:`repro.serving.policy`): ``fcfs``
    #: (the default, token-exact with the classic engine), ``priority``,
    #: ``sla-aware``, or any name registered via ``register_policy`` / the
    #: ``repro.serving_policies`` entry-point group.
    policy: str = "fcfs"
    #: Memoize wrapper ``plan()`` results across layers and steps (the
    #: plan/run split, §3.3.1/§3.4).  Never changes simulated results —
    #: a hit returns a plan identical to the one it replaces.
    plan_cache: bool = True
    plan_cache_entries: int = 1024


def _shard_heads(model: ModelConfig, tensor_parallel: int) -> HeadConfig:
    """Per-shard head partitioning under tensor parallelism."""
    return HeadConfig(
        model.num_qo_heads // tensor_parallel
        if model.num_qo_heads % tensor_parallel == 0
        else model.num_qo_heads,
        max(model.num_kv_heads // tensor_parallel, 1),
        model.head_dim,
    )


class ServingEngine:
    """Simulated continuous-batching server."""

    def __init__(
        self,
        model: ModelConfig,
        backend: AttentionBackend,
        gpu: GPUSpec,
        config: Optional[EngineConfig] = None,
        tracer: Optional[StepTracer] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        interconnect=None,
    ):
        self.model = model
        self.backend = backend
        self.gpu = gpu
        self.config = config or EngineConfig()
        #: Optional :class:`repro.cluster.tp.TPInterconnect`: prices the
        #: per-layer tensor-parallel all-reduces on a cluster
        #: :class:`~repro.cluster.topology.Topology` instead of the flat
        #: NVLink-bus constants, and charges the traffic to the topology's
        #: utilization counters.  ``None`` (the default) keeps the
        #: pre-cluster cost model bit for bit.
        self.interconnect = interconnect
        #: Data-parallel identity, set by the cluster engine; together
        #: with ``config.tensor_parallel`` this is the engine's ``world``
        #: stamped into checkpoints (single-GPU: tp=1, dp=1, replica=0).
        self.dp_world = 1
        self.dp_rank = 0
        #: Optional :class:`repro.obs.StepTracer`; when ``None`` the step
        #: loop allocates no event objects (a single ``is None`` check).
        self.tracer = tracer
        #: Fault-injection schedule; attaching one implies a default
        #: :class:`ResilienceConfig` unless ``resilience`` is also given.
        self.fault_plan = fault_plan
        #: Checkpoint cadence; attaching one (with ``every_steps > 0``)
        #: also implies a default :class:`ResilienceConfig` — crash
        #: recovery is a resilience feature (journaled tokens come from
        #: ``record_tokens``, KV healing from the checksum scrub path).
        if checkpoint is not None and checkpoint.every_steps <= 0:
            checkpoint = None
        self.checkpoint = checkpoint
        self.checkpoint_store = checkpoint_store
        if resilience is None and (fault_plan is not None or checkpoint is not None):
            resilience = ResilienceConfig()
        self.resilience = resilience
        #: Optional per-step liveness callback ``heartbeat(t)``, installed
        #: by the cluster failover layer; fired after each executed step.
        #: ``None`` (the default) keeps the step loop untouched.
        self.heartbeat = None
        #: Record peak admission saturation into the run's metrics (set by
        #: the cluster engine on failover runs; plain runs skip the write
        #: so their summaries stay byte-identical).
        self.track_pressure = False
        #: Optional :class:`repro.serving.overload.BrownoutController`,
        #: installed by the cluster engine on overload runs.  When set, the
        #: step loop feeds it one admission-saturation sample per step and
        #: the batch former / executor consult its active rungs (chunk
        #: shrink, cascade disable, token clamp, priority shed).  ``None``
        #: (the default) keeps every consumer a single ``is None`` check.
        self.brownout = None
        #: Disaggregated-serving hooks, installed by the cluster engine's
        #: disagg mode (:mod:`repro.cluster.disagg`).  ``role`` names this
        #: replica's pool (``"prefill"`` / ``"decode"``) and rides into the
        #: checkpoint ``world``; ``handoff_sink`` intercepts decode-stream
        #: spawns on prefill replicas; ``_handoff_imports`` maps request
        #: index → shipped :class:`~repro.cluster.disagg.HandoffImport`
        #: list a decode replica absorbs instead of prefilling.  All
        #: ``None`` by default — plain runs are untouched.
        self.role: Optional[str] = None
        self.handoff_sink = None
        self._handoff_imports: Optional[dict] = None
        self._tracer: Optional[StepTracer] = None
        self._event_index = 0
        self._steps_done = 0
        self._step_prefix_hits = 0
        self._step_radix_hit_tokens = 0
        self._step_cascade_levels = 0
        # Crash-recovery state, all ``None``/``False`` on the plain path.
        self._ckpt: Optional[Checkpointer] = None
        self._journal: Optional[Journal] = None
        self._replay = None
        #: Scripted kills ``{(step_index, phase)}`` installed by a
        #: :class:`~repro.serving.checkpoint.CrashHarness`; fired entries
        #: are consumed so recovery cannot re-trip them.
        self._crash_script: Optional[set] = None
        self._crash_armed = False
        # Run-scoped resilience state.  ``_degrade is None`` ⇔ plain run:
        # it is the single sentinel every fault-path guard checks.
        self._degrade: Optional[DegradeController] = None
        self._fallback_backend: Optional[AttentionBackend] = None
        self._fault_counters: Dict[str, int] = {}
        self._taint = False
        self._deadlines_active = False
        self._cache: Optional[PagedKVCache] = None
        self._prefix_registry: dict = {}
        self.heads = _shard_heads(model, self.config.tensor_parallel)
        if backend.heads != self.heads:
            raise ValueError(
                f"backend heads {backend.heads} != engine shard heads {self.heads}; "
                f"construct the backend with the per-shard head config"
            )
        #: Resolved scheduling policy (raises on an unknown name).
        self._policy: SchedulerPolicy = get_policy(self.config.policy)
        #: Plan memo shared with the backend's wrappers; ``replay_factor``
        #: mirrors plan-once/run-per-layer (§3.3.1): each plan lookup
        #: stands for one plan plus ``num_layers - 1`` replayed launches.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(
                capacity=self.config.plan_cache_entries,
                replay_factor=model.num_layers,
            )
            if self.config.plan_cache
            else None
        )
        if self.plan_cache is not None:
            backend.set_plan_cache(self.plan_cache)

    @classmethod
    def from_config(
        cls,
        config: Optional[EngineConfig] = None,
        *,
        model: Optional[ModelConfig] = None,
        gpu: Optional[GPUSpec] = None,
        backend_factory=None,
        **kwargs,
    ) -> "ServingEngine":
        """The one construction path shared by the CLI, benchmarks and tests.

        Builds the per-shard head config from ``config.tensor_parallel``
        and a matching backend (``backend_factory(heads, gpu)``, default
        :class:`~repro.serving.backends.FlashInferBackend`).  Remaining
        keyword arguments (``tracer``, ``fault_plan``, ``checkpoint``,
        ``interconnect``, ...) pass through to the constructor.
        """
        from repro.gpu.spec import H100_80G
        from repro.serving.backends import FlashInferBackend
        from repro.serving.model import LLAMA_3_1_8B

        cfg = config if config is not None else EngineConfig()
        model = model if model is not None else LLAMA_3_1_8B
        gpu = gpu if gpu is not None else H100_80G
        factory = backend_factory if backend_factory is not None else FlashInferBackend
        heads = _shard_heads(model, cfg.tensor_parallel)
        return cls(model, factory(heads, gpu), gpu, cfg, **kwargs)

    # -- shared hooks (used by every pipeline layer) ----------------------------

    @property
    def world(self) -> Dict[str, object]:
        """Cluster shape this engine runs in (stamped into snapshots).

        Under disaggregated serving the replica's pool rides along as a
        ``role`` key; colocated worlds omit it, keeping pre-disagg
        snapshots compatible.
        """
        world: Dict[str, object] = {
            "tp": self.config.tensor_parallel,
            "dp": self.dp_world,
            "replica": self.dp_rank,
        }
        if self.role is not None:
            world["role"] = self.role
        return world

    def _count(self, key: str, n: int = 1) -> None:
        self._fault_counters[key] = self._fault_counters.get(key, 0) + n

    def _fault_event(
        self, site: str, action: str, t: float, req_id: int = -1, detail: str = ""
    ) -> None:
        if self._tracer is not None:
            self._tracer.on_fault(
                FaultEvent(
                    site=site, action=action, t=t,
                    step_index=self._event_index, req_id=req_id, detail=detail,
                )
            )

    def _deadline_for(self, req: Request) -> Optional[float]:
        rel = req.deadline if req.deadline is not None else self.resilience.deadline
        return None if rel is None else req.arrival + rel

    def _step_is_degraded(self) -> bool:
        return self._degrade is not None and self._degrade.degraded

    def _chunk_budget(self) -> int:
        """Prefill chunk budget for this step: the configured size, shrunk
        by the brownout ladder's first rung while it is engaged."""
        budget = self.config.prefill_chunk_size
        if self.brownout is not None:
            budget = self.brownout.chunk_budget(budget)
        return budget

    def _brownout_step(self, state, admission, t: float) -> None:
        """Feed the brownout controller one saturation sample and apply its
        shed rung; called once per step, only when a controller is set."""
        bo = self.brownout
        sat = (len(state.streams) + len(state.prefill_queue)) / self.config.max_running
        delta = bo.observe(sat, t)
        if delta:
            self._fault_event(
                "brownout", "engaged" if delta > 0 else "annealed", t,
                detail=f"level {bo.level} ({bo.rung_name}), sat {sat:.2f}",
            )
        if bo.shed_active:
            requests = state.requests
            for idx in [
                i for i in state.prefill_queue
                if requests[i].priority < bo.shed_priority_below
            ]:
                state.prefill_queue.remove(idx)
                admission.shed_request(requests[idx], idx, t, "brownout")

    def _prefix_stats(self, metrics: ServingMetrics, state) -> Dict[str, float]:
        """Radix-cache / cascade savings for the run summary.

        FLOPs saved are the GEMM work of the prefill tokens the cache
        skipped (model-level, tp-independent); HBM bytes saved come from
        the cascade reading each shared-prefix page once per step.
        """
        m = self.model
        return {
            "radix_hit_tokens": float(metrics.radix_hit_tokens),
            "radix_hit_prompts": float(metrics.radix_hit_prompts),
            "prefill_flops_saved": float(
                m.num_layers * m.layer_gemm_flops(metrics.radix_hit_tokens)
            ),
            "cascade_steps": float(metrics.cascade_steps),
            "cascade_hbm_bytes_saved": float(metrics.cascade_bytes_saved),
            "radix_cached_pages": float(
                state.radix.num_cached_pages if state.radix is not None else 0
            ),
        }

    def _fault_stats(self, plan: Optional[FaultPlan], metrics: ServingMetrics) -> Dict[str, float]:
        c = self._fault_counters
        stats = {
            "faults_injected": float(plan.total_injected) if plan is not None else 0.0,
            "kernel_faults": float(c.get("kernel_faults", 0)),
            "alloc_faults": float(c.get("alloc_faults", 0)),
            "retries": float(c.get("retries", 0)),
            "sheds": float(metrics.sheds),
            "degraded_steps": float(c.get("degraded_steps", 0)),
            "checksum_failures": float(c.get("checksum_failures", 0)),
            "watchdog_flags": float(c.get("watchdog_flags", 0)),
            "degrade_events": float(self._degrade.degrade_events),
            "anneal_events": float(self._degrade.anneal_events),
        }
        if plan is not None:
            for site, n in plan.injected.items():
                stats[f"injected_{site}"] = float(n)
        if self._ckpt is not None or c.get("recover_events"):
            stats["ckpt_snapshots"] = float(c.get("ckpt_snapshots", 0))
            stats["ckpt_journal_records"] = float(c.get("ckpt_journal_records", 0))
            stats["recover_events"] = float(c.get("recover_events", 0))
            stats["recover_replayed_tokens"] = float(
                c.get("recover_replayed_tokens", 0)
            )
            stats["recover_token_divergence"] = float(
                c.get("recover_token_divergence", 0)
            )
        return stats

    # -- crash injection / checkpoint wiring ------------------------------------

    def _maybe_crash(self, t: float, phase: str) -> None:
        """Consult the crash sources for this (step, phase); called only
        when a source is armed.  ``phase`` is ``"boundary"`` (top of the
        step loop) or ``"mid-step"`` (after execute, before finalize)."""
        script = self._crash_script
        if script is not None and (self._steps_done, phase) in script:
            script.discard((self._steps_done, phase))
            self._fault_event(
                "crash", "injected", t,
                detail=f"scripted kill, step {self._steps_done} {phase}",
            )
            raise EngineCrash(t, self._steps_done, phase)
        plan = self.fault_plan
        if plan is not None and plan.armed("crash") and plan.fire("crash"):
            self._fault_event(
                "crash", "injected", t,
                detail=f"seeded kill, step {self._steps_done} {phase}",
            )
            raise EngineCrash(t, self._steps_done, phase)

    def _wire_checkpoint(self, state, admission, t: float, genesis: bool) -> None:
        """Attach checkpointer + journal for this run (no-op when off)."""
        self._journal = None
        self._ckpt = None
        if self.checkpoint is None:
            return
        if self.checkpoint_store is None:
            self.checkpoint_store = CheckpointStore()
        ckpt = Checkpointer(self, self.checkpoint, self.checkpoint_store)
        ckpt.state = state
        ckpt.admission = admission
        ckpt._last_step = self._steps_done
        self._ckpt = ckpt
        if self.checkpoint.journal:
            self._journal = Journal(self, self.checkpoint_store)
        if genesis:
            # Step-0 snapshot: recovery always has a base, even for a
            # crash before the first periodic snapshot lands.
            ckpt.snapshot(t, reason="genesis")

    # -- main loop --------------------------------------------------------------

    def run(
        self, requests: Sequence[Request], tracer: Optional[StepTracer] = None
    ) -> ServingMetrics:
        """Serve ``requests`` to completion; returns latency metrics.

        ``tracer`` (or the one passed at construction) receives one
        :class:`repro.obs.StepEvent` per step; with no tracer the loop runs
        exactly as before — no event objects are allocated.
        """
        cfg = self.config
        resil = self.resilience
        plan = self.fault_plan
        self._tracer = tracer if tracer is not None else self.tracer
        self._event_index = 0
        self._steps_done = 0
        self._step_prefix_hits = 0
        self._step_radix_hit_tokens = 0
        self._step_cascade_levels = 0
        self.backend.collect_kernel_reports = (
            self._tracer is not None and self._tracer.capture_kernels
        )
        requests = sorted(requests, key=lambda r: r.arrival)
        resil_on = resil is not None
        if resil_on:
            self._degrade = DegradeController(resil.degrade_after, resil.anneal_after)
            self._fault_counters = {}
            self._taint = plan is not None and not resil.checksums
            self._deadlines_active = resil.deadline is not None or any(
                r.deadline is not None for r in requests
            )
            if plan is not None:
                plan.reset()
            self.backend.set_fault_injector(plan)
        else:
            self._degrade = None
        self._replay = None
        self._crash_armed = self._crash_script is not None or (
            resil_on and plan is not None and plan.armed("crash")
        )
        pc = self.plan_cache
        pc_before = None
        if pc is not None:
            pc.bind(cfg.page_size, cfg.num_pool_pages)
            pc_before = (pc.hits, pc.misses)
        cache = PagedKVCache(
            cfg.num_pool_pages, cfg.page_size, self.heads.num_kv_heads,
            self.heads.head_dim, materialize=False,
            checksums=resil_on and resil.checksums,
        )
        if resil_on:
            cache.fault_injector = plan
        self._cache = cache

        # -- wire the pipeline for this run ----------------------------------
        state = RunState(
            requests=requests, cache=cache, metrics=ServingMetrics(),
            waiting=deque(range(len(requests))),
        )
        if cfg.prefix_cache:
            from repro.kvcache.radix import RadixTree

            state.radix = RadixTree(cache)
        self._prefix_registry = state.prefix_registry  # back-compat alias
        admission = AdmissionController(self, state)
        self._wire_checkpoint(state, admission, t=0.0, genesis=True)
        return self._serve(state, admission, t=0.0, pc_before=pc_before)

    def resume(
        self,
        recovered: RecoveredState,
        tracer: Optional[StepTracer] = None,
        at_time: Optional[float] = None,
    ) -> ServingMetrics:
        """Continue a crashed run from a recovered snapshot, token-exactly.

        The snapshot is restored verbatim — queues, live streams, page
        tables (including pages that were corrupt at snapshot time, which
        the scrub/recompute path heals on the next step exactly as an
        uninterrupted run would have), metrics, the degrade state machine
        and every fault-RNG stream *except* ``crash``, which stays live so
        the crash being recovered from does not re-fire.  The journal's
        lost window rides along as a replay guard verifying every
        re-emitted token against what was journaled before the crash.

        ``at_time`` resumes no earlier than the given simulated time (the
        cluster failover path: detection delay plus KV migration happened
        between the snapshot and the takeover).  Later timing changes
        batching, never tokens — token ids are a pure function of
        ``(request, generation, position)``.
        """
        if self.resilience is None:
            raise ValueError(
                "resume() requires a resilience config; crash recovery is a "
                "resilience feature (construct the engine with checkpoint= "
                "or resilience=)"
            )
        cfg = self.config
        resil = self.resilience
        plan = self.fault_plan
        snap = recovered.snapshot
        # Refuse a snapshot from a different cluster shape: its per-shard
        # KV page tables don't fit this head partitioning (pre-world
        # snapshots count as the single-GPU shape).
        snap_world = snap.get("world") or {"tp": 1, "dp": 1, "replica": 0}
        normalized = {
            k: (str(v) if k == "role" else int(v))
            for k, v in snap_world.items()
        }
        if normalized != self.world:
            raise WorldMismatchError(
                f"snapshot {recovered.snapshot_id} was taken under world "
                f"{snap_world} but this engine is world {self.world}; "
                f"resuming would corrupt the per-shard KV layout"
            )
        self._tracer = tracer if tracer is not None else self.tracer
        self.backend.collect_kernel_reports = (
            self._tracer is not None and self._tracer.capture_kernels
        )
        self._event_index = int(snap["event_index"])
        self._steps_done = int(snap["steps_done"])
        self._step_prefix_hits = int(snap["step_prefix_hits"])
        self._step_radix_hit_tokens = int(snap.get("step_radix_hit_tokens", 0))
        self._step_cascade_levels = 0
        requests = recovered.requests  # snapshot order is arrival-sorted
        self._degrade = DegradeController(resil.degrade_after, resil.anneal_after)
        if snap["degrade"] is not None:
            self._degrade.import_state(snap["degrade"])
        self._fault_counters = {
            k: int(v) for k, v in snap["fault_counters"].items()
        }
        self._taint = plan is not None and not resil.checksums
        self._deadlines_active = resil.deadline is not None or any(
            r.deadline is not None for r in requests
        )
        if plan is not None:
            if snap["fault_plan"] is not None:
                plan.import_state(snap["fault_plan"], skip=("crash",))
            self.backend.set_fault_injector(plan)
        self._crash_armed = self._crash_script is not None or (
            plan is not None and plan.armed("crash")
        )
        pc = self.plan_cache
        pc_before = None
        if pc is not None:
            pc.bind(cfg.page_size, cfg.num_pool_pages)
            pc_before = (pc.hits, pc.misses)
        cache = recovered.cache
        cache.fault_injector = plan
        self._cache = cache
        metrics = ServingMetrics.from_state(snap["metrics"])
        state = RunState.from_state(snap["run_state"], requests, cache, metrics)
        metrics.recover_resumed += len(state.streams) + len(state.preempted)
        self._prefix_registry = state.prefix_registry
        admission = AdmissionController(self, state)
        admission.prefill_retries = {
            int(k): int(v) for k, v in snap["prefill_retries"].items()
        }
        t = float(snap["t"])
        if at_time is not None:
            t = max(t, float(at_time))
        self._count("recover_events")
        self._fault_event(
            "recover", "restored", t,
            detail=(
                f"snapshot {recovered.snapshot_id}, step {self._steps_done}, "
                f"{len(recovered.corrupt_pages)} pages to recompute"
            ),
        )
        self._replay = recovered.replay
        if self._replay is not None:
            self._replay.engine = self
        self._wire_checkpoint(state, admission, t, genesis=False)
        if self._journal is not None:
            self._journal.recover(recovered.snapshot_id, t)
        return self._serve(state, admission, t, pc_before)

    def _serve(self, state, admission, t: float, pc_before) -> ServingMetrics:
        """The step loop plus end-of-run accounting, shared by
        :meth:`run` (fresh state) and :meth:`resume` (restored state)."""
        cfg = self.config
        resil = self.resilience
        plan = self.fault_plan
        requests = state.requests
        cache = state.cache
        pc = self.plan_cache
        former = BatchFormer(self, state, admission)
        executor = StepExecutor(self, state)
        post = Postprocessor(self, state, executor)
        scrubber = KVScrubber(self, state, admission) if self._degrade is not None else None
        metrics = state.metrics
        default_deadline = resil.deadline if resil is not None else None

        while state.has_work():
            if self._crash_armed:
                self._maybe_crash(t, "boundary")
            admission.admit(t)
            if self._handoff_imports:
                admission.absorb_handoffs(t)
            self._policy.order(
                state.prefill_queue, requests, t, default_deadline=default_deadline
            )
            if self.brownout is not None:
                self._brownout_step(state, admission, t)
            if self._degrade is not None:
                if self._deadlines_active:
                    admission.shed_expired(t)
                if resil.checksums:
                    scrubber.scrub(t)
            t_before = t
            step = None
            if state.preempted and admission.fits_resume(state.preempted[0]):
                # Preempted streams resume first (their KV is recomputed).
                step = former.form_resume(t)
            elif cfg.chunked_prefill and (
                state.prefill_queue or state.prefilling or state.streams
            ):
                step = former.form_mixed(t)
            elif (
                not cfg.chunked_prefill
                and state.prefill_queue
                and admission.fits(requests[state.prefill_queue[0]].prompt_len)
            ):
                step = former.form_prefill(t)
            elif not cfg.chunked_prefill and state.streams:
                step = former.form_decode(t)
            elif state.preempted or state.prefill_queue:
                if self._degrade is not None and resil.shed_on_overload:
                    admission.shed_overload(t)
                    continue
                # Capacity-blocked with nothing running to free pages.
                raise OutOfPagesError(
                    "KV pool cannot hold the next prompt even with no other "
                    "work running; increase EngineConfig.num_pool_pages "
                    f"({cache._stats_brief()})"
                )
            elif state.waiting:
                t_next = max(t, requests[state.waiting[0]].arrival)
                if self._tracer is not None and t_next > t:
                    post._emit_idle(t, t_next)
                t = t_next
                continue
            else:
                break
            if step is not None:
                # A None step means everything alloc-faulted away; the
                # end-of-step resilience hooks below still run.
                t0, t, attn = executor.execute(step, t)
                if self._crash_armed:
                    # Mid-step death: the priced-but-unapplied step is
                    # lost, exactly like a process dying between kernels.
                    self._maybe_crash(t, "mid-step")
                post.finalize(step, t0, t, attn)
                self._steps_done += 1
                if self.heartbeat is not None:
                    self.heartbeat(t)
            if self._degrade is not None:
                if resil.step_budget is not None and (t - t_before) > resil.step_budget:
                    self._count("watchdog_flags")
                    self._fault_event(
                        "watchdog", "flagged", t,
                        detail=f"step took {t - t_before:.6f}s > {resil.step_budget:.6f}s",
                    )
                scrubber.inject(t)
            if self._ckpt is not None and step is not None:
                self._ckpt.on_step_end(t)
        metrics.total_time = t
        if self.track_pressure:
            metrics.admission_pressure_mean = admission.pressure_mean(t)
        if self._journal is not None:
            self._journal.complete(t)
        if pc is not None:
            metrics.plan_cache_stats = pc.stats(since=pc_before)
        if cfg.prefix_cache:
            metrics.prefix_stats = self._prefix_stats(metrics, state)
        if self._tracer is not None:
            if pc is not None:
                self._tracer.note_plan_cache(
                    pc.hits - pc_before[0], pc.misses - pc_before[1]
                )
            metrics.step_stats = self._tracer.counters()
        if self._degrade is not None:
            metrics.fault_stats = self._fault_stats(plan, metrics)
            if plan is not None:
                self.backend.set_fault_injector(None)
        return metrics
