"""Continuous-batching LLM serving engine (the §4.1/§4.3/§4.4 harness).

A minimal Orca/SGLang-style engine over the simulated GPU: requests arrive
on a Poisson process, prompts are prefilled in token-budgeted batches,
decode steps run all live streams together, and per-step time is

    layers × (attention(backend) + GEMMs(roofline) + allreduce(TP))
      + LM head + framework overhead

with only the attention term differing across backends — isolating exactly
the variable the paper's end-to-end experiments vary.

Parallel generation (§4.4, the OpenAI ``n`` parameter) forks each prefilled
prompt into ``n`` decode streams sharing the prompt's KV pages; with
``composable=True`` the decode attention is decomposed into a shared-prefix
format plus per-stream suffixes (§3.1.2).

Resilience (``fault_plan``/``resilience``): with a
:class:`repro.faults.FaultPlan` attached the engine injects transient
kernel faults, CTA stragglers, KV-page corruption and page-allocation
hiccups, and recovers via bounded retry-with-recompute (re-prefill from
the last verified page over the preemption machinery), request deadlines
with youngest-first load shedding, and graceful degradation to the dense
baseline backend.  With neither argument set every fault-path guard is a
single ``is None`` check and the step loop is unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.kernels import HeadConfig
from repro.faults.plan import FaultPlan
from repro.faults.recover import DegradeController, ResilienceConfig
from repro.gpu.executor import KernelFault
from repro.gpu.spec import GPUSpec
from repro.kvcache.paged import OutOfPagesError, PagedKVCache, TransientAllocFault
from repro.obs.events import FaultEvent, KernelRecord, StepEvent
from repro.obs.tracer import StepTracer
from repro.serving.backends import AttentionBackend, TritonBackend
from repro.serving.metrics import RequestTrace, ServingMetrics
from repro.serving.model import ModelConfig
from repro.serving.workload import Request
from repro.sparse.composable import ComposableFormat, PrefixCluster, decompose_shared_prefix
from repro.sparse.layout import AttentionMapping

#: Vocabulary size of the deterministic token model; tokens decoded from a
#: corrupted sequence with detection off are offset by this (the "taint"
#: marker the negative-control tests look for).
_TOKEN_VOCAB = 50257


def _token(req_idx: int, gen_index: int, pos: int) -> int:
    """Deterministic stand-in for a sampled token id.

    A pure function of (request, generation stream, position), so any two
    runs — faulty or not — that complete a stream must produce identical
    token sequences unless corrupted KV leaked into decoding.
    """
    h = req_idx * 1000003 + gen_index * 8191 + pos * 2654435761
    return (h & 0x7FFFFFFF) % _TOKEN_VOCAB


@dataclass
class EngineConfig:
    """Engine policy knobs."""

    page_size: int = 16
    max_running: int = 128  # concurrent decode streams
    max_prefill_tokens: int = 8192  # token budget per prefill batch
    tensor_parallel: int = 1
    num_pool_pages: int = 1 << 16
    composable: bool = False  # composable formats for fork groups (§4.4)
    scheduler_overhead: float = 30e-6  # host batching/sampling per step
    #: Sarathi-serve-style chunked prefill: prompts are prefilled in
    #: ``prefill_chunk_size``-token chunks piggybacked onto decode steps,
    #: bounding the ITL spikes long prompts otherwise cause (§5.4).
    chunked_prefill: bool = False
    prefill_chunk_size: int = 512
    #: Radix-style cross-request prefix caching: requests declaring a
    #: shared ``prefix_group`` reuse the group's cached prompt pages and
    #: prefill only their unique suffix (§5.4, RadixAttention).
    prefix_caching: bool = False


class _Stream:
    """One decode stream (a single generation of a request)."""

    __slots__ = (
        "req_idx", "seq_id", "remaining", "trace", "resume_len",
        "gen_index", "retries", "deadline",
    )

    def __init__(
        self,
        req_idx: int,
        seq_id: int,
        remaining: int,
        trace: RequestTrace,
        gen_index: int = 0,
        deadline: Optional[float] = None,
    ):
        self.req_idx = req_idx
        self.seq_id = seq_id  # -1 while preempted with all pages freed
        self.remaining = remaining
        self.trace = trace
        self.resume_len = 0  # KV length to recompute after preemption
        self.gen_index = gen_index
        self.retries = 0  # recompute retries consumed (rollback/alloc)
        self.deadline = deadline  # absolute shed time, or None


class _PartialPrefill:
    """A prompt being prefilled chunk by chunk."""

    __slots__ = ("req_idx", "seq_id", "filled")

    def __init__(self, req_idx: int, seq_id: int):
        self.req_idx = req_idx
        self.seq_id = seq_id
        self.filled = 0


class ServingEngine:
    """Simulated continuous-batching server."""

    def __init__(
        self,
        model: ModelConfig,
        backend: AttentionBackend,
        gpu: GPUSpec,
        config: Optional[EngineConfig] = None,
        tracer: Optional[StepTracer] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        self.model = model
        self.backend = backend
        self.gpu = gpu
        self.config = config or EngineConfig()
        #: Optional :class:`repro.obs.StepTracer`; when ``None`` the step
        #: loop allocates no event objects (a single ``is None`` check).
        self.tracer = tracer
        #: Fault-injection schedule; attaching one implies a default
        #: :class:`ResilienceConfig` unless ``resilience`` is also given.
        self.fault_plan = fault_plan
        if resilience is None and fault_plan is not None:
            resilience = ResilienceConfig()
        self.resilience = resilience
        self._tracer: Optional[StepTracer] = None
        self._event_index = 0
        self._step_prefix_hits = 0
        # Run-scoped resilience state.  ``_degrade is None`` ⇔ plain run:
        # it is the single sentinel every fault-path guard checks.
        self._degrade: Optional[DegradeController] = None
        self._fallback_backend: Optional[AttentionBackend] = None
        self._step_backend: Optional[AttentionBackend] = None
        self._step_degraded = False
        self._fault_penalty = 0.0
        self._fault_counters: Dict[str, int] = {}
        self._prefill_retries: Dict[int, int] = {}
        self._taint = False
        self._deadlines_active = False
        self._cache: Optional[PagedKVCache] = None
        self.heads = HeadConfig(
            model.num_qo_heads // self.config.tensor_parallel
            if model.num_qo_heads % self.config.tensor_parallel == 0
            else model.num_qo_heads,
            max(model.num_kv_heads // self.config.tensor_parallel, 1),
            model.head_dim,
        )
        if backend.heads != self.heads:
            raise ValueError(
                f"backend heads {backend.heads} != engine shard heads {self.heads}; "
                f"construct the backend with the per-shard head config"
            )

    # -- step-time assembly ---------------------------------------------------

    def _step_time(self, attn_per_layer: float, num_tokens: int) -> float:
        m, cfg = self.model, self.config
        ch = self.backend.characteristics
        layer = (
            attn_per_layer
            + m.layer_nonattn_time(num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + m.allreduce_time(num_tokens, cfg.tensor_parallel, ch.allreduce_efficiency)
        )
        total = (
            m.num_layers * layer
            + m.lm_head_time(num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + self.backend.step_overhead(m.num_layers, self.gpu)
            + cfg.scheduler_overhead
        )
        if self._fault_penalty:
            total += self._fault_penalty  # host-observed kernel retries
        return total

    def _step_components(self, attn_per_layer: float, num_tokens: int) -> dict:
        """The terms of :meth:`_step_time` itemized for tracing; the values
        sum to the step duration (same arithmetic, regrouped)."""
        m, cfg = self.model, self.config
        ch = self.backend.characteristics
        overhead = (
            self.backend.step_overhead(m.num_layers, self.gpu) + cfg.scheduler_overhead
        )
        if self._fault_penalty:
            overhead += self._fault_penalty
        return {
            "attention": m.num_layers * attn_per_layer,
            "gemm": m.num_layers * m.layer_nonattn_time(
                num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "allreduce": m.num_layers * m.allreduce_time(
                num_tokens, cfg.tensor_parallel, ch.allreduce_efficiency
            ),
            "lm_head": m.lm_head_time(
                num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "overhead": overhead,
        }

    # -- tracing ----------------------------------------------------------------

    def _emit_step(
        self, kind, t_start, t_end, attn_per_layer, prefill_tokens,
        decode_tokens, num_streams, cache, preemptions,
    ) -> None:
        """Record one :class:`StepEvent`; called only when tracing is on."""
        tracer = self._tracer
        event = StepEvent(
            index=self._event_index,
            kind=kind,
            t_start=t_start,
            t_end=t_end,
            num_prefill_tokens=prefill_tokens,
            num_decode_tokens=decode_tokens,
            num_streams=num_streams,
            breakdown=self._step_components(
                attn_per_layer, prefill_tokens + decode_tokens
            ),
            kv_free_pages=cache.num_free_pages,
            kv_used_pages=cache.num_used_pages,
            preemptions=preemptions,
            prefix_cache_hits=self._step_prefix_hits,
        )
        if self._degrade is not None and self._step_degraded:
            event.degraded = True
        if tracer.capture_kernels:
            backend = self.backend
            if self._degrade is not None and self._step_backend is not None:
                backend = self._step_backend
            event.kernels = [
                KernelRecord.from_report(name, kind, report)
                for name, report in backend.pop_kernel_reports()
            ]
        self._event_index += 1
        self._step_prefix_hits = 0
        tracer.on_step(event)

    def _emit_idle(self, t_start: float, t_end: float) -> None:
        self._tracer.on_step(
            StepEvent(index=self._event_index, kind="idle", t_start=t_start, t_end=t_end)
        )
        self._event_index += 1

    # -- fault bookkeeping ------------------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        self._fault_counters[key] = self._fault_counters.get(key, 0) + n

    def _fault_event(
        self, site: str, action: str, t: float, req_id: int = -1, detail: str = ""
    ) -> None:
        if self._tracer is not None:
            self._tracer.on_fault(
                FaultEvent(
                    site=site, action=action, t=t,
                    step_index=self._event_index, req_id=req_id, detail=detail,
                )
            )

    def _deadline_for(self, req: Request) -> Optional[float]:
        rel = req.deadline if req.deadline is not None else self.resilience.deadline
        return None if rel is None else req.arrival + rel

    def _fallback(self) -> AttentionBackend:
        """The degraded-mode backend: a dense baseline with no injector
        attached, so its launches cannot fault."""
        fb = self._fallback_backend
        if fb is None:
            fb = TritonBackend(self.heads, self.gpu)
            self._fallback_backend = fb
        fb.collect_kernel_reports = self.backend.collect_kernel_reports
        return fb

    def _attention(
        self,
        formats: "ComposableFormat | AttentionMapping",
        decode: bool,
        t: float,
        fallback_mapping: Optional[AttentionMapping] = None,
    ) -> float:
        """One step's attention with retry / degradation around the backend.

        Plain runs take the first branch: a direct backend call."""
        if self._degrade is None:
            return self.backend.attention_time(formats, decode)
        resil = self.resilience
        ctrl = self._degrade
        self._fault_penalty = 0.0
        self._step_backend = self.backend
        self._step_degraded = False
        # Stragglers stretch a CTA inside the executor without raising, so
        # the engine surfaces them by diffing the plan's fired counter.
        plan = self.fault_plan
        stragglers_before = plan.injected["straggler"] if plan is not None else 0
        if ctrl.degraded:
            fb = self._fallback()
            attn = fb.attention_time(formats, decode)
            self._step_backend = fb
            self._step_degraded = True
            self._count("degraded_steps")
            if ctrl.on_clean_step():
                self._fault_event(
                    "degrade", "annealed", t,
                    detail=f"{ctrl.anneal_after} clean degraded steps",
                )
            self._note_stragglers(stragglers_before, t)
            return attn
        faults = 0
        while True:
            try:
                attn = self.backend.attention_time(formats, decode)
                break
            except KernelFault as exc:
                faults += 1
                self._fault_penalty += resil.fault_latency
                self._count("kernel_faults")
                self._fault_event("kernel", "injected", t, detail=str(exc)[:120])
                if ctrl.on_kernel_fault():
                    self._fault_event(
                        "degrade", "degraded", t,
                        detail=f"{ctrl.degrade_after} kernel-fault strikes",
                    )
                elif faults > resil.max_kernel_retries and ctrl.force_degrade():
                    self._fault_event(
                        "degrade", "degraded", t,
                        detail="per-step kernel retry budget exhausted",
                    )
                if ctrl.degraded:
                    # Final, guaranteed-clean attempt on the fallback.
                    fb = self._fallback()
                    mapping = fallback_mapping if fallback_mapping is not None else formats
                    attn = fb.attention_time(mapping, decode)
                    self._step_backend = fb
                    self._step_degraded = True
                    self._count("degraded_steps")
                    break
                self._count("retries")
                self._fault_event("kernel", "retry", t, detail=f"attempt {faults + 1}")
        if faults == 0:
            ctrl.on_clean_step()
        self._note_stragglers(stragglers_before, t)
        return attn

    def _note_stragglers(self, before: int, t: float) -> None:
        """Trace straggler injections that fired during this step's
        launches; their latency cost is already inside the simulated
        makespan, so no recovery action is needed."""
        plan = self.fault_plan
        if plan is None:
            return
        for _ in range(plan.injected["straggler"] - before):
            self._fault_event(
                "straggler", "injected", t,
                detail=f"CTA serial+memory streams x{plan.straggler_factor:g}",
            )

    # -- shedding / scrubbing ----------------------------------------------------

    def _shed_queued(
        self, req: Request, idx: int, gen: int, t: float,
        metrics: ServingMetrics, reason: str,
    ) -> None:
        """Shed a generation that never produced a token."""
        trace = RequestTrace(
            arrival=req.arrival, first_token_time=t,
            req_id=idx, gen_index=gen, outcome_reason=reason,
        )
        metrics.shed(trace)
        self._count("sheds")
        self._fault_event(reason, "shed", t, req_id=idx, detail=f"gen {gen}")

    def _shed_stream(
        self, s: _Stream, t: float, metrics: ServingMetrics, reason: str
    ) -> None:
        s.trace.outcome_reason = reason
        metrics.shed(s.trace)
        self._count("sheds")
        self._fault_event(reason, "shed", t, req_id=s.req_idx, detail=f"gen {s.gen_index}")

    def _shed_expired(
        self, t, requests, prefill_queue, prefilling, streams, preempted,
        cache, metrics,
    ) -> None:
        """Deterministic deadline shedding: drop every unit of work whose
        absolute deadline has passed, scanning queues in a fixed order."""

        def expired(req: Request) -> bool:
            dl = self._deadline_for(req)
            return dl is not None and t > dl

        for idx in [i for i in prefill_queue if expired(requests[i])]:
            prefill_queue.remove(idx)
            req = requests[idx]
            for j in range(req.n):
                self._shed_queued(req, idx, j, t, metrics, "deadline")
        for pp in [p for p in prefilling if expired(requests[p.req_idx])]:
            prefilling.remove(pp)
            cache.free_seq(pp.seq_id)
            req = requests[pp.req_idx]
            for j in range(req.n):
                self._shed_queued(req, pp.req_idx, j, t, metrics, "deadline")
        for s in [s for s in streams if s.deadline is not None and t > s.deadline]:
            streams.remove(s)
            cache.free_seq(s.seq_id)
            self._shed_stream(s, t, metrics, "deadline")
        for s in [s for s in preempted if s.deadline is not None and t > s.deadline]:
            preempted.remove(s)
            if s.seq_id >= 0:
                cache.free_seq(s.seq_id)
            self._shed_stream(s, t, metrics, "deadline")

    def _shed_overload(
        self, t, requests, prefill_queue, preempted, cache, metrics
    ) -> None:
        """Capacity-blocked with nothing running: shed the youngest unit of
        queued work instead of aborting the whole run."""
        if prefill_queue:
            idx = prefill_queue.pop()  # youngest admitted request
            req = requests[idx]
            for j in range(req.n):
                self._shed_queued(req, idx, j, t, metrics, "overload")
        else:
            s = preempted.pop()  # youngest preempted stream
            if s.seq_id >= 0:
                cache.free_seq(s.seq_id)
                s.seq_id = -1
            self._shed_stream(s, t, metrics, "overload")

    def _scrub(
        self, t, requests, prefill_queue, prefilling, streams, preempted,
        cache, metrics,
    ) -> None:
        """Detect corrupted pages and roll their owners back.

        Runs at the top of every step, before any extend/COW can copy a
        corrupted page: a stream holding one is truncated to its last
        verified page boundary and re-prefills the rest (recompute) through
        the preemption machinery; cached prefixes are evicted; partial
        prefills restart.  Per-stream retries are bounded; exceeding the
        bound sheds the stream.
        """
        bad = cache.find_corrupted()
        if not bad:
            return
        bad_set = set(bad)
        resil = self.resilience
        self._count("checksum_failures", len(bad))
        self._fault_event("corrupt", "detected", t, detail=f"pages {bad}")
        for group, (pages, _length) in list(self._prefix_registry.items()):
            if bad_set.intersection(pages):
                cache.release_pages(pages)
                del self._prefix_registry[group]
        for pp in [p for p in prefilling if bad_set.intersection(cache.seq_pages(p.seq_id))]:
            prefilling.remove(pp)
            cache.free_seq(pp.seq_id)
            req = requests[pp.req_idx]
            n_retry = self._prefill_retries.get(pp.req_idx, 0) + 1
            self._prefill_retries[pp.req_idx] = n_retry
            if n_retry > resil.max_retries:
                for j in range(req.n):
                    self._shed_queued(req, pp.req_idx, j, t, metrics, "retries")
            else:
                self._count("retries")
                self._fault_event("corrupt", "retry", t, req_id=pp.req_idx,
                                  detail="partial prefill restarted")
                prefill_queue.appendleft(pp.req_idx)
        for s in [s for s in streams if bad_set.intersection(cache.seq_pages(s.seq_id))]:
            streams.remove(s)
            self._rollback_stream(s, bad_set, t, preempted, cache, metrics)
        for s in [
            s for s in preempted
            if s.seq_id >= 0 and bad_set.intersection(cache.seq_pages(s.seq_id))
        ]:
            preempted.remove(s)
            self._rollback_stream(s, bad_set, t, preempted, cache, metrics)

    def _rollback_stream(
        self, s: _Stream, bad_set, t, preempted, cache, metrics
    ) -> None:
        """Truncate a corrupted stream to its last verified page boundary
        and queue the recompute, or shed it if its retry budget is spent."""
        pages = cache.seq_pages(s.seq_id)
        first_bad = min(i for i, p in enumerate(pages) if p in bad_set)
        keep = first_bad * cache.page_size
        s.resume_len = max(cache.seq_len(s.seq_id), s.resume_len)
        if keep > 0:
            cache.truncate(s.seq_id, keep)
        else:
            cache.free_seq(s.seq_id)
            s.seq_id = -1
        s.retries += 1
        if s.retries > self.resilience.max_retries:
            if s.seq_id >= 0:
                cache.free_seq(s.seq_id)
                s.seq_id = -1
            self._shed_stream(s, t, metrics, "retries")
        else:
            self._count("retries")
            self._fault_event(
                "corrupt", "retry", t, req_id=s.req_idx,
                detail=f"rolled back to {keep}/{s.resume_len} tokens",
            )
            preempted.append(s)

    def _inject_corruption(self, cache: PagedKVCache, t: float) -> None:
        """End-of-step KV corruption: pick a live page from the plan's
        ``corrupt`` stream.  The scrub at the top of the next step (or the
        taint path, when detection is off) observes it."""
        plan = self.fault_plan
        if plan is None:
            return
        used = cache.used_pages()
        if not used:
            return
        if plan.fire("corrupt"):
            page = used[plan.choose("corrupt", len(used))]
            cache.corrupt_page(page)
            self._fault_event("corrupt", "injected", t, detail=f"page {page}")

    def _record_token(self, s: _Stream, cache: PagedKVCache) -> None:
        tok = _token(s.req_idx, s.gen_index, len(s.trace.tokens))
        if self._taint and s.seq_id >= 0 and cache.seq_is_corrupt(s.seq_id):
            tok += _TOKEN_VOCAB  # decoded from corrupted KV, undetected
        s.trace.tokens.append(tok)

    def _spawn_stream(
        self, req: Request, idx: int, gen: int, seq_id: int, t: float,
        cache, streams, metrics,
    ) -> None:
        trace = RequestTrace(arrival=req.arrival, first_token_time=t)
        stream = _Stream(idx, seq_id, req.output_len - 1, trace)
        if self._degrade is not None:
            trace.req_id = idx
            trace.gen_index = gen
            stream.gen_index = gen
            stream.deadline = self._deadline_for(req)
            if self.resilience.record_tokens:
                trace.tokens = [_token(idx, gen, 0)]
        streams.append(stream)
        if req.output_len - 1 == 0:
            self._finish(stream, cache, streams, metrics)

    def _fault_stats(self, plan: Optional[FaultPlan], metrics: ServingMetrics) -> Dict[str, float]:
        c = self._fault_counters
        stats = {
            "faults_injected": float(plan.total_injected) if plan is not None else 0.0,
            "kernel_faults": float(c.get("kernel_faults", 0)),
            "alloc_faults": float(c.get("alloc_faults", 0)),
            "retries": float(c.get("retries", 0)),
            "sheds": float(metrics.sheds),
            "degraded_steps": float(c.get("degraded_steps", 0)),
            "checksum_failures": float(c.get("checksum_failures", 0)),
            "watchdog_flags": float(c.get("watchdog_flags", 0)),
            "degrade_events": float(self._degrade.degrade_events),
            "anneal_events": float(self._degrade.anneal_events),
        }
        if plan is not None:
            for site, n in plan.injected.items():
                stats[f"injected_{site}"] = float(n)
        return stats

    # -- main loop --------------------------------------------------------------

    def run(
        self, requests: Sequence[Request], tracer: Optional[StepTracer] = None
    ) -> ServingMetrics:
        """Serve ``requests`` to completion; returns latency metrics.

        ``tracer`` (or the one passed at construction) receives one
        :class:`repro.obs.StepEvent` per step; with no tracer the loop runs
        exactly as before — no event objects are allocated.
        """
        cfg = self.config
        resil = self.resilience
        plan = self.fault_plan
        self._tracer = tracer if tracer is not None else self.tracer
        self._event_index = 0
        self._step_prefix_hits = 0
        self.backend.collect_kernel_reports = (
            self._tracer is not None and self._tracer.capture_kernels
        )
        requests = sorted(requests, key=lambda r: r.arrival)
        resil_on = resil is not None
        if resil_on:
            self._degrade = DegradeController(resil.degrade_after, resil.anneal_after)
            self._fault_counters = {}
            self._prefill_retries = {}
            self._fault_penalty = 0.0
            self._step_backend = self.backend
            self._step_degraded = False
            self._taint = plan is not None and not resil.checksums
            self._deadlines_active = resil.deadline is not None or any(
                r.deadline is not None for r in requests
            )
            if plan is not None:
                plan.reset()
            self.backend.set_fault_injector(plan)
        else:
            self._degrade = None
        cache = PagedKVCache(
            cfg.num_pool_pages, cfg.page_size, self.heads.num_kv_heads,
            self.heads.head_dim, materialize=False,
            checksums=resil_on and resil.checksums,
        )
        if resil_on:
            cache.fault_injector = plan
        self._cache = cache
        #: prefix_group → (cached pages, cached token count), page-aligned.
        self._prefix_registry: dict = {}
        metrics = ServingMetrics()
        waiting: Deque[int] = deque(range(len(requests)))
        prefill_queue: Deque[int] = deque()
        streams: List[_Stream] = []
        prefilling: Deque[_PartialPrefill] = deque()
        preempted: Deque[_Stream] = deque()
        t = 0.0

        def admit() -> None:
            while waiting and requests[waiting[0]].arrival <= t:
                idx = waiting[0]
                if len(streams) + len(prefill_queue) + requests[idx].n > cfg.max_running:
                    break
                prefill_queue.append(idx)
                waiting.popleft()

        def fits(tokens: int) -> bool:
            """Admission control: keep one page of decode headroom per
            live stream so prefill cannot starve running decodes."""
            need = -(-tokens // cfg.page_size) + len(streams)
            return cache.num_free_pages >= need

        def fits_resume(s: _Stream) -> bool:
            if s.seq_id >= 0:
                # Partial rollback: only the truncated tail needs pages.
                need = (
                    -(-s.resume_len // cfg.page_size)
                    - len(cache.seq_pages(s.seq_id))
                    + len(streams)
                )
                return cache.num_free_pages >= need
            return fits(s.resume_len)

        while waiting or prefill_queue or prefilling or streams or preempted:
            admit()
            if self._degrade is not None:
                if self._deadlines_active:
                    self._shed_expired(
                        t, requests, prefill_queue, prefilling, streams,
                        preempted, cache, metrics,
                    )
                if resil.checksums:
                    self._scrub(
                        t, requests, prefill_queue, prefilling, streams,
                        preempted, cache, metrics,
                    )
            t_before = t
            if preempted and fits_resume(preempted[0]):
                # Preempted streams resume first (their KV is recomputed).
                t = self._resume_step(t, preempted, cache, streams, metrics)
            elif cfg.chunked_prefill and (prefill_queue or prefilling or streams):
                t = self._mixed_step(
                    t, requests, prefill_queue, prefilling, cache, streams,
                    metrics, preempted,
                )
            elif (
                not cfg.chunked_prefill
                and prefill_queue
                and fits(requests[prefill_queue[0]].prompt_len)
            ):
                t = self._prefill_step(t, requests, prefill_queue, cache, streams, metrics)
            elif not cfg.chunked_prefill and streams:
                t = self._decode_step(t, requests, cache, streams, metrics, preempted)
            elif preempted or prefill_queue:
                if self._degrade is not None and resil.shed_on_overload:
                    self._shed_overload(t, requests, prefill_queue, preempted, cache, metrics)
                    continue
                # Capacity-blocked with nothing running to free pages.
                raise OutOfPagesError(
                    "KV pool cannot hold the next prompt even with no other "
                    "work running; increase EngineConfig.num_pool_pages "
                    f"({cache._stats_brief()})"
                )
            elif waiting:
                t_next = max(t, requests[waiting[0]].arrival)
                if self._tracer is not None and t_next > t:
                    self._emit_idle(t, t_next)
                t = t_next
                continue
            else:
                break
            if self._degrade is not None:
                if resil.step_budget is not None and (t - t_before) > resil.step_budget:
                    self._count("watchdog_flags")
                    self._fault_event(
                        "watchdog", "flagged", t,
                        detail=f"step took {t - t_before:.6f}s > {resil.step_budget:.6f}s",
                    )
                self._inject_corruption(cache, t)
        metrics.total_time = t
        if self._tracer is not None:
            metrics.step_stats = self._tracer.counters()
        if self._degrade is not None:
            metrics.fault_stats = self._fault_stats(plan, metrics)
            if plan is not None:
                self.backend.set_fault_injector(None)
        return metrics

    # -- phases --------------------------------------------------------------------

    def _cached_prefix(self, req: Request):
        """Cached (pages, token count) usable by ``req``, if any.

        The reusable length is capped below the full prompt — the last
        token's logits must always be computed fresh.
        """
        cfg = self.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return None
        entry = self._prefix_registry.get(req.prefix_group)
        if entry is None:
            return None
        pages, cached_len = entry
        usable = min(cached_len, ((req.prompt_len - 1) // cfg.page_size) * cfg.page_size)
        if usable <= 0:
            return None
        return pages[: usable // cfg.page_size], usable

    def _register_prefix(self, req: Request, cache: PagedKVCache, seq_id: int) -> None:
        """Cache a freshly prefilled request's shared-prefix pages."""
        cfg = self.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return
        if req.prefix_group in self._prefix_registry:
            return
        aligned = (req.prefix_len // cfg.page_size) * cfg.page_size
        if aligned < cfg.page_size:
            return
        pages = cache.seq_pages(seq_id)[: aligned // cfg.page_size]
        cache.retain_pages(pages)
        self._prefix_registry[req.prefix_group] = (pages, aligned)

    def _start_prefill_seq(self, cache: PagedKVCache, req: Request):
        """Create a sequence for ``req``, reusing cached prefix pages.

        Returns ``(seq_id, tokens_to_prefill)``.
        """
        hit = self._cached_prefix(req)
        if hit is not None:
            pages, cached = hit
            sid = cache.new_seq(shared_pages=pages, shared_len=cached)
            self._step_prefix_hits += 1
            return sid, req.prompt_len - cached
        return cache.new_seq(), req.prompt_len

    def _requeue_alloc_failed(
        self, idx: int, t: float, prefill_queue, requests, metrics
    ) -> None:
        """A queued prompt hit a transient allocation fault: retry it at the
        head of the queue, or shed it once its retry budget is spent."""
        self._count("alloc_faults")
        self._fault_event("alloc", "injected", t, req_id=idx)
        n_retry = self._prefill_retries.get(idx, 0) + 1
        self._prefill_retries[idx] = n_retry
        if n_retry > self.resilience.max_retries:
            req = requests[idx]
            for j in range(req.n):
                self._shed_queued(req, idx, j, t, metrics, "retries")
        else:
            self._count("retries")
            self._fault_event("alloc", "retry", t, req_id=idx)
            prefill_queue.appendleft(idx)

    def _prefill_step(
        self, t, requests, prefill_queue, cache, streams, metrics
    ) -> float:
        cfg = self.config
        batch: List[int] = []
        tokens = 0
        pages_left = cache.num_free_pages - len(streams)  # decode headroom
        while prefill_queue and (
            not batch or tokens + requests[prefill_queue[0]].prompt_len <= cfg.max_prefill_tokens
        ):
            nxt = requests[prefill_queue[0]].prompt_len
            need = -(-nxt // cfg.page_size)
            if batch and need > pages_left:
                break
            idx = prefill_queue.popleft()
            batch.append(idx)
            tokens += nxt
            pages_left -= need

        ok_batch: List[int] = []
        seqs = []
        qo_lens = []
        for idx in batch:
            sid, new_tokens = self._start_prefill_seq(cache, requests[idx])
            try:
                cache.extend(sid, new_tokens)
            except TransientAllocFault:
                cache.free_seq(sid)
                self._requeue_alloc_failed(idx, t, prefill_queue, requests, metrics)
                continue
            self._register_prefix(requests[idx], cache, sid)
            ok_batch.append(idx)
            seqs.append(sid)
            qo_lens.append(new_tokens)
        if not seqs:
            return t
        tokens = sum(qo_lens)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seqs),
            causal=True,
        )
        attn = self._attention(mapping, decode=False, t=t)
        t0, t = t, t + self._step_time(attn, tokens)

        for idx, sid in zip(ok_batch, seqs):
            req = requests[idx]
            for j in range(req.n):
                stream_seq = sid if j == req.n - 1 else cache.fork_seq(sid)
                self._spawn_stream(req, idx, j, stream_seq, t, cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "prefill", t0, t, attn, tokens, 0, len(streams), cache, 0
            )
        return t

    def _mixed_step(
        self, t, requests, prefill_queue, prefilling, cache, streams,
        metrics, preempted=None,
    ) -> float:
        """One chunked-prefill step: all decode streams plus up to
        ``prefill_chunk_size`` prompt tokens piggybacked (Sarathi-serve)."""
        cfg = self.config
        preempt_before = metrics.preemptions
        self._ensure_decode_capacity(cache, streams, metrics, preempted)
        alloc_failed: List[_Stream] = []
        for s in streams:
            try:
                cache.extend(s.seq_id, 1)
            except TransientAllocFault:
                alloc_failed.append(s)
        for s in alloc_failed:
            self._preempt_alloc_failed(s, t, streams, preempted, cache, metrics)

        budget = cfg.prefill_chunk_size
        segments: List[tuple] = []  # (_PartialPrefill, chunk)
        while budget > 0:
            if not prefilling:
                if not prefill_queue:
                    break
                idx = prefill_queue.popleft()
                sid, _ = self._start_prefill_seq(cache, requests[idx])
                pp = _PartialPrefill(idx, sid)
                pp.filled = cache.seq_len(sid)  # cached prefix already present
                prefilling.append(pp)
            pp = prefilling[0]
            remaining = requests[pp.req_idx].prompt_len - pp.filled
            chunk = min(budget, remaining)
            # Admission control: leave decode headroom (one page/stream).
            need = -(-chunk // cfg.page_size) + 1
            headroom = cache.num_free_pages - len(streams)
            if need > headroom:
                chunk = max((headroom - 1) * cfg.page_size, 0)
                if chunk == 0:
                    break
            pre_len = cache.seq_len(pp.seq_id)
            try:
                cache.extend(pp.seq_id, chunk)
            except TransientAllocFault:
                cache.truncate(pp.seq_id, pre_len)  # drop partial growth
                self._chunk_alloc_failed(pp, t, prefilling, requests, metrics)
                break
            segments.append((pp, chunk))
            budget -= chunk
            pp.filled += chunk
            if pp.filled == requests[pp.req_idx].prompt_len:
                self._register_prefix(requests[pp.req_idx], cache, pp.seq_id)
                prefilling.popleft()
            else:
                break  # the partial prompt keeps the head of the queue

        if self._degrade is not None and not streams and not segments:
            return t
        seq_ids = [s.seq_id for s in streams] + [pp.seq_id for pp, _ in segments]
        qo_lens = [1] * len(streams) + [chunk for _, chunk in segments]
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: "ComposableFormat | AttentionMapping" = mapping
        if cfg.composable and self.backend.supports_composable and not self._step_is_degraded():
            clusters = self._fork_clusters(requests, streams, cache)
            if clusters:
                formats = decompose_shared_prefix(mapping, clusters)
        attn = self._attention(formats, decode=not segments, t=t, fallback_mapping=mapping)
        prefill_tokens = sum(chunk for _, chunk in segments)
        n_decode = len(streams)
        t0, t = t, t + self._step_time(attn, n_decode + prefill_tokens)

        # Prompts whose last chunk landed this step start decoding.
        for pp, _ in segments:
            req = requests[pp.req_idx]
            if pp.filled == req.prompt_len:
                for j in range(req.n):
                    sid = pp.seq_id if j == req.n - 1 else cache.fork_seq(pp.seq_id)
                    self._spawn_stream(req, pp.req_idx, j, sid, t, cache, streams, metrics)

        finished = []
        record = self._degrade is not None and self.resilience.record_tokens
        for s in streams:
            if s.trace.first_token_time == t:
                continue  # spawned this step; first decode token comes next
            s.trace.token_times.append(t)
            if record:
                self._record_token(s, cache)
            s.remaining -= 1
            if s.remaining <= 0:
                finished.append(s)
        for s in finished:
            self._finish(s, cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "mixed", t0, t, attn, prefill_tokens, n_decode, len(streams),
                cache, metrics.preemptions - preempt_before,
            )
        return t

    def _step_is_degraded(self) -> bool:
        return self._degrade is not None and self._degrade.degraded

    def _preempt_alloc_failed(
        self, s: _Stream, t, streams, preempted, cache, metrics
    ) -> None:
        """A decode extend hit a transient allocation fault: preempt the
        stream (recompute later) or shed it when out of retries."""
        self._count("alloc_faults")
        self._fault_event("alloc", "injected", t, req_id=s.req_idx)
        streams.remove(s)
        s.resume_len = cache.seq_len(s.seq_id)
        cache.free_seq(s.seq_id)
        s.seq_id = -1
        s.retries += 1
        if s.retries > self.resilience.max_retries:
            self._shed_stream(s, t, metrics, "retries")
        else:
            self._count("retries")
            self._fault_event("alloc", "retry", t, req_id=s.req_idx)
            preempted.append(s)

    def _chunk_alloc_failed(
        self, pp: _PartialPrefill, t, prefilling, requests, metrics
    ) -> None:
        """A prefill chunk hit a transient allocation fault: the partial
        prompt keeps the queue head and retries next step, unless its
        request's retry budget is spent."""
        self._count("alloc_faults")
        self._fault_event("alloc", "injected", t, req_id=pp.req_idx)
        n_retry = self._prefill_retries.get(pp.req_idx, 0) + 1
        self._prefill_retries[pp.req_idx] = n_retry
        if n_retry > self.resilience.max_retries:
            prefilling.remove(pp)
            self._cache.free_seq(pp.seq_id)
            req = requests[pp.req_idx]
            for j in range(req.n):
                self._shed_queued(req, pp.req_idx, j, t, metrics, "retries")
        else:
            self._count("retries")
            self._fault_event("alloc", "retry", t, req_id=pp.req_idx)

    def _decode_step(self, t, requests, cache, streams, metrics, preempted=None) -> float:
        cfg = self.config
        preempt_before = metrics.preemptions
        self._ensure_decode_capacity(cache, streams, metrics, preempted)
        alloc_failed: List[_Stream] = []
        for s in streams:
            try:
                cache.extend(s.seq_id, 1)
            except TransientAllocFault:
                alloc_failed.append(s)
        for s in alloc_failed:
            self._preempt_alloc_failed(s, t, streams, preempted, cache, metrics)
        if self._degrade is not None and not streams:
            return t
        seq_ids = [s.seq_id for s in streams]
        mapping = AttentionMapping(
            np.arange(len(streams) + 1, dtype=np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: "ComposableFormat | AttentionMapping" = mapping
        if cfg.composable and self.backend.supports_composable and not self._step_is_degraded():
            clusters = self._fork_clusters(requests, streams, cache)
            if clusters:
                formats = decompose_shared_prefix(mapping, clusters)
        attn = self._attention(formats, decode=True, t=t, fallback_mapping=mapping)
        n_decode = len(streams)
        t0, t = t, t + self._step_time(attn, n_decode)

        finished = []
        record = self._degrade is not None and self.resilience.record_tokens
        for s in streams:
            s.trace.token_times.append(t)
            if record:
                self._record_token(s, cache)
            s.remaining -= 1
            if s.remaining <= 0:
                finished.append(s)
        for s in finished:
            self._finish(s, cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "decode", t0, t, attn, 0, n_decode, len(streams), cache,
                metrics.preemptions - preempt_before,
            )
        return t

    def _ensure_decode_capacity(self, cache, streams, metrics, preempted) -> None:
        """Preempt-by-recompute when the page pool cannot absorb this step.

        vLLM-style backpressure: the youngest streams are evicted (their
        pages freed) and later re-prefilled from scratch; without it a
        full pool would abort the whole serving run mid-flight.
        """

        def pages_needed() -> int:
            needed = 0
            for s in streams:
                length = cache.seq_len(s.seq_id)
                if length % cache.page_size == 0:
                    needed += 1
                else:
                    last = cache.seq_pages(s.seq_id)[-1]
                    if cache.page_refcount(last) > 1:
                        needed += 1  # copy-on-write of a shared partial page
            return needed

        while cache.num_free_pages < pages_needed():
            if len(streams) <= 1:
                raise OutOfPagesError(
                    "KV pool too small for even one stream; increase "
                    f"EngineConfig.num_pool_pages ({cache._stats_brief()})"
                )
            victim = streams.pop()  # youngest stream
            victim.resume_len = cache.seq_len(victim.seq_id)
            cache.free_seq(victim.seq_id)
            victim.seq_id = -1
            if preempted is None:
                raise OutOfPagesError(
                    f"pool exhausted and preemption unavailable ({cache._stats_brief()})"
                )
            preempted.append(victim)
            metrics.preemptions += 1

    def _resume_tokens(self, s: _Stream, cache: PagedKVCache) -> int:
        """Tokens to recompute when resuming ``s``: everything after the
        verified pages a rollback kept (all of them for a full eviction)."""
        if s.seq_id >= 0:
            return s.resume_len - cache.seq_len(s.seq_id)
        return s.resume_len

    def _resume_pages(self, s: _Stream, cache: PagedKVCache) -> int:
        if s.seq_id >= 0:
            return -(-s.resume_len // cache.page_size) - len(cache.seq_pages(s.seq_id))
        return -(-s.resume_len // cache.page_size)

    def _resume_step(self, t, preempted, cache, streams, metrics) -> float:
        """Re-prefill preempted streams' KV (recompute) and resume decoding."""
        cfg = self.config
        batch: List[_Stream] = []
        tokens = 0
        pages_left = cache.num_free_pages - len(streams)
        while preempted and (
            not batch
            or tokens + self._resume_tokens(preempted[0], cache) <= cfg.max_prefill_tokens
        ):
            # Only resume what the pool can hold right now.
            need = self._resume_pages(preempted[0], cache)
            if batch and need > pages_left:
                break
            stream = preempted.popleft()
            batch.append(stream)
            tokens += self._resume_tokens(stream, cache)
            pages_left -= need
        ok: List[_Stream] = []
        qo_lens = []
        for stream in batch:
            sid = stream.seq_id if stream.seq_id >= 0 else cache.new_seq()
            kept = cache.seq_len(sid)
            recompute = stream.resume_len - kept
            try:
                cache.extend(sid, recompute)
            except TransientAllocFault:
                if stream.seq_id >= 0:
                    cache.truncate(sid, kept)
                else:
                    cache.free_seq(sid)
                self._count("alloc_faults")
                self._fault_event("alloc", "injected", t, req_id=stream.req_idx)
                stream.retries += 1
                if stream.retries > self.resilience.max_retries:
                    if stream.seq_id >= 0:
                        cache.free_seq(stream.seq_id)
                        stream.seq_id = -1
                    self._shed_stream(stream, t, metrics, "retries")
                else:
                    self._count("retries")
                    self._fault_event("alloc", "retry", t, req_id=stream.req_idx)
                    preempted.appendleft(stream)
                continue
            stream.seq_id = sid
            ok.append(stream)
            qo_lens.append(recompute)
        if not ok:
            return t
        tokens = sum(qo_lens)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout([s.seq_id for s in ok]),
            causal=True,
        )
        attn = self._attention(mapping, decode=False, t=t)
        t0, t = t, t + self._step_time(attn, tokens)
        streams.extend(ok)
        if self._tracer is not None:
            self._emit_step(
                "resume", t0, t, attn, tokens, 0, len(streams), cache, 0
            )
        return t

    def _fork_clusters(self, requests, streams, cache) -> List[PrefixCluster]:
        """Consecutive streams of the same request share its prompt pages."""
        cfg = self.config
        clusters: List[PrefixCluster] = []
        i = 0
        while i < len(streams):
            j = i
            while j + 1 < len(streams) and streams[j + 1].req_idx == streams[i].req_idx:
                j += 1
            if j > i:
                prompt = requests[streams[i].req_idx].prompt_len
                aligned = (prompt // cfg.page_size) * cfg.page_size
                if aligned >= cfg.page_size:
                    clusters.append(PrefixCluster(tuple(range(i, j + 1)), aligned))
            i = j + 1
        return clusters

    def _finish(self, stream, cache, streams, metrics) -> None:
        if stream.trace.token_times or stream.remaining <= 0:
            metrics.add(stream.trace)
        cache.free_seq(stream.seq_id)
        if stream in streams:
            streams.remove(stream)
