"""Continuous-batching LLM serving engine (the §4.1/§4.3/§4.4 harness).

A minimal Orca/SGLang-style engine over the simulated GPU: requests arrive
on a Poisson process, prompts are prefilled in token-budgeted batches,
decode steps run all live streams together, and per-step time is

    layers × (attention(backend) + GEMMs(roofline) + allreduce(TP))
      + LM head + framework overhead

with only the attention term differing across backends — isolating exactly
the variable the paper's end-to-end experiments vary.

Parallel generation (§4.4, the OpenAI ``n`` parameter) forks each prefilled
prompt into ``n`` decode streams sharing the prompt's KV pages; with
``composable=True`` the decode attention is decomposed into a shared-prefix
format plus per-stream suffixes (§3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.kernels import HeadConfig
from repro.gpu.spec import GPUSpec
from repro.kvcache.paged import OutOfPagesError, PagedKVCache
from repro.obs.events import KernelRecord, StepEvent
from repro.obs.tracer import StepTracer
from repro.serving.backends import AttentionBackend
from repro.serving.metrics import RequestTrace, ServingMetrics
from repro.serving.model import ModelConfig
from repro.serving.workload import Request
from repro.sparse.composable import ComposableFormat, PrefixCluster, decompose_shared_prefix
from repro.sparse.layout import AttentionMapping


@dataclass
class EngineConfig:
    """Engine policy knobs."""

    page_size: int = 16
    max_running: int = 128  # concurrent decode streams
    max_prefill_tokens: int = 8192  # token budget per prefill batch
    tensor_parallel: int = 1
    num_pool_pages: int = 1 << 16
    composable: bool = False  # composable formats for fork groups (§4.4)
    scheduler_overhead: float = 30e-6  # host batching/sampling per step
    #: Sarathi-serve-style chunked prefill: prompts are prefilled in
    #: ``prefill_chunk_size``-token chunks piggybacked onto decode steps,
    #: bounding the ITL spikes long prompts otherwise cause (§5.4).
    chunked_prefill: bool = False
    prefill_chunk_size: int = 512
    #: Radix-style cross-request prefix caching: requests declaring a
    #: shared ``prefix_group`` reuse the group's cached prompt pages and
    #: prefill only their unique suffix (§5.4, RadixAttention).
    prefix_caching: bool = False


class _Stream:
    """One decode stream (a single generation of a request)."""

    __slots__ = ("req_idx", "seq_id", "remaining", "trace", "resume_len")

    def __init__(self, req_idx: int, seq_id: int, remaining: int, trace: RequestTrace):
        self.req_idx = req_idx
        self.seq_id = seq_id
        self.remaining = remaining
        self.trace = trace
        self.resume_len = 0  # KV length to recompute after preemption


class _PartialPrefill:
    """A prompt being prefilled chunk by chunk."""

    __slots__ = ("req_idx", "seq_id", "filled")

    def __init__(self, req_idx: int, seq_id: int):
        self.req_idx = req_idx
        self.seq_id = seq_id
        self.filled = 0


class ServingEngine:
    """Simulated continuous-batching server."""

    def __init__(
        self,
        model: ModelConfig,
        backend: AttentionBackend,
        gpu: GPUSpec,
        config: Optional[EngineConfig] = None,
        tracer: Optional[StepTracer] = None,
    ):
        self.model = model
        self.backend = backend
        self.gpu = gpu
        self.config = config or EngineConfig()
        #: Optional :class:`repro.obs.StepTracer`; when ``None`` the step
        #: loop allocates no event objects (a single ``is None`` check).
        self.tracer = tracer
        self._tracer: Optional[StepTracer] = None
        self._event_index = 0
        self._step_prefix_hits = 0
        self.heads = HeadConfig(
            model.num_qo_heads // self.config.tensor_parallel
            if model.num_qo_heads % self.config.tensor_parallel == 0
            else model.num_qo_heads,
            max(model.num_kv_heads // self.config.tensor_parallel, 1),
            model.head_dim,
        )
        if backend.heads != self.heads:
            raise ValueError(
                f"backend heads {backend.heads} != engine shard heads {self.heads}; "
                f"construct the backend with the per-shard head config"
            )

    # -- step-time assembly ---------------------------------------------------

    def _step_time(self, attn_per_layer: float, num_tokens: int) -> float:
        m, cfg = self.model, self.config
        ch = self.backend.characteristics
        layer = (
            attn_per_layer
            + m.layer_nonattn_time(num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + m.allreduce_time(num_tokens, cfg.tensor_parallel, ch.allreduce_efficiency)
        )
        return (
            m.num_layers * layer
            + m.lm_head_time(num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + self.backend.step_overhead(m.num_layers, self.gpu)
            + cfg.scheduler_overhead
        )

    def _step_components(self, attn_per_layer: float, num_tokens: int) -> dict:
        """The terms of :meth:`_step_time` itemized for tracing; the values
        sum to the step duration (same arithmetic, regrouped)."""
        m, cfg = self.model, self.config
        ch = self.backend.characteristics
        return {
            "attention": m.num_layers * attn_per_layer,
            "gemm": m.num_layers * m.layer_nonattn_time(
                num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "allreduce": m.num_layers * m.allreduce_time(
                num_tokens, cfg.tensor_parallel, ch.allreduce_efficiency
            ),
            "lm_head": m.lm_head_time(
                num_tokens, self.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "overhead": self.backend.step_overhead(m.num_layers, self.gpu)
            + cfg.scheduler_overhead,
        }

    # -- tracing ----------------------------------------------------------------

    def _emit_step(
        self, kind, t_start, t_end, attn_per_layer, prefill_tokens,
        decode_tokens, num_streams, cache, preemptions,
    ) -> None:
        """Record one :class:`StepEvent`; called only when tracing is on."""
        tracer = self._tracer
        event = StepEvent(
            index=self._event_index,
            kind=kind,
            t_start=t_start,
            t_end=t_end,
            num_prefill_tokens=prefill_tokens,
            num_decode_tokens=decode_tokens,
            num_streams=num_streams,
            breakdown=self._step_components(
                attn_per_layer, prefill_tokens + decode_tokens
            ),
            kv_free_pages=cache.num_free_pages,
            kv_used_pages=cache.num_used_pages,
            preemptions=preemptions,
            prefix_cache_hits=self._step_prefix_hits,
        )
        if tracer.capture_kernels:
            event.kernels = [
                KernelRecord.from_report(name, kind, report)
                for name, report in self.backend.pop_kernel_reports()
            ]
        self._event_index += 1
        self._step_prefix_hits = 0
        tracer.on_step(event)

    def _emit_idle(self, t_start: float, t_end: float) -> None:
        self._tracer.on_step(
            StepEvent(index=self._event_index, kind="idle", t_start=t_start, t_end=t_end)
        )
        self._event_index += 1

    # -- main loop --------------------------------------------------------------

    def run(
        self, requests: Sequence[Request], tracer: Optional[StepTracer] = None
    ) -> ServingMetrics:
        """Serve ``requests`` to completion; returns latency metrics.

        ``tracer`` (or the one passed at construction) receives one
        :class:`repro.obs.StepEvent` per step; with no tracer the loop runs
        exactly as before — no event objects are allocated.
        """
        cfg = self.config
        self._tracer = tracer if tracer is not None else self.tracer
        self._event_index = 0
        self._step_prefix_hits = 0
        self.backend.collect_kernel_reports = (
            self._tracer is not None and self._tracer.capture_kernels
        )
        cache = PagedKVCache(
            cfg.num_pool_pages, cfg.page_size, self.heads.num_kv_heads,
            self.heads.head_dim, materialize=False,
        )
        #: prefix_group → (cached pages, cached token count), page-aligned.
        self._prefix_registry: dict = {}
        requests = sorted(requests, key=lambda r: r.arrival)
        metrics = ServingMetrics()
        waiting = list(range(len(requests)))
        prefill_queue: List[int] = []
        streams: List[_Stream] = []
        prefilling: List[_PartialPrefill] = []
        preempted: List[_Stream] = []
        t = 0.0

        def admit() -> None:
            while waiting and requests[waiting[0]].arrival <= t:
                idx = waiting[0]
                if len(streams) + len(prefill_queue) + requests[idx].n > cfg.max_running:
                    break
                prefill_queue.append(idx)
                waiting.pop(0)

        def fits(tokens: int) -> bool:
            """Admission control: keep one page of decode headroom per
            live stream so prefill cannot starve running decodes."""
            need = -(-tokens // cfg.page_size) + len(streams)
            return cache.num_free_pages >= need

        while waiting or prefill_queue or prefilling or streams or preempted:
            admit()
            if preempted and fits(preempted[0].resume_len):
                # Preempted streams resume first (their KV is recomputed).
                t = self._resume_step(t, preempted, cache, streams, metrics)
            elif cfg.chunked_prefill and (prefill_queue or prefilling or streams):
                t = self._mixed_step(
                    t, requests, prefill_queue, prefilling, cache, streams,
                    metrics, preempted,
                )
            elif (
                not cfg.chunked_prefill
                and prefill_queue
                and fits(requests[prefill_queue[0]].prompt_len)
            ):
                t = self._prefill_step(t, requests, prefill_queue, cache, streams, metrics)
            elif not cfg.chunked_prefill and streams:
                t = self._decode_step(t, requests, cache, streams, metrics, preempted)
            elif preempted or prefill_queue:
                # Capacity-blocked with nothing running to free pages.
                raise OutOfPagesError(
                    "KV pool cannot hold the next prompt even with no other "
                    "work running; increase EngineConfig.num_pool_pages"
                )
            elif waiting:
                t_next = max(t, requests[waiting[0]].arrival)
                if self._tracer is not None and t_next > t:
                    self._emit_idle(t, t_next)
                t = t_next
            else:
                break
        metrics.total_time = t
        if self._tracer is not None:
            metrics.step_stats = self._tracer.counters()
        return metrics

    # -- phases --------------------------------------------------------------------

    def _cached_prefix(self, req: Request):
        """Cached (pages, token count) usable by ``req``, if any.

        The reusable length is capped below the full prompt — the last
        token's logits must always be computed fresh.
        """
        cfg = self.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return None
        entry = self._prefix_registry.get(req.prefix_group)
        if entry is None:
            return None
        pages, cached_len = entry
        usable = min(cached_len, ((req.prompt_len - 1) // cfg.page_size) * cfg.page_size)
        if usable <= 0:
            return None
        return pages[: usable // cfg.page_size], usable

    def _register_prefix(self, req: Request, cache: PagedKVCache, seq_id: int) -> None:
        """Cache a freshly prefilled request's shared-prefix pages."""
        cfg = self.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return
        if req.prefix_group in self._prefix_registry:
            return
        aligned = (req.prefix_len // cfg.page_size) * cfg.page_size
        if aligned < cfg.page_size:
            return
        pages = cache.seq_pages(seq_id)[: aligned // cfg.page_size]
        cache.retain_pages(pages)
        self._prefix_registry[req.prefix_group] = (pages, aligned)

    def _start_prefill_seq(self, cache: PagedKVCache, req: Request):
        """Create a sequence for ``req``, reusing cached prefix pages.

        Returns ``(seq_id, tokens_to_prefill)``.
        """
        hit = self._cached_prefix(req)
        if hit is not None:
            pages, cached = hit
            sid = cache.new_seq(shared_pages=pages, shared_len=cached)
            self._step_prefix_hits += 1
            return sid, req.prompt_len - cached
        return cache.new_seq(), req.prompt_len

    def _prefill_step(
        self, t, requests, prefill_queue, cache, streams, metrics
    ) -> float:
        cfg = self.config
        batch: List[int] = []
        tokens = 0
        pages_left = cache.num_free_pages - len(streams)  # decode headroom
        while prefill_queue and (
            not batch or tokens + requests[prefill_queue[0]].prompt_len <= cfg.max_prefill_tokens
        ):
            nxt = requests[prefill_queue[0]].prompt_len
            need = -(-nxt // cfg.page_size)
            if batch and need > pages_left:
                break
            idx = prefill_queue.pop(0)
            batch.append(idx)
            tokens += nxt
            pages_left -= need

        seqs = []
        qo_lens = []
        for idx in batch:
            sid, new_tokens = self._start_prefill_seq(cache, requests[idx])
            cache.extend(sid, new_tokens)
            self._register_prefix(requests[idx], cache, sid)
            seqs.append(sid)
            qo_lens.append(new_tokens)
        tokens = sum(qo_lens)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seqs),
            causal=True,
        )
        attn = self.backend.attention_time(mapping, decode=False)
        t0, t = t, t + self._step_time(attn, tokens)

        for idx, sid in zip(batch, seqs):
            req = requests[idx]
            for j in range(req.n):
                stream_seq = sid if j == req.n - 1 else cache.fork_seq(sid)
                trace = RequestTrace(arrival=req.arrival, first_token_time=t)
                streams.append(_Stream(idx, stream_seq, req.output_len - 1, trace))
                if req.output_len - 1 == 0:
                    self._finish(streams[-1], cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "prefill", t0, t, attn, tokens, 0, len(streams), cache, 0
            )
        return t

    def _mixed_step(
        self, t, requests, prefill_queue, prefilling, cache, streams,
        metrics, preempted=None,
    ) -> float:
        """One chunked-prefill step: all decode streams plus up to
        ``prefill_chunk_size`` prompt tokens piggybacked (Sarathi-serve)."""
        cfg = self.config
        preempt_before = metrics.preemptions
        self._ensure_decode_capacity(cache, streams, metrics, preempted)
        for s in streams:
            cache.extend(s.seq_id, 1)

        budget = cfg.prefill_chunk_size
        segments: List[tuple] = []  # (_PartialPrefill, chunk)
        while budget > 0:
            if not prefilling:
                if not prefill_queue:
                    break
                idx = prefill_queue.pop(0)
                sid, _ = self._start_prefill_seq(cache, requests[idx])
                pp = _PartialPrefill(idx, sid)
                pp.filled = cache.seq_len(sid)  # cached prefix already present
                prefilling.append(pp)
            pp = prefilling[0]
            remaining = requests[pp.req_idx].prompt_len - pp.filled
            chunk = min(budget, remaining)
            # Admission control: leave decode headroom (one page/stream).
            need = -(-chunk // cfg.page_size) + 1
            headroom = cache.num_free_pages - len(streams)
            if need > headroom:
                chunk = max((headroom - 1) * cfg.page_size, 0)
                if chunk == 0:
                    break
            cache.extend(pp.seq_id, chunk)
            segments.append((pp, chunk))
            budget -= chunk
            pp.filled += chunk
            if pp.filled == requests[pp.req_idx].prompt_len:
                self._register_prefix(requests[pp.req_idx], cache, pp.seq_id)
                prefilling.pop(0)
            else:
                break  # the partial prompt keeps the head of the queue

        seq_ids = [s.seq_id for s in streams] + [pp.seq_id for pp, _ in segments]
        qo_lens = [1] * len(streams) + [chunk for _, chunk in segments]
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: "ComposableFormat | AttentionMapping" = mapping
        if cfg.composable and self.backend.supports_composable:
            clusters = self._fork_clusters(requests, streams, cache)
            if clusters:
                formats = decompose_shared_prefix(mapping, clusters)
        attn = self.backend.attention_time(formats, decode=not segments)
        prefill_tokens = sum(chunk for _, chunk in segments)
        n_decode = len(streams)
        t0, t = t, t + self._step_time(attn, n_decode + prefill_tokens)

        # Prompts whose last chunk landed this step start decoding.
        for pp, _ in segments:
            req = requests[pp.req_idx]
            if pp.filled == req.prompt_len:
                for j in range(req.n):
                    sid = pp.seq_id if j == req.n - 1 else cache.fork_seq(pp.seq_id)
                    trace = RequestTrace(arrival=req.arrival, first_token_time=t)
                    streams.append(_Stream(pp.req_idx, sid, req.output_len - 1, trace))
                    if req.output_len - 1 == 0:
                        self._finish(streams[-1], cache, streams, metrics)

        finished = []
        for s in streams:
            if s.trace.first_token_time == t:
                continue  # spawned this step; first decode token comes next
            s.trace.token_times.append(t)
            s.remaining -= 1
            if s.remaining <= 0:
                finished.append(s)
        for s in finished:
            self._finish(s, cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "mixed", t0, t, attn, prefill_tokens, n_decode, len(streams),
                cache, metrics.preemptions - preempt_before,
            )
        return t

    def _decode_step(self, t, requests, cache, streams, metrics, preempted=None) -> float:
        cfg = self.config
        preempt_before = metrics.preemptions
        self._ensure_decode_capacity(cache, streams, metrics, preempted)
        for s in streams:
            cache.extend(s.seq_id, 1)
        seq_ids = [s.seq_id for s in streams]
        mapping = AttentionMapping(
            np.arange(len(streams) + 1, dtype=np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: "ComposableFormat | AttentionMapping" = mapping
        if cfg.composable and self.backend.supports_composable:
            clusters = self._fork_clusters(requests, streams, cache)
            if clusters:
                formats = decompose_shared_prefix(mapping, clusters)
        attn = self.backend.attention_time(formats, decode=True)
        n_decode = len(streams)
        t0, t = t, t + self._step_time(attn, n_decode)

        finished = []
        for s in streams:
            s.trace.token_times.append(t)
            s.remaining -= 1
            if s.remaining <= 0:
                finished.append(s)
        for s in finished:
            self._finish(s, cache, streams, metrics)
        if self._tracer is not None:
            self._emit_step(
                "decode", t0, t, attn, 0, n_decode, len(streams), cache,
                metrics.preemptions - preempt_before,
            )
        return t

    def _ensure_decode_capacity(self, cache, streams, metrics, preempted) -> None:
        """Preempt-by-recompute when the page pool cannot absorb this step.

        vLLM-style backpressure: the youngest streams are evicted (their
        pages freed) and later re-prefilled from scratch; without it a
        full pool would abort the whole serving run mid-flight.
        """

        def pages_needed() -> int:
            needed = 0
            for s in streams:
                length = cache.seq_len(s.seq_id)
                if length % cache.page_size == 0:
                    needed += 1
                else:
                    last = cache.seq_pages(s.seq_id)[-1]
                    if cache.page_refcount(last) > 1:
                        needed += 1  # copy-on-write of a shared partial page
            return needed

        while cache.num_free_pages < pages_needed():
            if len(streams) <= 1:
                raise OutOfPagesError(
                    "KV pool too small for even one stream; increase "
                    "EngineConfig.num_pool_pages"
                )
            victim = streams.pop()  # youngest stream
            victim.resume_len = cache.seq_len(victim.seq_id)
            cache.free_seq(victim.seq_id)
            if preempted is None:
                raise OutOfPagesError("pool exhausted and preemption unavailable")
            preempted.append(victim)
            metrics.preemptions += 1

    def _resume_step(self, t, preempted, cache, streams, metrics) -> float:
        """Re-prefill preempted streams' KV (recompute) and resume decoding."""
        cfg = self.config
        batch: List[_Stream] = []
        tokens = 0
        pages_left = cache.num_free_pages - len(streams)
        while preempted and (
            not batch or tokens + preempted[0].resume_len <= cfg.max_prefill_tokens
        ):
            # Only resume what the pool can hold right now.
            need = -(-preempted[0].resume_len // cfg.page_size)
            if batch and need > pages_left:
                break
            stream = preempted.pop(0)
            batch.append(stream)
            tokens += stream.resume_len
            pages_left -= need
        qo_lens = []
        for stream in batch:
            sid = cache.new_seq()
            cache.extend(sid, stream.resume_len)
            stream.seq_id = sid
            qo_lens.append(stream.resume_len)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout([s.seq_id for s in batch]),
            causal=True,
        )
        attn = self.backend.attention_time(mapping, decode=False)
        t0, t = t, t + self._step_time(attn, tokens)
        streams.extend(batch)
        if self._tracer is not None:
            self._emit_step(
                "resume", t0, t, attn, tokens, 0, len(streams), cache, 0
            )
        return t

    def _fork_clusters(self, requests, streams, cache) -> List[PrefixCluster]:
        """Consecutive streams of the same request share its prompt pages."""
        cfg = self.config
        clusters: List[PrefixCluster] = []
        i = 0
        while i < len(streams):
            j = i
            while j + 1 < len(streams) and streams[j + 1].req_idx == streams[i].req_idx:
                j += 1
            if j > i:
                prompt = requests[streams[i].req_idx].prompt_len
                aligned = (prompt // cfg.page_size) * cfg.page_size
                if aligned >= cfg.page_size:
                    clusters.append(PrefixCluster(tuple(range(i, j + 1)), aligned))
            i = j + 1
        return clusters

    def _finish(self, stream, cache, streams, metrics) -> None:
        if stream.trace.token_times or stream.remaining <= 0:
            metrics.add(stream.trace)
        cache.free_seq(stream.seq_id)
        if stream in streams:
            streams.remove(stream)
