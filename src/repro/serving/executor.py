"""Step execution and postprocessing: the back half of the engine pipeline.

:class:`StepExecutor` prices one :class:`~repro.serving.batching.StepPlan`
through the attention backend — owning the kernel fault-retry loop and the
degrade-to-dense-fallback hooks — and assembles the full step time
(layers × (attention + GEMM + allreduce) + LM head + overhead).

:class:`Postprocessor` applies a priced step back to the run state: stream
spawn/fork on finished prefills, token recording, finishes, and the
per-step :class:`~repro.obs.StepEvent` emission for tracing.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gpu.executor import KernelFault
from repro.obs.events import KernelRecord, StepEvent
from repro.serving.batching import (
    RunState,
    StepPlan,
    Stream,
    TOKEN_VOCAB,
    token_id,
)
from repro.serving.metrics import RequestTrace
from repro.serving.workload import Request


class StepExecutor:
    """Price a formed step: attention (with retry/degrade) plus the rest."""

    def __init__(self, engine, state: RunState):
        self.engine = engine
        self.state = state
        #: Host-observed extra latency from kernel retries this step.
        self.fault_penalty = 0.0
        #: Backend that actually priced the last step (for kernel reports).
        self.step_backend = engine.backend
        self.step_degraded = False

    def execute(self, plan: StepPlan, t: float) -> Tuple[float, float, float]:
        """Run ``plan``'s attention and advance time.

        Returns ``(t_start, t_end, attn_per_layer)``.
        """
        attn = self._attention(plan.formats, plan.decode, t, fallback_mapping=plan.mapping)
        t_end = t + self._step_time(attn, plan.num_tokens, t)
        ic = self.engine.interconnect
        if ic is not None:
            # Account this step's all-reduce traffic against the cluster
            # interconnect (pricing happened inside _step_time).
            ic.charge_step(
                plan.num_tokens,
                self.engine.backend.characteristics.allreduce_efficiency,
                t,
            )
        return t, t_end, attn

    # -- step-time assembly ---------------------------------------------------

    def _allreduce_per_layer(self, num_tokens: int, t: float) -> float:
        """Per-layer tensor-parallel all-reduce time: the flat NVLink-bus
        model, or — under a cluster interconnect — the topology's ring
        model priced at simulated time ``t`` (so link-degradation windows
        slow the affected steps)."""
        eng = self.engine
        ch = eng.backend.characteristics
        ic = eng.interconnect
        if ic is None:
            return eng.model.allreduce_time(
                num_tokens, eng.config.tensor_parallel, ch.allreduce_efficiency
            )
        return ic.allreduce_per_layer(num_tokens, ch.allreduce_efficiency, t)

    def _step_time(self, attn_per_layer: float, num_tokens: int, t: float = 0.0) -> float:
        eng = self.engine
        m, cfg = eng.model, eng.config
        ch = eng.backend.characteristics
        layer = (
            attn_per_layer
            + m.layer_nonattn_time(num_tokens, eng.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + self._allreduce_per_layer(num_tokens, t)
        )
        total = (
            m.num_layers * layer
            + m.lm_head_time(num_tokens, eng.gpu, ch.gemm_efficiency, cfg.tensor_parallel)
            + eng.backend.step_overhead(m.num_layers, eng.gpu)
            + cfg.scheduler_overhead
        )
        if self.fault_penalty:
            total += self.fault_penalty  # host-observed kernel retries
        return total

    def _step_components(
        self, attn_per_layer: float, num_tokens: int, t: float = 0.0
    ) -> dict:
        """The terms of :meth:`_step_time` itemized for tracing; the values
        sum to the step duration (same arithmetic, regrouped)."""
        eng = self.engine
        m, cfg = eng.model, eng.config
        ch = eng.backend.characteristics
        overhead = (
            eng.backend.step_overhead(m.num_layers, eng.gpu) + cfg.scheduler_overhead
        )
        if self.fault_penalty:
            overhead += self.fault_penalty
        return {
            "attention": m.num_layers * attn_per_layer,
            "gemm": m.num_layers * m.layer_nonattn_time(
                num_tokens, eng.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "allreduce": m.num_layers * self._allreduce_per_layer(num_tokens, t),
            "lm_head": m.lm_head_time(
                num_tokens, eng.gpu, ch.gemm_efficiency, cfg.tensor_parallel
            ),
            "overhead": overhead,
        }

    # -- attention with retry / degradation ------------------------------------

    def _fallback(self):
        """The degraded-mode backend: a dense baseline with no injector
        attached, so its launches cannot fault."""
        from repro.serving.backends import TritonBackend

        eng = self.engine
        fb = eng._fallback_backend
        if fb is None:
            fb = TritonBackend(eng.heads, eng.gpu)
            eng._fallback_backend = fb
        fb.collect_kernel_reports = eng.backend.collect_kernel_reports
        return fb

    def _attention(
        self, formats, decode: bool, t: float, fallback_mapping=None
    ) -> float:
        """One step's attention with retry / degradation around the backend.

        Plain runs take the first branch: a direct backend call."""
        eng = self.engine
        if eng._degrade is None:
            return eng.backend.attention_time(formats, decode)
        resil = eng.resilience
        ctrl = eng._degrade
        self.fault_penalty = 0.0
        self.step_backend = eng.backend
        self.step_degraded = False
        # Stragglers stretch a CTA inside the executor without raising, so
        # the engine surfaces them by diffing the plan's fired counter.
        plan = eng.fault_plan
        stragglers_before = plan.injected["straggler"] if plan is not None else 0
        if ctrl.degraded:
            fb = self._fallback()
            attn = fb.attention_time(formats, decode)
            self.step_backend = fb
            self.step_degraded = True
            eng._count("degraded_steps")
            if ctrl.on_clean_step():
                eng._fault_event(
                    "degrade", "annealed", t,
                    detail=f"{ctrl.anneal_after} clean degraded steps",
                )
            self._note_stragglers(stragglers_before, t)
            return attn
        faults = 0
        while True:
            try:
                attn = eng.backend.attention_time(formats, decode)
                break
            except KernelFault as exc:
                faults += 1
                self.fault_penalty += resil.fault_latency
                eng._count("kernel_faults")
                eng._fault_event("kernel", "injected", t, detail=str(exc)[:120])
                if ctrl.on_kernel_fault():
                    eng._fault_event(
                        "degrade", "degraded", t,
                        detail=f"{ctrl.degrade_after} kernel-fault strikes",
                    )
                elif faults > resil.max_kernel_retries and ctrl.force_degrade():
                    eng._fault_event(
                        "degrade", "degraded", t,
                        detail="per-step kernel retry budget exhausted",
                    )
                if ctrl.degraded:
                    # Final, guaranteed-clean attempt on the fallback.
                    fb = self._fallback()
                    mapping = fallback_mapping if fallback_mapping is not None else formats
                    attn = fb.attention_time(mapping, decode)
                    self.step_backend = fb
                    self.step_degraded = True
                    eng._count("degraded_steps")
                    break
                eng._count("retries")
                eng._fault_event("kernel", "retry", t, detail=f"attempt {faults + 1}")
        if faults == 0:
            ctrl.on_clean_step()
        self._note_stragglers(stragglers_before, t)
        return attn

    def _note_stragglers(self, before: int, t: float) -> None:
        """Trace straggler injections that fired during this step's
        launches; their latency cost is already inside the simulated
        makespan, so no recovery action is needed."""
        plan = self.engine.fault_plan
        if plan is None:
            return
        for _ in range(plan.injected["straggler"] - before):
            self.engine._fault_event(
                "straggler", "injected", t,
                detail=f"CTA serial+memory streams x{plan.straggler_factor:g}",
            )


class Postprocessor:
    """Apply a priced step: spawn/record/finish streams, emit trace events."""

    def __init__(self, engine, state: RunState, executor: StepExecutor):
        self.engine = engine
        self.state = state
        self.executor = executor

    def finalize(self, plan: StepPlan, t0: float, t1: float, attn: float) -> None:
        eng, st = self.engine, self.state
        cache, requests, streams = st.cache, st.requests, st.streams
        if plan.kind == "prefill":
            for idx, sid in plan.prefilled:
                req = requests[idx]
                for j in range(req.n):
                    stream_seq = sid if j == req.n - 1 else cache.fork_seq(sid)
                    self._spawn_stream(req, idx, j, stream_seq, t1)
        elif plan.kind == "mixed":
            # Prompts whose last chunk landed this step start decoding.
            for pp, _ in plan.chunks:
                req = requests[pp.req_idx]
                if pp.filled == req.prompt_len:
                    for j in range(req.n):
                        sid = pp.seq_id if j == req.n - 1 else cache.fork_seq(pp.seq_id)
                        self._spawn_stream(req, pp.req_idx, j, sid, t1)
            self._advance_decodes(t1, skip_spawned=True)
        elif plan.kind == "decode":
            self._advance_decodes(t1, skip_spawned=False)
        elif plan.kind == "resume":
            streams.extend(plan.resumed)
        if eng._tracer is not None:
            self._emit_step(
                plan.kind, t0, t1, attn, plan.num_prefill_tokens,
                plan.num_decode_tokens, len(streams), cache,
                st.metrics.preemptions - plan.preempt_before,
            )

    def _advance_decodes(self, t: float, skip_spawned: bool) -> None:
        """One decoded token per live stream; finish exhausted streams."""
        eng, st = self.engine, self.state
        finished: List[Stream] = []
        record = eng._degrade is not None and eng.resilience.record_tokens
        for s in st.streams:
            if skip_spawned and s.trace.first_token_time == t:
                continue  # spawned this step; first decode token comes next
            s.trace.token_times.append(t)
            if record:
                self._record_token(s, t)
            s.remaining -= 1
            if s.remaining <= 0:
                finished.append(s)
        for s in finished:
            self._finish(s, t)

    def _rid(self, idx: int) -> int:
        """Token key for request ``idx``: its cluster-global ``rid`` when
        the router assigned one, else the replica-local index (identical
        for single-engine runs, so token streams are unchanged)."""
        rid = self.state.requests[idx].rid
        return idx if rid is None else rid

    def _record_token(self, s: Stream, t: float) -> None:
        eng = self.engine
        pos = len(s.trace.tokens)
        tok = token_id(self._rid(s.req_idx), s.gen_index, pos)
        if eng._taint and s.seq_id >= 0 and self.state.cache.seq_is_corrupt(s.seq_id):
            tok += TOKEN_VOCAB  # decoded from corrupted KV, undetected
        s.trace.tokens.append(tok)
        if eng._journal is not None:
            eng._journal.token(s.req_idx, s.gen_index, pos, tok, t)
        if eng._replay is not None:
            eng._replay.check(s.req_idx, s.gen_index, pos, tok, t)

    def _spawn_stream(
        self, req: Request, idx: int, gen: int, seq_id: int, t: float
    ) -> None:
        eng = self.engine
        trace = RequestTrace(arrival=req.arrival, first_token_time=t)
        stream = Stream(idx, seq_id, req.output_len - 1, trace)
        if eng.brownout is not None:
            clamp = eng.brownout.token_clamp
            if clamp is not None and stream.remaining > clamp - 1:
                # Brownout rung 3: clamp max_new_tokens.  The clamped
                # stream emits an exact prefix of the reference tokens —
                # shorter answer, never a different one.
                stream.remaining = clamp - 1
                trace.outcome_reason = "brownout-clamp"
        if eng._degrade is not None:
            trace.req_id = idx
            trace.gen_index = gen
            stream.gen_index = gen
            stream.deadline = eng._deadline_for(req)
            if eng.resilience.record_tokens:
                tok0 = token_id(self._rid(idx), gen, 0)
                trace.tokens = [tok0]
                if eng._journal is not None:
                    eng._journal.token(idx, gen, 0, tok0, t)
                if eng._replay is not None:
                    eng._replay.check(idx, gen, 0, tok0, t)
        if eng.handoff_sink is not None and stream.remaining > 0:
            # Disaggregated prefill replica: the finished prompt's live KV
            # leaves for a decode replica instead of decoding here.  The
            # sink exports the pages before the sequence is freed; the
            # completed trace belongs to the decode side.  Streams whose
            # single token already landed this step complete locally.
            eng.handoff_sink(req, idx, gen, seq_id, t, stream, self.state.cache)
            self.state.cache.free_seq(seq_id)
            return
        self.state.streams.append(stream)
        if stream.remaining == 0:
            self._finish(stream, t)

    def _finish(self, stream: Stream, t: float) -> None:
        eng, st = self.engine, self.state
        if stream.trace.token_times or stream.remaining <= 0:
            st.metrics.add(stream.trace)
            if eng._journal is not None:
                eng._journal.finish(stream.req_idx, stream.gen_index, t)
        st.cache.free_seq(stream.seq_id)
        if stream in st.streams:
            st.streams.remove(stream)

    # -- tracing ----------------------------------------------------------------

    def _emit_step(
        self, kind, t_start, t_end, attn_per_layer, prefill_tokens,
        decode_tokens, num_streams, cache, preemptions,
    ) -> None:
        """Record one :class:`StepEvent`; called only when tracing is on."""
        eng, ex = self.engine, self.executor
        tracer = eng._tracer
        event = StepEvent(
            index=eng._event_index,
            kind=kind,
            t_start=t_start,
            t_end=t_end,
            num_prefill_tokens=prefill_tokens,
            num_decode_tokens=decode_tokens,
            num_streams=num_streams,
            breakdown=ex._step_components(
                attn_per_layer, prefill_tokens + decode_tokens, t_start
            ),
            kv_free_pages=cache.num_free_pages,
            kv_used_pages=cache.num_used_pages,
            preemptions=preemptions,
            prefix_cache_hits=eng._step_prefix_hits,
            radix_hit_tokens=eng._step_radix_hit_tokens,
            cascade_levels=eng._step_cascade_levels,
        )
        if eng._degrade is not None and ex.step_degraded:
            event.degraded = True
        if tracer.capture_kernels:
            backend = eng.backend
            if eng._degrade is not None and ex.step_backend is not None:
                backend = ex.step_backend
            event.kernels = [
                KernelRecord.from_report(name, kind, report)
                for name, report in backend.pop_kernel_reports()
            ]
        eng._event_index += 1
        eng._step_prefix_hits = 0
        eng._step_radix_hit_tokens = 0
        eng._step_cascade_levels = 0
        tracer.on_step(event)

    def _emit_idle(self, t_start: float, t_end: float) -> None:
        eng = self.engine
        eng._tracer.on_step(
            StepEvent(index=eng._event_index, kind="idle", t_start=t_start, t_end=t_end)
        )
        eng._event_index += 1
