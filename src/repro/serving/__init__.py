"""LLM serving substrate: engine, backends, workloads, metrics, models.

The end-to-end experiments of the paper (Figures 7, 9, 10) hold this stack
constant and vary only the attention backend; see
:class:`repro.serving.engine.ServingEngine`.
"""

# Re-exported for convenience: the ServingEngine constructor accepts these
# directly (``fault_plan=``, ``resilience=``).
from repro.faults import FaultPlan, ResilienceConfig, chaos_plan
from repro.serving.backends import (
    AttentionBackend,
    BackendCharacteristics,
    FlashInferBackend,
    TritonBackend,
    TRTLLMBackend,
)
from repro.serving.admission import AdmissionController
from repro.serving.batching import BatchFormer, RunState, StepPlan
from repro.serving.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    Checkpointer,
    CrashHarness,
    CrashReport,
    DirectoryStore,
    NoSnapshotError,
    RecoveredState,
    RecoveryManager,
    SnapshotIntegrityError,
    SnapshotVerificationError,
    WorldMismatchError,
)
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.executor import Postprocessor, StepExecutor
from repro.serving.metrics import RequestTrace, ServingMetrics
from repro.serving.overload import (
    BROWNOUT_LADDER,
    BrownoutController,
    FrontDoor,
    OverloadConfig,
    OverloadReport,
    TokenBucket,
    overload_token_divergence,
    slo_attainment,
)
from repro.serving.plan_cache import PlanCache
from repro.serving.policy import (
    FCFSPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    SLAAwarePolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.serving.tuning import OperatingPoint, find_max_rate
from repro.serving.model import (
    LLAMA_3_1_8B,
    LLAMA_3_1_70B,
    VICUNA_13B,
    ModelConfig,
)
from repro.serving.workload import (
    MIXED_LONG_PROMPT_THRESHOLD,
    Request,
    bursty_workload,
    constant_lengths,
    mixed_disagg_workload,
    mtbench_workload,
    poisson_arrivals,
    sharegpt_workload,
    shared_prefix_workload,
    uniform_lengths,
    variable_workload,
    zipf_lengths,
)

__all__ = [
    "FaultPlan",
    "ResilienceConfig",
    "chaos_plan",
    "AttentionBackend",
    "BackendCharacteristics",
    "FlashInferBackend",
    "TritonBackend",
    "TRTLLMBackend",
    "EngineConfig",
    "ServingEngine",
    "CheckpointConfig",
    "CheckpointStore",
    "Checkpointer",
    "CrashHarness",
    "CrashReport",
    "DirectoryStore",
    "NoSnapshotError",
    "RecoveredState",
    "RecoveryManager",
    "SnapshotIntegrityError",
    "SnapshotVerificationError",
    "WorldMismatchError",
    "AdmissionController",
    "BatchFormer",
    "RunState",
    "StepPlan",
    "StepExecutor",
    "Postprocessor",
    "PlanCache",
    "SchedulerPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "SLAAwarePolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "RequestTrace",
    "ServingMetrics",
    "BROWNOUT_LADDER",
    "BrownoutController",
    "FrontDoor",
    "OverloadConfig",
    "OverloadReport",
    "TokenBucket",
    "overload_token_divergence",
    "slo_attainment",
    "OperatingPoint",
    "find_max_rate",
    "LLAMA_3_1_8B",
    "LLAMA_3_1_70B",
    "VICUNA_13B",
    "ModelConfig",
    "MIXED_LONG_PROMPT_THRESHOLD",
    "Request",
    "bursty_workload",
    "constant_lengths",
    "mixed_disagg_workload",
    "mtbench_workload",
    "poisson_arrivals",
    "sharegpt_workload",
    "shared_prefix_workload",
    "uniform_lengths",
    "variable_workload",
    "zipf_lengths",
]
