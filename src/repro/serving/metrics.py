"""Serving latency metrics: TTFT, ITL, percentiles (paper §4.1).

* **TTFT** (time to first token): request arrival → first output token.
* **ITL** (inter-token latency): gaps between consecutive output tokens of
  one request.

The paper reports medians under a P99-TTFT < 200 ms operating point; the
same accessors are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RequestTrace:
    """Completion record for one request (one generation stream)."""

    arrival: float
    first_token_time: float
    token_times: List[float] = field(default_factory=list)
    #: Request index within the run's (arrival-sorted) request list and
    #: generation index within the request (the "n" parameter); -1/0 for
    #: callers that construct traces directly.
    req_id: int = -1
    gen_index: int = 0
    #: ``"ok"`` or ``"shed"``; shed traces carry the reason in
    #: :attr:`outcome_reason` (``deadline`` / ``overload`` / ``retries``).
    outcome: str = "ok"
    outcome_reason: str = ""
    #: Deterministic token ids, recorded only when the engine runs with
    #: ``ResilienceConfig.record_tokens`` (token-exactness checks).
    tokens: Optional[List[int]] = None

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.arrival

    @property
    def itls(self) -> np.ndarray:
        times = [self.first_token_time] + list(self.token_times)
        return np.diff(times)

    def to_state(self) -> dict:
        """Serializable form for engine checkpointing."""
        return {
            "arrival": self.arrival,
            "first_token_time": self.first_token_time,
            "token_times": list(self.token_times),
            "req_id": self.req_id,
            "gen_index": self.gen_index,
            "outcome": self.outcome,
            "outcome_reason": self.outcome_reason,
            "tokens": list(self.tokens) if self.tokens is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RequestTrace":
        return cls(
            arrival=float(state["arrival"]),
            first_token_time=float(state["first_token_time"]),
            token_times=[float(x) for x in state["token_times"]],
            req_id=int(state["req_id"]),
            gen_index=int(state["gen_index"]),
            outcome=state["outcome"],
            outcome_reason=state["outcome_reason"],
            tokens=(
                [int(x) for x in state["tokens"]]
                if state["tokens"] is not None else None
            ),
        )


@dataclass
class ServingMetrics:
    """Aggregated metrics over a run."""

    traces: List[RequestTrace] = field(default_factory=list)
    total_time: float = 0.0
    total_output_tokens: int = 0
    #: Streams evicted under memory pressure (decode could not get a page).
    preemptions: int = 0
    #: Streams resumed from a crash-recovery snapshot — deliberately a
    #: separate counter from :attr:`preemptions` so dashboards don't
    #: conflate capacity eviction with restart recovery.
    recover_resumed: int = 0
    #: Rolling counters from the run's :class:`repro.obs.StepTracer`
    #: (step counts by kind, per-component time totals, step-latency
    #: percentiles); attached by the engine when tracing is enabled.
    step_stats: Optional[Dict[str, float]] = None
    #: Streams shed by deadline/overload/retry-exhaustion (``outcome ==
    #: "shed"``); their partial tokens do not count toward throughput.
    shed_traces: List[RequestTrace] = field(default_factory=list)
    #: Fault/recovery counters (``faults_injected``, ``retries``, ``sheds``,
    #: ``degraded_steps``, ``checksum_failures``, …); attached by the engine
    #: only on resilience runs so a plain run's summary is unchanged.
    fault_stats: Optional[Dict[str, float]] = None
    #: Plan-cache accounting for the run (``plan_cache_hits``,
    #: ``plan_cache_misses``, ``plan_cache_hit_rate``, ``plan_cache_entries``);
    #: attached by the engine when its :class:`repro.serving.PlanCache` is on.
    plan_cache_stats: Optional[Dict[str, float]] = None
    #: Prompt tokens served from the radix prefix cache instead of being
    #: recomputed at prefill (whole-page granularity).
    radix_hit_tokens: int = 0
    #: Prompts that admitted with a non-empty radix hit.
    radix_hit_prompts: int = 0
    #: Steps that ran attention through a multi-level cascade (shared-prefix
    #: KV loaded once per level instead of once per request).
    cascade_steps: int = 0
    #: Estimated HBM bytes of shared-prefix K/V traffic the cascade avoided
    #: re-reading, summed over cascade steps.
    cascade_bytes_saved: float = 0.0
    #: Prefix-cache roll-up (``radix_hit_tokens``, ``prefill_flops_saved``,
    #: ``cascade_hbm_bytes_saved``, …); attached by the engine at end of run
    #: when ``EngineConfig.prefix_cache`` is on.
    prefix_stats: Optional[Dict[str, float]] = None
    #: Peak admission saturation ((admitted + running) / max_running) —
    #: the overload-backpressure signal cluster failover feeds back into
    #: routing.  Written only when ``engine.track_pressure`` is set, so
    #: plain-run summaries stay byte-identical.
    admission_pressure: float = 0.0
    #: Time-weighted mean admission saturation over the run — sustained
    #: overload, where :attr:`admission_pressure` is a single spike; the
    #: breaker/brownout layer keys off this distinction.  Written (with
    #: the same guard) only when ``engine.track_pressure`` is set.
    admission_pressure_mean: float = 0.0

    def add(self, trace: RequestTrace) -> None:
        self.traces.append(trace)
        self.total_output_tokens += 1 + len(trace.token_times)

    def shed(self, trace: RequestTrace) -> None:
        """Record a stream that was shed before completing."""
        trace.outcome = "shed"
        self.shed_traces.append(trace)

    @property
    def sheds(self) -> int:
        return len(self.shed_traces)

    @property
    def ttfts(self) -> np.ndarray:
        return np.asarray([t.ttft for t in self.traces])

    @property
    def all_itls(self) -> np.ndarray:
        if not self.traces:
            return np.empty(0)
        parts = [t.itls for t in self.traces if t.token_times]
        return np.concatenate(parts) if parts else np.empty(0)

    def median_ttft(self) -> float:
        return float(np.median(self.ttfts)) if self.traces else float("nan")

    def p99_ttft(self) -> float:
        return float(np.percentile(self.ttfts, 99)) if self.traces else float("nan")

    def median_itl(self) -> float:
        itls = self.all_itls
        return float(np.median(itls)) if itls.size else float("nan")

    def p99_itl(self) -> float:
        itls = self.all_itls
        return float(np.percentile(itls, 99)) if itls.size else float("nan")

    def ttft_percentile(self, q: float) -> float:
        """TTFT at percentile ``q`` (0–100) over completed traces."""
        return float(np.percentile(self.ttfts, q)) if self.traces else float("nan")

    def itl_percentile(self, q: float) -> float:
        """ITL at percentile ``q`` (0–100), pooled over every trace's gaps."""
        itls = self.all_itls
        return float(np.percentile(itls, q)) if itls.size else float("nan")

    def throughput_tokens_per_s(self) -> float:
        return self.total_output_tokens / self.total_time if self.total_time > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        out = {
            "median_ttft": self.median_ttft(),
            "p50_ttft": self.ttft_percentile(50),
            "p95_ttft": self.ttft_percentile(95),
            "p99_ttft": self.p99_ttft(),
            "median_itl": self.median_itl(),
            "p50_itl": self.itl_percentile(50),
            "p95_itl": self.itl_percentile(95),
            "p99_itl": self.p99_itl(),
            "throughput_tok_s": self.throughput_tokens_per_s(),
            "num_requests": float(len(self.traces)),
            "preemptions": float(self.preemptions),
            "recover_resumed": float(self.recover_resumed),
        }
        if self.step_stats:
            for key, value in self.step_stats.items():
                out[f"obs_{key}"] = value
        if self.plan_cache_stats is not None:
            out.update(self.plan_cache_stats)
        if self.prefix_stats is not None:
            out.update(self.prefix_stats)
        if self.admission_pressure:
            out["admission_pressure"] = float(self.admission_pressure)
        if self.admission_pressure_mean:
            out["admission_pressure_mean"] = float(self.admission_pressure_mean)
        if self.fault_stats is not None:
            out.update(self.fault_stats)
            # Per-request shed records: which stream was shed, and when.
            for trace in self.shed_traces:
                out[f"shed_req_{trace.req_id}_{trace.gen_index}"] = float(
                    len(trace.token_times)
                )
        return out

    @classmethod
    def merge(cls, parts: "List[ServingMetrics]") -> "ServingMetrics":
        """Cluster-wide aggregation of per-replica metrics.

        Traces concatenate in replica order; ``total_time`` is the max
        (replicas share one simulated clock, so the cluster finishes when
        its slowest replica does), making
        :meth:`throughput_tokens_per_s` the cluster throughput.  The
        per-run stat dicts (``step_stats``/``fault_stats``/…) stay on the
        individual replicas — aggregate views live in
        ``repro.cluster.ClusterMetrics.summary``.
        """
        merged = cls()
        for p in parts:
            merged.traces.extend(p.traces)
            merged.shed_traces.extend(p.shed_traces)
            merged.total_output_tokens += p.total_output_tokens
            merged.preemptions += p.preemptions
            merged.recover_resumed += p.recover_resumed
            merged.radix_hit_tokens += p.radix_hit_tokens
            merged.radix_hit_prompts += p.radix_hit_prompts
            merged.cascade_steps += p.cascade_steps
            merged.cascade_bytes_saved += p.cascade_bytes_saved
            merged.admission_pressure = max(
                merged.admission_pressure, p.admission_pressure
            )
            # Means don't sum across replicas; report the worst replica's.
            merged.admission_pressure_mean = max(
                merged.admission_pressure_mean, p.admission_pressure_mean
            )
            merged.total_time = max(merged.total_time, p.total_time)
        return merged

    def export_state(self) -> dict:
        """Serializable snapshot for engine checkpointing.

        ``step_stats``/``fault_stats``/``plan_cache_stats`` are attached by
        the engine at end of run, so only the accumulating fields travel.
        """
        return {
            "traces": [t.to_state() for t in self.traces],
            "shed_traces": [t.to_state() for t in self.shed_traces],
            "total_time": self.total_time,
            "total_output_tokens": self.total_output_tokens,
            "preemptions": self.preemptions,
            "recover_resumed": self.recover_resumed,
            "radix_hit_tokens": self.radix_hit_tokens,
            "radix_hit_prompts": self.radix_hit_prompts,
            "cascade_steps": self.cascade_steps,
            "cascade_bytes_saved": self.cascade_bytes_saved,
            "admission_pressure": self.admission_pressure,
            "admission_pressure_mean": self.admission_pressure_mean,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ServingMetrics":
        m = cls(
            traces=[RequestTrace.from_state(t) for t in state["traces"]],
            total_time=float(state["total_time"]),
            total_output_tokens=int(state["total_output_tokens"]),
            preemptions=int(state["preemptions"]),
            recover_resumed=int(state["recover_resumed"]),
        )
        m.shed_traces = [RequestTrace.from_state(t) for t in state["shed_traces"]]
        m.radix_hit_tokens = int(state.get("radix_hit_tokens", 0))
        m.radix_hit_prompts = int(state.get("radix_hit_prompts", 0))
        m.cascade_steps = int(state.get("cascade_steps", 0))
        m.cascade_bytes_saved = float(state.get("cascade_bytes_saved", 0.0))
        m.admission_pressure = float(state.get("admission_pressure", 0.0))
        m.admission_pressure_mean = float(
            state.get("admission_pressure_mean", 0.0)
        )
        return m
