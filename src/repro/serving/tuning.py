"""Operating-point search (the paper's §4.1 methodology).

"The request rate is adjusted to maintain P99 TTFT below 200ms": this
module implements that adjustment — a monotone bisection over request rate
against a latency constraint — so benchmark operating points are derived
rather than hand-picked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.serving.metrics import ServingMetrics

#: Run a workload at a request rate, returning its metrics.
RunAtRate = Callable[[float], ServingMetrics]


@dataclass(frozen=True)
class OperatingPoint:
    """The outcome of a rate search."""

    rate: float
    metrics: ServingMetrics

    @property
    def p99_ttft(self) -> float:
        return self.metrics.p99_ttft()


def find_max_rate(
    run_at_rate: RunAtRate,
    p99_ttft_limit: float = 0.2,
    lo: float = 1.0,
    hi: float = 512.0,
    tolerance: float = 0.1,
    max_iters: int = 12,
    constraint: "Callable[[ServingMetrics], bool] | None" = None,
) -> OperatingPoint:
    """Largest request rate satisfying a latency constraint.

    The default constraint is the paper's (P99 TTFT under the limit); pass
    ``constraint`` for custom SLOs (e.g. combined TTFT + ITL).  Assumes
    the constraint is monotone in the rate (queueing), which holds for the
    simulated engine.  ``tolerance`` is relative on the rate.  If even
    ``lo`` violates the constraint, the ``lo`` point is returned (caller
    inspects its metrics); if ``hi`` satisfies it, ``hi`` is returned.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if constraint is None:
        constraint = lambda m: m.p99_ttft() <= p99_ttft_limit

    lo_metrics = run_at_rate(lo)
    if not constraint(lo_metrics):
        return OperatingPoint(lo, lo_metrics)
    hi_metrics = run_at_rate(hi)
    if constraint(hi_metrics):
        return OperatingPoint(hi, hi_metrics)

    best = OperatingPoint(lo, lo_metrics)
    for _ in range(max_iters):
        if (hi - lo) <= tolerance * lo:
            break
        mid = (lo + hi) / 2.0
        metrics = run_at_rate(mid)
        if constraint(metrics):
            best = OperatingPoint(mid, metrics)
            lo = mid
        else:
            hi = mid
    return best
