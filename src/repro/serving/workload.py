"""Workload generators for the evaluation.

The paper's end-to-end experiments use the ShareGPT dataset and a synthetic
"Variable" workload (§4.1); kernel experiments use constant / uniform /
Zipf-skewed length distributions (§4.2); the StreamingLLM study uses
MT-Bench conversations (§4.3).  The real datasets only contribute *length
distributions* to the experiments, so we substitute synthetic marginals
(documented in DESIGN.md):

* ShareGPT-like — log-normal prompt and output lengths fit to the commonly
  reported ShareGPT statistics (mean prompt ≈ 160, mean output ≈ 330).
* Variable — prompt lengths uniform in [512, 2048] as stated in §4.1.
* MT-Bench-like — short conversational prompts with moderate outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``prefix_group``/``prefix_len`` declare that the first ``prefix_len``
    prompt tokens are identical across every request with the same group id
    (a shared system prompt) — the structure a radix-tree prefix cache
    exploits (§5.4, RadixAttention).
    """

    arrival: float
    prompt_len: int
    output_len: int
    n: int = 1  # parallel generations (the OpenAI "n" parameter, §4.4)
    prefix_group: Optional[int] = None
    prefix_len: int = 0
    #: Relative deadline (seconds after arrival) after which the engine may
    #: shed this request; ``None`` falls back to the engine-wide
    #: ``ResilienceConfig.deadline`` (which may also be ``None``: no limit).
    deadline: Optional[float] = None
    #: Scheduling weight consumed by the ``priority`` policy (higher runs
    #: first); ignored by ``fcfs``.
    priority: int = 0
    #: Cluster-global request id, assigned by the data-parallel router
    #: before requests are split across replicas.  When set, token ids are
    #: keyed by ``rid`` instead of the replica-local request index, so a
    #: replica serving any subset of the workload emits exactly the tokens
    #: the single-engine run would.  ``None`` (the default) preserves the
    #: single-engine behavior bit for bit.
    rid: Optional[int] = None
    #: Tenant id consumed by the overload front door's per-tenant rate
    #: limiting (:mod:`repro.serving.overload`); untagged requests
    #: (``None``) hash deterministically to ``rid % tenants`` at the door.
    tenant: Optional[int] = None

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_len <= 0 or self.n <= 0:
            raise ValueError("prompt_len, output_len and n must be positive")
        if self.prefix_len < 0 or self.prefix_len > self.prompt_len:
            raise ValueError("prefix_len must be in [0, prompt_len]")
        if self.prefix_len and self.prefix_group is None:
            raise ValueError("prefix_len requires a prefix_group")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.tenant is not None and self.tenant < 0:
            raise ValueError("tenant must be >= 0")


def poisson_arrivals(num_requests: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Arrival times for a Poisson process at ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def _lognormal_lengths(
    rng: np.random.Generator, n: int, mu: float, sigma: float, lo: int, hi: int
) -> np.ndarray:
    x = rng.lognormal(mu, sigma, size=n)
    return np.clip(np.rint(x), lo, hi).astype(np.int64)


def sharegpt_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
    n: int = 1,
) -> List[Request]:
    """ShareGPT-like conversation lengths with Poisson arrivals."""
    rng = new_rng(seed)
    arrivals = poisson_arrivals(num_requests, rate, rng)
    prompts = _lognormal_lengths(rng, num_requests, mu=4.6, sigma=1.0, lo=4, hi=4096)
    outputs = _lognormal_lengths(rng, num_requests, mu=5.3, sigma=0.8, lo=4, hi=2048)
    return [
        Request(float(a), int(p), int(o), n=n)
        for a, p, o in zip(arrivals, prompts, outputs)
    ]


def variable_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
    n: int = 1,
    lo: int = 512,
    hi: int = 2048,
) -> List[Request]:
    """The §4.1 synthetic workload: lengths uniform in [512, 2048]."""
    rng = new_rng(seed)
    arrivals = poisson_arrivals(num_requests, rate, rng)
    prompts = rng.integers(lo, hi + 1, size=num_requests)
    outputs = rng.integers(lo // 4, hi // 4 + 1, size=num_requests)
    return [
        Request(float(a), int(p), int(o), n=n)
        for a, p, o in zip(arrivals, prompts, outputs)
    ]


def shared_prefix_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
    num_groups: int = 3,
    prefix_len: int = 2048,
    suffix_lo: int = 32,
    suffix_hi: int = 256,
    output_lo: int = 8,
    output_hi: int = 64,
) -> List[Request]:
    """Many-users-few-system-prompts workload (the radix-cache target).

    Every request draws one of ``num_groups`` shared system prompts of
    ``prefix_len`` tokens, followed by a short per-user suffix — with the
    defaults well over 70% of all prompt tokens are shared-prefix tokens,
    the regime where prefix caching plus cascade attention pays off.
    """
    if num_groups <= 0 or prefix_len <= 0:
        raise ValueError("num_groups and prefix_len must be positive")
    rng = new_rng(seed)
    arrivals = poisson_arrivals(num_requests, rate, rng)
    groups = rng.integers(0, num_groups, size=num_requests)
    suffixes = rng.integers(suffix_lo, suffix_hi + 1, size=num_requests)
    outputs = rng.integers(output_lo, output_hi + 1, size=num_requests)
    return [
        Request(
            float(a), prefix_len + int(s), int(o),
            prefix_group=int(g), prefix_len=prefix_len,
        )
        for a, g, s, o in zip(arrivals, groups, suffixes, outputs)
    ]


def mtbench_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
) -> List[Request]:
    """MT-Bench-like conversational lengths (§4.3)."""
    rng = new_rng(seed)
    arrivals = poisson_arrivals(num_requests, rate, rng)
    prompts = rng.integers(40, 500, size=num_requests)
    outputs = rng.integers(100, 400, size=num_requests)
    return [Request(float(a), int(p), int(o)) for a, p, o in zip(arrivals, prompts, outputs)]


def bursty_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
    tenants: int = 4,
    burst: float = 3.0,
    burst_len: float = 0.25,
    burst_every: float = 1.5,
    period: float = 2.0,
    amplitude: float = 0.4,
    premium_tenants: int = 1,
) -> List[Request]:
    """Bursty/diurnal tenant-tagged arrivals (the overload substrate).

    An inhomogeneous Poisson process generated by thinning: the base
    ``rate`` is modulated by a sinusoidal "diurnal" factor
    ``1 + amplitude * sin(2*pi*t / period)`` and multiplied by ``burst``
    inside seeded burst windows (gaps between windows ~ Exp(burst_every),
    each ``burst_len`` seconds long) — sustained saturation with quiet
    lulls in between, exactly the shape breakers and brownout need to
    both trip *and* recover.  Lengths follow the ShareGPT-like
    marginals; every request carries a seeded ``tenant`` tag, and the
    first ``premium_tenants`` tenants get ``priority=1`` (the tier the
    brownout shed rung protects).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if tenants < 1 or not 0 <= premium_tenants <= tenants:
        raise ValueError("need tenants >= 1 and 0 <= premium_tenants <= tenants")
    if burst < 1.0 or not 0.0 <= amplitude < 1.0:
        raise ValueError("need burst >= 1 and 0 <= amplitude < 1")
    if burst_len <= 0 or burst_every <= 0 or period <= 0:
        raise ValueError("burst_len, burst_every and period must be positive")
    rng = new_rng(seed)
    lam_max = rate * (1.0 + amplitude) * burst
    out: List[Request] = []
    t = 0.0
    burst_t = float(rng.exponential(burst_every))  # next burst-window start
    while len(out) < num_requests:
        t += float(rng.exponential(1.0 / lam_max))
        while t >= burst_t + burst_len:
            burst_t += burst_len + float(rng.exponential(burst_every))
        lam = rate * (1.0 + amplitude * float(np.sin(2.0 * np.pi * t / period)))
        if burst_t <= t:
            lam *= burst
        if rng.random() * lam_max > lam:
            continue  # thinned candidate
        prompt = _lognormal_lengths(rng, 1, mu=4.6, sigma=1.0, lo=4, hi=4096)[0]
        output = _lognormal_lengths(rng, 1, mu=5.3, sigma=0.8, lo=4, hi=2048)[0]
        tenant = int(rng.integers(tenants))
        out.append(
            Request(
                float(t), int(prompt), int(output),
                priority=1 if tenant < premium_tenants else 0,
                tenant=tenant,
            )
        )
    return out


#: Prompt length at/above which :func:`mixed_disagg_workload` requests
#: count as "long" (the chatty class is everything below it).
MIXED_LONG_PROMPT_THRESHOLD = 512


def mixed_disagg_workload(
    num_requests: int,
    rate: float,
    seed: SeedLike = 0,
    chatty_fraction: float = 0.75,
    long_prompt_lo: int = 2048,
    long_prompt_hi: int = 4096,
    long_output_lo: int = 8,
    long_output_hi: int = 32,
    chatty_prompt_lo: int = 32,
    chatty_prompt_hi: int = 128,
    chatty_output_lo: int = 32,
    chatty_output_hi: int = 128,
) -> List[Request]:
    """Mixed long-prompt + chatty workload (the disaggregation target).

    Two interleaved request classes on one Poisson arrival process: rare
    long-prompt summarization jobs (huge prefill, tiny decode) and a
    majority of chatty sessions (tiny prefill, long decode).  Colocated,
    each long prefill step blocks every chatty stream sharing its replica
    — the ITL spikes DistServe-style prefill/decode disaggregation
    removes.  Class membership is recoverable from the lengths alone: a
    prompt at or above :data:`MIXED_LONG_PROMPT_THRESHOLD` tokens is
    "long", anything below is "chatty" (the generators' ranges keep a
    wide gap around the threshold).
    """
    if not 0.0 < chatty_fraction < 1.0:
        raise ValueError("chatty_fraction must be in (0, 1)")
    if not chatty_prompt_hi < MIXED_LONG_PROMPT_THRESHOLD <= long_prompt_lo:
        raise ValueError(
            "class prompt ranges must straddle MIXED_LONG_PROMPT_THRESHOLD "
            "so per-class metrics stay recoverable from the lengths"
        )
    rng = new_rng(seed)
    arrivals = poisson_arrivals(num_requests, rate, rng)
    chatty = rng.random(num_requests) < chatty_fraction
    out: List[Request] = []
    for a, is_chatty in zip(arrivals, chatty):
        if is_chatty:
            prompt = int(rng.integers(chatty_prompt_lo, chatty_prompt_hi + 1))
            output = int(rng.integers(chatty_output_lo, chatty_output_hi + 1))
        else:
            prompt = int(rng.integers(long_prompt_lo, long_prompt_hi + 1))
            output = int(rng.integers(long_output_lo, long_output_hi + 1))
        out.append(Request(float(a), prompt, output))
    return out


# -- kernel-benchmark length distributions (§4.2) -----------------------------


def constant_lengths(batch_size: int, length: int) -> np.ndarray:
    return np.full(batch_size, length, dtype=np.int64)


def uniform_lengths(
    batch_size: int, lo: int, hi: int, seed: SeedLike = 0
) -> np.ndarray:
    return new_rng(seed).integers(lo, hi + 1, size=batch_size).astype(np.int64)


def zipf_lengths(
    batch_size: int, mean: int, seed: SeedLike = 0, a: float = 2.0, min_len: int = 16
) -> np.ndarray:
    """Zipf-distributed lengths rescaled to the requested mean (§4.2:
    "skewed (Zipf distribution with average length 1024)")."""
    rng = new_rng(seed)
    x = rng.zipf(a, size=batch_size).astype(np.float64)
    x = x / x.mean() * mean
    return np.maximum(np.rint(x), min_len).astype(np.int64)
