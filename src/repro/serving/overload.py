"""Overload-hardened front door: admission, client retries, brownout, SLOs.

The serving-side half of the cluster's overload layer (the per-replica
circuit breakers live with the router in :mod:`repro.cluster.router`).
Four pieces compose into graceful saturation:

* **Tenant-aware front door** — :class:`FrontDoor` walks the
  arrival-sorted, rid-stamped workload through per-tenant
  :class:`TokenBucket` rate limiters whose refill rates split
  :attr:`OverloadConfig.admit_rate` in proportion to
  ``tenant_weights`` (weighted-fair admission).  A rejected request
  re-arrives through a deterministic seeded client-retry model
  (exponential backoff + jitter keyed by ``SeedSequence([seed, rid,
  attempt])``, so the schedule is independent of processing order),
  bounded by ``max_client_retries`` per request *and* a global retry
  budget (``retry_budget × offered`` re-arrivals total) so a retry
  storm cannot amplify the very overload that caused it.  Exhausted
  requests are dropped at the door and count as SLO misses.

* **Brownout ladder** — :class:`BrownoutController` walks an SLO-driven
  degradation ladder with dwell-count hysteresis (modeled on
  :class:`repro.faults.recover.DegradeController`): shrink the prefill
  chunk size → disable cascade composition → clamp ``max_new_tokens`` →
  shed the lowest priority tier.  Fed one admission-saturation sample
  per engine step; anneals back rung by rung once saturation stays
  below the exit threshold.

* **SLO attainment** — :func:`slo_attainment` scores TTFT against the
  target over *everything offered* (drops and sheds are misses), with
  retried requests measured from their original arrival so client-side
  backoff is not hidden.

* **Token exactness** — rid-keyed token ids make every re-arrival,
  re-dispatch and hedge token-exact by construction;
  :func:`overload_token_divergence` is the prefix-aware check that also
  covers brownout-clamped streams (a clamp shortens a stream, it never
  changes a token).

Everything here is consulted only when
:attr:`repro.cluster.ClusterConfig.overload` is set; ``overload=None``
runs are bit-identical to the pre-overload engine.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BROWNOUT_LADDER",
    "BrownoutController",
    "FrontDoor",
    "OverloadConfig",
    "OverloadReport",
    "TokenBucket",
    "overload_token_divergence",
    "slo_attainment",
]


@dataclass
class OverloadConfig:
    """Front-door, retry, hedging, breaker and brownout knobs."""

    #: Tenants behind the front door; untagged requests (``Request.tenant
    #: is None``) hash deterministically to ``rid % tenants``.
    tenants: int = 4
    #: Aggregate sustained admission rate (requests/s), split across the
    #: per-tenant token buckets in proportion to :attr:`tenant_weights`
    #: (weighted-fair shares).
    admit_rate: float = 100.0
    #: Per-tenant bucket depth: requests of burst absorbed at full rate
    #: before the bucket starts rejecting.
    burst_capacity: float = 8.0
    #: One positive weight per tenant (``None`` = equal shares).
    tenant_weights: Optional[Sequence[float]] = None
    # -- client retry model (what rejected requests do next) --------------
    #: First-retry backoff in seconds; attempt ``k`` waits
    #: ``retry_base * retry_factor**k * (1 + retry_jitter * u)`` with
    #: ``u`` drawn from ``SeedSequence([seed, rid, attempt])``.
    retry_base: float = 0.05
    retry_factor: float = 2.0
    retry_jitter: float = 0.5
    #: Re-arrivals per request before the client gives up.
    max_client_retries: int = 3
    #: Global retry budget as a fraction of offered requests: at most
    #: ``ceil(retry_budget * offered)`` retry re-arrivals total, so retry
    #: storms cannot amplify overload.
    retry_budget: float = 0.5
    #: Seed for the retry-jitter streams (non-negative).
    seed: int = 0
    # -- SLO + brownout ladder --------------------------------------------
    #: TTFT target scored by :func:`slo_attainment`.
    slo_ttft: float = 0.2
    #: Admission saturation at/above which a step counts toward engaging
    #: the next brownout rung; at/below :attr:`brownout_exit` it counts
    #: toward annealing one rung.  The band between holds (hysteresis).
    brownout_enter: float = 0.9
    brownout_exit: float = 0.6
    #: Consecutive hot steps to climb one rung / cool steps to descend.
    engage_after: int = 2
    anneal_after: int = 6
    #: Rung-1 prefill chunk size (tokens) replacing the engine's
    #: configured ``prefill_chunk_size`` while engaged.
    brownout_chunk: int = 128
    #: Rung-3 ``max_new_tokens`` clamp (total output tokens per stream).
    brownout_clamp: int = 32
    #: Rung 4 sheds queued requests with ``priority <`` this threshold.
    shed_priority_below: int = 1
    # -- hedged prefill ----------------------------------------------------
    hedge: bool = True
    #: Quantile of observed dispatch waits that sets the hedging delay.
    hedge_quantile: float = 0.9
    #: Dispatches observed before hedging activates.
    hedge_min_samples: int = 8
    #: Optional :class:`repro.cluster.router.BreakerConfig` (held as an
    #: opaque object so this module stays cluster-free); ``None`` uses the
    #: breaker defaults.
    breaker: Optional[object] = None

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.admit_rate <= 0 or self.burst_capacity <= 0:
            raise ValueError("admit_rate and burst_capacity must be positive")
        if self.retry_base <= 0 or self.retry_factor < 1.0:
            raise ValueError("need retry_base > 0 and retry_factor >= 1")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be >= 0")
        if self.max_client_retries < 0 or self.retry_budget < 0:
            raise ValueError("max_client_retries and retry_budget must be >= 0")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        if self.slo_ttft <= 0:
            raise ValueError("slo_ttft must be positive")
        if not 0.0 <= self.brownout_exit < self.brownout_enter:
            raise ValueError("need 0 <= brownout_exit < brownout_enter")
        if self.engage_after < 1 or self.anneal_after < 1:
            raise ValueError("engage_after and anneal_after must be >= 1")
        if self.brownout_chunk < 1 or self.brownout_clamp < 1:
            raise ValueError("brownout_chunk and brownout_clamp must be >= 1")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")


class TokenBucket:
    """Deterministic token bucket on the simulated clock.

    Refills continuously at ``rate`` tokens/second up to ``capacity``;
    :meth:`allow` consults and consumes in one call.  State depends only
    on the sequence of ``allow`` timestamps.
    """

    def __init__(self, rate: float, capacity: float):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._t = 0.0

    def allow(self, t: float, cost: float = 1.0) -> bool:
        """Admit a ``cost``-token request at time ``t``?"""
        dt = max(t - self._t, 0.0)
        if dt:
            self.tokens = min(self.capacity, self.tokens + dt * self.rate)
        self._t = max(self._t, t)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class FrontDoor:
    """Tenant-aware admission over an arrival-sorted, rid-stamped workload.

    :meth:`admit` returns the admitted request list (arrival-sorted;
    retried admissions carry their retry arrival, rid unchanged so tokens
    are unchanged) plus an :class:`OverloadReport` with the front-door
    counters filled in.
    """

    def __init__(self, config: OverloadConfig):
        self.config = config

    def tenant_of(self, req) -> int:
        """The request's tenant, or a deterministic hash for untagged ones."""
        if req.tenant is not None:
            return int(req.tenant) % self.config.tenants
        return int(req.rid or 0) % self.config.tenants

    def _jitter(self, rid: int, attempt: int) -> float:
        cfg = self.config
        if not cfg.retry_jitter:
            return 1.0
        u = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, int(rid), int(attempt)])
        ).random()
        return 1.0 + cfg.retry_jitter * float(u)

    def admit(self, reqs: Sequence) -> Tuple[list, "OverloadReport"]:
        cfg = self.config
        weights = (
            [float(w) for w in cfg.tenant_weights]
            if cfg.tenant_weights is not None
            else [1.0] * cfg.tenants
        )
        if len(weights) != cfg.tenants or any(w <= 0 for w in weights):
            raise ValueError(
                f"tenant_weights needs one positive weight per tenant "
                f"(got {len(weights)} for {cfg.tenants} tenants)"
            )
        total_w = sum(weights)
        buckets = [
            TokenBucket(cfg.admit_rate * w / total_w, cfg.burst_capacity)
            for w in weights
        ]
        report = OverloadReport(
            tenants=cfg.tenants,
            offered=len(reqs),
            offered_streams=sum(r.n for r in reqs),
            slo_ttft=cfg.slo_ttft,
        )
        retry_budget = int(math.ceil(cfg.retry_budget * len(reqs)))
        # The (t, rid, attempt) key orders the heap deterministically and
        # never falls through to comparing Request objects.
        events = [(r.arrival, int(r.rid or 0), 0, r) for r in reqs]
        heapq.heapify(events)
        admitted: List = []
        while events:
            t, rid, attempt, r = heapq.heappop(events)
            tenant = self.tenant_of(r)
            if buckets[tenant].allow(t):
                report.admitted += 1
                report.tenant_admitted[tenant] = (
                    report.tenant_admitted.get(tenant, 0) + 1
                )
                if attempt:
                    # Re-arrive at the retry time; rid (and therefore every
                    # token id) is unchanged.
                    report.origin[rid] = r.arrival
                    r = replace(r, arrival=t)
                admitted.append(r)
                continue
            report.rejected += 1
            if attempt >= cfg.max_client_retries or report.retries >= retry_budget:
                report.dropped += 1
                continue
            report.retries += 1
            delay = cfg.retry_base * (cfg.retry_factor ** attempt)
            delay *= self._jitter(rid, attempt)
            heapq.heappush(events, (t + delay, rid, attempt + 1, r))
        admitted.sort(key=lambda q: q.arrival)
        return admitted, report


#: Brownout rungs in engagement order; ``level`` k (1-based) applies rungs
#: ``BROWNOUT_LADDER[:k]`` simultaneously.
BROWNOUT_LADDER: Tuple[str, ...] = (
    "shrink-prefill-chunk",
    "disable-cascade",
    "clamp-new-tokens",
    "shed-low-priority",
)


class BrownoutController:
    """SLO-driven degradation ladder with dwell-count hysteresis.

    The overload counterpart of
    :class:`repro.faults.recover.DegradeController`: where that machine
    trades the fancy backend for the dense baseline under *faults*, this
    one trades output quality-of-service for admission headroom under
    *load*, one rung at a time::

        level 0   off
        level 1   shrink prefill chunk size      (slower TTFT for long prompts)
        level 2   + disable cascade composition  (more HBM traffic)
        level 3   + clamp max_new_tokens         (shorter answers, exact prefix)
        level 4   + shed lowest priority tier    (drop queued priority < threshold)

    :meth:`observe` is fed one admission-saturation sample per engine
    step; ``engage_after`` consecutive samples at/above ``enter`` climb a
    rung, ``anneal_after`` consecutive samples at/below ``exit`` descend
    one, and the band between holds — the same dwell-count hysteresis
    that keeps the degrade controller from flapping.
    """

    def __init__(
        self,
        enter: float = 0.9,
        exit: float = 0.6,
        engage_after: int = 2,
        anneal_after: int = 6,
        chunk_size: int = 128,
        clamp_tokens: int = 32,
        shed_priority_below: int = 1,
    ):
        if not 0.0 <= exit < enter:
            raise ValueError("need 0 <= exit < enter saturation thresholds")
        if engage_after < 1 or anneal_after < 1:
            raise ValueError("engage_after and anneal_after must be >= 1")
        if chunk_size < 1 or clamp_tokens < 1:
            raise ValueError("chunk_size and clamp_tokens must be >= 1")
        self.enter = float(enter)
        self.exit = float(exit)
        self.engage_after = int(engage_after)
        self.anneal_after = int(anneal_after)
        self.chunk_size = int(chunk_size)
        self.clamp_tokens = int(clamp_tokens)
        self.shed_priority_below = int(shed_priority_below)
        self.level = 0
        self.peak_level = 0
        self.engage_events = 0
        self.anneal_events = 0
        self._hot = 0
        self._cool = 0
        #: ``(t, from_level, to_level)`` rung changes, timestamped.
        self.transitions: List[Tuple[float, int, int]] = []

    @classmethod
    def from_config(cls, cfg: OverloadConfig) -> "BrownoutController":
        return cls(
            enter=cfg.brownout_enter,
            exit=cfg.brownout_exit,
            engage_after=cfg.engage_after,
            anneal_after=cfg.anneal_after,
            chunk_size=cfg.brownout_chunk,
            clamp_tokens=cfg.brownout_clamp,
            shed_priority_below=cfg.shed_priority_below,
        )

    def observe(self, sat: float, t: float) -> int:
        """Feed one step's admission saturation; returns +1 on engaging a
        rung, -1 on annealing one, 0 otherwise."""
        if sat >= self.enter:
            self._hot += 1
            self._cool = 0
            if self._hot >= self.engage_after and self.level < len(BROWNOUT_LADDER):
                self._hot = 0
                self.level += 1
                self.peak_level = max(self.peak_level, self.level)
                self.engage_events += 1
                self.transitions.append((float(t), self.level - 1, self.level))
                return 1
        elif sat <= self.exit:
            self._cool += 1
            self._hot = 0
            if self._cool >= self.anneal_after and self.level > 0:
                self._cool = 0
                self.level -= 1
                self.anneal_events += 1
                self.transitions.append((float(t), self.level + 1, self.level))
                return -1
        else:
            # Hysteresis band: hold the current rung, reset both dwells.
            self._hot = 0
            self._cool = 0
        return 0

    @property
    def rung_name(self) -> str:
        return "off" if self.level == 0 else BROWNOUT_LADDER[self.level - 1]

    def chunk_budget(self, default: int) -> int:
        """Effective prefill chunk budget under the current rung."""
        return min(default, self.chunk_size) if self.level >= 1 else default

    @property
    def cascade_disabled(self) -> bool:
        return self.level >= 2

    @property
    def token_clamp(self) -> Optional[int]:
        """Total output tokens per stream while rung 3 is engaged."""
        return self.clamp_tokens if self.level >= 3 else None

    @property
    def shed_active(self) -> bool:
        return self.level >= 4

    def export_state(self) -> dict:
        """Serializable state (the DegradeController checkpoint contract)."""
        return {
            "level": self.level,
            "peak_level": self.peak_level,
            "hot": self._hot,
            "cool": self._cool,
            "engage_events": self.engage_events,
            "anneal_events": self.anneal_events,
        }

    def import_state(self, state: dict) -> None:
        self.level = int(state["level"])
        self.peak_level = int(state["peak_level"])
        self._hot = int(state["hot"])
        self._cool = int(state["cool"])
        self.engage_events = int(state["engage_events"])
        self.anneal_events = int(state["anneal_events"])


@dataclass
class OverloadReport:
    """Front-door / breaker / hedging / brownout / SLO accounting for one
    cluster run; attached as ``ClusterMetrics.overload`` and merged into
    its ``summary()`` only when overload is configured."""

    tenants: int
    offered: int = 0
    offered_streams: int = 0
    admitted: int = 0
    #: Bucket rejections (every denied dispatch attempt, retries included).
    rejected: int = 0
    #: Retry re-arrivals scheduled (bounded by the retry budget).
    retries: int = 0
    #: Requests that gave up at the door (attempts or budget exhausted).
    dropped: int = 0
    tenant_admitted: Dict[int, int] = field(default_factory=dict)
    #: rid → original (pre-retry) arrival, for honest SLO attainment.
    origin: Dict[int, float] = field(default_factory=dict)
    #: Seeded dispatch timeouts fired, and those re-dispatched elsewhere.
    timeouts: int = 0
    reroutes: int = 0
    #: Hedged prefills issued, and hedges whose secondary copy won.
    hedged: int = 0
    hedge_wins: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: Every :class:`repro.cluster.router.BreakerTransition`, all replicas.
    breaker_transitions: List[object] = field(default_factory=list)
    brownout_engaged: int = 0
    brownout_annealed: int = 0
    brownout_peak_level: int = 0
    brownout_final_level: int = 0
    slo_ttft: float = 0.2
    slo_met: int = 0
    slo_attainment: float = 0.0

    def attach_breakers(self, breakers: Sequence) -> None:
        for b in breakers:
            self.breaker_transitions.extend(b.transitions)
            self.breaker_opens += b.open_count
            self.breaker_half_opens += b.half_open_count
            self.breaker_closes += b.close_count

    def attach_brownouts(self, controllers: Sequence) -> None:
        for c in controllers:
            if c is None:
                continue
            self.brownout_engaged += c.engage_events
            self.brownout_annealed += c.anneal_events
            self.brownout_peak_level = max(self.brownout_peak_level, c.peak_level)
            self.brownout_final_level = max(self.brownout_final_level, c.level)

    def finalize_slo(self, cluster_metrics) -> None:
        self.slo_met, self.slo_attainment = slo_attainment(
            cluster_metrics, self.offered_streams, self.slo_ttft, self.origin
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "overload_offered": float(self.offered),
            "overload_admitted": float(self.admitted),
            "overload_rejected": float(self.rejected),
            "overload_retries": float(self.retries),
            "overload_dropped": float(self.dropped),
            "overload_timeouts": float(self.timeouts),
            "overload_reroutes": float(self.reroutes),
            "hedged_prefills": float(self.hedged),
            "hedge_wins": float(self.hedge_wins),
            "breaker_open_total": float(self.breaker_opens),
            "breaker_half_open_total": float(self.breaker_half_opens),
            "breaker_close_total": float(self.breaker_closes),
            "brownout_engaged": float(self.brownout_engaged),
            "brownout_annealed": float(self.brownout_annealed),
            "brownout_peak_level": float(self.brownout_peak_level),
            "brownout_final_level": float(self.brownout_final_level),
            "slo_attainment": float(self.slo_attainment),
        }
        for tenant, n in sorted(self.tenant_admitted.items()):
            out[f"tenant{tenant}_admitted"] = float(n)
        return out


def slo_attainment(
    cluster_metrics,
    offered_streams: int,
    slo_ttft: float,
    origin: Optional[Dict[int, float]] = None,
) -> Tuple[int, float]:
    """``(met, fraction)`` of offered streams whose TTFT beat ``slo_ttft``.

    The denominator is *everything offered*: streams dropped at the front
    door or shed inside an engine never produce a first token and count
    as misses, so an admission gate cannot improve its score by refusing
    work it could have served.  With ``origin`` (rid → original arrival),
    retried requests are measured from their first arrival — the
    client-side backoff is part of the latency the user saw.
    """
    met = 0
    for requests, metrics in zip(
        cluster_metrics.replica_requests, cluster_metrics.replicas
    ):
        for tr in metrics.traces:
            t0 = tr.arrival
            if origin is not None and 0 <= tr.req_id < len(requests):
                rid = requests[tr.req_id].rid
                if rid is not None:
                    t0 = origin.get(rid, tr.arrival)
            if tr.first_token_time - t0 <= slo_ttft:
                met += 1
    frac = met / offered_streams if offered_streams > 0 else 0.0
    return met, frac


def overload_token_divergence(
    cluster_metrics, expected: Dict[Tuple[int, int], list]
) -> Tuple[int, int]:
    """Prefix-aware token-exactness check for overload runs.

    Identical to :meth:`repro.cluster.ClusterMetrics.token_divergence`
    except streams clamped by brownout rung 3 (``outcome_reason ==
    "brownout-clamp"``) must equal the exact *prefix* of the reference
    tokens: the clamp shortens a stream, it never changes a token.
    """
    divergent = compared = 0
    for requests, metrics in zip(
        cluster_metrics.replica_requests, cluster_metrics.replicas
    ):
        for tr in metrics.traces:
            if tr.tokens is None or tr.req_id < 0:
                continue
            rid = requests[tr.req_id].rid
            if rid is None:
                continue
            want = expected.get((rid, tr.gen_index))
            if want is None:
                continue
            compared += 1
            if tr.outcome_reason == "brownout-clamp":
                ok = (
                    len(tr.tokens) <= len(want)
                    and tr.tokens == want[: len(tr.tokens)]
                )
            else:
                ok = tr.tokens == want
            if not ok:
                divergent += 1
    return divergent, compared
