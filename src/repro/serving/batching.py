"""Batch forming: admitted work → an explicit :class:`StepPlan` IR.

The :class:`BatchFormer` is the middle of the engine pipeline
(admission → policy → **batch forming** → execution → postprocessing):
each step it turns the run's queues into one :class:`StepPlan` — the
prefill chunks, decode set or resume set, with every page-table mutation
(extend / truncate / fork / preempt) already applied — and hands it to
the :class:`repro.serving.executor.StepExecutor`.  Transient allocation
faults surfaced while forming are routed to
:meth:`repro.serving.admission.AdmissionController.requeue`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kvcache.paged import PagedKVCache, TransientAllocFault
from repro.kvcache.radix import RadixTree
from repro.serving.metrics import RequestTrace, ServingMetrics
from repro.serving.workload import Request
from repro.sparse.composable import (
    PrefixCluster,
    decompose_multi_level,
    decompose_shared_prefix,
    detect_shared_prefixes,
)
from repro.sparse.layout import AttentionMapping

#: Vocabulary size of the deterministic token model; tokens decoded from a
#: corrupted sequence with detection off are offset by this (the "taint"
#: marker the negative-control tests look for).
TOKEN_VOCAB = 50257


def token_id(req_idx: int, gen_index: int, pos: int) -> int:
    """Deterministic stand-in for a sampled token id.

    A pure function of (request, generation stream, position), so any two
    runs — faulty or not — that complete a stream must produce identical
    token sequences unless corrupted KV leaked into decoding.  It is also
    what makes scheduling policies trivially token-exact per stream: no
    ordering decision can change a stream's tokens.
    """
    h = req_idx * 1000003 + gen_index * 8191 + pos * 2654435761
    return (h & 0x7FFFFFFF) % TOKEN_VOCAB


def prompt_token_id(
    prefix_group: Optional[int], prefix_len: int, rid: int, pos: int
) -> int:
    """Deterministic stand-in for a *prompt* token id.

    Positions inside a request's declared shared prefix hash on the
    ``prefix_group`` alone, so every member of a group (on any replica)
    carries byte-identical prefix tokens — the structure the radix tree
    discovers.  Suffix positions hash on the request's cluster-global id,
    so no two requests ever alias beyond their declared shared prefix.
    """
    if prefix_group is not None and pos < prefix_len:
        h = prefix_group * 7878787 + pos * 2654435761 + 970181
    else:
        h = rid * 1000003 + pos * 2654435761 + 615241
    return (h & 0x7FFFFFFF) % TOKEN_VOCAB


class Stream:
    """One decode stream (a single generation of a request)."""

    __slots__ = (
        "req_idx", "seq_id", "remaining", "trace", "resume_len",
        "gen_index", "retries", "deadline",
    )

    def __init__(
        self,
        req_idx: int,
        seq_id: int,
        remaining: int,
        trace: RequestTrace,
        gen_index: int = 0,
        deadline: Optional[float] = None,
    ):
        self.req_idx = req_idx
        self.seq_id = seq_id  # -1 while preempted with all pages freed
        self.remaining = remaining
        self.trace = trace
        self.resume_len = 0  # KV length to recompute after preemption
        self.gen_index = gen_index
        self.retries = 0  # recompute retries consumed (rollback/alloc)
        self.deadline = deadline  # absolute shed time, or None

    def to_state(self) -> dict:
        """Serializable form for engine checkpointing (carries its trace:
        a live stream's trace is not yet in metrics)."""
        return {
            "req_idx": self.req_idx,
            "seq_id": self.seq_id,
            "remaining": self.remaining,
            "trace": self.trace.to_state(),
            "resume_len": self.resume_len,
            "gen_index": self.gen_index,
            "retries": self.retries,
            "deadline": self.deadline,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Stream":
        s = cls(
            req_idx=int(state["req_idx"]),
            seq_id=int(state["seq_id"]),
            remaining=int(state["remaining"]),
            trace=RequestTrace.from_state(state["trace"]),
            gen_index=int(state["gen_index"]),
            deadline=state["deadline"],
        )
        s.resume_len = int(state["resume_len"])
        s.retries = int(state["retries"])
        return s


class PartialPrefill:
    """A prompt being prefilled chunk by chunk."""

    __slots__ = ("req_idx", "seq_id", "filled")

    def __init__(self, req_idx: int, seq_id: int):
        self.req_idx = req_idx
        self.seq_id = seq_id
        self.filled = 0

    def to_state(self) -> dict:
        return {
            "req_idx": self.req_idx,
            "seq_id": self.seq_id,
            "filled": self.filled,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PartialPrefill":
        pp = cls(int(state["req_idx"]), int(state["seq_id"]))
        pp.filled = int(state["filled"])
        return pp


@dataclass
class RunState:
    """Everything one serving run mutates, shared by the pipeline layers."""

    requests: Sequence[Request]
    cache: PagedKVCache
    metrics: ServingMetrics
    waiting: Deque[int] = field(default_factory=deque)
    prefill_queue: Deque[int] = field(default_factory=deque)
    streams: List[Stream] = field(default_factory=list)
    prefilling: Deque[PartialPrefill] = field(default_factory=deque)
    preempted: Deque[Stream] = field(default_factory=deque)
    #: prefix_group → (cached pages, cached token count), page-aligned.
    prefix_registry: Dict[int, tuple] = field(default_factory=dict)
    #: Automatic longest-prefix cache over prompt token ids
    #: (``EngineConfig.prefix_cache``); ``None`` when the feature is off.
    radix: Optional[RadixTree] = None

    def has_work(self) -> bool:
        return bool(
            self.waiting or self.prefill_queue or self.prefilling
            or self.streams or self.preempted
        )

    def export_state(self) -> dict:
        """Serializable snapshot of the queues and live streams.

        ``requests``, ``cache`` and ``metrics`` travel separately in the
        engine snapshot (the cache has its own page-table serializer and
        the request list is re-supplied on recovery).
        """
        state = {
            "waiting": list(self.waiting),
            "prefill_queue": list(self.prefill_queue),
            "streams": [s.to_state() for s in self.streams],
            "prefilling": [pp.to_state() for pp in self.prefilling],
            "preempted": [s.to_state() for s in self.preempted],
            "prefix_registry": {
                str(group): {"pages": list(pages), "length": length}
                for group, (pages, length) in self.prefix_registry.items()
            },
        }
        if self.radix is not None:
            state["radix"] = self.radix.export_state()
        return state

    @classmethod
    def from_state(
        cls, state: dict, requests: Sequence[Request],
        cache: PagedKVCache, metrics: ServingMetrics,
    ) -> "RunState":
        rs = cls(requests=requests, cache=cache, metrics=metrics)
        rs.waiting = deque(int(i) for i in state["waiting"])
        rs.prefill_queue = deque(int(i) for i in state["prefill_queue"])
        rs.streams = [Stream.from_state(s) for s in state["streams"]]
        rs.prefilling = deque(
            PartialPrefill.from_state(pp) for pp in state["prefilling"]
        )
        rs.preempted = deque(Stream.from_state(s) for s in state["preempted"])
        rs.prefix_registry = {
            int(group): ([int(p) for p in entry["pages"]], int(entry["length"]))
            for group, entry in state["prefix_registry"].items()
        }
        if state.get("radix") is not None:
            # The restored cache's refcounts already include the tree's
            # holds, so the rebuild takes no new page references.
            rs.radix = RadixTree.from_state(cache, state["radix"])
        return rs


@dataclass
class StepPlan:
    """One step's worth of formed work — the IR between pipeline layers.

    The :class:`BatchFormer` produces it with all page-table mutations
    already applied; the executor prices its attention and advances time;
    the postprocessor spawns/records/finishes streams from it.
    """

    #: ``"prefill"`` | ``"decode"`` | ``"mixed"`` | ``"resume"``.
    kind: str
    #: What the attention backend prices: the dense mapping, or a
    #: composable format stack for fork groups.
    formats: object
    #: The dense :class:`AttentionMapping`, always present — the degraded
    #: fallback backend cannot run composable formats.
    mapping: AttentionMapping
    #: Backend phase flag (decode-shaped attention kernels).
    decode: bool
    #: Prompt tokens prefilled (or recomputed) this step.
    num_prefill_tokens: int
    #: Live decode streams advanced one token this step.
    num_decode_tokens: int
    #: KV sequence ids in batch order (decode streams first for mixed).
    seq_ids: List[int]
    #: ``metrics.preemptions`` snapshot from before forming, so the trace
    #: event carries the per-step preemption delta.
    preempt_before: int
    #: Fully prefilled prompts to spawn as streams: ``(req_idx, seq_id)``.
    prefilled: List[Tuple[int, int]] = field(default_factory=list)
    #: Chunked-prefill segments processed: ``(PartialPrefill, chunk)``.
    chunks: List[Tuple[PartialPrefill, int]] = field(default_factory=list)
    #: Preempted streams whose KV was recomputed and now resume decoding.
    resumed: List[Stream] = field(default_factory=list)

    @property
    def num_tokens(self) -> int:
        return self.num_prefill_tokens + self.num_decode_tokens


class BatchFormer:
    """Turn admitted work into one :class:`StepPlan` per engine step.

    Holds no step state of its own: everything flows from
    :class:`RunState` in and :class:`StepPlan` out.  ``form_*`` methods
    return ``None`` for a no-op step (everything alloc-faulted away) —
    the engine still runs the end-of-step resilience hooks then.
    """

    def __init__(self, engine, state: RunState, admission):
        self.engine = engine
        self.state = state
        self.admission = admission

    # -- prefix caching -------------------------------------------------------

    def _cached_prefix(self, req: Request):
        """Cached (pages, token count) usable by ``req``, if any.

        The reusable length is capped below the full prompt — the last
        token's logits must always be computed fresh.
        """
        cfg = self.engine.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return None
        entry = self.state.prefix_registry.get(req.prefix_group)
        if entry is None:
            return None
        pages, cached_len = entry
        usable = min(cached_len, ((req.prompt_len - 1) // cfg.page_size) * cfg.page_size)
        if usable <= 0:
            return None
        return pages[: usable // cfg.page_size], usable

    def _register_prefix(self, req: Request, cache: PagedKVCache, seq_id: int) -> None:
        """Cache a freshly prefilled request's shared-prefix pages."""
        cfg = self.engine.config
        if not (cfg.prefix_caching and req.prefix_group is not None):
            return
        if req.prefix_group in self.state.prefix_registry:
            return
        aligned = (req.prefix_len // cfg.page_size) * cfg.page_size
        if aligned < cfg.page_size:
            return
        pages = cache.seq_pages(seq_id)[: aligned // cfg.page_size]
        cache.retain_pages(pages)
        self.state.prefix_registry[req.prefix_group] = (pages, aligned)

    def _prompt_tokens(self, idx: int, length: int) -> List[int]:
        """The first ``length`` prompt token ids of request ``idx``."""
        req = self.state.requests[idx]
        rid = idx if req.rid is None else req.rid
        group = req.prefix_group
        plen = req.prefix_len
        return [prompt_token_id(group, plen, rid, pos) for pos in range(length)]

    def _radix_prefix(self, req: Request, idx: int):
        """Longest radix-cached prefix usable by ``req``, if any.

        Like :meth:`_cached_prefix`, the reusable length is capped below
        the full prompt so the last token's logits are always computed.
        """
        st, cfg = self.state, self.engine.config
        if st.radix is None:
            return None
        cap = ((req.prompt_len - 1) // cfg.page_size) * cfg.page_size
        if cap <= 0:
            return None
        matched, pages = st.radix.match_prefix(self._prompt_tokens(idx, cap))
        if matched <= 0:
            return None
        return pages, matched

    def _radix_insert(self, idx: int, seq_id: int) -> None:
        """Register a fully prefilled prompt's whole pages in the tree."""
        st = self.state
        if st.radix is None:
            return
        req = st.requests[idx]
        st.radix.insert(
            self._prompt_tokens(idx, req.prompt_len), st.cache.seq_pages(seq_id)
        )

    def _reclaim(self, pages_needed: int) -> None:
        """Evict radix-cached pages before live work has to be preempted."""
        st = self.state
        if st.radix is not None and st.cache.num_free_pages < pages_needed:
            st.radix.evict_until(pages_needed)

    def _start_prefill_seq(self, cache: PagedKVCache, idx: int):
        """Create a sequence for request ``idx``, reusing cached prefix pages.

        Returns ``(seq_id, tokens_to_prefill)``.
        """
        req = self.state.requests[idx]
        hit = self._radix_prefix(req, idx)
        radix_hit = hit is not None
        if hit is None:
            hit = self._cached_prefix(req)
        if hit is None:
            return cache.new_seq(), req.prompt_len
        pages, cached = hit
        sid = cache.new_seq(shared_pages=pages, shared_len=cached)
        eng = self.engine
        eng._step_prefix_hits += 1
        if radix_hit:
            eng._step_radix_hit_tokens += cached
            m = self.state.metrics
            m.radix_hit_tokens += cached
            m.radix_hit_prompts += 1
        return sid, req.prompt_len - cached

    # -- forming --------------------------------------------------------------

    def form_prefill(self, t: float) -> Optional[StepPlan]:
        """Token-budgeted batch of whole prompts (non-chunked mode)."""
        cfg, st = self.engine.config, self.state
        requests, prefill_queue, cache, streams = (
            st.requests, st.prefill_queue, st.cache, st.streams,
        )
        batch: List[int] = []
        tokens = 0
        evictable = st.radix.evictable_pages() if st.radix is not None else 0
        pages_left = cache.num_free_pages + evictable - len(streams)  # decode headroom
        imports = self.engine._handoff_imports
        while prefill_queue and (
            not batch or tokens + requests[prefill_queue[0]].prompt_len <= cfg.max_prefill_tokens
        ):
            if imports and prefill_queue[0] in imports:
                break  # handed-off prompt: absorbed, never compute-prefilled
            nxt = requests[prefill_queue[0]].prompt_len
            need = -(-nxt // cfg.page_size)
            if batch and need > pages_left:
                break
            idx = prefill_queue.popleft()
            batch.append(idx)
            tokens += nxt
            pages_left -= need

        ok_batch: List[int] = []
        seqs: List[int] = []
        qo_lens: List[int] = []
        for idx in batch:
            sid, new_tokens = self._start_prefill_seq(cache, idx)
            self._reclaim(-(-new_tokens // cfg.page_size) + len(streams))
            try:
                cache.extend(sid, new_tokens)
            except TransientAllocFault:
                cache.free_seq(sid)
                self.admission.requeue_prompt(idx, t)
                continue
            self._register_prefix(requests[idx], cache, sid)
            self._radix_insert(idx, sid)
            ok_batch.append(idx)
            seqs.append(sid)
            qo_lens.append(new_tokens)
        if not seqs:
            return None
        tokens = sum(qo_lens)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seqs),
            causal=True,
        )
        return StepPlan(
            kind="prefill", formats=mapping, mapping=mapping, decode=False,
            num_prefill_tokens=tokens, num_decode_tokens=0, seq_ids=seqs,
            preempt_before=st.metrics.preemptions,
            prefilled=list(zip(ok_batch, seqs)),
        )

    def form_mixed(self, t: float) -> Optional[StepPlan]:
        """One chunked-prefill step: all decode streams plus up to
        ``prefill_chunk_size`` prompt tokens piggybacked (Sarathi-serve)."""
        eng, cfg, st = self.engine, self.engine.config, self.state
        requests, prefill_queue, prefilling, cache, streams = (
            st.requests, st.prefill_queue, st.prefilling, st.cache, st.streams,
        )
        preempt_before = st.metrics.preemptions
        self._ensure_decode_capacity()
        alloc_failed: List[Stream] = []
        for s in streams:
            try:
                cache.extend(s.seq_id, 1)
            except TransientAllocFault:
                alloc_failed.append(s)
        for s in alloc_failed:
            self._preempt_alloc_failed(s, t)

        budget = eng._chunk_budget()  # config size, shrunk under brownout
        segments: List[tuple] = []  # (PartialPrefill, chunk)
        while budget > 0:
            if not prefilling:
                if not prefill_queue:
                    break
                if eng._handoff_imports and prefill_queue[0] in eng._handoff_imports:
                    break  # handed-off prompt: absorbed, never compute-prefilled
                idx = prefill_queue.popleft()
                sid, _ = self._start_prefill_seq(cache, idx)
                pp = PartialPrefill(idx, sid)
                pp.filled = cache.seq_len(sid)  # cached prefix already present
                prefilling.append(pp)
            pp = prefilling[0]
            remaining = requests[pp.req_idx].prompt_len - pp.filled
            chunk = min(budget, remaining)
            # Admission control: leave decode headroom (one page/stream).
            need = -(-chunk // cfg.page_size) + 1
            self._reclaim(need + len(streams))
            headroom = cache.num_free_pages - len(streams)
            if need > headroom:
                chunk = max((headroom - 1) * cfg.page_size, 0)
                if chunk == 0:
                    break
            pre_len = cache.seq_len(pp.seq_id)
            try:
                cache.extend(pp.seq_id, chunk)
            except TransientAllocFault:
                cache.truncate(pp.seq_id, pre_len)  # drop partial growth
                self.admission.requeue_chunk(pp, t)
                break
            segments.append((pp, chunk))
            budget -= chunk
            pp.filled += chunk
            if pp.filled == requests[pp.req_idx].prompt_len:
                self._register_prefix(requests[pp.req_idx], cache, pp.seq_id)
                self._radix_insert(pp.req_idx, pp.seq_id)
                prefilling.popleft()
            else:
                break  # the partial prompt keeps the head of the queue

        if eng._degrade is not None and not streams and not segments:
            return None
        seq_ids = [s.seq_id for s in streams] + [pp.seq_id for pp, _ in segments]
        qo_lens = [1] * len(streams) + [chunk for _, chunk in segments]
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: object = mapping
        cascade = self._compose_formats(mapping)
        if cascade is not None:
            formats = cascade
        return StepPlan(
            kind="mixed", formats=formats, mapping=mapping, decode=not segments,
            num_prefill_tokens=sum(chunk for _, chunk in segments),
            num_decode_tokens=len(streams), seq_ids=seq_ids,
            preempt_before=preempt_before, chunks=segments,
        )

    def form_decode(self, t: float) -> Optional[StepPlan]:
        """Advance every live decode stream by one token."""
        eng, st = self.engine, self.state
        cache, streams = st.cache, st.streams
        preempt_before = st.metrics.preemptions
        self._ensure_decode_capacity()
        alloc_failed: List[Stream] = []
        for s in streams:
            try:
                cache.extend(s.seq_id, 1)
            except TransientAllocFault:
                alloc_failed.append(s)
        for s in alloc_failed:
            self._preempt_alloc_failed(s, t)
        if eng._degrade is not None and not streams:
            return None
        seq_ids = [s.seq_id for s in streams]
        mapping = AttentionMapping(
            np.arange(len(streams) + 1, dtype=np.int64),
            cache.layout(seq_ids),
            causal=True,
        )
        formats: object = mapping
        cascade = self._compose_formats(mapping)
        if cascade is not None:
            formats = cascade
        return StepPlan(
            kind="decode", formats=formats, mapping=mapping, decode=True,
            num_prefill_tokens=0, num_decode_tokens=len(streams),
            seq_ids=seq_ids, preempt_before=preempt_before,
        )

    def form_resume(self, t: float) -> Optional[StepPlan]:
        """Re-prefill preempted streams' KV (recompute) so they can resume."""
        cfg, st = self.engine.config, self.state
        cache, streams, preempted = st.cache, st.streams, st.preempted
        batch: List[Stream] = []
        tokens = 0
        pages_left = cache.num_free_pages - len(streams)
        while preempted and (
            not batch
            or tokens + self._resume_tokens(preempted[0]) <= cfg.max_prefill_tokens
        ):
            # Only resume what the pool can hold right now.
            need = self._resume_pages(preempted[0])
            if batch and need > pages_left:
                break
            stream = preempted.popleft()
            batch.append(stream)
            tokens += self._resume_tokens(stream)
            pages_left -= need
        ok: List[Stream] = []
        qo_lens: List[int] = []
        for stream in batch:
            sid = stream.seq_id if stream.seq_id >= 0 else cache.new_seq()
            kept = cache.seq_len(sid)
            recompute = stream.resume_len - kept
            self._reclaim(-(-recompute // cfg.page_size) + len(streams))
            try:
                cache.extend(sid, recompute)
            except TransientAllocFault:
                if stream.seq_id >= 0:
                    cache.truncate(sid, kept)
                else:
                    cache.free_seq(sid)
                self.admission.requeue_stream(stream, t, front=True)
                continue
            stream.seq_id = sid
            ok.append(stream)
            qo_lens.append(recompute)
        if not ok:
            return None
        tokens = sum(qo_lens)
        mapping = AttentionMapping(
            np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64),
            cache.layout([s.seq_id for s in ok]),
            causal=True,
        )
        return StepPlan(
            kind="resume", formats=mapping, mapping=mapping, decode=False,
            num_prefill_tokens=tokens, num_decode_tokens=0,
            seq_ids=[s.seq_id for s in ok],
            preempt_before=st.metrics.preemptions, resumed=ok,
        )

    # -- capacity / preemption ------------------------------------------------

    def _preempt_alloc_failed(self, s: Stream, t: float) -> None:
        """A decode extend hit a transient allocation fault: preempt the
        stream (recompute later) or shed it when out of retries."""
        st = self.state
        st.streams.remove(s)
        s.resume_len = st.cache.seq_len(s.seq_id)
        st.cache.free_seq(s.seq_id)
        s.seq_id = -1
        self.admission.requeue_stream(s, t)

    def _ensure_decode_capacity(self) -> None:
        """Preempt-by-recompute when the page pool cannot absorb this step.

        vLLM-style backpressure: the youngest streams are evicted (their
        pages freed) and later re-prefilled from scratch; without it a
        full pool would abort the whole serving run mid-flight.
        """
        from repro.kvcache.paged import OutOfPagesError

        st = self.state
        cache, streams, preempted = st.cache, st.streams, st.preempted

        def pages_needed() -> int:
            needed = 0
            for s in streams:
                length = cache.seq_len(s.seq_id)
                if length % cache.page_size == 0:
                    needed += 1
                else:
                    last = cache.seq_pages(s.seq_id)[-1]
                    if cache.page_refcount(last) > 1:
                        needed += 1  # copy-on-write of a shared partial page
            return needed

        while cache.num_free_pages < pages_needed():
            # Cached-but-idle radix pages go first; preemption only when
            # eviction can free nothing more.
            if st.radix is not None and st.radix.evict_until(pages_needed()):
                continue
            if len(streams) <= 1:
                raise OutOfPagesError(
                    "KV pool too small for even one stream; increase "
                    f"EngineConfig.num_pool_pages ({cache._stats_brief()})"
                )
            victim = streams.pop()  # youngest stream
            victim.resume_len = cache.seq_len(victim.seq_id)
            cache.free_seq(victim.seq_id)
            victim.seq_id = -1
            if preempted is None:
                raise OutOfPagesError(
                    f"pool exhausted and preemption unavailable ({cache._stats_brief()})"
                )
            preempted.append(victim)
            st.metrics.preemptions += 1

    def _resume_tokens(self, s: Stream) -> int:
        """Tokens to recompute when resuming ``s``: everything after the
        verified pages a rollback kept (all of them for a full eviction)."""
        cache = self.state.cache
        if s.seq_id >= 0:
            return s.resume_len - cache.seq_len(s.seq_id)
        return s.resume_len

    def _resume_pages(self, s: Stream) -> int:
        cache = self.state.cache
        if s.seq_id >= 0:
            return -(-s.resume_len // cache.page_size) - len(cache.seq_pages(s.seq_id))
        return -(-s.resume_len // cache.page_size)

    def _compose_formats(self, mapping: AttentionMapping):
        """The cascade stack for this step's batch, or ``None`` for dense.

        Level 0 peels prefixes the page table itself reveals as shared —
        radix-cache hits surface here, since a hit aliases whole pages
        across sequences (paper §3.1.2 detection from the block structure).
        Level 1 peels per-request fork groups (parallel generations of one
        prompt) that extend past the level-0 prefix.  Shared pages are then
        read once per step instead of once per request, with partial states
        merged by ``⊕``.
        """
        eng, cfg, st = self.engine, self.engine.config, self.state
        if not (
            cfg.composable
            and eng.backend.supports_composable
            and not eng._step_is_degraded()
            and not (eng.brownout is not None and eng.brownout.cascade_disabled)
        ):
            return None
        fork = self._fork_clusters()
        detected: List[PrefixCluster] = []
        if st.radix is not None:
            detected = detect_shared_prefixes(mapping.kv)
        formats = None
        if detected:
            peel = {}
            for cl in detected:
                for r in cl.requests:
                    peel[r] = cl.prefix_len
            inner = [
                cl for cl in fork
                if cl.prefix_len > peel.get(cl.requests[0], 0)
                and len({peel.get(r, 0) for r in cl.requests}) == 1
            ]
            levels = [detected, inner] if inner else [detected]
            try:
                comp = decompose_multi_level(mapping, levels)
                if len(comp) > 1:
                    formats = comp
            except ValueError:
                formats = None  # degenerate geometry: fall through to dense
        if formats is None and fork:
            comp = decompose_shared_prefix(mapping, fork)
            if len(comp) > 1:
                formats = comp
        if formats is not None:
            self._note_cascade(formats)
        eng._step_cascade_levels = len(formats) if formats is not None else 0
        return formats

    def _note_cascade(self, formats) -> None:
        """Account HBM traffic the cascade avoids: each prefix-level group
        is read once per step instead of once per covered query row."""
        eng, m = self.engine, self.state.metrics
        model = eng.model
        saved_tokens = 0
        for fmt in formats.mappings[:-1]:  # prefix levels only
            spans = np.diff(fmt.qo_indptr)
            saved_tokens += int(np.sum((spans - 1) * fmt.kv.kv_lens))
        if saved_tokens <= 0:
            return
        bytes_per_token = model.num_kv_heads * model.head_dim * 2 * 2  # K+V, fp16
        m.cascade_steps += 1
        m.cascade_bytes_saved += float(
            saved_tokens * bytes_per_token * model.num_layers
        )

    def _fork_clusters(self) -> List[PrefixCluster]:
        """Consecutive streams of the same request share its prompt pages."""
        cfg, st = self.engine.config, self.state
        streams, requests = st.streams, st.requests
        clusters: List[PrefixCluster] = []
        i = 0
        while i < len(streams):
            j = i
            while j + 1 < len(streams) and streams[j + 1].req_idx == streams[i].req_idx:
                j += 1
            if j > i:
                prompt = requests[streams[i].req_idx].prompt_len
                aligned = (prompt // cfg.page_size) * cfg.page_size
                if aligned >= cfg.page_size:
                    clusters.append(PrefixCluster(tuple(range(i, j + 1)), aligned))
            i = j + 1
        return clusters
