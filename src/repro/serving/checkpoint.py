"""Crash-safe serving: engine snapshots, write-ahead journal, recovery.

Long-lived serving engines die — OOM kills, node failures, deploys — and
the in-step resilience layer (:mod:`repro.faults`) cannot help once the
process itself is gone: every queue, KV page and RNG stream lives in
memory.  This module adds the durability layer:

* :class:`Checkpointer` — periodic engine snapshots.  A snapshot captures
  the full :class:`~repro.serving.batching.RunState` (queues, live
  streams, partial prefills, the preempted deque), the
  :class:`~repro.kvcache.PagedKVCache` page tables *with* their
  write-versioned checksums, the fault plan's per-site RNG streams, the
  degrade state machine, accumulated :class:`ServingMetrics` and the
  engine's step/event counters — everything :meth:`ServingEngine.resume`
  needs to continue the exact trajectory.
* :class:`Journal` — a write-ahead log of admissions, emitted tokens,
  finishes and sheds between snapshots.  On recovery the journaled tokens
  of the lost window become a :class:`ReplayGuard`: re-execution from the
  snapshot must re-emit each of them byte-identically (exactly-once
  verification), surfaced as ``recover_replayed_tokens`` /
  ``recover_token_divergence``.
* :class:`RecoveryManager` — loads the latest snapshot (integrity-checked
  by content hash), rebuilds the KV cache and verifies its pages through
  the existing checksum machinery.  Pages that were corrupt at snapshot
  time survive the round-trip (version ≠ stamp) and are healed by the
  engine's own scrub/recompute path on the next step — unless that path
  is unavailable, in which case recovery *refuses* to resume.
* :class:`CrashHarness` — a kill/restore loop around an engine factory:
  run until an :class:`~repro.faults.EngineCrash` fires, recover, resume,
  repeat; reports crash phases and token divergence.

Why replay is token-exact: all engine randomness lives in the fault
plan's site streams (captured and rewound by the snapshot — except the
``crash`` stream, which is kept live so the crash being recovered from
does not re-fire), and tokens are a pure function of (request,
generation, position).  Restoring a snapshot verbatim therefore re-drives
the identical trajectory; the journal's role is to *prove* it.

Stores: :class:`CheckpointStore` keeps snapshots and the journal in
memory (in-process kill/restore loops, tests); :class:`DirectoryStore`
persists them to disk with atomic writes (``serve --journal DIR`` /
``--recover`` cold starts).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.inject import EngineCrash
from repro.kvcache.paged import PagedKVCache
from repro.serving.metrics import ServingMetrics
from repro.serving.workload import Request

#: Bump when the snapshot schema changes; recovery refuses other versions.
SNAPSHOT_VERSION = 1


class CheckpointError(RuntimeError):
    """Base class for checkpoint/recovery failures."""


class NoSnapshotError(CheckpointError):
    """Recovery was requested but the store holds no snapshot."""


class SnapshotIntegrityError(CheckpointError):
    """A stored snapshot's content hash no longer matches its payload."""


class SnapshotVerificationError(CheckpointError):
    """A snapshot's KV pages fail checksum verification and the recompute
    path cannot rebuild them; resuming would decode from corrupt state."""


class WorldMismatchError(CheckpointError):
    """A snapshot's cluster shape (``tp``/``dp``/``replica``) differs from
    the engine trying to resume it.  Resuming anyway would reinterpret the
    per-shard KV page tables under the wrong head partitioning — silently
    corrupt attention — so recovery refuses instead."""


#: Cluster shape assumed for snapshots written before the ``world`` field
#: existed: a single-GPU engine.
_DEFAULT_WORLD = {"tp": 1, "dp": 1, "replica": 0}


@dataclass
class CheckpointConfig:
    """Checkpointing policy for :class:`~repro.serving.ServingEngine`.

    ``every_steps <= 0`` disables the subsystem entirely — the engine then
    takes the exact pre-checkpoint code paths (no journal writes, no
    snapshot copies, a single ``is None`` guard per hook).
    """

    #: Snapshot cadence in executed engine steps (a genesis snapshot is
    #: always taken before step 0 so recovery never lacks a base).
    every_steps: int = 0
    #: Write the admission/token/finish journal between snapshots.
    journal: bool = True


# -- stores --------------------------------------------------------------------


def _sha(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CheckpointStore:
    """In-memory snapshot + journal store (kill/restore loops in one
    process, tests).  Snapshots are opaque JSON strings guarded by a
    content hash; :meth:`load_snapshot` re-verifies it so silent bit-rot
    surfaces as :class:`SnapshotIntegrityError` instead of a wrong
    trajectory."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, Tuple[str, str]] = {}  # id -> (sha, payload)
        self._order: List[str] = []
        self._journal: List[str] = []  # JSON lines

    # - snapshots -

    def put_snapshot(self, payload: str) -> str:
        sid = f"snap-{len(self._order):06d}"
        self._snapshots[sid] = (_sha(payload), payload)
        self._order.append(sid)
        return sid

    def snapshot_ids(self) -> List[str]:
        return list(self._order)

    def latest_snapshot_id(self) -> Optional[str]:
        return self._order[-1] if self._order else None

    def load_snapshot(self, snapshot_id: str) -> dict:
        if snapshot_id not in self._snapshots:
            raise NoSnapshotError(f"no snapshot {snapshot_id!r} in store")
        sha, payload = self._snapshots[snapshot_id]
        if _sha(payload) != sha:
            raise SnapshotIntegrityError(
                f"snapshot {snapshot_id} content hash mismatch "
                f"(stored {sha[:12]}…, payload hashes differently)"
            )
        return json.loads(payload)

    def corrupt_snapshot(self, snapshot_id: str) -> None:
        """Chaos hook: bit-rot a stored snapshot so loads fail integrity."""
        sha, payload = self._snapshots[snapshot_id]
        self._snapshots[snapshot_id] = (sha, payload + " ")

    # - journal -

    def append_journal(self, record: dict) -> None:
        self._journal.append(json.dumps(record, sort_keys=True))

    def journal_records(self) -> List[dict]:
        return [json.loads(line) for line in self._journal]


class DirectoryStore(CheckpointStore):
    """Disk-backed store: ``snap-NNNNNN.json`` files plus ``journal.jsonl``.

    Snapshot writes are atomic (temp file + ``os.replace``) so a crash
    mid-write can never leave a half snapshot as the latest one.  Opening
    an existing directory loads its snapshots and journal — the cold-start
    (``serve --recover``) path.
    """

    def __init__(self, root) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.root / "journal.jsonl"
        for f in sorted(self.root.glob("snap-*.json")):
            doc = json.loads(f.read_text())
            self._snapshots[doc["id"]] = (doc["sha256"], doc["payload"])
            self._order.append(doc["id"])
        if self._journal_path.exists():
            self._journal = [
                line for line in self._journal_path.read_text().splitlines() if line
            ]

    def put_snapshot(self, payload: str) -> str:
        sid = super().put_snapshot(payload)
        doc = json.dumps(
            {"id": sid, "sha256": self._snapshots[sid][0], "payload": payload}
        )
        path = self.root / f"{sid}.json"
        tmp = self.root / f".{sid}.tmp"
        tmp.write_text(doc)
        os.replace(tmp, path)
        return sid

    def append_journal(self, record: dict) -> None:
        super().append_journal(record)
        with open(self._journal_path, "a") as fh:
            fh.write(self._journal[-1] + "\n")


# -- snapshot assembly ---------------------------------------------------------


def build_snapshot(engine, state, admission, t: float) -> dict:
    """Everything :meth:`ServingEngine.resume` needs, as plain JSON data."""
    plan = engine.fault_plan
    return {
        "version": SNAPSHOT_VERSION,
        "t": t,
        "world": dict(engine.world),
        "steps_done": engine._steps_done,
        "event_index": engine._event_index,
        "step_prefix_hits": engine._step_prefix_hits,
        "step_radix_hit_tokens": engine._step_radix_hit_tokens,
        "requests": [dataclasses.asdict(r) for r in state.requests],
        "run_state": state.export_state(),
        "cache": state.cache.export_state(),
        "metrics": state.metrics.export_state(),
        "fault_plan": plan.export_state() if plan is not None else None,
        "degrade": (
            engine._degrade.export_state() if engine._degrade is not None else None
        ),
        "fault_counters": dict(engine._fault_counters),
        "prefill_retries": {
            str(k): v for k, v in admission.prefill_retries.items()
        },
    }


class Journal:
    """Write-ahead log of the engine's externally visible transitions."""

    def __init__(self, engine, store: CheckpointStore):
        self.engine = engine
        self.store = store

    def _write(self, record: dict) -> None:
        self.store.append_journal(record)
        self.engine._count("ckpt_journal_records")

    def admit(self, req: int, t: float) -> None:
        self._write({"type": "admit", "req": req, "t": t})

    def token(self, req: int, gen: int, pos: int, token: int, t: float) -> None:
        self._write(
            {"type": "token", "req": req, "gen": gen, "pos": pos,
             "token": token, "t": t}
        )

    def finish(self, req: int, gen: int, t: float) -> None:
        self._write({"type": "finish", "req": req, "gen": gen, "t": t})

    def shed(self, req: int, gen: int, reason: str, t: float) -> None:
        self._write(
            {"type": "shed", "req": req, "gen": gen, "reason": reason, "t": t}
        )

    def snapshot_marker(self, snapshot_id: str, step: int, t: float) -> None:
        self._write(
            {"type": "snapshot", "snapshot": snapshot_id, "step": step, "t": t}
        )

    def recover(self, snapshot_id: str, t: float) -> None:
        self._write({"type": "recover", "snapshot": snapshot_id, "t": t})

    def complete(self, t: float) -> None:
        self._write({"type": "complete", "t": t})


class Checkpointer:
    """Takes periodic snapshots of a running engine into a store."""

    def __init__(self, engine, config: CheckpointConfig, store: CheckpointStore):
        self.engine = engine
        self.config = config
        self.store = store
        self.state = None
        self.admission = None
        self._last_step = 0

    def on_step_end(self, t: float) -> None:
        """Cadence check, called once per executed engine step."""
        if self.engine._steps_done - self._last_step >= self.config.every_steps:
            self.snapshot(t, reason="periodic")

    def snapshot(self, t: float, reason: str) -> str:
        eng = self.engine
        payload = json.dumps(
            build_snapshot(eng, self.state, self.admission, t), sort_keys=True
        )
        sid = self.store.put_snapshot(payload)
        self._last_step = eng._steps_done
        eng._count("ckpt_snapshots")
        eng._fault_event(
            "ckpt", "committed", t,
            detail=f"{sid} ({reason}, step {eng._steps_done}, {len(payload)}B)",
        )
        if eng._journal is not None:
            eng._journal.snapshot_marker(sid, eng._steps_done, t)
        return sid


# -- recovery ------------------------------------------------------------------


class ReplayGuard:
    """Exactly-once verification of the journal's lost window.

    Holds the ``{(req, gen, pos): token}`` map journaled after the
    snapshot being recovered from.  As the resumed engine re-emits tokens
    it checks them off; a mismatch counts ``recover_token_divergence``
    (and traces a ``diverged`` event), a match ``recover_replayed_tokens``.
    When the window is exhausted the guard detaches itself from the
    engine, restoring the zero-overhead hot path.
    """

    def __init__(self, expected: Dict[Tuple[int, int, int], int]):
        self.expected = dict(expected)
        self.window_size = len(self.expected)
        self.engine = None  # attached by ServingEngine.resume

    def check(self, req: int, gen: int, pos: int, token: int, t: float) -> None:
        want = self.expected.pop((req, gen, pos), None)
        eng = self.engine
        if want is not None:
            if token == want:
                eng._count("recover_replayed_tokens")
            else:
                eng._count("recover_token_divergence")
                eng._fault_event(
                    "recover", "diverged", t, req_id=req,
                    detail=f"gen {gen} pos {pos}: journal says {want}, replay emitted {token}",
                )
        if not self.expected:
            eng._fault_event(
                "recover", "replayed", t,
                detail=f"journal window of {self.window_size} tokens re-verified",
            )
            eng._replay = None  # window done: back to the plain hot path


@dataclass
class RecoveredState:
    """What :class:`RecoveryManager.recover` hands to ``engine.resume``."""

    snapshot_id: str
    snapshot: dict
    requests: List[Request]
    cache: PagedKVCache
    replay: Optional[ReplayGuard]
    #: Pages that were corrupt at snapshot time; the engine's scrubber
    #: recomputes their owners on the first resumed step.
    corrupt_pages: List[int] = field(default_factory=list)


class RecoveryManager:
    """Load the latest snapshot, verify it, and prepare the resume.

    ``requests`` may re-supply the original workload; when omitted the
    request list serialized into the snapshot is used (snapshots are
    self-contained).  ``allow_recompute=False`` turns KV corruption found
    in the snapshot into a hard :class:`SnapshotVerificationError` even
    when the engine's recompute path could heal it.

    ``expected_world`` declares the cluster shape doing the recovering
    (any subset of ``{"tp", "dp", "replica"}``); a snapshot taken under a
    different shape raises :class:`WorldMismatchError` before any state is
    rebuilt.  Snapshots from before the field existed count as the
    single-GPU shape ``tp=1, dp=1, replica=0``.
    """

    def __init__(
        self,
        store: CheckpointStore,
        requests: Optional[Sequence[Request]] = None,
        allow_recompute: bool = True,
        expected_world: Optional[Dict[str, int]] = None,
    ):
        self.store = store
        self.requests = requests
        self.allow_recompute = allow_recompute
        self.expected_world = expected_world

    def latest_snapshot(self) -> Tuple[str, dict]:
        sid = self.store.latest_snapshot_id()
        if sid is None:
            raise NoSnapshotError(
                "checkpoint store holds no snapshot; nothing to recover from"
            )
        return sid, self.store.load_snapshot(sid)

    def recover(self) -> RecoveredState:
        sid, snap = self.latest_snapshot()
        if snap.get("version") != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot {sid} has schema version {snap.get('version')}, "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        if self.expected_world is not None:
            snap_world = snap.get("world") or _DEFAULT_WORLD

            def norm(key, value):
                # "role" (disaggregated pools) is a string; the shape
                # axes are ints.  Missing keys fall back to the
                # single-GPU default (role absent → colocated, None).
                return str(value) if key == "role" else int(value)

            mismatched = {
                k: (
                    norm(k, snap_world.get(k, _DEFAULT_WORLD.get(k))),
                    norm(k, v),
                )
                for k, v in self.expected_world.items()
                if norm(k, snap_world.get(k, _DEFAULT_WORLD.get(k)))
                != norm(k, v)
            }
            if mismatched:
                detail = ", ".join(
                    f"{k}: snapshot has {a}, recovering cluster has {b}"
                    for k, (a, b) in sorted(mismatched.items())
                )
                raise WorldMismatchError(
                    f"snapshot {sid} was taken in a different cluster shape "
                    f"({detail}); its per-shard KV page tables do not fit "
                    f"this partitioning — recover with the matching "
                    f"--tp/--dp or start the run fresh"
                )
        if self.requests is not None:
            requests = sorted(self.requests, key=lambda r: r.arrival)
            if len(requests) != len(snap["requests"]):
                raise CheckpointError(
                    f"snapshot {sid} was taken serving {len(snap['requests'])} "
                    f"requests but {len(requests)} were supplied for recovery"
                )
        else:
            requests = [Request(**r) for r in snap["requests"]]

        # KV verification through the existing checksum machinery: rebuild
        # the page tables, then ask which live pages fail version == stamp.
        cache = PagedKVCache.from_state(snap["cache"])
        corrupt = cache.find_corrupted()
        if corrupt and not (self.allow_recompute and cache.checksums):
            why = (
                "recovery ran with allow_recompute=False"
                if not self.allow_recompute
                else "the snapshot was taken with KV checksums disabled, so "
                     "the scrub/recompute path will not run"
            )
            raise SnapshotVerificationError(
                f"snapshot {sid} holds {len(corrupt)} corrupted KV pages "
                f"{corrupt} and they cannot be rebuilt ({why}); refusing to "
                f"resume from corrupt state"
            )

        # Journal replay: the token records after this snapshot's marker
        # are the lost window the resumed engine must re-emit verbatim.
        expected: Dict[Tuple[int, int, int], int] = {}
        collecting = False
        for rec in self.store.journal_records():
            if rec["type"] == "snapshot":
                collecting = rec["snapshot"] == sid
                if collecting:
                    expected = {}
            elif collecting and rec["type"] == "token":
                expected[(rec["req"], rec["gen"], rec["pos"])] = rec["token"]
        replay = ReplayGuard(expected) if expected else None
        return RecoveredState(
            snapshot_id=sid, snapshot=snap, requests=requests,
            cache=cache, replay=replay, corrupt_pages=corrupt,
        )


# -- kill/restore harness ------------------------------------------------------


@dataclass
class CrashReport:
    """Outcome of one :class:`CrashHarness` kill/restore campaign."""

    crashes: int
    recoveries: int
    crash_phases: List[str]
    metrics: ServingMetrics
    #: Streams whose final tokens differ from ``expected_tokens`` (when
    #: supplied), else the journal-replay divergence count.
    token_divergence: int
    compared: int


class CrashHarness:
    """Run an engine until it dies, recover, resume — until completion.

    ``engine_factory`` builds one fresh engine per process "life", wired
    to the shared ``store`` (and, for seeded-random crashes, sharing one
    :class:`~repro.faults.FaultPlan` object across lives so the ``crash``
    RNG stream stays advanced past already-fired crashes).

    ``crash_script`` is a set of ``(step_index, phase)`` kills injected
    deterministically via the engine's scripted crash hook; fired entries
    are consumed so recovery cannot re-trip them.  Seeded-random crashes
    from the fault plan's ``crash`` site compose freely with the script.
    """

    def __init__(
        self,
        engine_factory: Callable[[], object],
        requests: Sequence[Request],
        store: CheckpointStore,
        crash_script: Sequence[Tuple[int, str]] = (),
        max_crashes: int = 25,
        expected_tokens: Optional[Dict[Tuple[int, int], List[int]]] = None,
    ):
        self.engine_factory = engine_factory
        self.requests = list(requests)
        self.store = store
        self.crash_script = set(crash_script)
        self.max_crashes = max_crashes
        self.expected_tokens = expected_tokens

    def run(self) -> CrashReport:
        remaining = set(self.crash_script)
        crash_phases: List[str] = []
        recoveries = 0
        engine = self.engine_factory()
        if remaining:
            engine._crash_script = set(remaining)
        recovered = None
        while True:
            try:
                if recovered is None:
                    metrics = engine.run(self.requests)
                else:
                    metrics = engine.resume(recovered)
                break
            except EngineCrash as exc:
                crash_phases.append(exc.phase)
                remaining.discard((exc.step_index, exc.phase))
                if len(crash_phases) > self.max_crashes:
                    raise RuntimeError(
                        f"kill/restore livelock: {len(crash_phases)} crashes "
                        f"exceeded max_crashes={self.max_crashes}"
                    ) from exc
                recovered = RecoveryManager(
                    self.store, requests=self.requests
                ).recover()
                recoveries += 1
                engine = self.engine_factory()
                if remaining:
                    engine._crash_script = set(remaining)

        compared = 0
        divergence = 0
        if self.expected_tokens is not None:
            for trace in metrics.traces:
                key = (trace.req_id, trace.gen_index)
                if key in self.expected_tokens:
                    compared += 1
                    if trace.tokens != self.expected_tokens[key]:
                        divergence += 1
        elif metrics.fault_stats is not None:
            compared = int(metrics.fault_stats.get("recover_replayed_tokens", 0))
            divergence = int(
                metrics.fault_stats.get("recover_token_divergence", 0)
            )
        return CrashReport(
            crashes=len(crash_phases),
            recoveries=recoveries,
            crash_phases=crash_phases,
            metrics=metrics,
            token_divergence=divergence,
            compared=compared,
        )


__all__ = [
    "SNAPSHOT_VERSION",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointStore",
    "Checkpointer",
    "CrashHarness",
    "CrashReport",
    "DirectoryStore",
    "Journal",
    "NoSnapshotError",
    "RecoveredState",
    "RecoveryManager",
    "ReplayGuard",
    "SnapshotIntegrityError",
    "SnapshotVerificationError",
    "WorldMismatchError",
    "build_snapshot",
]
