"""Attention backends for the serving engine (the §4.1/§4.4 comparisons).

The end-to-end experiments hold the serving stack constant and swap the
attention backend:

* :class:`FlashInferBackend` — this library: load-balanced persistent
  kernels, split-KV, CUDAGraph capture, optional composable formats.
* :class:`TritonBackend` — the SGLang Triton v3.0 backend analog: correct
  kernels at lower achieved efficiency (Triton underperforms hand-tuned
  CUDA/CUTLASS on these shapes — paper Appendix C), fixed tile sizes, grid
  launches without balanced KV splitting, and more per-layer kernel
  launches.
* :class:`TRTLLMBackend` — the TensorRT-LLM analog: attention on par with
  FlashInfer (XQA-class kernels) plus *better non-attention kernels and
  communication* — the paper attributes TRT-LLM's ShareGPT edge to "other
  kernels (e.g. allreduce) and system design", so those factors live here
  as efficiency constants.

A backend reports per-layer attention time for a batch mapping, plus the
framework efficiencies the engine folds into the rest of the step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.flash_attention import FlashAttentionBaseline
from repro.core.kernels import HeadConfig
from repro.core.variant import VANILLA
from repro.core.wrapper import BatchAttentionWrapper, ComposableAttentionWrapper
from repro.gpu.cost import KernelCostModel
from repro.gpu.executor import SimReport
from repro.gpu.spec import GPUSpec
from repro.gpu.workspace import WorkspaceBuffer
from repro.sparse.composable import ComposableFormat
from repro.sparse.layout import AttentionMapping


@dataclass
class BackendCharacteristics:
    """Per-backend constants applied by the engine."""

    gemm_efficiency: float
    allreduce_efficiency: float
    #: Host-side launches per layer when CUDAGraph is unavailable/off.
    launches_per_layer: int
    uses_cudagraph: bool


class AttentionBackend:
    """Interface: per-layer attention time plus stack characteristics."""

    name: str = "base"
    characteristics: BackendCharacteristics
    supports_composable: bool = False
    #: When set (by a tracing engine), :meth:`attention_time` implementations
    #: stash the per-kernel :class:`SimReport` of each simulated launch for
    #: :meth:`pop_kernel_reports`.  Off by default — the untraced step loop
    #: pays nothing.
    collect_kernel_reports: bool = False
    #: Attached fault plan (see :meth:`set_fault_injector`); ``None`` keeps
    #: every simulated launch exactly as before.
    fault_injector = None
    #: Attached :class:`repro.serving.plan_cache.PlanCache`; ``None`` means
    #: every wrapper ``plan()`` recomputes its schedule from scratch.
    plan_cache = None

    def set_fault_injector(self, injector) -> None:
        """Attach (or detach, with ``None``) a duck-typed
        :class:`repro.faults.FaultPlan`; backends thread it into their
        simulated-kernel executors so launches can fail or straggle."""
        self.fault_injector = injector

    def set_plan_cache(self, cache) -> None:
        """Attach (or detach, with ``None``) a plan cache; backends that own
        wrappers thread it into each wrapper's ``plan_cache`` slot."""
        self.plan_cache = cache

    def attention_time(
        self, formats: "ComposableFormat | AttentionMapping", decode: bool
    ) -> float:
        """Simulated seconds for one layer's attention under this backend."""
        raise NotImplementedError

    def _record_kernel(self, name: str, report: SimReport) -> None:
        if not self.collect_kernel_reports or report is None:
            return
        self.__dict__.setdefault("_pending_kernel_reports", []).append((name, report))

    def pop_kernel_reports(self) -> List[Tuple[str, SimReport]]:
        """Drain the kernel reports recorded since the last pop.

        One entry per simulated kernel launch of the latest
        :meth:`attention_time` call(s), as ``(kernel name, SimReport)``.
        Empty unless :attr:`collect_kernel_reports` is set.
        """
        pending = self.__dict__.get("_pending_kernel_reports")
        if not pending:
            return []
        self.__dict__["_pending_kernel_reports"] = []
        return pending

    def step_overhead(self, num_layers: int, gpu: GPUSpec) -> float:
        """Per-step host overhead: one launch for a captured graph, or
        ``launches_per_layer × layers`` otherwise."""
        ch = self.characteristics
        if ch.uses_cudagraph:
            return gpu.kernel_launch_overhead
        return ch.launches_per_layer * num_layers * gpu.kernel_launch_overhead


class FlashInferBackend(AttentionBackend):
    """SGLang/MLC + FlashInfer: the system under test."""

    name = "flashinfer"
    supports_composable = True

    def __init__(
        self,
        heads: HeadConfig,
        gpu: GPUSpec,
        workspace_bytes: int = 512 * 1024 * 1024,
        composable: bool = False,
        max_batch_size: int = 1024,
        max_total_qo: int = 65536,
    ):
        self.heads = heads
        self.gpu = gpu
        self.composable = composable
        self._bounds = {"max_batch_size": max_batch_size, "max_total_qo": max_total_qo}
        self.characteristics = BackendCharacteristics(
            gemm_efficiency=0.85,
            allreduce_efficiency=1.0,
            launches_per_layer=4,
            uses_cudagraph=True,
        )
        self._workspace = WorkspaceBuffer(workspace_bytes)
        self._wrappers: Dict[str, BatchAttentionWrapper] = {}
        self._composable_wrappers: Dict[str, ComposableAttentionWrapper] = {}

    def set_fault_injector(self, injector) -> None:
        self.fault_injector = injector
        for w in self._wrappers.values():
            w.executor.fault_injector = injector
        for cw in self._composable_wrappers.values():
            for sub in cw.wrappers:
                sub.executor.fault_injector = injector

    def set_plan_cache(self, cache) -> None:
        self.plan_cache = cache
        for w in self._wrappers.values():
            w.plan_cache = cache
        for cw in self._composable_wrappers.values():
            cw.plan_cache = cache
            for sub in cw.wrappers:
                sub.plan_cache = cache

    def _single_wrapper(self, decode: bool) -> BatchAttentionWrapper:
        key = "decode" if decode else "prefill"
        if key not in self._wrappers:
            self._wrappers[key] = BatchAttentionWrapper(
                VANILLA,
                self.heads,
                self._workspace,
                self.gpu,
                avg_qo_len=1.0 if decode else 512.0,
                name=f"fi_{key}",
                **self._bounds,
            )
            self._wrappers[key].executor.fault_injector = self.fault_injector
            self._wrappers[key].plan_cache = self.plan_cache
        return self._wrappers[key]

    def attention_time(self, formats, decode: bool) -> float:
        if isinstance(formats, AttentionMapping):
            w = self._single_wrapper(decode)
            w.plan(formats)
            _, _, report = w.run(None, compute=False)
            self._record_kernel(w.name, report)
            return report.makespan
        # Composable stack: a fresh wrapper set per distinct format count is
        # cached under the phase key (separate CUDAGraphs per config, §3.4).
        key = ("decode" if decode else "prefill") + f"_{len(formats)}"
        cw = self._composable_wrappers.get(key)
        if cw is None:
            cw = ComposableAttentionWrapper(
                VANILLA, self.heads, self._workspace, self.gpu, **self._bounds
            )
            cw.plan_cache = self.plan_cache
            self._composable_wrappers[key] = cw
        cw.plan(formats)
        _, report = cw.run(None, compute=False)
        if self.collect_kernel_reports:
            # Per-format visibility: one record per stacked wrapper rather
            # than only the ⊕-combined report.
            for sub in cw.wrappers:
                self._record_kernel(sub.name, sub.last_report)
        return report.makespan


class TritonBackend(AttentionBackend):
    """SGLang + Triton v3.0 analog."""

    name = "triton"

    #: Achieved fractions of the hand-tuned CUDA kernels' efficiency; Triton
    #: lacks warp specialization/TMA on these shapes (Appendix C).
    TRITON_MMA_EFFICIENCY = 0.40
    TRITON_MEM_EFFICIENCY = 0.45
    TRITON_TILE_LATENCY = 1.5e-6

    def __init__(self, heads: HeadConfig, gpu: GPUSpec):
        self.heads = heads
        self.gpu = gpu
        self.characteristics = BackendCharacteristics(
            gemm_efficiency=0.85,  # same stack, same GEMMs
            allreduce_efficiency=1.0,
            launches_per_layer=6,
            uses_cudagraph=True,
        )
        cost = KernelCostModel(
            gpu,
            tile_latency=self.TRITON_TILE_LATENCY,
            mma_efficiency=self.TRITON_MMA_EFFICIENCY,
            mem_efficiency=self.TRITON_MEM_EFFICIENCY,
        )
        self._fa = FlashAttentionBaseline(heads, gpu, version="fa2", cost_model=cost)

    def set_fault_injector(self, injector) -> None:
        self.fault_injector = injector
        self._fa.executor.fault_injector = injector

    def attention_time(self, formats, decode: bool) -> float:
        mapping = self._flatten(formats)
        _, report = self._fa.run(mapping, decode=decode, sparse_gather=True)
        self._record_kernel("triton_fa2_decode" if decode else "triton_fa2_prefill", report)
        return report.makespan

    @staticmethod
    def _flatten(formats) -> AttentionMapping:
        if isinstance(formats, AttentionMapping):
            return formats
        if len(formats) == 1:
            return formats.mappings[0]
        raise ValueError("Triton backend does not support composable formats")


class TRTLLMBackend(AttentionBackend):
    """TensorRT-LLM analog: FlashInfer-class attention + a better stack."""

    name = "trtllm"

    def __init__(self, heads: HeadConfig, gpu: GPUSpec, workspace_bytes: int = 512 * 1024 * 1024):
        self.heads = heads
        self.gpu = gpu
        self.characteristics = BackendCharacteristics(
            gemm_efficiency=0.93,  # tuned GEMM/fusion pipeline
            allreduce_efficiency=1.5,  # custom all-reduce kernels
            launches_per_layer=2,
            uses_cudagraph=True,
        )
        self._inner = FlashInferBackend(heads, gpu, workspace_bytes)

    def set_fault_injector(self, injector) -> None:
        self.fault_injector = injector
        self._inner.set_fault_injector(injector)

    def set_plan_cache(self, cache) -> None:
        self.plan_cache = cache
        self._inner.set_plan_cache(cache)

    def attention_time(self, formats, decode: bool) -> float:
        mapping = TritonBackend._flatten(formats)
        self._inner.collect_kernel_reports = self.collect_kernel_reports
        makespan = self._inner.attention_time(mapping, decode)
        for name, report in self._inner.pop_kernel_reports():
            self._record_kernel(f"trtllm_{name}", report)
        return makespan
