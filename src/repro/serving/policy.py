"""Pluggable scheduling policies for the serving engine.

A :class:`SchedulerPolicy` decides the *order* of the admitted prefill
queue at the top of every engine step; it never changes what work is
admitted (arrival-FCFS capacity gating stays in
:class:`repro.serving.admission.AdmissionController`) and it cannot
change the tokens a stream produces — token ids are a pure function of
(request, generation, position) — so any policy is token-exact per
stream by construction.

Policies are looked up by name through a registry.  Third-party packages
can contribute policies without touching this module by declaring an
entry point in the ``repro.serving_policies`` group::

    [project.entry-points."repro.serving_policies"]
    shortest-first = mypkg.policies:ShortestFirstPolicy

or programmatically via :func:`register_policy` (which doubles as a class
decorator).
"""

from __future__ import annotations

from typing import Deque, Dict, Optional, Sequence, Type

from repro.serving.workload import Request

_ENTRY_POINT_GROUP = "repro.serving_policies"


class SchedulerPolicy:
    """Base class: reorder the admitted prefill queue in place.

    ``queue`` holds indices into ``requests`` (the run's arrival-sorted
    request list).  Implementations must reorder *in place* (the engine
    holds a reference) and must use a stable order so repeated calls on an
    unchanged queue are no-ops.
    """

    #: Registry key; subclasses must override.
    name: str = "base"

    def order(
        self,
        queue: "Deque[int]",
        requests: Sequence[Request],
        now: float,
        default_deadline: Optional[float] = None,
    ) -> None:
        raise NotImplementedError

    def _sort(self, queue: "Deque[int]", key) -> None:
        """Stable in-place sort of the deque (ties keep queue order)."""
        if len(queue) > 1:
            ordered = sorted(queue, key=key)
            if ordered != list(queue):
                queue.clear()
                queue.extend(ordered)


class FCFSPolicy(SchedulerPolicy):
    """First-come-first-served: the pre-refactor engine behavior.

    A strict no-op — the queue is already arrival-ordered by admission
    (with transient-alloc retries re-queued at the head), and this policy
    must preserve that order token-for-token.
    """

    name = "fcfs"

    def order(self, queue, requests, now, default_deadline=None) -> None:
        return None


class PriorityPolicy(SchedulerPolicy):
    """Highest :attr:`Request.priority` first; FCFS within a priority."""

    name = "priority"

    def order(self, queue, requests, now, default_deadline=None) -> None:
        self._sort(queue, key=lambda i: -requests[i].priority)


class SLAAwarePolicy(SchedulerPolicy):
    """Earliest absolute deadline first (EDF).

    A request's absolute deadline is ``arrival + deadline`` where the
    relative deadline falls back to the engine-wide
    ``ResilienceConfig.deadline``; requests with no deadline sort last,
    FCFS among themselves.
    """

    name = "sla-aware"

    def order(self, queue, requests, now, default_deadline=None) -> None:
        def key(i: int) -> float:
            req = requests[i]
            rel = req.deadline if req.deadline is not None else default_deadline
            return req.arrival + rel if rel is not None else float("inf")

        self._sort(queue, key=key)


_POLICIES: Dict[str, Type[SchedulerPolicy]] = {}
_ENTRY_POINTS_LOADED = False


def register_policy(cls: Type[SchedulerPolicy]) -> Type[SchedulerPolicy]:
    """Register a policy class under ``cls.name`` (usable as a decorator)."""
    if not getattr(cls, "name", None) or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a non-default 'name'")
    _POLICIES[cls.name] = cls
    return cls


for _cls in (FCFSPolicy, PriorityPolicy, SLAAwarePolicy):
    register_policy(_cls)


def _load_entry_point_policies() -> None:
    """Best-effort discovery of third-party policies (once per process).

    Built-in names cannot be shadowed; a broken distribution must not
    break engine construction, so all metadata errors are swallowed.
    """
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED:
        return
    _ENTRY_POINTS_LOADED = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - python < 3.8
        return
    try:
        eps = entry_points(group=_ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - python < 3.10 API
        eps = entry_points().get(_ENTRY_POINT_GROUP, [])
    except Exception:  # pragma: no cover - corrupt metadata
        return
    for ep in eps:
        try:
            cls = ep.load()
        except Exception:  # pragma: no cover - broken plugin
            continue
        if isinstance(cls, type) and issubclass(cls, SchedulerPolicy):
            _POLICIES.setdefault(cls.name, cls)


def available_policies() -> tuple:
    """Registered policy names, built-ins first."""
    _load_entry_point_policies()
    return tuple(sorted(_POLICIES, key=lambda n: (n not in ("fcfs", "priority", "sla-aware"), n)))


def get_policy(name: str) -> SchedulerPolicy:
    """Instantiate the policy registered under ``name``."""
    _load_entry_point_policies()
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; available: "
            f"{', '.join(available_policies())}"
        ) from None
