"""Shared utilities: storage dtypes, RNG helpers, validation."""

from repro.utils.dtypes import (
    FP8_E4M3_MAX,
    StorageDType,
    dequantize_fp8,
    quantize_fp8,
    round_to_storage,
)
from repro.utils.rng import new_rng
from repro.utils.validation import check_2d, check_3d, check_positive

__all__ = [
    "FP8_E4M3_MAX",
    "StorageDType",
    "dequantize_fp8",
    "quantize_fp8",
    "round_to_storage",
    "new_rng",
    "check_2d",
    "check_3d",
    "check_positive",
]
