"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np


def check_2d(x: np.ndarray, name: str) -> np.ndarray:
    """Require a 2-D array; return it as ``np.ndarray``."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {x.shape}")
    return x


def check_3d(x: np.ndarray, name: str) -> np.ndarray:
    """Require a 3-D array (tokens, heads, head_dim); return it."""
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"{name} must be 3-D (tokens, heads, head_dim), got shape {x.shape}")
    return x


def check_positive(value: int, name: str) -> int:
    """Require a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)
