"""Deterministic RNG construction for tests, workloads and benchmarks."""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = 0) -> np.random.Generator:
    """Return a NumPy ``Generator``.

    Accepts an int seed, an existing generator (passed through, so callers can
    thread one RNG through a pipeline), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
