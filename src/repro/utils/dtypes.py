"""Storage dtype emulation.

FlashInfer computes in fp32 accumulators while storing Q/K/V in fp16 or fp8
(e4m3) to cut memory traffic (paper Appendix F).  We mirror that split: all
arithmetic here is float32/float64 NumPy, and *storage* precision is emulated
by rounding values through the chosen format.  This exercises the
mixed-precision code path and its accuracy behaviour without GPU tensor cores.
"""

from __future__ import annotations

import enum

import numpy as np

# Largest finite value representable in fp8 e4m3 (per the OCP / NVIDIA spec).
FP8_E4M3_MAX = 448.0

_E4M3_MANTISSA_BITS = 3
_E4M3_MIN_NORMAL_EXP = -6  # smallest normal exponent
_E4M3_MIN_SUBNORMAL = 2.0**-9  # 2^-6 * 2^-3


class StorageDType(enum.Enum):
    """Precision used for *stored* tensors (compute is always fp32)."""

    FP32 = "fp32"
    FP16 = "fp16"
    FP8_E4M3 = "fp8_e4m3"

    @property
    def itemsize(self) -> int:
        """Bytes per element, used by the memory-traffic model."""
        return {"fp32": 4, "fp16": 2, "fp8_e4m3": 1}[self.value]


def quantize_fp8(x: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest fp8 e4m3 value (returned as float32).

    Saturates to ±``FP8_E4M3_MAX``; flushes values below the smallest
    subnormal to zero.  This emulates storing a tensor in fp8 without an
    actual 8-bit container: the value grid is exact, the bytes are not.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    mag = np.abs(x)
    out = np.zeros_like(mag)

    normal = mag >= 2.0**_E4M3_MIN_NORMAL_EXP
    if np.any(normal):
        m = mag[normal]
        exp = np.floor(np.log2(m))
        scale = 2.0 ** (exp - _E4M3_MANTISSA_BITS)
        out_n = np.rint(m / scale) * scale
        out[normal] = out_n
    subnormal = (~normal) & (mag > 0)
    if np.any(subnormal):
        out[subnormal] = np.rint(mag[subnormal] / _E4M3_MIN_SUBNORMAL) * _E4M3_MIN_SUBNORMAL

    out = np.minimum(out, FP8_E4M3_MAX)
    return (sign * out).astype(np.float32)


def dequantize_fp8(x: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Inverse of :func:`quantize_fp8` under a per-tensor scale factor."""
    return np.asarray(x, dtype=np.float32) * np.float32(scale)


def round_to_storage(x: np.ndarray, dtype: StorageDType) -> np.ndarray:
    """Round ``x`` through storage precision ``dtype``, returning float32."""
    x = np.asarray(x)
    if dtype is StorageDType.FP32:
        return x.astype(np.float32)
    if dtype is StorageDType.FP16:
        return x.astype(np.float16).astype(np.float32)
    if dtype is StorageDType.FP8_E4M3:
        return quantize_fp8(x)
    raise ValueError(f"unknown storage dtype: {dtype!r}")
