"""FlashInfer-compatible public API surface.

The open-source FlashInfer library exposes task-specific wrappers
(``BatchDecodeWithPagedKVCacheWrapper``,
``BatchPrefillWithPagedKVCacheWrapper``,
``BatchPrefillWithRaggedKVCacheWrapper`` — the APIs cited in Appendix B)
plus single-request helpers and the state-merge operators.  This module
provides the same names and call shapes over this reproduction's engine,
so downstream code written against the real library's Python API ports
directly.

All wrappers share the plan/run discipline of paper §3.4 (Listing 1):
construct once with a workspace buffer, ``plan`` per generation step on
the CPU, ``run`` any number of times per plan.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.kernels import HeadConfig
from repro.core.state import merge_states as _merge_states_raw
from repro.core.variant import VANILLA, AttentionVariant
from repro.core.wrapper import BatchAttentionWrapper
from repro.gpu.executor import SimReport
from repro.gpu.spec import A100_40G, GPUSpec
from repro.gpu.workspace import WorkspaceBuffer
from repro.sparse.layout import AttentionMapping, BlockSparseKV
from repro.utils.dtypes import StorageDType


class BatchDecodeWithPagedKVCacheWrapper:
    """Batch decode attention over a paged KV cache.

    Mirrors ``flashinfer.decode.BatchDecodeWithPagedKVCacheWrapper``:
    ``plan`` takes the page-table triple ``(kv_indptr, kv_indices,
    last_page_len)``; ``run`` takes the query tensor and the K/V page pools.
    """

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        page_size: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        max_batch_size: Optional[int] = None,
    ):
        self.page_size = page_size
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=1.0, kv_dtype=kv_dtype,
            max_batch_size=max_batch_size,
            max_total_qo=max_batch_size,
        )
        self._pool_blocks: Optional[int] = None

    def plan(
        self,
        kv_indptr: np.ndarray,
        kv_indices: np.ndarray,
        last_page_len: np.ndarray,
        pool_num_pages: int,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> None:
        """Stage the decode schedule for the current page table."""
        kv_indptr = np.asarray(kv_indptr, dtype=np.int64)
        last_page_len = np.asarray(last_page_len, dtype=np.int64)
        batch = kv_indptr.size - 1
        pages_per_seq = np.diff(kv_indptr)
        kv_lens = np.where(
            pages_per_seq > 0,
            (pages_per_seq - 1) * self.page_size + last_page_len,
            0,
        )
        kv = BlockSparseKV(self.page_size, pool_num_pages, kv_indptr,
                           np.asarray(kv_indices, dtype=np.int64), kv_lens)
        mapping = AttentionMapping(
            np.arange(batch + 1, dtype=np.int64), kv, causal=True
        )
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)

    def run(
        self,
        q: np.ndarray,
        k_pool: np.ndarray,
        v_pool: np.ndarray,
        return_lse: bool = False,
    ):
        """Compute decode attention: ``q`` is ``(batch, H_qo, D)``."""
        out, lse, _ = self._inner.run(q, k_pool, v_pool)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


class BatchPrefillWithPagedKVCacheWrapper:
    """Batch (incremental) prefill attention over a paged KV cache.

    Mirrors ``flashinfer.prefill.BatchPrefillWithPagedKVCacheWrapper``:
    queries are packed per ``qo_indptr``; KV comes from the page pool.
    """

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        page_size: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        avg_qo_len: float = 512.0,
        max_batch_size: Optional[int] = None,
        max_total_qo: Optional[int] = None,
    ):
        self.page_size = page_size
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=avg_qo_len, kv_dtype=kv_dtype,
            max_batch_size=max_batch_size, max_total_qo=max_total_qo,
        )

    def plan(
        self,
        qo_indptr: np.ndarray,
        kv_indptr: np.ndarray,
        kv_indices: np.ndarray,
        last_page_len: np.ndarray,
        pool_num_pages: int,
        causal: bool = True,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> None:
        kv_indptr = np.asarray(kv_indptr, dtype=np.int64)
        last_page_len = np.asarray(last_page_len, dtype=np.int64)
        pages_per_seq = np.diff(kv_indptr)
        kv_lens = np.where(
            pages_per_seq > 0,
            (pages_per_seq - 1) * self.page_size + last_page_len,
            0,
        )
        kv = BlockSparseKV(self.page_size, pool_num_pages, kv_indptr,
                           np.asarray(kv_indices, dtype=np.int64), kv_lens)
        mapping = AttentionMapping(
            np.asarray(qo_indptr, dtype=np.int64), kv, causal=causal
        )
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)

    def run(self, q, k_pool, v_pool, return_lse: bool = False):
        out, lse, _ = self._inner.run(q, k_pool, v_pool)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


class BatchPrefillWithRaggedKVCacheWrapper:
    """Batch prefill over *contiguous* (ragged) K/V tensors.

    Mirrors ``flashinfer.prefill.BatchPrefillWithRaggedKVCacheWrapper`` —
    the dense path of Appendix B: K/V are packed ``(total_kv, H, D)``
    tensors sharing ``kv_indptr`` with no page indirection, so loads are
    contiguous (TMA-eligible on Hopper).
    """

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        avg_qo_len: float = 512.0,
        max_batch_size: Optional[int] = None,
        max_total_qo: Optional[int] = None,
    ):
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=avg_qo_len, kv_dtype=kv_dtype, sparse_gather=False,
            max_batch_size=max_batch_size, max_total_qo=max_total_qo,
        )

    def plan(
        self,
        qo_indptr: np.ndarray,
        kv_indptr: np.ndarray,
        causal: bool = True,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> None:
        """Ragged layout: request ``i`` owns KV rows
        ``[kv_indptr[i], kv_indptr[i+1])`` of the packed K/V tensors."""
        kv_indptr = np.asarray(kv_indptr, dtype=np.int64)
        kv_lens = np.diff(kv_indptr)
        total_kv = int(kv_indptr[-1])
        # Contiguous rows = a degenerate block-sparse layout with B_c = 1
        # and identity gather.
        indices = np.arange(total_kv, dtype=np.int64)
        kv = BlockSparseKV(1, max(total_kv, 1), kv_indptr, indices, kv_lens)
        mapping = AttentionMapping(
            np.asarray(qo_indptr, dtype=np.int64), kv, causal=causal
        )
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)

    def run(self, q, k, v, return_lse: bool = False):
        out, lse, _ = self._inner.run(q, k, v)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


# -- single-request helpers (flashinfer.single_* equivalents) -----------------


def single_prefill_with_kv_cache(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    sm_scale: Optional[float] = None,
    variant: AttentionVariant = VANILLA,
    gpu: GPUSpec = A100_40G,
    params: Optional[dict] = None,
) -> np.ndarray:
    """One-shot prefill attention for a single request (no paging)."""
    n_q, n_kv = q.shape[0], k.shape[0]
    ws = WorkspaceBuffer(max(64 * 1024 * 1024, n_kv * 1024))
    w = BatchPrefillWithRaggedKVCacheWrapper(
        ws, q.shape[1], k.shape[1], q.shape[2], gpu=gpu, variant=variant,
        avg_qo_len=float(n_q),
    )
    w.plan(np.array([0, n_q]), np.array([0, n_kv]), causal=causal,
           params=params, sm_scale=sm_scale)
    return w.run(q, k, v)


def single_decode_with_kv_cache(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    sm_scale: Optional[float] = None,
    variant: AttentionVariant = VANILLA,
    gpu: GPUSpec = A100_40G,
    params: Optional[dict] = None,
) -> np.ndarray:
    """One-shot decode attention: ``q`` is ``(H_qo, D)``, K/V ``(n, H_kv, D)``."""
    out = single_prefill_with_kv_cache(
        q[None], k, v, causal=True, sm_scale=sm_scale, variant=variant,
        gpu=gpu, params=params,
    )
    return out[0]


# -- state-merge operators (flashinfer.merge_state / merge_states) ------------


def merge_state(
    v_a: np.ndarray, s_a: np.ndarray, v_b: np.ndarray, s_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two attention states ``(V, S)`` with ``⊕`` (paper §2.2)."""
    return _merge_states_raw(v_a, s_a, v_b, s_b)


def merge_states(v: np.ndarray, s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Merge ``num_states`` stacked attention states: ``v`` is
    ``(num_states, ..., D)``, ``s`` is ``(num_states, ...)``."""
    v = np.asarray(v)
    s = np.asarray(s)
    if v.shape[0] != s.shape[0] or v.shape[0] == 0:
        raise ValueError("v and s must stack the same non-zero number of states")
    out_v, out_s = v[0], s[0]
    for i in range(1, v.shape[0]):
        out_v, out_s = _merge_states_raw(out_v, out_s, v[i], s[i])
    return out_v, out_s
