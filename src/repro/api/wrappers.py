"""FlashInfer-compatible public API surface.

The open-source FlashInfer library exposes task-specific wrappers
(``BatchDecodeWithPagedKVCacheWrapper``,
``BatchPrefillWithPagedKVCacheWrapper``,
``BatchPrefillWithRaggedKVCacheWrapper`` — the APIs cited in Appendix B)
plus single-request helpers and the state-merge operators.  This module
provides the same names and call shapes over this reproduction's engine,
so downstream code written against the real library's Python API ports
directly.

All wrappers share the plan/run discipline of paper §3.4 (Listing 1):
construct once with a workspace buffer, ``plan`` per generation step on
the CPU, ``run`` any number of times per plan.  The two paged wrappers
share one plan path (:func:`_paged_kv_mapping`): the KV-pool page count is
inferred from the page-table indices at ``plan`` time and validated
against the K/V pools passed to ``run``.  The old explicit
``pool_num_pages`` argument (deprecated since the API redesign) has been
removed; passing it raises ``TypeError`` with a migration hint.

Every wrapper accepts an optional :class:`repro.obs.StepTracer`; when
attached, each ``run`` records a :class:`repro.obs.KernelRecord` so
standalone wrapper calls are profiled with the same schema as engine
steps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.kernels import HeadConfig
from repro.core.state import merge_states as _merge_states_raw
from repro.core.variant import VANILLA, AttentionVariant
from repro.core.wrapper import BatchAttentionWrapper
from repro.gpu.executor import SimReport
from repro.gpu.spec import A100_40G, GPUSpec
from repro.gpu.workspace import WorkspaceBuffer
from repro.obs.events import KernelRecord
from repro.obs.tracer import StepTracer
from repro.sparse.layout import AttentionMapping, BlockSparseKV
from repro.utils.dtypes import StorageDType


def _paged_kv_mapping(
    page_size: int,
    qo_indptr: np.ndarray,
    kv_indptr: np.ndarray,
    kv_indices: np.ndarray,
    last_page_len: np.ndarray,
    causal: bool,
) -> AttentionMapping:
    """Shared plan path of the paged wrappers: lower the FlashInfer page-table
    triple ``(kv_indptr, kv_indices, last_page_len)`` to an
    :class:`AttentionMapping`.

    The pool bound is inferred from the largest referenced page index (the
    K/V pools handed to ``run()`` are validated against it).
    """
    kv_indptr = np.asarray(kv_indptr, dtype=np.int64)
    kv_indices = np.asarray(kv_indices, dtype=np.int64)
    last_page_len = np.asarray(last_page_len, dtype=np.int64)
    pages_per_seq = np.diff(kv_indptr)
    kv_lens = np.where(
        pages_per_seq > 0,
        (pages_per_seq - 1) * page_size + last_page_len,
        0,
    )
    pool_num_pages = int(kv_indices.max()) + 1 if kv_indices.size else 1
    kv = BlockSparseKV(page_size, pool_num_pages, kv_indptr, kv_indices, kv_lens)
    return AttentionMapping(
        np.asarray(qo_indptr, dtype=np.int64), kv, causal=causal
    )


class _WrapperBase:
    """Shared plan/run state machine for the public wrappers."""

    #: Set by subclasses; used for error messages and kernel records.
    _phase = "batch"

    def __init__(self, tracer: Optional[StepTracer] = None):
        self.tracer = tracer
        self._planned = False
        self._min_pool_pages: Optional[int] = None

    def _reject_pool_num_pages(self, extra_args: tuple, kwargs: dict) -> None:
        """The explicit ``pool_num_pages`` plan argument was deprecated in
        the API redesign and is now removed; raise with a migration hint
        whether it arrives positionally or by keyword."""
        if extra_args or "pool_num_pages" in kwargs:
            raise TypeError(
                f"{type(self).__name__}.plan() no longer accepts "
                f"pool_num_pages: the pool size is inferred from the "
                f"page-table indices at plan() time and validated against "
                f"the K/V pools passed to run(). Drop the argument."
            )
        if kwargs:
            unexpected = next(iter(kwargs))
            raise TypeError(
                f"{type(self).__name__}.plan() got an unexpected keyword "
                f"argument {unexpected!r}"
            )

    def _require_plan(self) -> None:
        if not self._planned:
            raise RuntimeError(
                f"{type(self).__name__}.run() called before plan(); call "
                f"{type(self).__name__}.plan(...) with the current page "
                f"table/indptrs first (§3.4 plan/run discipline)"
            )

    def _check_pool(self, pool: Optional[np.ndarray], page_size: int) -> None:
        if pool is None or self._min_pool_pages is None:
            return
        have = int(np.shape(pool)[0]) // page_size
        if have < self._min_pool_pages:
            raise ValueError(
                f"{type(self).__name__}: K/V pool holds {have} pages of "
                f"{page_size} slots but the planned page table references "
                f"page {self._min_pool_pages - 1}; pass the pool the page "
                f"table was built from"
            )

    def _record(self, report: Optional[SimReport]) -> None:
        if self.tracer is not None and report is not None:
            self.tracer.record_kernel(
                KernelRecord.from_report(type(self).__name__, self._phase, report)
            )


class BatchDecodeWithPagedKVCacheWrapper(_WrapperBase):
    """Batch decode attention over a paged KV cache.

    Mirrors ``flashinfer.decode.BatchDecodeWithPagedKVCacheWrapper``:
    ``plan`` takes the page-table triple ``(kv_indptr, kv_indices,
    last_page_len)``; ``run`` takes the query tensor and the K/V page pools.
    """

    _phase = "decode"

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        page_size: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        max_batch_size: Optional[int] = None,
        tracer: Optional[StepTracer] = None,
        plan_cache=None,
    ):
        super().__init__(tracer)
        self.page_size = page_size
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=1.0, kv_dtype=kv_dtype,
            max_batch_size=max_batch_size,
            max_total_qo=max_batch_size,
        )
        self._inner.plan_cache = plan_cache

    def plan(
        self,
        kv_indptr: np.ndarray,
        kv_indices: np.ndarray,
        last_page_len: np.ndarray,
        *args,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
        **kwargs,
    ) -> None:
        """Stage the decode schedule for the current page table."""
        self._reject_pool_num_pages(args, kwargs)
        kv_indices = np.asarray(kv_indices, dtype=np.int64)
        batch = np.asarray(kv_indptr).size - 1
        mapping = _paged_kv_mapping(
            self.page_size, np.arange(batch + 1, dtype=np.int64),
            kv_indptr, kv_indices, last_page_len, causal=True,
        )
        self._min_pool_pages = int(kv_indices.max()) + 1 if kv_indices.size else 0
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)
        self._planned = True

    def run(
        self,
        q: np.ndarray,
        k_pool: np.ndarray,
        v_pool: np.ndarray,
        return_lse: bool = False,
    ):
        """Compute decode attention: ``q`` is ``(batch, H_qo, D)``."""
        self._require_plan()
        self._check_pool(k_pool, self.page_size)
        out, lse, report = self._inner.run(q, k_pool, v_pool)
        self._record(report)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


class BatchPrefillWithPagedKVCacheWrapper(_WrapperBase):
    """Batch (incremental) prefill attention over a paged KV cache.

    Mirrors ``flashinfer.prefill.BatchPrefillWithPagedKVCacheWrapper``:
    queries are packed per ``qo_indptr``; KV comes from the page pool.
    """

    _phase = "prefill"

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        page_size: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        avg_qo_len: float = 512.0,
        max_batch_size: Optional[int] = None,
        max_total_qo: Optional[int] = None,
        tracer: Optional[StepTracer] = None,
        plan_cache=None,
    ):
        super().__init__(tracer)
        self.page_size = page_size
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=avg_qo_len, kv_dtype=kv_dtype,
            max_batch_size=max_batch_size, max_total_qo=max_total_qo,
        )
        self._inner.plan_cache = plan_cache

    def plan(
        self,
        qo_indptr: np.ndarray,
        kv_indptr: np.ndarray,
        kv_indices: np.ndarray,
        last_page_len: np.ndarray,
        *args,
        causal: bool = True,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
        **kwargs,
    ) -> None:
        self._reject_pool_num_pages(args, kwargs)
        kv_indices = np.asarray(kv_indices, dtype=np.int64)
        mapping = _paged_kv_mapping(
            self.page_size, qo_indptr, kv_indptr, kv_indices, last_page_len,
            causal=causal,
        )
        self._min_pool_pages = int(kv_indices.max()) + 1 if kv_indices.size else 0
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)
        self._planned = True

    def run(self, q, k_pool, v_pool, return_lse: bool = False):
        self._require_plan()
        self._check_pool(k_pool, self.page_size)
        out, lse, report = self._inner.run(q, k_pool, v_pool)
        self._record(report)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


class BatchPrefillWithRaggedKVCacheWrapper(_WrapperBase):
    """Batch prefill over *contiguous* (ragged) K/V tensors.

    Mirrors ``flashinfer.prefill.BatchPrefillWithRaggedKVCacheWrapper`` —
    the dense path of Appendix B: K/V are packed ``(total_kv, H, D)``
    tensors sharing ``kv_indptr`` with no page indirection, so loads are
    contiguous (TMA-eligible on Hopper).
    """

    _phase = "prefill"

    def __init__(
        self,
        workspace: WorkspaceBuffer,
        num_qo_heads: int,
        num_kv_heads: int,
        head_dim: int,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        kv_dtype: StorageDType = StorageDType.FP16,
        avg_qo_len: float = 512.0,
        max_batch_size: Optional[int] = None,
        max_total_qo: Optional[int] = None,
        tracer: Optional[StepTracer] = None,
        plan_cache=None,
    ):
        super().__init__(tracer)
        self.heads = HeadConfig(num_qo_heads, num_kv_heads, head_dim)
        self._inner = BatchAttentionWrapper(
            variant, self.heads, workspace, gpu,
            avg_qo_len=avg_qo_len, kv_dtype=kv_dtype, sparse_gather=False,
            max_batch_size=max_batch_size, max_total_qo=max_total_qo,
        )
        self._inner.plan_cache = plan_cache

    def plan(
        self,
        qo_indptr: np.ndarray,
        kv_indptr: np.ndarray,
        causal: bool = True,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> None:
        """Ragged layout: request ``i`` owns KV rows
        ``[kv_indptr[i], kv_indptr[i+1])`` of the packed K/V tensors."""
        kv_indptr = np.asarray(kv_indptr, dtype=np.int64)
        kv_lens = np.diff(kv_indptr)
        total_kv = int(kv_indptr[-1])
        # Contiguous rows = a degenerate block-sparse layout with B_c = 1
        # and identity gather.
        indices = np.arange(total_kv, dtype=np.int64)
        kv = BlockSparseKV(1, max(total_kv, 1), kv_indptr, indices, kv_lens)
        mapping = AttentionMapping(
            np.asarray(qo_indptr, dtype=np.int64), kv, causal=causal
        )
        self._min_pool_pages = total_kv
        self._inner.plan(mapping, params=params, sm_scale=sm_scale)
        self._planned = True

    def run(self, q, k, v, return_lse: bool = False):
        self._require_plan()
        self._check_pool(k, 1)
        out, lse, report = self._inner.run(q, k, v)
        self._record(report)
        return (out, lse) if return_lse else out

    @property
    def last_report(self) -> Optional[SimReport]:
        return self._inner.last_report


# -- single-request helpers (flashinfer.single_* equivalents) -----------------

#: Module-level workspace reuse for the single-request helpers, keyed by
#: power-of-two size class.  The old behaviour allocated a fresh ≥64 MB
#: buffer on *every* call; steady-state single-request traffic now touches
#: one cached buffer per size class.
_WORKSPACE_CACHE: Dict[int, WorkspaceBuffer] = {}
#: Cached single-prefill wrappers keyed by (variant, gpu, geometry, bounds);
#: wrapper workspace sections are append-only, so reusing the wrapper (not
#: just the buffer) is what makes repeat calls allocation-free.
_SINGLE_WRAPPER_CACHE: Dict[tuple, BatchPrefillWithRaggedKVCacheWrapper] = {}


def _workspace_size_class(nbytes: int) -> int:
    return 1 << max(26, int(nbytes - 1).bit_length())  # ≥ 64 MB


def _cached_workspace(nbytes: int) -> WorkspaceBuffer:
    size_class = _workspace_size_class(nbytes)
    ws = _WORKSPACE_CACHE.get(size_class)
    if ws is None:
        ws = WorkspaceBuffer(size_class)
        _WORKSPACE_CACHE[size_class] = ws
    return ws


def clear_workspace_cache() -> None:
    """Drop the cached single-request workspaces/wrappers (tests, memory)."""
    _WORKSPACE_CACHE.clear()
    _SINGLE_WRAPPER_CACHE.clear()


def _single_prefill_wrapper(
    n_q: int, n_kv: int, num_qo_heads: int, num_kv_heads: int, head_dim: int,
    variant: AttentionVariant, gpu: GPUSpec,
) -> BatchPrefillWithRaggedKVCacheWrapper:
    ws = _cached_workspace(max(64 * 1024 * 1024, n_kv * 1024))
    # Round the query bound up to a power of two so all calls in the same
    # band share one wrapper (and its fixed-offset workspace sections).
    qo_cap = 1 << max(10, int(max(n_q, 1) - 1).bit_length())
    key = (
        variant, gpu, num_qo_heads, num_kv_heads, head_dim,
        ws.buffer_id, qo_cap,
    )
    w = _SINGLE_WRAPPER_CACHE.get(key)
    if w is None:
        try:
            w = BatchPrefillWithRaggedKVCacheWrapper(
                ws, num_qo_heads, num_kv_heads, head_dim, gpu=gpu,
                variant=variant, avg_qo_len=float(qo_cap),
                max_batch_size=1, max_total_qo=qo_cap,
            )
        except MemoryError:
            # Cached buffer exhausted by other geometries: fall back to a
            # dedicated (uncached) workspace for this wrapper.
            w = BatchPrefillWithRaggedKVCacheWrapper(
                WorkspaceBuffer(_workspace_size_class(max(64 * 1024 * 1024, n_kv * 1024))),
                num_qo_heads, num_kv_heads, head_dim, gpu=gpu,
                variant=variant, avg_qo_len=float(qo_cap),
                max_batch_size=1, max_total_qo=qo_cap,
            )
        _SINGLE_WRAPPER_CACHE[key] = w
    return w


def single_prefill_with_kv_cache(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    sm_scale: Optional[float] = None,
    variant: AttentionVariant = VANILLA,
    gpu: GPUSpec = A100_40G,
    params: Optional[dict] = None,
    tracer: Optional[StepTracer] = None,
) -> np.ndarray:
    """One-shot prefill attention for a single request (no paging)."""
    n_q, n_kv = q.shape[0], k.shape[0]
    w = _single_prefill_wrapper(
        n_q, n_kv, q.shape[1], k.shape[1], q.shape[2], variant, gpu
    )
    w.tracer = tracer
    w.plan(np.array([0, n_q]), np.array([0, n_kv]), causal=causal,
           params=params, sm_scale=sm_scale)
    try:
        return w.run(q, k, v)
    finally:
        w.tracer = None


def single_decode_with_kv_cache(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    sm_scale: Optional[float] = None,
    variant: AttentionVariant = VANILLA,
    gpu: GPUSpec = A100_40G,
    params: Optional[dict] = None,
    tracer: Optional[StepTracer] = None,
) -> np.ndarray:
    """One-shot decode attention: ``q`` is ``(H_qo, D)``, K/V ``(n, H_kv, D)``."""
    out = single_prefill_with_kv_cache(
        q[None], k, v, causal=True, sm_scale=sm_scale, variant=variant,
        gpu=gpu, params=params, tracer=tracer,
    )
    return out[0]


# -- state-merge operators (flashinfer.merge_state / merge_states) ------------


def merge_state(
    v_a: np.ndarray, s_a: np.ndarray, v_b: np.ndarray, s_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two attention states ``(V, S)`` with ``⊕`` (paper §2.2)."""
    return _merge_states_raw(v_a, s_a, v_b, s_b)


def merge_states(v: np.ndarray, s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Merge ``num_states`` stacked attention states: ``v`` is
    ``(num_states, ..., D)``, ``s`` is ``(num_states, ...)``."""
    v = np.asarray(v)
    s = np.asarray(s)
    if v.shape[0] != s.shape[0] or v.shape[0] == 0:
        raise ValueError("v and s must stack the same non-zero number of states")
    out_v, out_s = v[0], s[0]
    for i in range(1, v.shape[0]):
        out_v, out_s = _merge_states_raw(out_v, out_s, v[i], s[i])
    return out_v, out_s
