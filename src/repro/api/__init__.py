"""FlashInfer-compatible public API surface (see :mod:`repro.api.wrappers`)."""

from repro.api.wrappers import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
    BatchPrefillWithRaggedKVCacheWrapper,
    clear_workspace_cache,
    merge_state,
    merge_states,
    single_decode_with_kv_cache,
    single_prefill_with_kv_cache,
)

__all__ = [
    "BatchDecodeWithPagedKVCacheWrapper",
    "BatchPrefillWithPagedKVCacheWrapper",
    "BatchPrefillWithRaggedKVCacheWrapper",
    "clear_workspace_cache",
    "merge_state",
    "merge_states",
    "single_decode_with_kv_cache",
    "single_prefill_with_kv_cache",
]
