"""FlashInfer-compatible public API surface (see :mod:`repro.api.wrappers`)."""

from repro.api.wrappers import (
    BatchDecodeWithPagedKVCacheWrapper,
    BatchPrefillWithPagedKVCacheWrapper,
    BatchPrefillWithRaggedKVCacheWrapper,
    merge_state,
    merge_states,
    single_decode_with_kv_cache,
    single_prefill_with_kv_cache,
)

__all__ = [
    "BatchDecodeWithPagedKVCacheWrapper",
    "BatchPrefillWithPagedKVCacheWrapper",
    "BatchPrefillWithRaggedKVCacheWrapper",
    "merge_state",
    "merge_states",
    "single_decode_with_kv_cache",
    "single_prefill_with_kv_cache",
]
