"""Simulated kernel execution: event-driven roofline with shared bandwidth.

Each work tile contributes two concurrent streams (the software-pipelined
roofline assumption):

* a **serial stream** — tensor-core/CUDA-core compute plus fixed per-tile
  latencies, running at the CTA's share of its SM;
* a **memory stream** — HBM traffic, drained at a *globally shared* rate:
  active CTAs split the device bandwidth equally, capped at what a single
  SM can pull.  This is the crucial property for the paper's phenomena:
  when load imbalance leaves few CTAs running, the stragglers cannot use
  the idle SMs' bandwidth beyond the per-SM cap, so decode tails crawl —
  and split-KV (FlashInfer's scheduler, flash-decoding) recovers exactly
  that bandwidth.

Two launch disciplines are modelled:

* **persistent kernels** (FlashInfer §3.3.1): fixed grid, CTA ``i`` drains
  queue ``i``; per-CTA work is aggregated (the pipeline overlaps tiles).
* **grid launches** (the FlashAttention-library baseline): one block per
  tile, dispatched in submission order to free SM slots — wave
  quantization and tail imbalance appear naturally.

Reported utilizations (the quantities of paper Figure 8) divide useful
FLOPs / traffic by makespan and the device peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.cost import KernelCostModel, TileCost
from repro.gpu.spec import GPUSpec

#: Fraction of peak HBM bandwidth one SM can sustain alone.  Microbenchmarks
#: put a single SM's streaming rate at a few percent of the device peak;
#: 5% makes a lone straggler ~20× slower than a balanced grid on A100.
SINGLE_SM_BANDWIDTH_FRACTION = 0.05

_EPS = 1e-18


class KernelFault(RuntimeError):
    """A transient simulated-kernel failure (injected by a fault plan).

    Raised from :meth:`PersistentKernelExecutor.run_persistent` /
    :meth:`~PersistentKernelExecutor.run_grid` (and the vectorized
    cost-only paths in :mod:`repro.core.simulate`) before any work is
    timed — the launch never happened, so callers may simply retry.
    """


@dataclass
class SimReport:
    """Outcome of one simulated kernel execution."""

    makespan: float
    total_flops: float
    total_bytes: float
    num_tiles: int
    num_ctas: int
    per_cta_time: List[float]

    @property
    def balance(self) -> float:
        """Mean CTA busy time / max CTA busy time (1.0 = perfectly balanced)."""
        busy = list(self.per_cta_time)
        if not busy or max(busy) == 0:
            return 1.0
        return sum(busy) / (len(busy) * max(busy))

    def achieved_bandwidth(self) -> float:
        """Useful bytes per second over the whole execution."""
        return self.total_bytes / self.makespan if self.makespan > 0 else 0.0

    def bandwidth_utilization(self, spec: GPUSpec) -> float:
        return self.achieved_bandwidth() / spec.peak_bandwidth_bytes

    def achieved_flops(self) -> float:
        return self.total_flops / self.makespan if self.makespan > 0 else 0.0

    def flops_utilization(self, spec: GPUSpec) -> float:
        return self.achieved_flops() / spec.peak_fp16_flops

    def combine(self, other: "SimReport") -> "SimReport":
        """Sequential composition of two kernel executions."""
        return SimReport(
            makespan=self.makespan + other.makespan,
            total_flops=self.total_flops + other.total_flops,
            total_bytes=self.total_bytes + other.total_bytes,
            num_tiles=self.num_tiles + other.num_tiles,
            num_ctas=max(self.num_ctas, other.num_ctas),
            per_cta_time=[],
        )

    def to_dict(self) -> dict:
        """Flat scalar view for tracing/export (``repro.obs``); the
        per-CTA times are summarized by :attr:`balance` rather than
        serialized."""
        return {
            "makespan": self.makespan,
            "total_flops": self.total_flops,
            "total_bytes": self.total_bytes,
            "num_tiles": self.num_tiles,
            "num_ctas": self.num_ctas,
            "balance": self.balance,
        }


class PersistentKernelExecutor:
    """Executes simulated work under a cost model on a :class:`GPUSpec`."""

    #: Optional fault injector (duck-typed :class:`repro.faults.FaultPlan`):
    #: consulted once per simulated launch.  ``None`` (the default) keeps
    #: the launch paths exactly as before — a single attribute check.
    fault_injector = None

    def __init__(
        self,
        spec: GPUSpec,
        cost_model: Optional[KernelCostModel] = None,
        single_sm_bw_fraction: float = SINGLE_SM_BANDWIDTH_FRACTION,
    ):
        self.spec = spec
        self.cost_model = cost_model if cost_model is not None else KernelCostModel(spec)
        self.single_sm_bw_fraction = single_sm_bw_fraction

    # -- fault injection ------------------------------------------------------

    def _consult_injector(self, serial: np.ndarray, mem: np.ndarray) -> None:
        """One consultation of the attached fault plan per simulated launch.

        May raise :class:`KernelFault` (a transient launch failure — no
        work was timed) or stretch one CTA's serial and memory streams in
        place (a straggler CTA).
        """
        inj = self.fault_injector
        if inj is None:
            return
        if inj.fire("kernel"):
            raise KernelFault(
                f"injected transient kernel fault "
                f"(launch #{inj.consultations('kernel') - 1})"
            )
        if serial.size and inj.fire("straggler"):
            i = inj.choose("straggler", serial.size)
            serial[i] *= inj.straggler_factor
            mem[i] *= inj.straggler_factor

    # -- tile → stream conversion -------------------------------------------

    def _streams(self, cost: TileCost, compute_share: float) -> Tuple[float, float]:
        """Return ``(serial_seconds, memory_bytes)`` for one tile."""
        cm = self.cost_model
        roof = (
            self.spec.sm_fp16_flops * cm.mma_efficiency
            if cost.uses_tensor_cores
            else self.spec.sm_cuda_core_flops
        ) * compute_share
        serial = (
            cost.padded_flops / roof
            + cost.n_gather_segments * cm.gather_issue_overhead
            + cm.tile_latency
        )
        mem = (cm.effective_bytes_read(cost) + cost.bytes_written) / cm.mem_efficiency
        return serial, mem

    # -- launch disciplines ----------------------------------------------------

    def run_persistent(self, cta_queues: Sequence[Sequence[TileCost]]) -> SimReport:
        """Fixed-grid persistent kernel: CTA ``i`` drains ``cta_queues[i]``."""
        n = len(cta_queues)
        if n == 0:
            return SimReport(self.spec.kernel_dispatch_overhead, 0.0, 0.0, 0, 0, [])
        compute_share = min(1.0, self.spec.num_sms / n)
        resident = max(1, -(-n // self.spec.num_sms))
        serial = np.zeros(n)
        mem = np.zeros(n)
        total_flops = total_bytes = 0.0
        num_tiles = 0
        for i, queue in enumerate(cta_queues):
            for cost in queue:
                s, m = self._streams(cost, compute_share)
                serial[i] += s
                mem[i] += m
                total_flops += cost.flops
                total_bytes += cost.bytes_read + cost.bytes_written
                num_tiles += 1
        if self.fault_injector is not None:
            self._consult_injector(serial, mem)
        finish = self._drain(serial, mem, resident)
        makespan = float(finish.max()) + self.spec.kernel_dispatch_overhead
        return SimReport(
            makespan=makespan,
            total_flops=total_flops,
            total_bytes=total_bytes,
            num_tiles=num_tiles,
            num_ctas=n,
            per_cta_time=finish.tolist(),
        )

    def run_grid(self, block_costs: Sequence[TileCost], ctas_per_sm: int = 1) -> SimReport:
        """One thread block per tile, dispatched in order to free SM slots."""
        blocks = list(block_costs)
        if not blocks:
            return SimReport(self.spec.kernel_dispatch_overhead, 0.0, 0.0, 0, 0, [])
        slots = self.spec.num_sms * max(1, ctas_per_sm)
        compute_share = min(1.0, self.spec.num_sms / slots)
        resident = max(1, ctas_per_sm)
        streams = [self._streams(c, compute_share) for c in blocks]
        if self.fault_injector is not None:
            s_arr = np.asarray([s for s, _ in streams])
            m_arr = np.asarray([m for _, m in streams])
            self._consult_injector(s_arr, m_arr)
            streams = list(zip(s_arr.tolist(), m_arr.tolist()))
        total_flops = sum(c.flops for c in blocks)
        total_bytes = sum(c.bytes_read + c.bytes_written for c in blocks)

        makespan, slot_busy = self._drain_dynamic(streams, slots, resident)
        return SimReport(
            makespan=makespan + self.spec.kernel_dispatch_overhead,
            total_flops=total_flops,
            total_bytes=total_bytes,
            num_tiles=len(blocks),
            num_ctas=slots,
            per_cta_time=slot_busy,
        )

    # -- the shared-bandwidth drains --------------------------------------------

    def _cta_bw_cap(self, resident: int) -> float:
        return self.spec.peak_bandwidth_bytes * self.single_sm_bw_fraction / resident

    def _drain(self, serial: np.ndarray, mem: np.ndarray, resident: int) -> np.ndarray:
        """All jobs start at t=0; return per-job finish times.

        Serial streams progress at rate 1; memory streams share the device
        bandwidth (equal split among jobs with bytes remaining, capped per
        CTA).  A job finishes when both streams drain.
        """
        n = serial.size
        rem_s = serial.astype(np.float64).copy()
        rem_m = mem.astype(np.float64).copy()
        finish = np.zeros(n)
        cap = self._cta_bw_cap(resident)
        peak = self.spec.peak_bandwidth_bytes
        t = 0.0
        active = (rem_s > _EPS) | (rem_m > _EPS)
        while active.any():
            mem_active = active & (rem_m > _EPS)
            n_mem = int(mem_active.sum())
            bw = min(cap, peak / n_mem) if n_mem else 0.0
            # Next stream completion.
            dt = np.inf
            s_live = active & (rem_s > _EPS)
            if s_live.any():
                dt = min(dt, float(rem_s[s_live].min()))
            if n_mem and bw > 0:
                dt = min(dt, float(rem_m[mem_active].min()) / bw)
            if not np.isfinite(dt):
                break
            dt = max(dt, _EPS)
            t += dt
            rem_s[s_live] -= dt
            if n_mem:
                rem_m[mem_active] -= bw * dt
            np.clip(rem_s, 0.0, None, out=rem_s)
            np.clip(rem_m, 0.0, None, out=rem_m)
            done = active & (rem_s <= _EPS) & (rem_m <= _EPS)
            finish[done] = t
            active &= ~done
        return finish

    def _drain_dynamic(
        self, streams: Sequence[Tuple[float, float]], slots: int, resident: int
    ) -> Tuple[float, List[float]]:
        """Blocks start when a slot frees (submission order)."""
        cap = self._cta_bw_cap(resident)
        peak = self.spec.peak_bandwidth_bytes
        pending = list(reversed(streams))  # pop() takes the next block
        run_s = np.zeros(slots)
        run_m = np.zeros(slots)
        occupied = np.zeros(slots, dtype=bool)
        slot_busy = [0.0] * slots
        t = 0.0
        while pending or occupied.any():
            # Fill free slots.
            for i in range(slots):
                if not occupied[i] and pending:
                    s, m = pending.pop()
                    run_s[i], run_m[i] = s, m
                    occupied[i] = True
            mem_active = occupied & (run_m > _EPS)
            n_mem = int(mem_active.sum())
            bw = min(cap, peak / n_mem) if n_mem else 0.0
            dt = np.inf
            s_live = occupied & (run_s > _EPS)
            if s_live.any():
                dt = min(dt, float(run_s[s_live].min()))
            if n_mem and bw > 0:
                dt = min(dt, float(run_m[mem_active].min()) / bw)
            if not np.isfinite(dt):
                # All running jobs have both streams drained; free them.
                done = occupied & (run_s <= _EPS) & (run_m <= _EPS)
                occupied &= ~done
                continue
            dt = max(dt, _EPS)
            t += dt
            run_s[s_live] -= dt
            if n_mem:
                run_m[mem_active] -= bw * dt
            np.clip(run_s, 0.0, None, out=run_s)
            np.clip(run_m, 0.0, None, out=run_m)
            done = occupied & (run_s <= _EPS) & (run_m <= _EPS)
            for i in np.nonzero(done)[0]:
                slot_busy[i] = t
            occupied &= ~done
        return t, slot_busy
