"""Roofline cost model for attention work tiles.

Each work tile (a ``T_q × L_kv`` slab of the attention matrix for one KV
head) is assigned a time of::

    max(compute_flops / CTA_compute_roof,  effective_bytes / CTA_bandwidth)
      + tile_latency

where the compute roof is tensor-core or CUDA-core throughput depending on
the microkernel (query tile size 1 uses CUDA cores, §3.2.3), bandwidth is
the SM's fair share of HBM, and *effective* bytes account for memory
transaction quantization: a gather of short non-contiguous runs wastes part
of every 128-byte transaction and pays a per-segment address-generation
cost (§3.2.1 and Appendix B).

The kernels report logical byte/flop counts; this module owns all
hardware-dependent conversion to time, so the model is auditable in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec

#: Memory transaction granularity (bytes): LDGSTS is issued at 128B width.
TRANSACTION_BYTES = 128


@dataclass
class TileCost:
    """Resource footprint of one work tile, reported by a kernel.

    Attributes
    ----------
    flops:
        Useful floating-point operations (excludes tile padding).
    padded_flops:
        FLOPs actually executed, including rows wasted to tile padding
        (``T_q`` larger than the remaining query rows).
    bytes_read / bytes_written:
        Logical global-memory traffic.
    contiguous_run_bytes:
        Length in bytes of each contiguous run within the reads (the head
        dimension times itemsize for KV gathers).  0 means fully contiguous.
    n_gather_segments:
        Number of non-contiguous segments gathered (for per-segment
        address-generation overhead); 0 for dense loads.
    uses_tensor_cores:
        Selects the compute roof.
    """

    flops: float = 0.0
    padded_flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    contiguous_run_bytes: float = 0.0
    n_gather_segments: int = 0
    uses_tensor_cores: bool = True

    def __post_init__(self) -> None:
        if self.padded_flops < self.flops:
            self.padded_flops = self.flops

    def merge(self, other: "TileCost") -> "TileCost":
        """Sum two footprints (used when fusing work items)."""
        return TileCost(
            flops=self.flops + other.flops,
            padded_flops=self.padded_flops + other.padded_flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            contiguous_run_bytes=max(self.contiguous_run_bytes, other.contiguous_run_bytes),
            n_gather_segments=self.n_gather_segments + other.n_gather_segments,
            uses_tensor_cores=self.uses_tensor_cores or other.uses_tensor_cores,
        )


@dataclass
class KernelCostModel:
    """Converts :class:`TileCost` footprints to seconds on a :class:`GPUSpec`.

    Parameters
    ----------
    spec:
        Target GPU.
    tile_latency:
        Fixed pipeline fill / softmax-epilogue cost per tile (seconds).
    gather_issue_overhead:
        Extra seconds per non-contiguous gather segment (address
        computation through the BSR ``indices`` array, §3.2.1).
    mma_efficiency:
        Fraction of the tensor-core roof achievable by the attention main
        loop (softmax work, bank conflicts); applied to all kernels equally.
    mem_efficiency:
        Fraction of the device bandwidth the kernel's access pattern
        achieves (1.0 for hand-tuned CUDA with asynchronous copies; lower
        for compilers that miss swizzling/pipelining — Appendix C).
    """

    spec: GPUSpec
    tile_latency: float = 6.0e-7
    gather_issue_overhead: float = 1.0e-9
    mma_efficiency: float = 0.75
    mem_efficiency: float = 1.0

    def effective_bytes_read(self, cost: TileCost) -> float:
        """Transaction-quantized read traffic."""
        if cost.n_gather_segments <= 0 or cost.contiguous_run_bytes <= 0:
            return cost.bytes_read
        run = cost.contiguous_run_bytes
        waste = (-(-run // TRANSACTION_BYTES) * TRANSACTION_BYTES) / run
        return cost.bytes_read * waste

    def tile_time(self, cost: TileCost, resource_share: float = 1.0) -> float:
        """Roofline time for one tile on one CTA.

        ``resource_share`` is the fraction of one SM's compute and
        fair-share bandwidth this CTA owns (0.5 when two CTAs are resident
        per SM) — total device throughput never exceeds the peak.
        """
        if not 0.0 < resource_share <= 1.0:
            raise ValueError(f"resource_share must be in (0, 1], got {resource_share}")
        roof = (
            self.spec.sm_fp16_flops * self.mma_efficiency
            if cost.uses_tensor_cores
            else self.spec.sm_cuda_core_flops
        ) * resource_share
        compute = cost.padded_flops / roof
        mem_bytes = self.effective_bytes_read(cost) + cost.bytes_written
        memory = mem_bytes / (self.spec.sm_bandwidth * resource_share)
        gather = cost.n_gather_segments * self.gather_issue_overhead
        return max(compute, memory) + gather + self.tile_latency
