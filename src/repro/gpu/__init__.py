"""Simulated GPU: hardware specs, roofline cost model, executor, CUDAGraph.

The paper's performance results come from CUDA kernels on A100/H100.  This
package substitutes a deliberately simple, documented performance model:

* :class:`GPUSpec` — published hardware parameters (SM count, HBM bandwidth,
  fp16 tensor-core peak, shared memory / register files per SM).
* :mod:`~repro.gpu.cost` — a roofline model: each work tile's time is
  ``max(flops / per_CTA_compute, bytes / per_CTA_bandwidth)`` plus fixed
  latencies, with explicit byte/flop counts supplied by the kernels.
* :class:`~repro.gpu.executor.PersistentKernelExecutor` — runs per-CTA work
  queues and reports the makespan, from which achieved-bandwidth and
  FLOPs-utilization figures are derived (the quantities of paper Figure 8).
* :class:`~repro.gpu.workspace.WorkspaceBuffer` and
  :class:`~repro.gpu.cudagraph.CudaGraph` — reproduce the CUDAGraph
  *constraints* (fixed grid sizes and workspace addresses, Appendix D.1).

Every load-balance / tile-size / fusion / composable-format claim in the
paper is a statement about work distribution and memory traffic, which this
model captures; absolute times are simulator units.
"""

from repro.gpu.spec import GPUSpec, A100_40G, H100_80G
from repro.gpu.cost import TileCost, KernelCostModel
from repro.gpu.executor import KernelFault, PersistentKernelExecutor, SimReport
from repro.gpu.workspace import WorkspaceBuffer, WorkspaceSection
from repro.gpu.cudagraph import CudaGraph, CudaGraphPool, GraphCaptureError, batch_size_bucket

__all__ = [
    "GPUSpec",
    "A100_40G",
    "H100_80G",
    "TileCost",
    "KernelCostModel",
    "KernelFault",
    "PersistentKernelExecutor",
    "SimReport",
    "WorkspaceBuffer",
    "WorkspaceSection",
    "CudaGraph",
    "CudaGraphPool",
    "GraphCaptureError",
    "batch_size_bucket",
]
