"""User-allocated workspace buffer with fixed-offset sections.

Paper Appendix D: FlashInfer stores scheduler metadata and split-KV partial
outputs in a single user-provided device buffer, divided into *sections*
whose offsets are fixed at first plan time.  CUDAGraph capture freezes
kernel pointer arguments, so section addresses must never move; sections are
therefore sized to upper bounds and only their *contents* change per
generation step.

We model addresses as ``(buffer id, offset)`` pairs; :class:`CudaGraph`
checks them for stability across replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass
class WorkspaceSection:
    """A named, fixed-offset region of the workspace."""

    name: str
    offset: int
    nbytes: int
    buffer_id: int

    @property
    def address(self) -> "tuple[int, int]":
        """Stable address token compared by CUDAGraph capture/replay."""
        return (self.buffer_id, self.offset)


class WorkspaceBuffer:
    """A byte buffer carved into named sections at fixed offsets.

    Sections are created once (on the first ``plan``) with upper-bound
    sizes; re-creating an existing section with a larger size raises, which
    is exactly the CUDAGraph incompatibility the layout is designed to
    avoid (Appendix D.1).
    """

    _next_id = 0

    def __init__(self, nbytes: int):
        if nbytes <= 0:
            raise ValueError("workspace must be non-empty")
        self.nbytes = int(nbytes)
        self.buffer = np.zeros(self.nbytes, dtype=np.uint8)
        self._sections: Dict[str, WorkspaceSection] = {}
        self._cursor = 0
        self.buffer_id = WorkspaceBuffer._next_id
        WorkspaceBuffer._next_id += 1

    def section(self, name: str) -> Optional[WorkspaceSection]:
        return self._sections.get(name)

    def allocate_section(self, name: str, nbytes: int, alignment: int = 256) -> WorkspaceSection:
        """Create (or validate) a section of at least ``nbytes``.

        Idempotent: a repeat request that fits the existing section returns
        it unchanged; a larger request raises (the address would move).
        """
        existing = self._sections.get(name)
        if existing is not None:
            if nbytes > existing.nbytes:
                raise ValueError(
                    f"section {name!r} was sized to {existing.nbytes} bytes at plan "
                    f"time; {nbytes} requested later. Provide a larger upper bound "
                    f"on the first plan call (Appendix D.3)."
                )
            return existing
        offset = -(-self._cursor // alignment) * alignment
        if offset + nbytes > self.nbytes:
            raise MemoryError(
                f"workspace exhausted: need {nbytes} bytes for {name!r}, "
                f"{self.nbytes - offset} available"
            )
        sec = WorkspaceSection(name, offset, int(nbytes), self.buffer_id)
        self._sections[name] = sec
        self._cursor = offset + nbytes
        return sec

    def view(self, name: str, dtype=np.uint8) -> np.ndarray:
        """Typed view of a section's bytes."""
        sec = self._sections[name]
        count = sec.nbytes // np.dtype(dtype).itemsize
        return self.buffer[sec.offset : sec.offset + count * np.dtype(dtype).itemsize].view(dtype)

    def write(self, name: str, data: np.ndarray) -> None:
        """Copy ``data`` into a section (the ``cudaMemcpyAsync`` of App. D).

        The copy may fill only a prefix of the section — plan data shrinks
        and grows per step while the section stays at its upper bound.
        """
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        sec = self._sections[name]
        if raw.nbytes > sec.nbytes:
            raise ValueError(
                f"data ({raw.nbytes} B) exceeds section {name!r} ({sec.nbytes} B)"
            )
        self.buffer[sec.offset : sec.offset + raw.nbytes] = raw

    def read(self, name: str, dtype, count: int) -> np.ndarray:
        """Read ``count`` items of ``dtype`` from a section's start."""
        sec = self._sections[name]
        nbytes = count * np.dtype(dtype).itemsize
        if nbytes > sec.nbytes:
            raise ValueError(f"read of {nbytes} B exceeds section {name!r}")
        return self.buffer[sec.offset : sec.offset + nbytes].view(dtype).copy()

    @property
    def bytes_allocated(self) -> int:
        return self._cursor
