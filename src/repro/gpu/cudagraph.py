"""CUDAGraph capture/replay simulation.

CUDAGraphs record a fixed sequence of kernel launches with frozen arguments
(grid sizes, pointers, scalars) and replay them with one host-side launch
(paper §3.3.1, Appendix D.1).  The *functional* consequence FlashInfer must
satisfy — and the one we verify — is:

* every kernel captured must declare a **launch signature** (grid size +
  workspace section addresses) and the replay fails if any signature would
  differ from capture time;
* per-step variability may flow only through workspace *contents* (the plan
  data written by ``plan()``), never through launch arguments;
* replay costs one launch overhead total instead of one per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple


class GraphCaptureError(RuntimeError):
    """A capture/replay rule was violated (the CUDA analog would crash or
    silently compute garbage; we fail loudly)."""


def batch_size_bucket(batch_size: int) -> int:
    """Round a batch size up to the next power of two.

    CUDAGraphs freeze shapes, so serving frameworks capture one graph per
    batch-size bucket and pad smaller batches into it (Listing 1:
    "Kernels with different average query length and composable format
    configurations are compiled and captured in different CUDAGraphs").
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return 1 << (batch_size - 1).bit_length()


@dataclass
class _CapturedLaunch:
    fn: Callable[[], Any]
    signature: Tuple
    name: str


class CudaGraph:
    """Records launches inside ``capture()`` and replays them verbatim.

    Usage mirrors ``torch.cuda.graph``::

        g = CudaGraph()
        with g.capture():
            wrapper.run(q)       # wrapper registers its launches on the
                                 # active graph via CudaGraph.add_launch
        ...
        wrapper.plan(seqlens)    # new plan data, same launch signatures
        out = g.replay()
    """

    _active: Optional["CudaGraph"] = None

    def __init__(self) -> None:
        self._launches: List[_CapturedLaunch] = []
        self._captured = False
        self.replay_count = 0

    # -- capture ------------------------------------------------------------

    class _CaptureCtx:
        def __init__(self, graph: "CudaGraph"):
            self.graph = graph

        def __enter__(self):
            if CudaGraph._active is not None:
                raise GraphCaptureError("nested CUDAGraph capture")
            if self.graph._captured:
                raise GraphCaptureError("graph already captured; create a new graph")
            CudaGraph._active = self.graph
            return self.graph

        def __exit__(self, exc_type, exc, tb):
            CudaGraph._active = None
            if exc_type is None:
                self.graph._captured = True
            return False

    def capture(self) -> "_CaptureCtx":
        return CudaGraph._CaptureCtx(self)

    @classmethod
    def current(cls) -> Optional["CudaGraph"]:
        """The graph currently capturing, if any."""
        return cls._active

    @classmethod
    def add_launch(
        cls,
        fn: Callable[[], Any],
        signature: Tuple,
        name: str = "kernel",
    ) -> Any:
        """Run ``fn`` now and, if a capture is active, record it.

        ``signature`` must contain every launch-time argument that CUDAGraph
        would freeze (grid size, workspace addresses, scalar params); ``fn``
        must re-read anything step-varying from the workspace.
        """
        result = fn()
        graph = cls._active
        if graph is not None:
            graph._launches.append(_CapturedLaunch(fn, signature, name))
        return result

    # -- replay ---------------------------------------------------------------

    @property
    def num_launches(self) -> int:
        return len(self._launches)

    def replay(self) -> List[Any]:
        """Re-execute every captured launch after re-validating signatures."""
        if not self._captured:
            raise GraphCaptureError("replay before capture completed")
        results = []
        for launch in self._launches:
            sig_fn = getattr(launch.fn, "current_signature", None)
            if sig_fn is not None:
                now = sig_fn()
                if now != launch.signature:
                    raise GraphCaptureError(
                        f"launch {launch.name!r}: signature changed since capture "
                        f"(captured {launch.signature}, now {now}); CUDAGraph replay "
                        f"would use stale arguments"
                    )
            results.append(launch.fn())
        self.replay_count += 1
        return results


class CudaGraphPool:
    """One captured graph per configuration bucket (Listing 1's
    ``select_graph``).

    Serving frameworks capture graphs ahead of time for every task
    configuration they expect — batch-size buckets, composable-format
    layouts — and select the matching graph each generation step.
    """

    def __init__(self) -> None:
        self._graphs: dict = {}

    def capture(self, key, fn: Callable[[], Any]) -> CudaGraph:
        """Capture ``fn``'s launches into a new graph stored under ``key``."""
        if key in self._graphs:
            raise GraphCaptureError(f"graph for key {key!r} already captured")
        graph = CudaGraph()
        with graph.capture():
            fn()
        self._graphs[key] = graph
        return graph

    def select(self, key) -> CudaGraph:
        """The runtime's ``select_graph``: exact-key lookup."""
        try:
            return self._graphs[key]
        except KeyError:
            raise KeyError(
                f"no captured graph for configuration {key!r}; "
                f"captured: {sorted(map(repr, self._graphs))}"
            ) from None

    def __contains__(self, key) -> bool:
        return key in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)
