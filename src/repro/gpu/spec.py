"""GPU hardware parameter sets.

Numbers are the published datasheet values for the two GPUs used in the
paper's evaluation (§4: "NVIDIA A100 40GB SXM and H100 80GB SXM").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Hardware parameters consumed by the cost model.

    Attributes
    ----------
    name:
        Human-readable device name.
    num_sms:
        Streaming multiprocessors; one persistent CTA runs per SM slot.
    peak_bandwidth_bytes:
        HBM bandwidth in bytes/s.
    peak_fp16_flops:
        Dense fp16 tensor-core throughput in FLOP/s.
    peak_cuda_core_flops:
        fp32 CUDA-core throughput in FLOP/s — the compute roof for the
        query-tile-size-1 decode microkernel, which cannot use tensor cores
        (paper §3.2.3: "tensor core instruction m (minimum rows) is 16").
    shared_mem_per_sm:
        Shared memory per SM in bytes (occupancy constraint, §3.2.2).
    registers_per_sm:
        32-bit registers per SM (occupancy constraint).
    kernel_launch_overhead:
        Fixed host-side cost per kernel launch, in seconds.  CUDAGraph
        replay amortizes this to one launch per graph; serving backends
        account for it per step (launch count × this).
    kernel_dispatch_overhead:
        Device-side cost to begin/retire a kernel (grid setup, final
        sync), paid even inside a captured graph.
    supports_tma:
        Hopper's Tensor Memory Accelerator: usable only for contiguous
        (dense) KV loads; sparse gathers fall back to async copies (§3.2.1).
    """

    name: str
    num_sms: int
    peak_bandwidth_bytes: float
    peak_fp16_flops: float
    peak_cuda_core_flops: float
    shared_mem_per_sm: int
    registers_per_sm: int
    kernel_launch_overhead: float = 5e-6
    kernel_dispatch_overhead: float = 1.5e-6
    supports_tma: bool = False

    @property
    def sm_bandwidth(self) -> float:
        """Fair-share HBM bandwidth per SM (bytes/s)."""
        return self.peak_bandwidth_bytes / self.num_sms

    @property
    def sm_fp16_flops(self) -> float:
        return self.peak_fp16_flops / self.num_sms

    @property
    def sm_cuda_core_flops(self) -> float:
        return self.peak_cuda_core_flops / self.num_sms


A100_40G = GPUSpec(
    name="A100-40GB-SXM",
    num_sms=108,
    peak_bandwidth_bytes=1.555e12,
    peak_fp16_flops=312e12,
    peak_cuda_core_flops=19.5e12,
    shared_mem_per_sm=164 * 1024,
    registers_per_sm=65536,
    supports_tma=False,
)

H100_80G = GPUSpec(
    name="H100-80GB-SXM",
    num_sms=132,
    peak_bandwidth_bytes=3.352e12,
    peak_fp16_flops=989e12,
    peak_cuda_core_flops=66.9e12,
    shared_mem_per_sm=228 * 1024,
    registers_per_sm=65536,
    supports_tma=True,
)
