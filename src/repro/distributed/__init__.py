"""Distributed attention built on the attention-state algebra.

Paper §2.2: "Ring-Attention and Flash-Decoding utilize this property
[⊕-composability] to offload partial-attention computations."  This
package demonstrates the cross-device half of that claim: sequence-
parallel ring attention where every device holds one KV shard, computes
partial states against rotating shards, and merges with ``⊕`` — plus a
communication/compute overlap cost model over the simulated GPUs.
"""

from repro.distributed.ring import RingAttention, RingReport

__all__ = ["RingAttention", "RingReport"]
