"""Ring attention: sequence-parallel exact attention via ``⊕`` (paper §2.2).

Setup: a sequence too long for one device is sharded across ``N`` devices —
device ``d`` owns query shard ``d`` and KV shard ``d``.  The algorithm runs
``N`` ring steps; at step ``s`` device ``d`` attends its queries against KV
shard ``(d - s) mod N`` while that shard's K/V stream in from its ring
neighbour.  Each step produces a partial attention state, merged into the
running state with ``⊕`` — exact because ``⊕`` is associative/commutative
over disjoint KV sets (the same algebra the split-KV scheduler uses
on-device).

Causality gives the classic ring-attention skip: a KV shard strictly in a
query shard's future contributes nothing and is neither computed nor
charged.  With contiguous shards the skip is badly distributed — device 0
idles while device N−1 computes every step — so the ``zigzag`` strategy
gives each device one slice from the front and one from the back of the
sequence, equalizing causal work (the schedule production ring-attention
implementations use).  The cost model overlaps each step's compute (max
over devices, simulated per-device by the engine's executor) with the ring
transfer of the next shard, the standard double-buffered schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.jit import KernelTraits, get_kernel
from repro.core.kernels import HeadConfig
from repro.core.state import merge_states
from repro.core.tiles import select_kv_tile, select_q_tile
from repro.core.variant import VANILLA, AttentionVariant
from repro.gpu.cost import TileCost
from repro.gpu.executor import PersistentKernelExecutor
from repro.gpu.spec import A100_40G, GPUSpec

# NVLink-class ring link bandwidth per direction (bytes/s) — defined once
# in the cluster topology module and re-exported here for back-compat.
from repro.cluster.topology import DEFAULT_LINK_BANDWIDTH


@dataclass
class RingReport:
    """Timing decomposition of a ring-attention execution."""

    makespan: float
    compute_time: float  # sum over steps of the slowest device's kernel
    comm_time: float  # sum over steps of the shard transfer time
    device_seconds: float  # total kernel time across all devices
    steps: int
    skipped_pairs: int  # (device, shard) pairs skipped by causality

    @property
    def comm_bound(self) -> bool:
        return self.comm_time > self.compute_time


class RingAttention:
    """Sequence-parallel exact attention across simulated devices."""

    def __init__(
        self,
        num_devices: int,
        heads: HeadConfig,
        gpu: GPUSpec = A100_40G,
        variant: AttentionVariant = VANILLA,
        link_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
        kv_itemsize: int = 2,
        shard_strategy: str = "contiguous",
    ):
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if shard_strategy not in ("contiguous", "zigzag"):
            raise ValueError(f"unknown shard_strategy {shard_strategy!r}")
        self.shard_strategy = shard_strategy
        self.num_devices = num_devices
        self.heads = heads
        self.gpu = gpu
        self.variant = variant
        self.link_bandwidth = link_bandwidth
        self.kv_itemsize = kv_itemsize
        q_tile = select_q_tile(128.0)
        self._traits = KernelTraits(
            head_dim=heads.head_dim,
            q_tile=q_tile,
            kv_tile=select_kv_tile(q_tile, heads.head_dim, self._kv_dtype(), gpu),
            is_sparse=False,
        )
        self._kernel = get_kernel(variant, self._traits)
        self._executor = PersistentKernelExecutor(gpu)

    @staticmethod
    def _kv_dtype():
        from repro.utils.dtypes import StorageDType

        return StorageDType.FP16

    def _shard_bounds(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous near-equal shards of ``n`` positions."""
        base, rem = divmod(n, self.num_devices)
        bounds = []
        start = 0
        for d in range(self.num_devices):
            size = base + (1 if d < rem else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def _device_ranges(self, n: int) -> List[List[Tuple[int, int]]]:
        """Per-device position ranges under the shard strategy.

        ``contiguous``: device ``d`` owns one slice.  ``zigzag``: the
        sequence splits into ``2N`` half-slices and device ``d`` owns
        half-slices ``d`` and ``2N−1−d``, balancing causal work.
        """
        if self.shard_strategy == "contiguous" or self.num_devices == 1:
            return [[b] for b in self._shard_bounds(n)]
        halves = []
        base, rem = divmod(n, 2 * self.num_devices)
        start = 0
        for i in range(2 * self.num_devices):
            size = base + (1 if i < rem else 0)
            halves.append((start, start + size))
            start += size
        return [
            [halves[d], halves[2 * self.num_devices - 1 - d]]
            for d in range(self.num_devices)
        ]

    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        sm_scale: Optional[float] = None,
        params: Optional[dict] = None,
    ) -> Tuple[np.ndarray, RingReport]:
        """Exact attention for one long sequence, sharded over the ring.

        ``q``: ``(n, H_qo, D)``; ``k``/``v``: ``(n, H_kv, D)`` (full prefill:
        query and KV lengths match; incremental shapes work too as long as
        positions follow the trailing-queries convention).
        """
        n_q, h_qo, d = q.shape
        n_kv = k.shape[0]
        if sm_scale is None:
            sm_scale = 1.0 / np.sqrt(d)
        bound_params = self.variant.bind_params(params)

        q_ranges = self._device_ranges(n_q)
        kv_ranges = self._device_ranges(n_kv)
        q_pos_base = n_kv - n_q  # trailing-queries convention

        acc_o = np.zeros((n_q, h_qo, d))
        acc_lse = np.full((n_q, h_qo), -np.inf)
        compute_time = comm_time = device_seconds = 0.0
        skipped = 0
        shard_bytes = max(
            sum(r1 - r0 for r0, r1 in ranges) for ranges in kv_ranges
        ) * (self.heads.num_kv_heads * d * 2 * self.kv_itemsize)

        for step in range(self.num_devices):
            step_device_times = []
            for dev in range(self.num_devices):
                dev_costs: List[TileCost] = []
                for qs0, qs1 in q_ranges[dev]:
                    if qs1 == qs0:
                        continue
                    q_pos_hi = q_pos_base + qs1 - 1
                    for ks0, ks1 in kv_ranges[(dev - step) % self.num_devices]:
                        if ks1 == ks0:
                            continue
                        if causal and ks0 > q_pos_hi:
                            skipped += 1  # entirely in this range's future
                            continue
                        o_part, lse_part, costs = self._pair_partial(
                            q[qs0:qs1], k[ks0:ks1], v[ks0:ks1],
                            q_pos_base + qs0, ks0, causal, sm_scale, bound_params,
                        )
                        acc_o[qs0:qs1], acc_lse[qs0:qs1] = merge_states(
                            acc_o[qs0:qs1], acc_lse[qs0:qs1], o_part, lse_part
                        )
                        dev_costs.extend(costs)
                if dev_costs:
                    # All of a device's pairs run in one persistent launch.
                    step_device_times.append(self._time_costs(dev_costs))
            step_compute = max(step_device_times, default=0.0)
            device_seconds += sum(step_device_times)
            # Double buffering: the next shard streams in under this step's
            # compute; the last step sends nothing.
            step_comm = shard_bytes / self.link_bandwidth if step < self.num_devices - 1 else 0.0
            compute_time += step_compute
            comm_time += step_comm

        makespan = self._overlapped_makespan(compute_time, comm_time)
        report = RingReport(
            makespan=makespan,
            compute_time=compute_time,
            comm_time=comm_time,
            device_seconds=device_seconds,
            steps=self.num_devices,
            skipped_pairs=skipped,
        )
        return acc_o, report

    def _overlapped_makespan(self, compute_time: float, comm_time: float) -> float:
        """Perfectly pipelined schedule: the slower resource dominates."""
        return max(compute_time, comm_time)

    def _pair_partial(
        self, q_shard, k_shard, v_shard, q_pos0, kv_pos0, causal, sm_scale, params
    ):
        """Partial state for one (q range × kv range) pair, plus its raw
        cost footprints (the caller times a device's pairs together)."""
        from repro.utils.dtypes import StorageDType, round_to_storage

        n_q = q_shard.shape[0]
        n_kv = k_shard.shape[0]
        d = self.heads.head_dim
        g = self.heads.group_size
        h_kv = self.heads.num_kv_heads
        q_pos = q_pos0 + np.arange(n_q)
        kv_pos = kv_pos0 + np.arange(n_kv)

        o = np.zeros((n_q, self.heads.num_qo_heads, d))
        lse = np.full((n_q, self.heads.num_qo_heads), -np.inf)
        costs = []
        kr = round_to_storage(k_shard, StorageDType.FP16)
        vr = round_to_storage(v_shard, StorageDType.FP16)
        for kh in range(h_kv):
            head_ids = np.arange(kh * g, (kh + 1) * g)
            q_flat = q_shard[:, head_ids, :].reshape(n_q * g, d)
            o_t, lse_t = self._kernel.fn(
                q_flat, kr[:, kh], vr[:, kh],
                np.repeat(q_pos, g), kv_pos, np.tile(head_ids, n_q), kh,
                params, sm_scale, causal, self._traits.kv_tile,
            )
            o[:, head_ids, :] = o_t.reshape(n_q, g, d)
            lse[:, head_ids] = lse_t.reshape(n_q, g)
            costs.append(
                TileCost(
                    flops=4.0 * d * n_q * g * n_kv,
                    padded_flops=4.0 * d * n_q * g * n_kv,
                    bytes_read=float(n_kv * d * 2 * self.kv_itemsize
                                     + n_q * g * d * self.kv_itemsize),
                    bytes_written=float(n_q * g * (d + 1) * 4),
                )
            )
        return o, lse, costs

    def _time_costs(self, costs: List[TileCost]) -> float:
        """Simulated time of one device launch covering ``costs``.

        Work is spread over the device's SMs by splitting each cost into
        per-SM slices (head-level granularity is too coarse for small
        KV-head counts).
        """
        queues: List[List[TileCost]] = [[] for _ in range(self.gpu.num_sms)]
        slices = max(self.gpu.num_sms // max(len(costs), 1), 1)
        for i, c in enumerate(costs):
            frac = 1.0 / slices
            for j in range(slices):
                queues[(i * slices + j) % self.gpu.num_sms].append(
                    TileCost(
                        flops=c.flops * frac,
                        padded_flops=c.padded_flops * frac,
                        bytes_read=c.bytes_read * frac,
                        bytes_written=c.bytes_written * frac,
                    )
                )
        return self._executor.run_persistent(queues).makespan
