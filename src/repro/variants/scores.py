"""Score-transform variants: soft-cap, ALiBi, FlashSigmoid.

All use the ``logits_transform`` functor.  FlashSigmoid additionally sets
``use_softmax=False``, switching the kernel epilogue and the partial-state
composition to plain summation (paper §3.2.3: "FlashInfer has an option of
using softmax or not").
"""

from __future__ import annotations

import numpy as np

from repro.core.variant import AttentionVariant, ParamDecl


def make_logits_softcap(cap: float) -> AttentionVariant:
    """Gemma-2 / Grok-style logit soft-capping: ``cap · tanh(s / cap)``."""
    if cap <= 0:
        raise ValueError("cap must be positive")
    return AttentionVariant(
        name="logits_softcap",
        params=(ParamDecl("cap", default=cap),),
        logits_transform="params.cap * np.tanh(logits / params.cap)",
    )


def make_alibi(slopes: np.ndarray) -> AttentionVariant:
    """ALiBi linear position bias: ``s + slope[head] · (kv_pos − q_pos)``.

    ``slopes`` has one entry per query head.
    """
    slopes = np.asarray(slopes, dtype=np.float64)
    return AttentionVariant(
        name="alibi",
        params=(ParamDecl("slopes", default=slopes),),
        logits_transform=(
            "logits + params.slopes[q_head] * (kv_pos - q_pos)"
        ),
    )


def alibi_slopes(num_heads: int) -> np.ndarray:
    """The geometric slope schedule of the ALiBi paper: 2^(−8i/n)."""
    return 2.0 ** (-8.0 * np.arange(1, num_heads + 1) / num_heads)


def make_flash_sigmoid(scale: float = 1.0, bias: float = 0.0) -> AttentionVariant:
    """FlashSigmoid (Ramapuram et al. 2024): sigmoid scoring, no softmax.

    This is the worked example of paper Figure 5.
    """
    return AttentionVariant(
        name="flash_sigmoid",
        params=(ParamDecl("scale", default=scale), ParamDecl("bias", default=bias)),
        logits_transform="1.0 / (1.0 + np.exp(-(logits * params.scale + params.bias)))",
        use_softmax=False,
    )
