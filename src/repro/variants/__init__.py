"""Library of ready-made attention variants (paper §3.2.3).

Every variant here is an :class:`~repro.core.AttentionVariant` spec the JIT
compiler turns into a specialized kernel: masks (sliding window, attention
sinks, custom/tree masks), score transforms (soft-cap, ALiBi,
FlashSigmoid), and fused query/key transforms (RoPE).
"""

from repro.variants.masks import (
    CUSTOM_MASK,
    make_attention_sink,
    make_custom_mask,
    make_sliding_window,
    make_tree_attention,
    tree_attention_mask,
)
from repro.variants.rope import (
    DEFAULT_ROPE_THETA,
    FUSED_ROPE,
    apply_rope,
    make_fused_rope,
)
from repro.variants.scores import (
    alibi_slopes,
    make_alibi,
    make_flash_sigmoid,
    make_logits_softcap,
)
from repro.variants.fp8 import (
    calibrate_kv_scales,
    make_fp8_variant,
    quantize_kv_pool,
)
from repro.variants.projections import make_fused_kv_projection, make_qk_norm

__all__ = [
    "CUSTOM_MASK",
    "make_attention_sink",
    "make_custom_mask",
    "make_sliding_window",
    "make_tree_attention",
    "tree_attention_mask",
    "DEFAULT_ROPE_THETA",
    "FUSED_ROPE",
    "apply_rope",
    "make_fused_rope",
    "alibi_slopes",
    "make_alibi",
    "make_flash_sigmoid",
    "make_logits_softcap",
    "calibrate_kv_scales",
    "make_fp8_variant",
    "quantize_kv_pool",
    "make_fused_kv_projection",
    "make_qk_norm",
]
