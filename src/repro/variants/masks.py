"""Mask-style attention variants: sliding window, custom masks.

These use only the ``logits_mask`` functor (paper §3.2.3: "custom mask ...
and sliding window attention"); the kernel skeleton is untouched and the
mask is evaluated on absolute positions, so KV chunking and composable
formats remain correct.
"""

from __future__ import annotations

import numpy as np

from repro.core.variant import AttentionVariant, ParamDecl


def make_sliding_window(window: int) -> AttentionVariant:
    """Longformer-style sliding window: attend to the last ``window`` keys.

    Combined with the structural causal mask by the kernel; a key at
    position ``p_k`` is visible from query position ``p_q`` iff
    ``p_q - p_k < window``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    return AttentionVariant(
        name="sliding_window",
        params=(ParamDecl("window", default=window),),
        logits_mask="(q_pos - kv_pos) < params.window",
    )


def make_attention_sink(num_sinks: int, window: int) -> AttentionVariant:
    """StreamingLLM visibility: the first ``num_sinks`` positions plus a
    recent window (Xiao et al. 2023).  Used when the full KV is retained;
    the rolling-cache deployment instead evicts KV (see
    :mod:`repro.kvcache.streaming`)."""
    if num_sinks < 0 or window <= 0:
        raise ValueError("num_sinks must be >= 0 and window > 0")
    return AttentionVariant(
        name="attention_sink",
        params=(
            ParamDecl("num_sinks", default=num_sinks),
            ParamDecl("window", default=window),
        ),
        logits_mask="(kv_pos < params.num_sinks) | ((q_pos - kv_pos) < params.window)",
    )


#: Arbitrary boolean mask supplied as a tensor parameter, indexed by
#: absolute positions — the path used for tree attention in speculative
#: decoding and Quest-style importance masks.
CUSTOM_MASK = AttentionVariant(
    name="custom_mask",
    params=(ParamDecl("mask"),),
    logits_mask="params.mask[q_pos, kv_pos]",
)


def make_custom_mask(mask: np.ndarray) -> AttentionVariant:
    """``CUSTOM_MASK`` with a default-bound mask tensor."""
    mask = np.asarray(mask, dtype=bool)
    return AttentionVariant(
        name="custom_mask",
        params=(ParamDecl("mask", default=mask),),
        logits_mask="params.mask[q_pos, kv_pos]",
    )


def tree_attention_mask(parents, context_len: int = 0) -> np.ndarray:
    """Build the speculative tree-decoding mask (Medusa/SpecInfer-style).

    ``parents[i]`` is the parent draft-token index of node ``i`` (or -1 for
    roots).  Draft token ``i`` may attend the full committed context (the
    first ``context_len`` KV positions) plus itself and its ancestors.
    Returns a boolean ``(n, context_len + n)`` mask usable with
    :func:`make_custom_mask` (after embedding it at absolute positions) or
    with :func:`make_tree_attention`.
    """
    parents = [int(p) for p in parents]
    n = len(parents)
    mask = np.zeros((n, context_len + n), dtype=bool)
    mask[:, :context_len] = True
    for i, p in enumerate(parents):
        if not -1 <= p < n:
            raise ValueError(f"node {i}: parent {p} out of range")
        mask[i, context_len + i] = True
        while p != -1:
            mask[i, context_len + p] = True
            p = parents[p]
    return mask


def make_tree_attention(parents, context_len: int) -> AttentionVariant:
    """Tree attention for speculative decoding (paper §3.1.1's "Tree
    Attentions used in speculative decoding" unified under sparse masks).

    The variant masks draft-token queries to their ancestor paths; the KV
    layout (context pages + draft tokens) is whatever the cache manager
    provides.  Positions are absolute: query ``i`` of the tree sits at
    ``context_len + i``.
    """
    mask = tree_attention_mask(parents, context_len)
    return AttentionVariant(
        name="tree_attention",
        params=(
            ParamDecl("tree_mask", default=mask),
            ParamDecl("context_len", default=context_len),
        ),
        logits_mask="params.tree_mask[q_pos - params.context_len, kv_pos]",
    )
