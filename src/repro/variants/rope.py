"""Rotary position embeddings (RoPE) and fused-RoPE attention variants.

StreamingLLM-style inference needs RoPE applied at *cache* positions every
step, which an unfused pipeline implements as a separate kernel writing
rotated Q/K back to memory.  FlashInfer fuses the rotation into the
attention kernel via the query/key transform functors — the paper's §4.3
case study ("merely 20 additional lines of code"), worth 1.6–3.7× kernel
bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.core.variant import AttentionVariant, ParamDecl

DEFAULT_ROPE_THETA = 10000.0


def apply_rope(x: np.ndarray, pos: np.ndarray, theta: float = DEFAULT_ROPE_THETA) -> np.ndarray:
    """Rotate ``x`` (``(n, d)``, d even) by its positions (``(n,)``).

    Uses the interleaved-pair convention: dimensions ``(2i, 2i+1)`` form a
    plane rotated by ``pos · theta^(-2i/d)``.
    """
    x = np.asarray(x, dtype=np.float64)
    n, d = x.shape
    if d % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {d}")
    half = d // 2
    freqs = theta ** (-np.arange(half, dtype=np.float64) * 2.0 / d)
    ang = np.asarray(pos, dtype=np.float64)[:, None] * freqs[None, :]
    cos, sin = np.cos(ang), np.sin(ang)
    xr = x.reshape(n, half, 2)
    out = np.empty_like(xr)
    out[..., 0] = xr[..., 0] * cos - xr[..., 1] * sin
    out[..., 1] = xr[..., 0] * sin + xr[..., 1] * cos
    return out.reshape(n, d)


#: Fused-RoPE vanilla attention: Q and K rotated in-kernel at their absolute
#: positions.  ``rope`` is a closure parameter (the variant-class closure of
#: Figure 5); ``rope_theta`` is tunable per model.
FUSED_ROPE = AttentionVariant(
    name="fused_rope",
    params=(
        ParamDecl("rope", default=apply_rope),
        ParamDecl("rope_theta", default=DEFAULT_ROPE_THETA),
    ),
    query_transform="params.rope(q, q_pos, params.rope_theta)",
    key_transform="params.rope(k, kv_pos, params.rope_theta)",
)


def make_fused_rope(theta: float = DEFAULT_ROPE_THETA) -> AttentionVariant:
    """A fused-RoPE variant pinned to a specific ``theta``."""
    return AttentionVariant(
        name="fused_rope",
        params=(
            ParamDecl("rope", default=apply_rope),
            ParamDecl("rope_theta", default=theta),
        ),
        query_transform="params.rope(q, q_pos, params.rope_theta)",
        key_transform="params.rope(k, kv_pos, params.rope_theta)",
    )
