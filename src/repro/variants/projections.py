"""In-kernel normalization and projection fusion.

Paper §3.2.3: "FlashInfer's query and key transformation functors making it
possible to fuse normalization, RoPE and projection (DeepSeek-AI et al.,
2024) into the attention kernel."  Two instances:

* :func:`make_qk_norm` — QK normalization (L2-normalize queries and keys
  before the dot product), used by several 2024 models for logit
  stability; fusing it avoids a separate elementwise kernel.
* :func:`make_fused_kv_projection` — DeepSeek-MLA-style latent KV: the
  cache stores compressed ``d_latent`` vectors and the kernel up-projects
  to the head dimension on the fly, so cache traffic shrinks by
  ``d_latent / head_dim`` while attention math is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.variant import AttentionVariant, ParamDecl


def make_qk_norm(eps: float = 1e-6) -> AttentionVariant:
    """L2-normalize Q and K rows inside the kernel (QK-norm)."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    return AttentionVariant(
        name="qk_norm",
        params=(ParamDecl("norm_eps", default=eps),),
        query_transform=(
            "q / (np.sqrt((q * q).sum(axis=-1, keepdims=True)) + params.norm_eps)"
        ),
        key_transform=(
            "k / (np.sqrt((k * k).sum(axis=-1, keepdims=True)) + params.norm_eps)"
        ),
    )


def make_fused_kv_projection(
    w_k_up: np.ndarray, w_v_up: np.ndarray
) -> AttentionVariant:
    """Fuse latent-KV up-projection into the kernel (MLA-style).

    ``w_k_up`` / ``w_v_up``: per-KV-head projection matrices of shape
    ``(num_kv_heads, d_latent, head_dim)``.  The KV pool stores latent
    vectors ``(slots, H_kv, d_latent)``; the kernel computes
    ``k_latent @ W_up[head]`` after the gather, before the dot product.

    Note: the simulated cost model charges KV traffic at the *query* head
    dimension (it has no per-variant shape plumbing), so the latent-cache
    bandwidth saving is understated — numerics are exact.
    """
    w_k_up = np.asarray(w_k_up, dtype=np.float64)
    w_v_up = np.asarray(w_v_up, dtype=np.float64)
    if w_k_up.ndim != 3 or w_v_up.ndim != 3:
        raise ValueError("projection weights must be (num_kv_heads, d_latent, head_dim)")
    if w_k_up.shape != w_v_up.shape:
        raise ValueError("key and value projections must share a shape")
    return AttentionVariant(
        name="fused_kv_projection",
        params=(
            ParamDecl("w_k_up", default=w_k_up),
            ParamDecl("w_v_up", default=w_v_up),
        ),
        key_transform="k @ params.w_k_up[head]",
        value_transform="v @ params.w_v_up[head]",
    )
