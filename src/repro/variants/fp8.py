"""FP8 KV-cache with per-head scale calibration (paper Appendix F).

The mixed-precision path stores K/V in fp8 e4m3 while Q and O stay fp16.
Values are scaled into e4m3's dynamic range per KV head (amax calibration)
before quantization, and the inverse scale is applied *inside* the kernel
via the key/value transform functors — the Python analog of the fast
numerical-array converter the paper adopts from Gupta (2024): no separate
dequantization pass touches memory.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.variant import AttentionVariant, ParamDecl
from repro.utils.dtypes import FP8_E4M3_MAX, quantize_fp8

#: Calibration headroom: map the per-head amax to 75% of the format's max,
#: leaving margin for values appended after calibration.
CALIBRATION_HEADROOM = 0.75


def calibrate_kv_scales(
    k: np.ndarray, v: np.ndarray, headroom: float = CALIBRATION_HEADROOM
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-KV-head scales mapping amax to the e4m3 range.

    ``k``/``v``: ``(n, H_kv, D)``.  Returns ``(k_scale, v_scale)`` of shape
    ``(H_kv,)``; stored values are ``x / scale`` and the kernel multiplies
    back.
    """
    if headroom <= 0 or headroom > 1:
        raise ValueError("headroom must be in (0, 1]")
    target = FP8_E4M3_MAX * headroom

    def scales(x):
        amax = np.abs(np.asarray(x, dtype=np.float64)).max(axis=(0, 2))
        return np.maximum(amax / target, 1e-12)

    return scales(k), scales(v)


def quantize_kv_pool(
    k: np.ndarray, v: np.ndarray, k_scale: np.ndarray, v_scale: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize pools to the scaled e4m3 grid (returned as float32 values
    on the exact fp8 lattice — storage emulation per DESIGN.md)."""
    kq = quantize_fp8(np.asarray(k) / k_scale[None, :, None])
    vq = quantize_fp8(np.asarray(v) / v_scale[None, :, None])
    return kq, vq


def make_fp8_variant(
    k_scale: np.ndarray,
    v_scale: np.ndarray,
    base: "AttentionVariant | None" = None,
) -> AttentionVariant:
    """Attention variant that fuses fp8 dequantization into the kernel.

    ``base`` may supply additional logits functors (e.g. a soft-cap); its
    key/value transforms must be empty — fp8 owns those slots.
    """
    k_scale = np.asarray(k_scale, dtype=np.float64)
    v_scale = np.asarray(v_scale, dtype=np.float64)
    params = (
        ParamDecl("k_scale", default=k_scale),
        ParamDecl("v_scale", default=v_scale),
    )
    if base is None:
        return AttentionVariant(
            name="fp8_kv",
            params=params,
            key_transform="k * params.k_scale[head]",
            value_transform="v * params.v_scale[head]",
        )
    if base.key_transform or base.value_transform:
        raise ValueError("base variant already uses key/value transforms")
    return AttentionVariant(
        name=f"fp8_{base.name}",
        params=params + base.params,
        key_transform="k * params.k_scale[head]",
        value_transform="v * params.v_scale[head]",
        query_transform=base.query_transform,
        logits_transform=base.logits_transform,
        logits_mask=base.logits_mask,
        output_transform=base.output_transform,
        use_softmax=base.use_softmax,
    )
