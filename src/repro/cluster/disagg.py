"""Disaggregated prefill/decode serving: role pools + live KV handoff.

DistServe/Mooncake-style disaggregation for the cluster engine: the dp
replicas are partitioned into a *prefill pool* and a *decode pool*
(:func:`parse_roles` / :attr:`ClusterConfig.roles`).  Prefill replicas
run (chunked) prefill only — the moment a prompt finishes and would
spawn a decode stream, the :class:`HandoffSink` intercepts the spawn,
exports the sequence's live KV pages
(:meth:`~repro.kvcache.paged.PagedKVCache.export_pages`) and records a
:class:`KVHandoff` instead of decoding locally.  The
:class:`DisaggCoordinator` then ships every handoff to its paired decode
replica as checksummed chunks over priced topology links
(``p2p_send(kind="handoff")`` through the
:class:`~repro.cluster.failover.KVMigrator` chunk protocol: bounded
retry + exponential backoff on injected link faults, outright refusal on
checksum tamper), and the decode replica imports the pages — a
zero-compute context allocation — and resumes the stream.

Token-exactness is by construction: token ids are a pure function of
``(rid, generation, position)``, the handoff carries the first token the
prefill replica emitted, and the decode replica continues from position
1 — so the disaggregated cluster reproduces the colocated single-GPU
reference bit for bit (``token_divergence=0``), whatever the pools,
topology or link faults.  The win is interference isolation: long
prompts never share a step with chatty decode streams, so decode-pool
ITL stays flat while the prefill pool absorbs the TTFT work.

Prefix-cache composition: when prefix caching is on, the coordinator
remembers which ``(decode replica, prefix_group)`` prefix pages have
already been shipped and skips re-shipping them on later handoffs of the
same group (``handoff_pages_skipped``) — the radix tree on the decode
side already holds those pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.failover import FailoverConfig, KVMigrator, _canonical, _chunk_sha

__all__ = [
    "DisaggCoordinator",
    "DisaggReport",
    "HandoffImport",
    "HandoffSink",
    "KVHandoff",
    "parse_roles",
]


def parse_roles(roles, dp: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Normalize a role spec into ``(prefill_ids, decode_ids)``.

    Accepted spellings::

        "prefill=2,decode=2"                  # pool sizes (CLI form)
        {"prefill": 2, "decode": 2}           # pool sizes
        {"prefill": [0, 1], "decode": [2, 3]} # explicit replica ids

    Size counts assign the first ``n_prefill`` replicas to the prefill
    pool and the rest to decode.  The pools must be disjoint, non-empty,
    and together cover exactly ``range(dp)``.
    """
    if isinstance(roles, str):
        spec: Dict[str, object] = {}
        for part in roles.split(","):
            key, sep, val = part.strip().partition("=")
            try:
                if not sep or key.strip() not in ("prefill", "decode"):
                    raise ValueError
                spec[key.strip()] = int(val)
            except ValueError:
                raise ValueError(
                    f"bad roles spec {roles!r}; expected "
                    f"'prefill=N,decode=M'"
                ) from None
        roles = spec
    if not isinstance(roles, dict) or set(roles) != {"prefill", "decode"}:
        raise ValueError(
            f"roles must name exactly the 'prefill' and 'decode' pools, "
            f"got {roles!r}"
        )
    pf, dc = roles["prefill"], roles["decode"]
    if isinstance(pf, int) and isinstance(dc, int):
        if pf < 1 or dc < 1:
            raise ValueError("each role pool needs at least one replica")
        if pf + dc != dp:
            raise ValueError(
                f"roles assign {pf}+{dc} replicas but the cluster has dp={dp}"
            )
        prefill = tuple(range(pf))
        decode = tuple(range(pf, dp))
    else:
        prefill = tuple(int(r) for r in pf)
        decode = tuple(int(r) for r in dc)
        if not prefill or not decode:
            raise ValueError("each role pool needs at least one replica")
        if set(prefill) & set(decode):
            raise ValueError(
                f"roles overlap: {sorted(set(prefill) & set(decode))}"
            )
        if set(prefill) | set(decode) != set(range(dp)):
            raise ValueError(
                f"roles must cover every replica in range({dp}) exactly"
            )
    return prefill, decode


@dataclass
class KVHandoff:
    """One finished prefill leaving its replica for a decode replica."""

    rid: int
    gen: int
    source: int
    target: int
    #: Simulated time the prefill replica emitted the first token (the
    #: handoff leaves the wire no earlier than this).
    t_ready: float
    #: The original request arrival (TTFT stays measured from here).
    arrival: float
    #: First token id, emitted by the prefill replica at ``t_ready``.
    tok0: int
    #: KV length of the handed-off sequence (the full prompt).
    context_len: int
    #: Remaining output tokens the decode replica must produce.
    remaining: int
    #: :meth:`PagedKVCache.export_pages` rows for the sequence's pages.
    page_rows: dict
    #: Modeled fp16 K+V bytes per page on the source cache.
    page_kv_bytes: float
    #: Declared shared-prefix group (prefix-skip dedup key), or ``None``.
    prefix_group: Optional[int] = None
    #: Whole pages of the declared shared prefix at the head of
    #: ``page_rows`` — the slice a prefix-cache hit lets us skip.
    prefix_pages: int = 0

    @property
    def page_count(self) -> int:
        return len(self.page_rows["pages"])


@dataclass
class HandoffImport:
    """A shipped handoff, as the decode replica sees it."""

    rid: int
    gen: int
    #: Original request arrival (carried through so TTFT/SLO accounting
    #: never resets at the handoff boundary).
    arrival: float
    #: When the prefill replica emitted the first token.
    first_token_time: float
    #: When the last handoff chunk cleared the wire — the decode replica
    #: cannot resume the stream before this.
    t_available: float
    tok0: int
    context_len: int
    remaining: int


class HandoffSink:
    """Per-prefill-replica spawn interceptor.

    Installed as ``engine.handoff_sink``; the postprocessor calls it
    instead of spawning a local decode stream.  Re-runs of the same
    replica (crash-harness restores, failover takeovers) re-fire spawns
    for the steps lost since the last snapshot — the ``(rid, gen)`` key
    dedups those, keeping the last (re-executed) firing.
    """

    def __init__(
        self,
        replica: int,
        decode_assignments: Dict[int, int],
        prefix_caching: bool = False,
    ):
        self.replica = replica
        self.decode_assignments = decode_assignments
        self.prefix_caching = prefix_caching
        #: ``(rid, gen) -> KVHandoff``, insertion-ordered.
        self.handoffs: Dict[Tuple[int, int], KVHandoff] = {}

    def __call__(self, req, idx, gen, seq_id, t, stream, cache) -> None:
        from repro.serving.batching import token_id

        rid = idx if req.rid is None else req.rid
        pages = cache.seq_pages(seq_id)
        rows = cache.export_pages(pages)
        trace = stream.trace
        tok0 = (
            trace.tokens[0] if trace.tokens else token_id(rid, gen, 0)
        )
        prefix_pages = 0
        if self.prefix_caching and req.prefix_group is not None:
            prefix_pages = min(len(pages), req.prefix_len // cache.page_size)
        self.handoffs[(rid, gen)] = KVHandoff(
            rid=rid, gen=gen, source=self.replica,
            target=self.decode_assignments[rid],
            t_ready=t, arrival=req.arrival, tok0=tok0,
            context_len=cache.seq_len(seq_id),
            # Carries any brownout clamp the prefill replica applied.
            remaining=stream.remaining,
            page_rows=rows, page_kv_bytes=float(cache.page_kv_bytes),
            prefix_group=req.prefix_group, prefix_pages=prefix_pages,
        )


@dataclass
class DisaggReport:
    """Counters for one disaggregated run (``handoff_*`` summary keys)."""

    prefill_replicas: Tuple[int, ...]
    decode_replicas: Tuple[int, ...]
    requests: int = 0
    pages: int = 0
    wire_bytes: float = 0.0
    chunks: int = 0
    retries: int = 0
    pages_skipped: int = 0
    seconds: float = 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "disagg_prefill_replicas": float(len(self.prefill_replicas)),
            "disagg_decode_replicas": float(len(self.decode_replicas)),
            "handoff_requests": float(self.requests),
            "handoff_pages": float(self.pages),
            "handoff_bytes": float(self.wire_bytes),
            "handoff_chunks": float(self.chunks),
            "handoff_retries": float(self.retries),
            "handoff_pages_skipped": float(self.pages_skipped),
            "handoff_transfer_s": float(self.seconds),
        }


class DisaggCoordinator:
    """Ship every recorded handoff and build the decode-side imports.

    One instance per cluster run.  :meth:`ship` walks the handoffs in
    deterministic ``(t_ready, rid, gen)`` order and sends each through
    the :class:`~repro.cluster.failover.KVMigrator` chunk protocol with
    ``kind="handoff"`` — a control chunk (the handoff descriptor JSON)
    followed by page chunks of up to ``config.chunk_pages`` exported
    page rows, each priced on the topology and sha256-verified by the
    receiver.  Link faults retry with exponential backoff (wasted
    attempts still charge the link); tampered chunks are refused with
    :class:`~repro.cluster.failover.MigrationChecksumError`.
    """

    def __init__(
        self,
        topology,
        config: Optional[FailoverConfig] = None,
        fault_plan=None,
        prefix_caching: bool = False,
    ):
        self.topology = topology
        self.config = config or FailoverConfig()
        self.fault_plan = fault_plan
        self.prefix_caching = prefix_caching
        self._migrator = KVMigrator(topology, self.config, fault_plan)
        #: ``(target, prefix_group)`` pairs whose prefix pages already
        #: shipped — later handoffs of the group skip that head slice.
        self._shipped_prefixes: set = set()

    def ship(
        self,
        handoffs: Sequence[KVHandoff],
        report: DisaggReport,
        corrupt_handoffs: Sequence[int] = (),
    ) -> Dict[int, List[HandoffImport]]:
        """Transfer ``handoffs`` in deterministic order; returns the
        imports grouped by decode replica.  ``corrupt_handoffs`` is a
        test hook tampering the named handoff indices in flight."""
        cfg = self.config
        corrupt = frozenset(int(i) for i in corrupt_handoffs)
        ordered = sorted(handoffs, key=lambda h: (h.t_ready, h.rid, h.gen))
        imports: Dict[int, List[HandoffImport]] = {}
        for hi, h in enumerate(ordered):
            rows = h.page_rows
            skipped = 0
            if (
                self.prefix_caching
                and h.prefix_group is not None
                and h.prefix_pages > 0
            ):
                key = (h.target, h.prefix_group)
                if key in self._shipped_prefixes:
                    # The decode replica's radix tree already holds the
                    # group's prefix pages: ship only the suffix.
                    skipped = h.prefix_pages
                    rows = {
                        k: list(v)[h.prefix_pages:] for k, v in rows.items()
                    }
                else:
                    self._shipped_prefixes.add(key)
            descriptor = {
                "rid": h.rid, "gen": h.gen,
                "source": h.source, "target": h.target,
                "tok0": h.tok0, "context_len": h.context_len,
                "remaining": h.remaining, "arrival": h.arrival,
                "first_token_time": h.t_ready,
                "pages": list(rows["pages"]), "pages_skipped": skipped,
            }
            payload = _canonical(descriptor)
            now = float(h.t_ready)
            data, dt, retries = self._migrator._send(
                payload, _chunk_sha(payload), float(len(payload)), now,
                f"handoff rid={h.rid} gen={h.gen} control",
                tampered=hi in corrupt, kind="handoff",
            )
            now += dt
            report.wire_bytes += float(len(payload))
            report.retries += retries
            report.chunks += 1
            pages = list(rows["pages"])
            for ci, lo in enumerate(range(0, len(pages), cfg.chunk_pages)):
                chunk = {
                    k: list(v)[lo:lo + cfg.chunk_pages]
                    for k, v in rows.items()
                }
                cpayload = _canonical(chunk)
                n_pages = len(chunk["pages"])
                _, dt, retries = self._migrator._send(
                    cpayload, _chunk_sha(cpayload),
                    float(n_pages) * h.page_kv_bytes, now,
                    f"handoff rid={h.rid} gen={h.gen} "
                    f"page chunk {ci} ({n_pages} pages)",
                    tampered=False, kind="handoff",
                )
                now += dt
                report.wire_bytes += float(n_pages) * h.page_kv_bytes
                report.retries += retries
                report.chunks += 1
                report.pages += n_pages
            report.requests += 1
            report.pages_skipped += skipped
            report.seconds += now - float(h.t_ready)
            imports.setdefault(h.target, []).append(
                HandoffImport(
                    rid=h.rid, gen=h.gen, arrival=h.arrival,
                    first_token_time=h.t_ready, t_available=now,
                    tok0=h.tok0, context_len=h.context_len,
                    remaining=h.remaining,
                )
            )
        return imports
