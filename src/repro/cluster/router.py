"""Data-parallel request routing: pluggable policies + a load model.

A :class:`RoutingPolicy` picks which replica serves each arriving
request.  Policies are looked up by name through a registry with the
same contract as :mod:`repro.serving.policy` — built-ins plus an entry
point group (``repro.routing_policies``) for third-party packages::

    [project.entry-points."repro.routing_policies"]
    my-router = mypkg.routing:MyPolicy

Routing is *timing-only*: token ids are a pure function of the request's
cluster-global id (``Request.rid``), so any policy — however bad — is
token-exact per stream by construction.  What a policy changes is
queueing, and therefore TTFT/throughput.

:class:`LoadTracker` is the deterministic fluid model policies consult:
each replica's outstanding token work drains at a nominal service rate.
It deliberately avoids peeking inside replica engines (they run
arrival-clocked and are not steppable mid-run), mirroring what a real
front-end router can actually observe — queue depths it assigned, not
per-step engine internals.

All randomness (power-of-two-choices probing) comes from a policy-owned
seeded generator reset at the start of every run, keeping cluster runs
reproducible end to end.

:class:`CircuitBreaker` is the router-side overload guard: a per-replica
closed → open → half-open state machine on the simulated clock, tripped
by seeded dispatch timeouts and sustained backlog pressure, reinstated
only after successful half-open probes.  The cluster engine folds open
breakers into the routing health mask (see
:attr:`repro.cluster.ClusterConfig.overload`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "BREAKER_STATES",
    "BreakerConfig",
    "BreakerTransition",
    "CacheAwarePolicy",
    "CircuitBreaker",
    "DisaggPolicy",
    "IllegalBreakerTransition",
    "LeastLoadedPolicy",
    "LoadTracker",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "SessionAffinityPolicy",
    "available_routing_policies",
    "get_routing_policy",
    "register_routing_policy",
]

_ENTRY_POINT_GROUP = "repro.routing_policies"


class LoadTracker:
    """Fluid-model outstanding work per replica.

    ``assign`` adds a request's token work to a replica; ``observe``
    drains every replica at ``service_rate`` tokens per simulated second.
    Deterministic: state depends only on the assignment sequence.
    """

    def __init__(self, num_replicas: int, service_rate: float):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if service_rate <= 0:
            raise ValueError("service_rate must be positive")
        self.service_rate = service_rate
        self.outstanding = [0.0] * num_replicas
        self.assigned_requests = [0] * num_replicas
        #: Backpressure in seconds of synthetic backlog per replica (the
        #: failover layer charges unhealthy/overloaded replicas here);
        #: folded into :meth:`loads` as ``pressure × service_rate`` tokens.
        self.pressure = [0.0] * num_replicas
        self._t = 0.0

    def observe(self, t: float) -> None:
        """Advance the drain clock to simulated time ``t``."""
        dt = max(t - self._t, 0.0)
        if dt:
            drain = dt * self.service_rate
            self.outstanding = [max(x - drain, 0.0) for x in self.outstanding]
        self._t = max(self._t, t)

    def assign(self, replica: int, tokens: float) -> None:
        self.outstanding[replica] += tokens
        self.assigned_requests[replica] += 1

    def set_pressure(self, replica: int, seconds: float) -> None:
        """Charge (or clear, with 0) a backpressure signal on a replica."""
        self.pressure[replica] = max(0.0, float(seconds))

    def loads(self) -> List[float]:
        if any(self.pressure):
            return [
                x + p * self.service_rate
                for x, p in zip(self.outstanding, self.pressure)
            ]
        return list(self.outstanding)


class RoutingPolicy:
    """Base class: pick a replica for one arriving request.

    ``reset`` is called once per cluster run with the replica count and a
    seed; ``choose`` once per request in arrival order.  ``loads`` is the
    tracker's current outstanding-work estimate per replica.

    The cluster calls :meth:`route`, which wraps ``choose`` with health
    awareness: when a ``healthy`` mask is supplied and the chosen replica
    is down, :meth:`rebind` picks a live one instead.  Policies that
    maintain sticky mappings (session affinity) override ``rebind`` to
    keep the rebinding deterministic per key.
    """

    #: Registry key; subclasses must override.
    name: str = "base"

    def reset(self, num_replicas: int, seed: int = 0) -> None:
        self.num_replicas = num_replicas

    def choose(self, req, t: float, loads: Sequence[float]) -> int:
        raise NotImplementedError

    def route(
        self,
        req,
        t: float,
        loads: Sequence[float],
        healthy: Optional[Sequence[bool]] = None,
    ) -> int:
        """Health-aware choice: ``choose``, rebound off unhealthy replicas."""
        choice = self.choose(req, t, loads)
        if healthy is None or not any(healthy):
            # No health info — or nothing is healthy, in which case the
            # caller is responsible for holding the request (the cluster
            # engine queues it until the first replica rejoins).
            return choice
        if 0 <= choice < self.num_replicas and healthy[choice]:
            return choice
        return self.rebind(req, t, loads, healthy, choice)

    def rebind(
        self,
        req,
        t: float,
        loads: Sequence[float],
        healthy: Sequence[bool],
        choice: int,
    ) -> int:
        """Fallback when ``choice`` is unhealthy: least-loaded healthy
        replica (ties → lowest index).  Deterministic."""
        alive = [r for r in range(self.num_replicas) if healthy[r]]
        return int(min(alive, key=lambda r: (loads[r], r)))


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through replicas in arrival order (the load-oblivious baseline)."""

    name = "round-robin"

    def reset(self, num_replicas: int, seed: int = 0) -> None:
        super().reset(num_replicas, seed)
        self._next = 0

    def choose(self, req, t, loads) -> int:
        r = self._next
        self._next = (self._next + 1) % self.num_replicas
        return r


class LeastLoadedPolicy(RoutingPolicy):
    """Send to the replica with the least outstanding work (ties → lowest
    index, so the choice is deterministic)."""

    name = "least-loaded"

    def choose(self, req, t, loads) -> int:
        return int(min(range(self.num_replicas), key=lambda r: (loads[r], r)))


class PowerOfTwoPolicy(RoutingPolicy):
    """Power-of-two-choices: probe two random replicas, take the less
    loaded — near-optimal balance at a fraction of least-loaded's probing
    cost (Mitzenmacher's classic result)."""

    name = "power-of-two"

    def reset(self, num_replicas: int, seed: int = 0) -> None:
        super().reset(num_replicas, seed)
        self._rng = np.random.default_rng(seed)

    def choose(self, req, t, loads) -> int:
        if self.num_replicas == 1:
            return 0
        a, b = self._rng.choice(self.num_replicas, size=2, replace=False)
        a, b = int(a), int(b)
        return a if (loads[a], a) <= (loads[b], b) else b


class SessionAffinityPolicy(RoutingPolicy):
    """Hash the session key to a replica: requests sharing a
    ``prefix_group`` (a common system prompt) land together, so each
    replica's radix prefix cache sees every reuse of its groups.  Requests
    without a group hash their own id — affinity degrades to a uniform
    deterministic spread.

    When the hashed replica is unhealthy, :meth:`rebind` probes successive
    salted hashes of the *same key* until a healthy replica turns up —
    so every request of a session rebinds to the same fallback replica
    (affinity survives the failover), and the session snaps back to its
    home replica once it rejoins."""

    name = "session-affinity"

    @staticmethod
    def _hash(key: int) -> int:
        # Knuth multiplicative hash: spreads small consecutive ids.
        return (int(key) * 2654435761) & 0xFFFFFFFF

    def _key(self, req) -> int:
        key = req.prefix_group
        if key is None:
            key = req.rid if getattr(req, "rid", None) is not None else 0
        return int(key)

    def choose(self, req, t, loads) -> int:
        return self._hash(self._key(req)) % self.num_replicas

    def rebind(self, req, t, loads, healthy, choice) -> int:
        # Deterministic probe sequence per session key: the first healthy
        # replica among hash(key + i*salt) is the session's fallback home.
        key = self._key(req)
        for i in range(1, 4 * self.num_replicas + 1):
            candidate = self._hash(key + i * 0x9E3779B9) % self.num_replicas
            if healthy[candidate]:
                return candidate
        return super().rebind(req, t, loads, healthy, choice)


class CacheAwarePolicy(RoutingPolicy):
    """Balance estimated radix-cache hits against load (SGLang-style
    cache-aware routing).

    The router mirrors what each replica's radix tree will have cached:
    routing a request with a ``prefix_group`` teaches that replica the
    group's prefix, and later requests of the group score an estimated
    hit of ``prefix_len`` tokens there.  Each replica is scored by the
    prompt tokens it would still have to prefill (prompt minus estimated
    hit) plus its outstanding work; the lowest total wins (ties → lowest
    index).  Unlike :class:`SessionAffinityPolicy` this keeps spreading
    load when one group dominates: once the hot group is cached on a
    second replica, both score equal hits and the load term decides."""

    name = "cache-aware"

    def reset(self, num_replicas: int, seed: int = 0) -> None:
        super().reset(num_replicas, seed)
        #: Per replica: prefix_group → cached prefix length (tokens), the
        #: router's model of that replica's radix tree contents.
        self._cached: List[Dict[int, int]] = [{} for _ in range(num_replicas)]

    def _est_hit(self, replica: int, req) -> int:
        if req.prefix_group is None:
            return 0
        cached = self._cached[replica].get(req.prefix_group, 0)
        return min(cached, req.prefix_len)

    def choose(self, req, t, loads) -> int:
        best = min(
            range(self.num_replicas),
            key=lambda r: (
                req.prompt_len - self._est_hit(r, req) + loads[r], r
            ),
        )
        if req.prefix_group is not None:
            seen = self._cached[best]
            seen[req.prefix_group] = max(
                seen.get(req.prefix_group, 0), req.prefix_len
            )
        return int(best)


class DisaggPolicy(RoutingPolicy):
    """Prefill→decode pairing for disaggregated role pools (DistServe).

    The cluster binds the role partition with :meth:`bind_roles`; from
    then on :meth:`choose` is least-loaded *within the prefill pool* (the
    prompt compute goes there) and :meth:`pair` picks the least-loaded
    decode replica the finished prefill will hand its KV pages to.  Both
    respect the routing health mask — failover marks and open overload
    breakers confine each side to its pool's healthy members, falling
    back to the whole pool only when none are healthy (the cluster then
    holds the request at the door, exactly as colocated routing does).
    """

    name = "disagg"

    def reset(self, num_replicas: int, seed: int = 0) -> None:
        super().reset(num_replicas, seed)
        if getattr(self, "prefill_pool", None) is None:
            self.prefill_pool: Optional[Tuple[int, ...]] = None
            self.decode_pool: Optional[Tuple[int, ...]] = None

    def bind_roles(
        self, prefill: Sequence[int], decode: Sequence[int]
    ) -> None:
        """Install the role partition (validated by the cluster engine)."""
        if not prefill or not decode:
            raise ValueError("disagg routing needs both role pools non-empty")
        self.prefill_pool = tuple(int(r) for r in prefill)
        self.decode_pool = tuple(int(r) for r in decode)

    def _require_pools(self) -> None:
        if getattr(self, "prefill_pool", None) is None:
            raise ValueError(
                "DisaggPolicy.bind_roles was never called; the 'disagg' "
                "router only works under ClusterConfig(roles=...)"
            )

    @staticmethod
    def _best(
        pool: Sequence[int],
        loads: Sequence[float],
        healthy: Optional[Sequence[bool]],
    ) -> int:
        candidates = (
            [r for r in pool if healthy[r]]
            if healthy is not None and any(healthy[r] for r in pool)
            else list(pool)
        )
        return int(min(candidates, key=lambda r: (loads[r], r)))

    def choose(self, req, t, loads) -> int:
        self._require_pools()
        return self._best(self.prefill_pool, loads, None)

    def route(self, req, t, loads, healthy=None) -> int:
        self._require_pools()
        return self._best(self.prefill_pool, loads, healthy)

    def rebind(self, req, t, loads, healthy, choice) -> int:
        self._require_pools()
        return self._best(self.prefill_pool, loads, healthy)

    def pair(
        self,
        req,
        t: float,
        loads: Sequence[float],
        healthy: Optional[Sequence[bool]] = None,
    ) -> int:
        """The decode replica this request's KV pages will hand off to."""
        self._require_pools()
        return self._best(self.decode_pool, loads, healthy)


_POLICIES: Dict[str, Type[RoutingPolicy]] = {}
_ENTRY_POINTS_LOADED = False
_BUILTIN_NAMES = (
    "round-robin", "least-loaded", "power-of-two", "session-affinity",
    "cache-aware", "disagg",
)


def register_routing_policy(cls: Type[RoutingPolicy]) -> Type[RoutingPolicy]:
    """Register a policy class under ``cls.name`` (usable as a decorator)."""
    if not getattr(cls, "name", None) or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a non-default 'name'")
    _POLICIES[cls.name] = cls
    return cls


for _cls in (
    RoundRobinPolicy, LeastLoadedPolicy, PowerOfTwoPolicy,
    SessionAffinityPolicy, CacheAwarePolicy, DisaggPolicy,
):
    register_routing_policy(_cls)


def _load_entry_point_policies() -> None:
    """Best-effort discovery of third-party routers (once per process);
    built-ins cannot be shadowed and broken plugins are skipped."""
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED:
        return
    _ENTRY_POINTS_LOADED = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - python < 3.8
        return
    try:
        eps = entry_points(group=_ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - python < 3.10 API
        eps = entry_points().get(_ENTRY_POINT_GROUP, [])
    except Exception:  # pragma: no cover - corrupt metadata
        return
    for ep in eps:
        try:
            cls = ep.load()
        except Exception:  # pragma: no cover - broken plugin
            continue
        if isinstance(cls, type) and issubclass(cls, RoutingPolicy):
            _POLICIES.setdefault(cls.name, cls)


def available_routing_policies() -> tuple:
    """Registered router names, built-ins first."""
    _load_entry_point_policies()
    return tuple(
        sorted(_POLICIES, key=lambda n: (n not in _BUILTIN_NAMES, n))
    )


def get_routing_policy(name: str) -> RoutingPolicy:
    """Instantiate the routing policy registered under ``name``."""
    _load_entry_point_policies()
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; available: "
            f"{', '.join(available_routing_policies())}"
        ) from None


# -- per-replica circuit breakers (the overload layer's router guard) ---------

#: Breaker states in lifecycle order.
BREAKER_STATES: Tuple[str, ...] = ("closed", "open", "half-open")

#: Legal breaker edges; anything else raises
#: :class:`IllegalBreakerTransition` (the same edge-validation idiom as
#: ``ReplicaHealth.to()`` in :mod:`repro.cluster.failover`).
_BREAKER_TRANSITIONS: Dict[str, frozenset] = {
    "closed": frozenset({"open"}),
    "open": frozenset({"half-open"}),
    "half-open": frozenset({"open", "closed"}),
}


class IllegalBreakerTransition(ValueError):
    """A breaker transition outside the legal state machine."""


@dataclass(frozen=True)
class BreakerTransition:
    """One timestamped breaker edge for a replica."""

    t: float
    replica: int
    frm: str
    to: str
    detail: str = ""


@dataclass
class BreakerConfig:
    """Per-replica circuit-breaker knobs."""

    #: Failure strikes (dispatch timeouts, sustained pressure) before a
    #: closed breaker opens.
    fail_threshold: int = 3
    #: Seconds an open breaker waits before half-open probing.
    cooldown: float = 0.25
    #: Successful half-open probes before the breaker fully closes.
    probe_successes: int = 2
    #: Estimated backlog (seconds of queued work at the nominal service
    #: rate) at/above which a dispatch counts as a pressure strike.
    pressure_threshold: float = 0.75
    #: Arrival penalty charged to a request re-dispatched after a seeded
    #: timeout (the client's perceived timeout plus resend).
    timeout_penalty: float = 0.02

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        if self.pressure_threshold <= 0:
            raise ValueError("pressure_threshold must be positive")
        if self.timeout_penalty < 0:
            raise ValueError("timeout_penalty must be >= 0")


class CircuitBreaker:
    """Per-replica closed → open → half-open breaker on the simulated clock.

    Strikes (:meth:`record_failure`: seeded dispatch timeouts, estimated
    backlog beyond ``pressure_threshold``) open the breaker after
    ``fail_threshold`` in a row; an open breaker refuses traffic for
    ``cooldown`` seconds, then half-opens and admits probe dispatches; a
    failed probe re-opens it (re-arming the cooldown), while
    ``probe_successes`` consecutive clean probes close it again.  All
    edges go through the validated, timestamped :meth:`to` — illegal
    transitions raise instead of silently corrupting the lifecycle.
    """

    def __init__(self, replica: int, config: Optional[BreakerConfig] = None):
        self.replica = int(replica)
        self.config = config if config is not None else BreakerConfig()
        self.state = "closed"
        self.strikes = 0
        self.probes_ok = 0
        self.opened_at: Optional[float] = None
        self.transitions: List[BreakerTransition] = []
        self.open_count = 0
        self.half_open_count = 0
        self.close_count = 0

    def to(self, state: str, t: float, detail: str = "") -> BreakerTransition:
        """Validated, timestamped edge (the ``ReplicaHealth.to`` idiom)."""
        if state not in BREAKER_STATES:
            raise IllegalBreakerTransition(
                f"unknown breaker state {state!r}; expected one of {BREAKER_STATES}"
            )
        if state not in _BREAKER_TRANSITIONS[self.state]:
            raise IllegalBreakerTransition(
                f"replica {self.replica}: illegal breaker transition "
                f"{self.state} -> {state}"
            )
        tr = BreakerTransition(
            t=float(t), replica=self.replica, frm=self.state, to=state,
            detail=detail,
        )
        self.state = state
        self.transitions.append(tr)
        if state == "open":
            self.open_count += 1
        elif state == "half-open":
            self.half_open_count += 1
        else:
            self.close_count += 1
        return tr

    def tick(self, t: float) -> None:
        """Open → half-open once the cooldown has elapsed."""
        if (
            self.state == "open"
            and self.opened_at is not None
            and t >= self.opened_at + self.config.cooldown
        ):
            self.probes_ok = 0
            self.to("half-open", t, "cooldown elapsed, probing")

    def allow(self, t: float) -> bool:
        """May traffic be routed to this replica at time ``t``?
        (Half-open admits probes; open refuses.)"""
        self.tick(t)
        return self.state != "open"

    def record_failure(self, t: float, kind: str = "fault") -> None:
        if self.state == "half-open":
            # A failed probe re-opens immediately and re-arms the cooldown.
            self.opened_at = float(t)
            self.strikes = 0
            self.to("open", t, f"probe failed ({kind})")
        elif self.state == "closed":
            self.strikes += 1
            if self.strikes >= self.config.fail_threshold:
                self.opened_at = float(t)
                self.to("open", t, f"{self.strikes} strikes ({kind})")
                self.strikes = 0
        # An already-open breaker absorbs further failures silently.

    def record_success(self, t: float) -> None:
        if self.state == "half-open":
            self.probes_ok += 1
            if self.probes_ok >= self.config.probe_successes:
                self.to("closed", t, f"{self.probes_ok} probes succeeded")
        elif self.state == "closed" and self.strikes > 0:
            # Leaky strike decay: sporadic failures never accumulate to a trip.
            self.strikes -= 1
