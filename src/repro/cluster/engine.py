"""The data-parallel cluster engine: N replicas on one simulated clock.

:class:`ClusterEngine` runs ``dp`` tensor-parallel replicas — each a full
:class:`~repro.serving.engine.ServingEngine` over ``tp`` simulated GPU
shards — behind a pluggable :class:`~repro.cluster.router.RoutingPolicy`.
The shared clock is the workload's absolute arrival timeline: every
replica prices its steps on the same simulated time axis, so per-replica
completion times, cluster makespan (the max) and cluster throughput are
directly comparable across tp/dp/router/topology configurations.

Token-exactness across the cluster is by construction, and verified:
requests get a cluster-global id (:func:`assign_rids`) before routing,
token ids are a pure function of ``(rid, generation, position)``, so a
replica serving any subset of the workload emits exactly the tokens the
single-GPU run would (:meth:`ClusterMetrics.token_divergence` checks
every stream against a reference run's tokens).

Fault injection composes with the existing layers: ``link_faults``
install bandwidth-derating windows on the shared topology (steps priced
inside a window slow down), and ``replica_crashes`` script engine deaths
per replica, recovered through the PR-4 checkpoint/journal path via
:class:`~repro.serving.checkpoint.CrashHarness` — the cluster completes
with ``token_divergence=0`` anyway.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.router import LoadTracker, get_routing_policy
from repro.cluster.topology import Topology
from repro.cluster.tp import TPInterconnect, plan_tp_sharding

__all__ = [
    "ClusterConfig",
    "ClusterEngine",
    "ClusterMetrics",
    "assign_rids",
    "expected_tokens",
]


def assign_rids(requests) -> list:
    """Arrival-sort the workload and stamp cluster-global request ids.

    The rid equals the request's index in the arrival-sorted list — the
    same index a single-GPU engine would use as its replica-local token
    key, which is what makes the single-GPU run the token oracle for any
    cluster shape.
    """
    ordered = sorted(requests, key=lambda r: r.arrival)
    return [dataclasses.replace(r, rid=i) for i, r in enumerate(ordered)]


def expected_tokens(reference) -> Dict[Tuple[int, int], list]:
    """Token oracle from a reference run over :func:`assign_rids` output:
    ``{(rid, gen_index): tokens}`` (reference ``req_id`` == rid because
    the reference serves the full sorted list)."""
    return {
        (t.req_id, t.gen_index): t.tokens
        for t in reference.traces
        if t.tokens is not None and t.req_id >= 0
    }


@dataclass
class ClusterConfig:
    """Cluster shape and policy knobs."""

    #: Tensor-parallel shards per replica (must divide the model's QO heads).
    tp: int = 1
    #: Data-parallel replicas behind the router.
    dp: int = 1
    #: Interconnect preset (:data:`repro.cluster.topology.TOPOLOGY_PRESETS`).
    topology: str = "nvlink"
    #: Routing policy name (:func:`repro.cluster.router.get_routing_policy`).
    router: str = "round-robin"
    #: Seed for router randomness (power-of-two probing).
    router_seed: int = 0
    #: Per-replica engine template; ``tensor_parallel`` is overridden by
    #: :attr:`tp`.  ``None`` uses :class:`EngineConfig` defaults.
    engine: Optional[object] = None
    #: Record deterministic token ids on every replica (turns on the
    #: resilience layer's token recording; required for divergence checks).
    record_tokens: bool = True
    #: Snapshot cadence for replicas (0 = off unless a replica has a crash
    #: script, which forces a default cadence of 4).
    checkpoint_every: int = 0


@dataclass
class ClusterMetrics:
    """Per-replica metrics plus cluster-level aggregation."""

    tp: int
    dp: int
    router: str
    topology: Topology
    replicas: List[object]  # ServingMetrics per replica
    #: Each replica's (arrival-sorted) request list; maps a trace's
    #: replica-local ``req_id`` back to the cluster-global ``rid``.
    replica_requests: List[list]
    #: Routed replica per request, in cluster arrival order.
    assignments: List[int]
    #: Per-replica :class:`~repro.serving.checkpoint.CrashReport` for
    #: replicas that ran under a crash script (``None`` entries otherwise).
    crash_reports: Optional[List[object]] = None

    @property
    def merged(self):
        """Cluster-wide :class:`~repro.serving.metrics.ServingMetrics`."""
        from repro.serving.metrics import ServingMetrics

        return ServingMetrics.merge(self.replicas)

    @property
    def total_time(self) -> float:
        """Cluster makespan: the slowest replica's completion time."""
        return max((m.total_time for m in self.replicas), default=0.0)

    def throughput_tokens_per_s(self) -> float:
        total = sum(m.total_output_tokens for m in self.replicas)
        makespan = self.total_time
        return total / makespan if makespan > 0 else 0.0

    def token_divergence(
        self, expected: Dict[Tuple[int, int], list]
    ) -> Tuple[int, int]:
        """Compare every completed stream against the token oracle.

        Returns ``(divergent, compared)``; divergent must be 0 for any
        healthy cluster, whatever the tp/dp/router/topology — and after
        replica crash recovery.
        """
        divergent = compared = 0
        for requests, metrics in zip(self.replica_requests, self.replicas):
            for tr in metrics.traces:
                if tr.tokens is None or tr.req_id < 0:
                    continue
                rid = requests[tr.req_id].rid
                if rid is None:
                    continue
                want = expected.get((rid, tr.gen_index))
                if want is None:
                    continue
                compared += 1
                if tr.tokens != want:
                    divergent += 1
        return divergent, compared

    def summary(self) -> Dict[str, float]:
        """``cluster_*`` counters, per-replica lines, per-link utilization."""
        makespan = self.total_time
        out: Dict[str, float] = {
            "cluster_tp": float(self.tp),
            "cluster_dp": float(self.dp),
            "cluster_world": float(self.tp * self.dp),
            "cluster_total_time": makespan,
            "cluster_throughput_tok_s": self.throughput_tokens_per_s(),
            "cluster_output_tokens": float(
                sum(m.total_output_tokens for m in self.replicas)
            ),
            "cluster_requests": float(sum(len(m.traces) for m in self.replicas)),
            "cluster_preemptions": float(sum(m.preemptions for m in self.replicas)),
            "cluster_sheds": float(sum(m.sheds for m in self.replicas)),
            "cluster_recover_resumed": float(
                sum(m.recover_resumed for m in self.replicas)
            ),
        }
        for i, m in enumerate(self.replicas):
            out[f"replica{i}_requests"] = float(len(m.traces))
            out[f"replica{i}_output_tokens"] = float(m.total_output_tokens)
            out[f"replica{i}_total_time"] = m.total_time
            out[f"replica{i}_throughput_tok_s"] = m.throughput_tokens_per_s()
            # Replica utilization: busy fraction of the cluster makespan.
            out[f"replica{i}_utilization"] = (
                m.total_time / makespan if makespan > 0 else 0.0
            )
        radix_tokens = sum(m.radix_hit_tokens for m in self.replicas)
        cascade_steps = sum(m.cascade_steps for m in self.replicas)
        if radix_tokens or cascade_steps:
            # Prefix-cache counters only when something hit, so cold-cache
            # summaries stay byte-identical.
            out["cluster_radix_hit_tokens"] = float(radix_tokens)
            out["cluster_radix_hit_prompts"] = float(
                sum(m.radix_hit_prompts for m in self.replicas)
            )
            out["cluster_cascade_steps"] = float(cascade_steps)
            out["cluster_cascade_bytes_saved"] = float(
                sum(m.cascade_bytes_saved for m in self.replicas)
            )
        if self.crash_reports is not None:
            out["cluster_crashes"] = float(
                sum(r.crashes for r in self.crash_reports if r is not None)
            )
            out["cluster_recoveries"] = float(
                sum(r.recoveries for r in self.crash_reports if r is not None)
            )
        out.update(self.topology.link_stats(makespan=makespan))
        return out


class ClusterEngine:
    """Route a workload across ``dp`` tensor-parallel serving replicas.

    ``backend_factory(heads, gpu)`` builds each replica's attention
    backend from the per-shard head config (default FlashInfer).
    ``trace=True`` attaches one :class:`~repro.obs.StepTracer` per
    replica (:meth:`trace_processes` feeds
    :func:`repro.obs.write_cluster_trace`).  ``link_faults`` is a
    sequence of ``(t_start, t_end, factor)`` bandwidth deratings on the
    shared topology; ``replica_crashes`` maps replica index → crash
    script (``(step, phase)`` pairs) run through the checkpoint-recovery
    harness.
    """

    def __init__(
        self,
        model,
        gpu,
        config: Optional[ClusterConfig] = None,
        backend_factory=None,
        trace: bool = False,
        link_faults: Sequence[Tuple[float, float, float]] = (),
        replica_crashes: Optional[Dict[int, Sequence[Tuple[int, str]]]] = None,
    ):
        self.model = model
        self.gpu = gpu
        self.config = config or ClusterConfig()
        cfg = self.config
        if cfg.tp < 1 or cfg.dp < 1:
            raise ValueError("tp and dp must be >= 1")
        #: Validated head sharding (raises on non-divisible tp up front).
        self.sharding = plan_tp_sharding(model, cfg.tp)
        self.topology = Topology.preset(cfg.topology, world=cfg.tp * cfg.dp)
        for t0, t1, factor in link_faults:
            self.topology.degrade(t0, t1, factor)
        #: Resolved routing policy (raises on an unknown name).
        self.router = get_routing_policy(cfg.router)
        if backend_factory is None:
            from repro.serving.backends import FlashInferBackend

            backend_factory = FlashInferBackend
        self.backend_factory = backend_factory
        self.replica_crashes = dict(replica_crashes or {})
        self.tracers = None
        if trace:
            from repro.obs.tracer import StepTracer

            self.tracers = [StepTracer() for _ in range(cfg.dp)]

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_config(cls, config: Optional["ClusterConfig"] = None, *,
                    model=None, gpu=None, **kwargs) -> "ClusterEngine":
        """Build a cluster engine with the stock model/GPU defaults.

        The cluster-shape counterpart of
        :meth:`repro.serving.engine.ServingEngine.from_config` — one call
        site for the CLI, benchmarks and tests, with the same defaults
        (LLAMA_3_1_8B on an H100)."""
        from repro.gpu.spec import H100_80G
        from repro.serving.model import LLAMA_3_1_8B

        model = model if model is not None else LLAMA_3_1_8B
        gpu = gpu if gpu is not None else H100_80G
        return cls(model, gpu, config, **kwargs)

    def _engine_config(self):
        from repro.serving.engine import EngineConfig

        template = self.config.engine if self.config.engine is not None else EngineConfig()
        return dataclasses.replace(template, tensor_parallel=self.config.tp)

    def _nominal_service_rate(self) -> float:
        """Deterministic decode-rate estimate (tokens/s per replica) for
        the router's fluid load model: the non-attention roofline at a
        nominal batch of 16 (what a front-end can estimate offline —
        deliberately not a peek into live engine state)."""
        m, gpu, tp = self.model, self.gpu, self.config.tp
        batch = 16
        step = (
            m.num_layers * m.layer_nonattn_time(batch, gpu, 0.85, tp)
            + m.lm_head_time(batch, gpu, 0.85, tp)
        )
        return batch / step

    def _make_engine(self, replica: int, tracer=None, checkpoint=None, store=None):
        from repro.faults.recover import ResilienceConfig
        from repro.serving.engine import ServingEngine

        cfg = self._engine_config()
        interconnect = (
            TPInterconnect(self.topology, self.model, cfg.tensor_parallel)
            if cfg.tensor_parallel > 1
            else None
        )
        resilience = ResilienceConfig() if self.config.record_tokens else None
        engine = ServingEngine.from_config(
            cfg, model=self.model, gpu=self.gpu,
            backend_factory=self.backend_factory,
            tracer=tracer, resilience=resilience,
            checkpoint=checkpoint, checkpoint_store=store,
            interconnect=interconnect,
        )
        engine.dp_world = self.config.dp
        engine.dp_rank = replica
        return engine

    # -- the cluster run -------------------------------------------------------

    def route(self, requests) -> Tuple[List[list], List[int]]:
        """Assign rids and split the workload across replicas.

        Returns ``(per_replica_requests, assignments)``; each replica list
        stays arrival-sorted (routing walks the global arrival order).
        """
        cfg = self.config
        reqs = assign_rids(requests)
        self.router.reset(cfg.dp, cfg.router_seed)
        tracker = LoadTracker(cfg.dp, self._nominal_service_rate())
        per_replica: List[list] = [[] for _ in range(cfg.dp)]
        assignments: List[int] = []
        for r in reqs:
            tracker.observe(r.arrival)
            choice = int(self.router.choose(r, r.arrival, tracker.loads()))
            if not 0 <= choice < cfg.dp:
                raise ValueError(
                    f"router {self.router.name!r} chose replica {choice} "
                    f"outside [0, {cfg.dp})"
                )
            per_replica[choice].append(r)
            assignments.append(choice)
            tracker.assign(choice, r.prompt_len + r.output_len * r.n)
        return per_replica, assignments

    def run(self, requests) -> ClusterMetrics:
        """Serve the workload across the cluster; returns cluster metrics."""
        from repro.serving.checkpoint import (
            CheckpointConfig,
            CheckpointStore,
            CrashHarness,
        )

        cfg = self.config
        per_replica, assignments = self.route(requests)
        replica_metrics = []
        crash_reports: Optional[List[object]] = (
            [None] * cfg.dp if self.replica_crashes else None
        )
        for i in range(cfg.dp):
            tracer = self.tracers[i] if self.tracers is not None else None
            script = self.replica_crashes.get(i)
            if script:
                store = CheckpointStore()
                every = cfg.checkpoint_every if cfg.checkpoint_every > 0 else 4
                ckpt = CheckpointConfig(every_steps=every)

                def factory(i=i, tracer=tracer, ckpt=ckpt, store=store):
                    return self._make_engine(i, tracer, ckpt, store)

                report = CrashHarness(
                    factory, per_replica[i], store, crash_script=script
                ).run()
                crash_reports[i] = report
                metrics = report.metrics
            else:
                ckpt = store = None
                if cfg.checkpoint_every > 0:
                    ckpt = CheckpointConfig(every_steps=cfg.checkpoint_every)
                    store = CheckpointStore()
                engine = self._make_engine(i, tracer, ckpt, store)
                metrics = engine.run(per_replica[i])
            replica_metrics.append(metrics)
        return ClusterMetrics(
            tp=cfg.tp, dp=cfg.dp, router=self.router.name,
            topology=self.topology, replicas=replica_metrics,
            replica_requests=per_replica, assignments=assignments,
            crash_reports=crash_reports,
        )

    def run_reference(self, requests):
        """The single-GPU token oracle: tp=1, dp=1, same rids, no topology.

        Token ids depend only on ``(rid, gen, pos)``, so this run's tokens
        are what every cluster shape must reproduce exactly.
        """
        from repro.faults.recover import ResilienceConfig
        from repro.serving.engine import ServingEngine

        cfg = dataclasses.replace(self._engine_config(), tensor_parallel=1)
        engine = ServingEngine.from_config(
            cfg, model=self.model, gpu=self.gpu,
            backend_factory=self.backend_factory,
            resilience=ResilienceConfig(),
        )
        return engine.run(assign_rids(requests))

    def trace_processes(self):
        """Per-replica ``(label, events, fault_events)`` triples for
        :func:`repro.obs.write_cluster_trace`."""
        if self.tracers is None:
            raise ValueError("construct the ClusterEngine with trace=True")
        return [
            (f"replica {i} (tp={self.config.tp})", tr.events, tr.fault_events)
            for i, tr in enumerate(self.tracers)
        ]
